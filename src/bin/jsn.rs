//! `jsn` — command-line front end for the Just Say No reproduction.
//!
//! ```text
//! jsn apps                                   list the 20 bundled profiles
//! jsn run <app> [--config L] [-n N] [--cpu] [--json]   simulate one app
//! jsn run-all [-o DIR] [--resume DIR] [--deadline S] [--retries N]
//!                                            supervised full sweep with a
//!                                            crash-safe checkpoint journal
//! jsn coverage <app> [labels...]             per-config coverage for one app
//! jsn trace <app> -o FILE [-n N]             persist a binary trace
//! jsn diff <a.json> <b.json> [--tol X]       compare two results artifacts
//! jsn check [--seeds N] [--filter F] [--gen G] [--seed S] [--len N]
//!                                            differential soundness checker
//! jsn serve [--listen EP] [--max-sessions N] [--snapshot FILE] ...
//!                                            trace-stream replay service
//! jsn slam [--connect EP] [--sessions N] [--verify] ...
//!                                            load-generate against a server
//! jsn chaos --upstream EP [--listen EP] [--log FILE] [--plan PLAN]
//!                                            deterministic fault proxy
//! jsn help                                   this text
//! ```
//!
//! Configuration labels follow the paper's grammar (`TMNM_12x3`, `HMNM4`,
//! `RMNM_512_2`, `CMNM_8_12`, `SMNM_13x2`, `BLOOM_13x4`) plus `Baseline`
//! and `Perfect`.

use std::process::ExitCode;

use just_say_no::mnm_experiments::json::Json;
use just_say_no::mnm_experiments::metrics::diff_documents;
use just_say_no::prelude::*;
use trace_synth::{characterize, write_trace};

const DEFAULT_INSTRUCTIONS: u64 = 500_000;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("apps") => cmd_apps(),
        Some("run") => cmd_run(&args[1..]),
        Some("run-all") => return cmd_run_all(&args[1..]),
        Some("coverage") => cmd_coverage(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("diff") => return cmd_diff(&args[1..]),
        Some("check") => return cmd_check(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("slam") => return cmd_slam(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("shard") => return cmd_shard(&args[1..]),
        Some("help") | None => {
            print_help();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `jsn help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("jsn: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "jsn — Just Say No (HPCA 2003) reproduction CLI\n\
         \n\
         USAGE:\n  jsn apps\n  jsn run <app> [--config LABEL] [-n N] [--cpu] [--json]\n  \
         jsn run-all [-o DIR] [--resume DIR] [--deadline SECS] [--retries N] [--only a,b] [--quiet]\n  \
         jsn coverage <app> [LABEL...]\n  jsn trace <app> -o FILE [-n N]\n  \
         jsn diff <a.json> <b.json> [--tol X]\n  \
         jsn check [--seeds N] [--len N] [--filter LABEL] [--gen G] [--seed S] [--json] [-o FILE]\n  \
         jsn shard [--app NAME] [--cores N] [-n N] [--epoch N|auto] [--sharing R]\n            \
         [--config LABEL] [--seed S] [--pipeline on|off] [--single] [--json]\n            \
         [--bench] [--check [--quick] [--workload W]]\n\
         \n\
         Labels: Baseline, Perfect, HMNM1..4, TMNM_<b>x<r>, CMNM_<k>_<m>,\n\
         RMNM_<blocks>_<assoc>, SMNM_<w>x<r>, BLOOM_<b>x<k>.\n\
         \n\
         run-all regenerates every table/figure under supervision: each job\n\
         is retried on panic or deadline overrun, completed jobs are\n\
         checkpointed to <out>/journal.jsonl (fsynced), and `--resume <dir>`\n\
         continues an interrupted sweep to the identical manifest. The\n\
         JSN_FAULT env knob injects deterministic faults (see\n\
         EXPERIMENTS.md).\n\
         \n\
         check sweeps every filter family against the perfect oracle and an\n\
         independent reference cache model over randomized traces\n\
         (generators: profile, aliasing, flush, saturation); a failure is\n\
         shrunk to a minimal reproducer and printed with its replay line.\n\
         `--filter`/`--gen`/`--seed` restrict the sweep to replay one\n\
         scenario. Under a JSN_FAULT flip plan, check corrupts filter state\n\
         mid-trace and must report the lie as an UnsoundFlag violation.\n\
         \n\
         shard runs an epoch-synchronized N-core simulation: per-core\n\
         private L1/L2 + MNM filters over one shared L3, with cross-core\n\
         store and L3-victim invalidations driven through the filter event\n\
         stream. Defaults come from JSN_CORES/JSN_EPOCH/JSN_SHARING. The\n\
         default engine is pipelined (cores compute epoch E+1 while a\n\
         resolver thread drains epoch E); `--pipeline off` selects the\n\
         stop-the-world barrier baseline and `--single` the single-threaded\n\
         reference — all three are bit-identical by contract. `--epoch auto`\n\
         calibrates the epoch length before the run; `--bench` times all\n\
         engines over identical streams and verifies identity; `--check`\n\
         sweeps adversarial sharing workloads (pingpong, falsesharing,\n\
         evictionrace, profile) across every filter family under a lockstep\n\
         multi-core reference model, re-verifying engine identity per\n\
         scenario. JSON output includes per-phase timing (compute, resolve,\n\
         stall nanos and resolver occupancy).\n\
         \n\
         serve runs a long-lived trace-stream replay service:\n  \
         jsn serve [--listen EP] [--max-sessions N] [--queue FRAMES]\n            \
         [--max-frame BYTES] [--stall-ms MS] [--idle-ms MS]\n            \
         [--resume-window-ms MS] [--max-parked N] [--shed-watermark N]\n            \
         [--retry-after-ms MS] [--drain-ms MS] [--snapshot FILE]\n\
         EP is <host>:<port> or unix:<path> (default 127.0.0.1:7227).\n\
         Each connection gets its own hierarchy + filter preset; scrape\n\
         GET /metrics on the same endpoint for live counters. SIGTERM or\n\
         ctrl-c drains sessions and flushes a final metrics snapshot.\n\
         Protocol v2: every frame is CRC32-checked, interrupted sessions\n\
         park for --resume-window-ms and resume exactly-once by token,\n\
         idle sessions are evicted after --idle-ms, and new hellos get\n\
         STATUS_BUSY with a retry_after_ms hint while the worker queue\n\
         sits at or above --shed-watermark.\n\
         \n\
         slam load-generates against a running server:\n  \
         jsn slam [--connect EP] [--sessions N] [--records N] [--frame N]\n           \
         [--config LABEL] [--seed S] [--window N] [--retries N]\n           \
         [--backoff-ms MS] [--metrics EP] [--verify]\n\
         Connections that die mid-session reconnect with exponential\n\
         backoff (deterministic jitter) and resume from the server's\n\
         acked frame. --verify scrapes /metrics afterwards (from\n\
         --metrics EP if given, e.g. around a chaos proxy) and requires\n\
         the verdict histogram to be bit-identical to an offline replay\n\
         of the same seeds (exit 1 otherwise).\n\
         \n\
         chaos relays slam <-> serve traffic while injecting seeded,\n\
         reproducible faults:\n  \
         jsn chaos --upstream EP [--listen EP] [--log FILE] [--plan P]\n\
         The plan (or the JSN_CHAOS env var) reads like JSN_FAULT:\n  \
         seed=42,tear=1/24,delay=1/16:5,drop=1/64,corrupt=1/24,dup=1/32\n\
         Faults fire at byte offsets decided purely by the seed, so a\n\
         rerun fires the identical sequence; every fired fault is logged\n\
         to --log sorted for diffing. See EXPERIMENTS.md."
    );
}

fn lookup_app(name: &str) -> Result<AppProfile, String> {
    profiles::by_name(name).ok_or_else(|| {
        format!("unknown application `{name}`; `jsn apps` lists the bundled profiles")
    })
}

fn parse_n(args: &[String], flag: &str, default: u64) -> Result<u64, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.replace('_', "").parse().ok())
            .ok_or_else(|| format!("{flag} needs a numeric argument")),
    }
}

fn parse_opt<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn cmd_apps() -> Result<(), String> {
    println!(
        "{:<14}{:>6}  {:>10}  {:>9}  {:>8}  {:>7}",
        "app", "suite", "data", "code", "regions", "drift"
    );
    for p in profiles::all() {
        let suite = match p.category {
            trace_synth::AppCategory::Integer => "INT",
            trace_synth::AppCategory::FloatingPoint => "FP",
        };
        println!(
            "{:<14}{:>6}  {:>8}KB  {:>7}KB  {:>8}  {:>7}",
            p.name,
            suite,
            p.data_footprint() / 1024,
            p.code_footprint / 1024,
            p.regions.len(),
            if p.phase_drift.is_some() { "yes" } else { "no" },
        );
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let app = args.first().ok_or("run needs an application name")?;
    let profile = lookup_app(app)?;
    let n = parse_n(args, "-n", DEFAULT_INSTRUCTIONS)?;
    let label = parse_opt(args, "--config").unwrap_or("HMNM4");
    let timed = args.iter().any(|a| a == "--cpu");
    let json = args.iter().any(|a| a == "--json");

    let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
    let mut mnm = match label {
        "Baseline" | "Perfect" => None,
        other => Some(Mnm::new(&hier, MnmConfig::parse(other).map_err(|e| e.to_string())?)),
    };

    if timed {
        let cpu = CpuConfig::paper_eight_way();
        let policy = match (&mut mnm, label) {
            (Some(m), _) => MemPolicy::Mnm(m),
            (None, "Perfect") => MemPolicy::Perfect,
            (None, _) => MemPolicy::Baseline,
        };
        let stats = simulate(&cpu, &mut hier, policy, Program::new(profile), n);
        if json {
            print!("{}", run_json(app, label, &hier, mnm.as_ref(), Some(&stats)).render_pretty());
            return Ok(());
        }
        println!("app: {app}   config: {label}   instructions: {}", stats.instructions);
        println!("cycles: {}   IPC: {:.3}", stats.cycles, stats.ipc());
        println!(
            "loads: {}   mean load latency: {:.1} cycles",
            stats.loads,
            stats.mean_load_latency()
        );
        println!("branches: {} ({} mispredicted)", stats.branches, stats.mispredicts);
    } else {
        for instr in Program::new(profile).take(n as usize) {
            if let Some(addr) = instr.data_addr() {
                let access = match instr.kind {
                    InstrKind::Store { .. } => Access::store(addr),
                    _ => Access::load(addr),
                };
                match (&mut mnm, label) {
                    (Some(m), _) => {
                        m.run_access(&mut hier, access);
                    }
                    (None, "Perfect") => {
                        let bypass = perfect_bypass(&hier, access);
                        hier.access(access, &bypass);
                    }
                    (None, _) => {
                        hier.access(access, &BypassSet::none());
                    }
                }
            }
        }
        if json {
            print!("{}", run_json(app, label, &hier, mnm.as_ref(), None).render_pretty());
            return Ok(());
        }
        println!("app: {app}   config: {label}   data accesses: {}", hier.stats().accesses);
        println!("mean data access time: {:.2} cycles", hier.stats().mean_access_time());
        println!("miss-time fraction: {:.1}%", hier.stats().miss_time_fraction() * 100.0);
    }

    if let Some(m) = &mnm {
        println!(
            "coverage: {:.1}%   MNM state: {} bits in {} components",
            m.stats().coverage() * 100.0,
            m.storage_bits(),
            m.storage().len()
        );
    }
    Ok(())
}

/// The `jsn run --json` document: one run's counters, schema
/// `jsn-run/v1`.
fn run_json(
    app: &str,
    label: &str,
    hier: &Hierarchy,
    mnm: Option<&Mnm>,
    cpu: Option<&just_say_no::ooo_model::CpuStats>,
) -> Json {
    let st = hier.stats();
    let structures = Json::Arr(
        hier.structures()
            .iter()
            .map(|meta| {
                let s = st.structures[meta.id.index()];
                Json::obj(vec![
                    ("name", Json::str(&meta.name)),
                    ("level", Json::num(meta.level as f64)),
                    ("probes", Json::num(s.probes as f64)),
                    ("hits", Json::num(s.hits as f64)),
                    ("misses", Json::num(s.misses as f64)),
                    ("bypasses", Json::num(s.bypasses as f64)),
                    ("fills", Json::num(s.fills as f64)),
                    ("writebacks", Json::num(s.writebacks as f64)),
                ])
            })
            .collect(),
    );
    let mut pairs = vec![
        ("schema", Json::str("jsn-run/v1")),
        ("app", Json::str(app)),
        ("config", Json::str(label)),
        (
            "hierarchy",
            Json::obj(vec![
                ("accesses", Json::num(st.accesses as f64)),
                ("data_accesses", Json::num(st.data_accesses as f64)),
                ("memory_supplies", Json::num(st.memory_supplies as f64)),
                ("mean_access_time", Json::num(st.mean_access_time())),
                ("miss_time_fraction", Json::num(st.miss_time_fraction())),
                (
                    "supplies_by_level",
                    Json::Arr(st.supplies_by_level.iter().map(|&s| Json::num(s as f64)).collect()),
                ),
                ("structures", structures),
            ]),
        ),
    ];
    if let Some(cpu) = cpu {
        pairs.push((
            "cpu",
            Json::obj(vec![
                ("instructions", Json::num(cpu.instructions as f64)),
                ("cycles", Json::num(cpu.cycles as f64)),
                ("ipc", Json::num(cpu.ipc())),
                ("loads", Json::num(cpu.loads as f64)),
                ("mean_load_latency", Json::num(cpu.mean_load_latency())),
                ("branches", Json::num(cpu.branches as f64)),
                ("mispredicts", Json::num(cpu.mispredicts as f64)),
            ]),
        ));
    }
    if let Some(m) = mnm {
        pairs.push((
            "mnm",
            Json::obj(vec![
                ("coverage", Json::num(m.stats().coverage())),
                ("identified_misses", Json::num(m.stats().identified_misses() as f64)),
                ("bypassable_misses", Json::num(m.stats().bypassable_misses() as f64)),
                ("storage_bits", Json::num(m.storage_bits() as f64)),
                ("components", Json::num(m.storage().len() as f64)),
            ]),
        ));
    }
    Json::obj(pairs)
}

/// `jsn diff a.json b.json [--tol X]`: per-cell comparison of two results
/// artifacts (run manifests or single-table documents). Exits 0 when they
/// agree within the tolerance, 1 when any cell or structure diverges.
fn cmd_diff(args: &[String]) -> ExitCode {
    match run_diff(args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("jsn: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run_diff(args: &[String]) -> Result<ExitCode, String> {
    let mut tolerance = 1e-9_f64;
    let mut paths: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--tol" {
            let t = it.next().ok_or("--tol needs a numeric argument")?;
            tolerance = t.parse().map_err(|_| format!("--tol {t}: expected a number"))?;
        } else if arg.starts_with("--") {
            return Err(format!("unknown diff option `{arg}`"));
        } else {
            paths.push(arg);
        }
    }
    let [a_path, b_path] = paths[..] else {
        return Err("diff needs two JSON files (and an optional --tol X)".to_owned());
    };
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let a = load(a_path)?;
    let b = load(b_path)?;

    let diffs = diff_documents(&a, &b, tolerance);
    if diffs.is_empty() {
        println!("identical within tolerance {tolerance}: {a_path} vs {b_path}");
        return Ok(ExitCode::SUCCESS);
    }
    println!("{} divergence(s) beyond tolerance {tolerance}:", diffs.len());
    for d in &diffs {
        println!("  {d}");
    }
    Ok(ExitCode::FAILURE)
}

/// `jsn check`: the differential soundness sweep. Exits 0 when every
/// scenario upholds the invariants, 1 when a violation was found (the
/// shrunk reproducer and its replay line are printed).
fn cmd_check(args: &[String]) -> ExitCode {
    match run_check(args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("jsn: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run_check(args: &[String]) -> Result<ExitCode, String> {
    use just_say_no::mnm_check::{run_scenario, run_suite, Scenario, SuiteReport, TraceGen};
    use just_say_no::mnm_experiments::faults;

    // Honor JSN_FAULT: a `flip` clause corrupts selected scenarios'
    // filter state mid-trace, which the checker must then catch.
    if let Some(plan) = faults::FaultPlan::from_env()? {
        eprintln!("fault injection armed: {}", plan.summary());
        faults::install(Some(plan));
    }

    let seeds = parse_n(args, "--seeds", 8)?;
    let len = parse_n(args, "--len", 4000)? as usize;
    let json = args.iter().any(|a| a == "--json");
    let out_path = parse_opt(args, "-o");
    let filter_arg = parse_opt(args, "--filter");
    let gen_arg = match parse_opt(args, "--gen") {
        None => None,
        Some(g) => Some(TraceGen::parse(g).ok_or_else(|| {
            format!("unknown generator `{g}` (expected profile, aliasing, flush, or saturation)")
        })?),
    };

    let report = if let Some(seed_text) = parse_opt(args, "--seed") {
        // Replay mode: one fully-pinned scenario, as printed in a failure's
        // replay line.
        let seed = parse_seed(seed_text)?;
        let filter = filter_arg.ok_or("replaying a seed needs --filter")?;
        let gen = gen_arg.ok_or("replaying a seed needs --gen")?;
        let scenario = Scenario { filter: filter.to_owned(), gen, seed, len };
        SuiteReport { scenarios: vec![run_scenario(&scenario)?] }
    } else {
        let filters: Vec<&str> = match filter_arg {
            Some(f) => vec![f],
            None => just_say_no::mnm_check::DEFAULT_FILTERS.to_vec(),
        };
        let gens: Vec<TraceGen> = match gen_arg {
            Some(g) => vec![g],
            None => TraceGen::ALL.to_vec(),
        };
        run_suite(&filters, &gens, seeds, len)?
    };

    if let Some(path) = out_path {
        just_say_no::mnm_experiments::fsio::write_artifact(
            std::path::Path::new(path),
            report.to_json().render_pretty().as_bytes(),
        )
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if json {
        print!("{}", report.to_json().render_pretty());
    } else if report.passed() {
        println!(
            "check passed: {} scenario(s), {} accesses, every definite-miss flag, \
             event stream, and stats reconciliation held",
            report.scenarios.len(),
            report.total_accesses()
        );
    } else {
        for failure in report.failures() {
            print!("{}", failure.render_failure());
        }
        println!(
            "check FAILED: {} of {} scenario(s) violated an invariant",
            report.failures().len(),
            report.scenarios.len()
        );
    }
    Ok(if report.passed() { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

/// `jsn run-all`: the supervised experiment sweep (same code and flags as
/// the `run_all` binary). Exit 0 on a clean sweep, 1 when jobs failed
/// (artifacts still written), 2 on configuration/IO errors.
fn cmd_run_all(args: &[String]) -> ExitCode {
    match just_say_no::mnm_experiments::sweep::cli_main(args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("jsn: {msg}");
            ExitCode::from(2)
        }
    }
}

fn parse_seed(text: &str) -> Result<u64, String> {
    let parsed = match text.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => text.parse(),
    };
    parsed.map_err(|_| format!("--seed {text}: expected a decimal or 0x-prefixed integer"))
}

fn cmd_coverage(args: &[String]) -> Result<(), String> {
    let app = args.first().ok_or("coverage needs an application name")?;
    let profile = lookup_app(app)?;
    let defaults = ["RMNM_4096_8", "SMNM_20x3", "TMNM_12x3", "CMNM_8_12", "HMNM4"];
    let labels: Vec<&str> = if args.len() > 1 {
        args[1..].iter().map(String::as_str).collect()
    } else {
        defaults.to_vec()
    };

    println!("{:<14}{:>10}", "config", "coverage");
    for label in labels {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut mnm = Mnm::new(&hier, MnmConfig::parse(label).map_err(|e| e.to_string())?);
        for instr in Program::new(profile.clone()).take(DEFAULT_INSTRUCTIONS as usize) {
            if let Some(addr) = instr.data_addr() {
                mnm.run_access(&mut hier, Access::load(addr));
            }
        }
        println!("{:<14}{:>9.1}%", label, mnm.stats().coverage() * 100.0);
    }
    Ok(())
}

/// `jsn serve`: bind the replay service and block until SIGTERM/ctrl-c.
/// Flags are parsed strictly — an unknown or malformed option is a
/// startup error, never a silently-ignored one, and so is a malformed
/// JSN_FAULT environment value.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use just_say_no::mnm_serve::server::{Endpoint, Server, ServerConfig};
    use just_say_no::mnm_serve::signal;

    // Validate the fault-injection env up front: a bad plan must stop
    // the daemon at startup, not lurk until the first injected fault.
    if let Some(plan) = just_say_no::mnm_experiments::faults::FaultPlan::from_env()? {
        eprintln!("fault injection armed: {}", plan.summary());
        just_say_no::mnm_experiments::faults::install(Some(plan));
    }

    let mut endpoint = Endpoint::Tcp("127.0.0.1:7227".to_string());
    let mut config = ServerConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--listen" => endpoint = Endpoint::parse(value("--listen")?)?,
            "--max-sessions" => {
                config.max_sessions = parse_flag_num(value("--max-sessions")?, "--max-sessions")?;
                if config.max_sessions == 0 {
                    return Err("--max-sessions must be at least 1".to_string());
                }
            }
            "--queue" => {
                config.queue_frames = parse_flag_num(value("--queue")?, "--queue")?;
                if config.queue_frames == 0 {
                    return Err("--queue must be at least 1 frame".to_string());
                }
            }
            "--max-frame" => {
                config.max_frame_bytes =
                    parse_flag_num::<u32>(value("--max-frame")?, "--max-frame")?;
            }
            "--stall-ms" => {
                config.stall_timeout = std::time::Duration::from_millis(parse_flag_num(
                    value("--stall-ms")?,
                    "--stall-ms",
                )?);
            }
            "--idle-ms" => {
                config.idle_timeout = std::time::Duration::from_millis(parse_flag_num(
                    value("--idle-ms")?,
                    "--idle-ms",
                )?);
            }
            "--resume-window-ms" => {
                config.resume_window = std::time::Duration::from_millis(parse_flag_num(
                    value("--resume-window-ms")?,
                    "--resume-window-ms",
                )?);
            }
            "--max-parked" => {
                config.max_parked = parse_flag_num(value("--max-parked")?, "--max-parked")?;
            }
            "--shed-watermark" => {
                config.shed_watermark =
                    Some(parse_flag_num(value("--shed-watermark")?, "--shed-watermark")?);
            }
            "--retry-after-ms" => {
                config.retry_after_ms =
                    parse_flag_num(value("--retry-after-ms")?, "--retry-after-ms")?;
            }
            "--drain-ms" => {
                config.drain = std::time::Duration::from_millis(parse_flag_num(
                    value("--drain-ms")?,
                    "--drain-ms",
                )?);
            }
            "--snapshot" => {
                config.snapshot_path = Some(std::path::PathBuf::from(value("--snapshot")?))
            }
            other => return Err(format!("unknown serve option `{other}` (try `jsn help`)")),
        }
    }

    signal::install();
    let server = Server::bind(endpoint.clone(), config)
        .map_err(|e| format!("cannot bind {endpoint}: {e}"))?;
    eprintln!(
        "jsn serve: listening on {} (scrape GET /metrics; SIGTERM drains)",
        server.local_endpoint()
    );
    server.run().map_err(|e| format!("server error: {e}"))
}

/// `jsn slam`: load-generate against a running server. Exit 0 only when
/// every session completed, no frame went unacknowledged, and (with
/// --verify) the served verdict histogram matches the offline replay.
fn cmd_slam(args: &[String]) -> ExitCode {
    match run_slam_cli(args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("jsn: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run_slam_cli(args: &[String]) -> Result<ExitCode, String> {
    use just_say_no::mnm_serve::server::Endpoint;
    use just_say_no::mnm_serve::slam::{format_report, run_slam, SlamOptions};

    let mut opts = SlamOptions::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--connect" => opts.endpoint = Endpoint::parse(value("--connect")?)?,
            "--sessions" => opts.sessions = parse_flag_num(value("--sessions")?, "--sessions")?,
            "--records" => opts.records = parse_flag_num(value("--records")?, "--records")?,
            "--frame" => opts.frame_records = parse_flag_num(value("--frame")?, "--frame")?,
            "--config" => opts.config = value("--config")?.clone(),
            "--seed" => opts.seed = parse_seed(value("--seed")?)?,
            "--window" => opts.window = parse_flag_num(value("--window")?, "--window")?,
            "--retries" => opts.retries = parse_flag_num(value("--retries")?, "--retries")?,
            "--backoff-ms" => {
                opts.backoff_ms = parse_flag_num(value("--backoff-ms")?, "--backoff-ms")?;
            }
            "--metrics" => opts.metrics = Some(Endpoint::parse(value("--metrics")?)?),
            "--verify" => opts.verify = true,
            other => return Err(format!("unknown slam option `{other}` (try `jsn help`)")),
        }
    }

    let report = run_slam(&opts)?;
    print!("{}", format_report(&report));
    let verify_failed = report.verify.as_ref().is_some_and(|v| !v.mismatches.is_empty());
    let ok = report.sessions_failed == 0 && report.dropped_frames() == 0 && !verify_failed;
    Ok(if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE })
}

/// `jsn chaos`: the deterministic network-fault proxy. Sits between
/// `jsn slam` and `jsn serve`; the plan comes from `--plan` or the
/// JSN_CHAOS env var (same strict grammar). With no plan it relays
/// clean — useful for measuring the proxy's own overhead.
fn cmd_chaos(args: &[String]) -> Result<(), String> {
    use just_say_no::mnm_serve::chaos::{ChaosOptions, ChaosPlan, ChaosProxy};
    use just_say_no::mnm_serve::server::Endpoint;
    use just_say_no::mnm_serve::signal;

    let mut listen = Endpoint::Tcp("127.0.0.1:7228".to_string());
    let mut upstream: Option<Endpoint> = None;
    let mut log_path: Option<std::path::PathBuf> = None;
    let mut plan_text: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--listen" => listen = Endpoint::parse(value("--listen")?)?,
            "--upstream" => upstream = Some(Endpoint::parse(value("--upstream")?)?),
            "--log" => log_path = Some(std::path::PathBuf::from(value("--log")?)),
            "--plan" => plan_text = Some(value("--plan")?.clone()),
            other => return Err(format!("unknown chaos option `{other}` (try `jsn help`)")),
        }
    }
    let upstream = upstream.ok_or("chaos needs `--upstream <endpoint>` (the real server)")?;
    let plan = match plan_text {
        Some(text) => ChaosPlan::parse(&text)?,
        None => ChaosPlan::from_env()?.unwrap_or(ChaosPlan::parse("")?),
    };

    signal::install();
    let proxy = ChaosProxy::bind(ChaosOptions {
        listen: listen.clone(),
        upstream,
        plan: plan.clone(),
        log_path,
    })
    .map_err(|e| format!("cannot bind {listen}: {e}"))?;
    let handle = proxy.handle();
    eprintln!("jsn chaos: listening on {} — {}", proxy.local_endpoint(), plan.summary());
    proxy.run().map_err(|e| format!("chaos proxy error: {e}"))?;
    eprintln!("jsn chaos: fired {} fault(s)", handle.fired().len());
    Ok(())
}

/// Strict numeric flag parsing: the whole value must parse.
fn parse_flag_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.replace('_', "").parse().map_err(|_| format!("{flag} {text}: expected an integer"))
}

fn cmd_shard(args: &[String]) -> ExitCode {
    match run_shard(args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("jsn: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// `jsn shard`: the epoch-synchronized N-core simulation. Environment
/// knobs `JSN_CORES`, `JSN_EPOCH`, and `JSN_SHARING` provide defaults
/// for `--cores`, `--epoch`, and `--sharing`.
fn run_shard(args: &[String]) -> Result<ExitCode, String> {
    use just_say_no::mnm_check::{run_multicore_scenario, run_multicore_suite, MulticoreScenario};
    use just_say_no::mnm_core::MnmConfig;
    use just_say_no::mnm_shard::{
        autotune_epoch, sharded_streams, Engine, ShardConfig, ShardedSim,
    };
    use just_say_no::trace_synth::sharing::SharingSpec;

    let env_num = |name: &str| std::env::var(name).ok().and_then(|v| v.parse::<u64>().ok());
    let cores = parse_n(args, "--cores", env_num("JSN_CORES").unwrap_or(4))? as usize;
    // `--epoch` accepts a length or `auto` (calibrate before the run).
    let epoch_arg =
        parse_opt(args, "--epoch").map(str::to_owned).or_else(|| std::env::var("JSN_EPOCH").ok());
    let epoch_auto = epoch_arg.as_deref() == Some("auto");
    let epoch = match epoch_arg.as_deref() {
        None | Some("auto") => 2048,
        Some(text) => parse_flag_num(text, "--epoch")?,
    };
    let sharing: f64 = match parse_opt(args, "--sharing") {
        Some(text) => text.parse().map_err(|_| format!("--sharing {text}: expected a ratio"))?,
        None => std::env::var("JSN_SHARING").ok().and_then(|v| v.parse().ok()).unwrap_or(0.25),
    };
    let label = parse_opt(args, "--config").unwrap_or("HMNM4");
    let seed = match parse_opt(args, "--seed") {
        Some(text) => parse_seed(text)?,
        None => 42,
    };
    let json = args.iter().any(|a| a == "--json");
    let single = args.iter().any(|a| a == "--single");
    let engine = match parse_opt(args, "--pipeline") {
        Some("on") | None if !single => Engine::Pipelined,
        Some("off") if !single => Engine::Barrier,
        None | Some("on") | Some("off") => Engine::Single,
        Some(other) => return Err(format!("--pipeline {other}: expected `on` or `off`")),
    };

    if args.iter().any(|a| a == "--check") {
        if epoch_auto {
            return Err(
                "--epoch auto is not supported with --check (scenarios pin the epoch)".to_owned()
            );
        }
        // Replay mode (a failure's reproducer line) or the full sweep.
        let failures = if let Some(w) = parse_opt(args, "--workload") {
            let workload = w.parse_workload()?;
            let scenario = MulticoreScenario {
                filter: label.to_owned(),
                workload,
                cores,
                sharing_ratio: sharing,
                seed,
                len: parse_n(args, "-n", 6_000)? as usize,
                epoch,
            };
            let report = run_multicore_scenario(&scenario)?;
            println!(
                "{}: {} accesses, {} invalidations, {} violation(s)",
                scenario.reproducer_line(),
                report.report.total_accesses(),
                report.report.cores.iter().map(|c| c.invalidations_received).sum::<u64>(),
                report.violations.len()
            );
            if report.passed() {
                Vec::new()
            } else {
                vec![report]
            }
        } else {
            let quick = args.iter().any(|a| a == "--quick");
            let (failures, total) = run_multicore_suite(quick)?;
            if failures.is_empty() {
                println!(
                    "shard check passed: {total} scenario(s) — every definite-miss verdict \
                     sound under cross-core stores, shared-L3 victims, and barrier races"
                );
            }
            failures
        };
        for failure in &failures {
            eprintln!("shard check FAILED: {}", failure.scenario.reproducer_line());
            for v in failure.violations.iter().take(5) {
                eprintln!("  {v}");
            }
        }
        return Ok(if failures.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE });
    }

    let n = parse_n(args, "-n", 200_000)? as usize;
    let mnm = MnmConfig::parse(label).map_err(|_| format!("unknown filter label '{label}'"))?;
    let mut config = ShardConfig::new(cores, mnm);
    config.epoch = epoch;
    let app = parse_opt(args, "--app").unwrap_or("181.mcf");
    let profile = lookup_app(app)?;
    let spec = SharingSpec {
        cores,
        sharing_ratio: sharing,
        shared_bytes: 256 * 1024,
        line_bytes: config.l3.block_bytes,
        seed,
    };
    let streams = sharded_streams(&profile, &spec, n, config.l1.block_bytes);
    if epoch_auto {
        // Calibrate, then run every engine with the chosen concrete epoch
        // (so `--epoch auto` preserves the engine-identity contract).
        let (chosen, points) = autotune_epoch(&config, &streams);
        config.epoch = chosen;
        eprintln!(
            "epoch auto: chose {chosen} ({})",
            points
                .iter()
                .map(|p| format!("{}:{:.2}", p.epoch, p.occupancy))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    let epoch = config.epoch;
    let build = || ShardedSim::new(config.clone(), streams.clone());

    if args.iter().any(|a| a == "--bench") {
        // Throughput benchmark: all three engines over identical streams,
        // and every report must be bit-identical (the race-freedom check).
        let run = |engine: Engine| {
            let mut sim = build();
            let t = std::time::Instant::now();
            let report = sim.run_engine(engine);
            (report, t.elapsed())
        };
        let (baseline, t_single) = run(Engine::Single);
        let (barrier, t_barrier) = run(Engine::Barrier);
        let (pipelined, t_pipelined) = run(Engine::Pipelined);
        if barrier != baseline || pipelined != baseline {
            eprintln!("shard bench FAILED: a parallel engine diverged from single-threaded replay");
            return Ok(ExitCode::FAILURE);
        }
        let total = baseline.total_accesses();
        let rate = |d: std::time::Duration| total as f64 / d.as_secs_f64() / 1e6;
        let speedup = |d: std::time::Duration| t_single.as_secs_f64() / d.as_secs_f64();
        println!(
            "shard bench: {cores} cores, {total} accesses, {app} ({label}, sharing {sharing}, \
             epoch {epoch})\n  \
             single:    {:>8.2} Maccs/s\n  \
             barrier:   {:>8.2} Maccs/s  (speedup {:.2}x)\n  \
             pipelined: {:>8.2} Maccs/s  (speedup {:.2}x, resolver occupancy {:.0}%)\n  \
             reports identical: yes",
            rate(t_single),
            rate(t_barrier),
            speedup(t_barrier),
            rate(t_pipelined),
            speedup(t_pipelined),
            100.0 * pipelined.timing.resolver_occupancy(),
        );
        return Ok(ExitCode::SUCCESS);
    }

    let mut sim = build();
    let report = sim.run_engine(engine);
    if json {
        print!("{}", report.to_json(label, cores, epoch, sharing));
    } else {
        let l3 = &report.l3.structures[0];
        println!(
            "shard: {cores} cores x {n} accesses of {app} ({label}, sharing {sharing}, \
             epoch {epoch}, {} epochs run, {} engine)",
            report.epochs, report.timing.engine
        );
        let t = &report.timing;
        println!(
            "  timing: {:.1} ms wall, {:.1} ms compute, {:.1} ms resolve, {:.1} ms stall, \
             resolver occupancy {:.0}%",
            t.wall_nanos as f64 / 1e6,
            t.compute_nanos as f64 / 1e6,
            t.resolve_nanos as f64 / 1e6,
            t.stall_nanos as f64 / 1e6,
            100.0 * t.resolver_occupancy()
        );
        println!(
            "  shared L3: {} probes ({} hits, {} misses), {} bypassed, {} fills, \
             {} evictions, {} writebacks",
            l3.probes, l3.hits, l3.misses, l3.bypasses, l3.fills, l3.evictions, l3.writebacks
        );
        for (i, c) in report.cores.iter().enumerate() {
            println!(
                "  core {i}: {} accesses, {} cycles, L3 req {} (hit {}, miss {}, bypass {}, \
                 rescue {}), invalidations in {}, coverage {:.1}%",
                c.accesses,
                c.cycles,
                c.l3_requests,
                c.l3_hits,
                c.l3_misses,
                c.l3_bypasses,
                c.stale_bypass_rescues,
                c.invalidations_received,
                100.0 * c.mnm.coverage()
            );
        }
        let unsound = report.total_unsound();
        println!("  unsound verdicts: {unsound}");
        if unsound > 0 {
            return Ok(ExitCode::FAILURE);
        }
    }
    Ok(ExitCode::SUCCESS)
}

/// Adapter so `--workload` parsing reads naturally above.
trait ParseWorkload {
    fn parse_workload(&self) -> Result<just_say_no::mnm_check::ShardWorkload, String>;
}

impl ParseWorkload for &str {
    fn parse_workload(&self) -> Result<just_say_no::mnm_check::ShardWorkload, String> {
        just_say_no::mnm_check::ShardWorkload::parse(self).ok_or_else(|| {
            format!(
                "unknown workload `{self}` (expected pingpong, falsesharing, evictionrace, \
                 or profile)"
            )
        })
    }
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let app = args.first().ok_or("trace needs an application name")?;
    let profile = lookup_app(app)?;
    let n = parse_n(args, "-n", DEFAULT_INSTRUCTIONS)?;
    let path = parse_opt(args, "-o").ok_or("trace needs `-o <file>`")?;

    let instrs: Vec<Instr> = Program::new(profile.clone()).take(n as usize).collect();
    let stats = characterize(instrs.iter().copied());
    let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
    let written = write_trace(std::io::BufWriter::new(file), instrs).map_err(|e| e.to_string())?;
    println!(
        "wrote {written} instructions of {app} to {path} ({} KB data / {} KB code footprint)",
        stats.data_footprint_bytes() / 1024,
        stats.code_footprint_bytes() / 1024
    );
    Ok(())
}
