//! # just-say-no
//!
//! A full reproduction of *"Just Say No: Benefits of Early Cache Miss
//! Determination"* (Memik, Reinman, Mangione-Smith, HPCA 2003) as a Rust
//! workspace. This facade crate re-exports the public API of every
//! sub-crate; see `README.md` for the architecture overview and
//! `DESIGN.md` for the experiment index.
//!
//! * [`mnm_core`] — the Mostly No Machine: RMNM, SMNM, TMNM, CMNM, HMNM
//!   filters and the machine that wires them to a hierarchy.
//! * [`cache_sim`] — the trace-driven multi-level cache hierarchy.
//! * [`trace_synth`] — 20 synthetic SPEC CPU2000-like workload profiles.
//! * [`ooo_model`] — the 8-way out-of-order timing model.
//! * [`power_model`] — the CACTI-style energy model.
//! * [`mnm_experiments`] — harness regenerating every table and figure.
//! * [`mnm_check`] — differential soundness checker (`jsn check`).
//! * [`mnm_serve`] — trace-stream replay service (`jsn serve` / `jsn slam`).
//! * [`mnm_shard`] — epoch-synchronized multi-core sharded simulation
//!   (`jsn shard`).
//!
//! ## Quickstart
//!
//! ```
//! use just_say_no::prelude::*;
//!
//! // The paper's 5-level hierarchy with the best hybrid MNM.
//! let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
//! let mut mnm = Mnm::new(&hier, MnmConfig::hmnm(4));
//!
//! // Drive a synthetic mcf-like workload through it.
//! let mut program = Program::new(profiles::by_name("181.mcf").unwrap());
//! for instr in (&mut program).take(50_000) {
//!     if let Some(addr) = instr.data_addr() {
//!         mnm.run_access(&mut hier, Access::load(addr));
//!     }
//! }
//! println!("coverage: {:.1}%", mnm.stats().coverage() * 100.0);
//! ```

pub use cache_sim;
pub use mnm_check;
pub use mnm_core;
pub use mnm_experiments;
pub use mnm_serve;
pub use mnm_shard;
pub use ooo_model;
pub use power_model;
pub use trace_synth;

/// The most common imports in one place.
pub mod prelude {
    pub use cache_sim::{
        Access, AccessKind, AccessResult, BypassSet, CacheConfig, Hierarchy, HierarchyConfig,
        LevelConfig,
    };
    pub use mnm_core::{perfect_bypass, Mnm, MnmConfig, MnmPlacement};
    pub use ooo_model::{simulate, CpuConfig, MemPolicy};
    pub use power_model::{account_hierarchy, mnm_total_energy, EnergyModel};
    pub use trace_synth::{profiles, AppProfile, Instr, InstrKind, Program};
}
