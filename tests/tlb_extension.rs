//! Tests for the §4.5 TLB-filtering extension: the filter's verdicts stay
//! sound against the real L2 TLB contents under arbitrary page streams,
//! and filtering never changes where translations come from. Deterministic
//! seeded sweeps (formerly proptest).

use cache_sim::{TlbConfig, TlbEvent, TwoLevelTlb};
use mnm_core::{MissFilter, TmnmConfig, TmnmFilter};

/// Minimal deterministic generator for test inputs (splitmix64).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pages(&mut self, max_len: u64) -> Vec<u64> {
        let n = 1 + self.next() % max_len;
        (0..n).map(|_| self.next() % 64).collect()
    }
}

fn tiny_tlb() -> TwoLevelTlb {
    TwoLevelTlb::new(TlbConfig::new("t1", 8, 2, 4096, 1), TlbConfig::new("t2", 32, 4, 4096, 3), 40)
}

/// Drive random page streams with the filter active; verify every
/// bypass against the actual L2 TLB before issuing it (the TLB's
/// debug_assert double-checks).
#[test]
fn tlb_filter_never_flags_resident_translations() {
    let mut gen = Gen(0x71B);
    for _ in 0..48 {
        let pages = gen.pages(500);
        let mut tlb = tiny_tlb();
        let mut filter = TmnmFilter::new(TmnmConfig::new(5, 1));
        let mut events: Vec<TlbEvent> = Vec::new();
        for &p in &pages {
            let addr = p * 4096 + 12;
            let bypass = filter.is_definite_miss(tlb.page_of(addr));
            if bypass {
                assert!(!tlb.l2_contains(addr), "filter flagged resident page {p}");
            }
            events.clear();
            tlb.translate(addr, bypass, &mut events);
            for ev in &events {
                match *ev {
                    TlbEvent::L2Placed(page) => filter.on_place(page),
                    TlbEvent::L2Replaced(page) => filter.on_replace(page),
                }
            }
        }
    }
}

/// Filtering is functionally invisible: the same stream produces the
/// same number of page walks and the same final L2 residency.
#[test]
fn tlb_filtering_never_changes_walk_count() {
    let mut gen = Gen(0x71B2);
    for _ in 0..48 {
        let pages = gen.pages(400);
        let mut plain = tiny_tlb();
        let mut filtered = tiny_tlb();
        let mut filter = TmnmFilter::new(TmnmConfig::new(5, 1));
        let mut ev = Vec::new();
        for &p in &pages {
            let addr = p * 4096;
            ev.clear();
            let a = plain.translate(addr, false, &mut ev);
            let bypass = filter.is_definite_miss(filtered.page_of(addr));
            ev.clear();
            let b = filtered.translate(addr, bypass, &mut ev);
            for e in &ev {
                match *e {
                    TlbEvent::L2Placed(page) => filter.on_place(page),
                    TlbEvent::L2Replaced(page) => filter.on_replace(page),
                }
            }
            assert_eq!(a.supply_level, b.supply_level);
            assert!(b.latency <= a.latency);
        }
        let (_, _, walks_a) = plain.stats();
        let (_, _, walks_b) = filtered.stats();
        assert_eq!(walks_a, walks_b);
        for &p in &pages {
            assert_eq!(plain.l2_contains(p * 4096), filtered.l2_contains(p * 4096));
        }
    }
}
