//! Property tests for the §4.5 TLB-filtering extension: the filter's
//! verdicts stay sound against the real L2 TLB contents under arbitrary
//! page streams, and filtering never changes where translations come from.

use cache_sim::{TlbConfig, TlbEvent, TwoLevelTlb};
use mnm_core::{MissFilter, TmnmConfig, TmnmFilter};
use proptest::prelude::*;

fn tiny_tlb() -> TwoLevelTlb {
    TwoLevelTlb::new(
        TlbConfig::new("t1", 8, 2, 4096, 1),
        TlbConfig::new("t2", 32, 4, 4096, 3),
        40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Drive random page streams with the filter active; verify every
    /// bypass against the actual L2 TLB before issuing it (the TLB's
    /// debug_assert double-checks).
    #[test]
    fn tlb_filter_never_flags_resident_translations(
        pages in proptest::collection::vec(0u64..64, 1..500),
    ) {
        let mut tlb = tiny_tlb();
        let mut filter = TmnmFilter::new(TmnmConfig::new(5, 1));
        let mut events: Vec<TlbEvent> = Vec::new();
        for &p in &pages {
            let addr = p * 4096 + 12;
            let bypass = filter.is_definite_miss(tlb.page_of(addr));
            if bypass {
                prop_assert!(
                    !tlb.l2_contains(addr),
                    "filter flagged resident page {p}"
                );
            }
            events.clear();
            tlb.translate(addr, bypass, &mut events);
            for ev in &events {
                match *ev {
                    TlbEvent::L2Placed(page) => filter.on_place(page),
                    TlbEvent::L2Replaced(page) => filter.on_replace(page),
                }
            }
        }
    }

    /// Filtering is functionally invisible: the same stream produces the
    /// same number of page walks and the same final L2 residency.
    #[test]
    fn tlb_filtering_never_changes_walk_count(
        pages in proptest::collection::vec(0u64..64, 1..400),
    ) {
        let mut plain = tiny_tlb();
        let mut filtered = tiny_tlb();
        let mut filter = TmnmFilter::new(TmnmConfig::new(5, 1));
        let mut ev = Vec::new();
        for &p in &pages {
            let addr = p * 4096;
            ev.clear();
            let a = plain.translate(addr, false, &mut ev);
            let bypass = filter.is_definite_miss(filtered.page_of(addr));
            ev.clear();
            let b = filtered.translate(addr, bypass, &mut ev);
            for e in &ev {
                match *e {
                    TlbEvent::L2Placed(page) => filter.on_place(page),
                    TlbEvent::L2Replaced(page) => filter.on_replace(page),
                }
            }
            prop_assert_eq!(a.supply_level, b.supply_level);
            prop_assert!(b.latency <= a.latency);
        }
        let (_, _, walks_a) = plain.stats();
        let (_, _, walks_b) = filtered.stats();
        prop_assert_eq!(walks_a, walks_b);
        for &p in &pages {
            prop_assert_eq!(plain.l2_contains(p * 4096), filtered.l2_contains(p * 4096));
        }
    }
}
