//! Trace persistence and replay: a persisted trace must drive the whole
//! stack to bit-identical results (the reproduction's stand-in for
//! SimpleScalar EIO traces).

use just_say_no::prelude::*;
use trace_synth::{read_trace, write_trace};

#[test]
fn persisted_trace_replays_identically() {
    let profile = profiles::by_name("183.equake").unwrap();
    let original: Vec<Instr> = Program::new(profile).take(30_000).collect();

    // Serialize and restore.
    let mut blob = Vec::new();
    write_trace(&mut blob, original.iter().copied()).unwrap();
    let restored = read_trace(blob.as_slice()).unwrap();
    assert_eq!(original, restored);

    // Drive both through identical simulators.
    let cpu = CpuConfig::paper_eight_way();
    let mut h1 = Hierarchy::new(HierarchyConfig::paper_five_level());
    let s1 = simulate(&cpu, &mut h1, MemPolicy::Baseline, original.into_iter(), u64::MAX);
    let mut h2 = Hierarchy::new(HierarchyConfig::paper_five_level());
    let s2 = simulate(&cpu, &mut h2, MemPolicy::Baseline, restored.into_iter(), u64::MAX);

    assert_eq!(s1, s2);
    assert_eq!(h1.stats(), h2.stats());
}

#[test]
fn trace_file_round_trip_on_disk() {
    let dir = std::env::temp_dir().join("jsn_trace_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("equake.jsnt");

    let profile = profiles::by_name("168.wupwise").unwrap();
    let original: Vec<Instr> = Program::new(profile).take(5_000).collect();
    {
        let file = std::fs::File::create(&path).unwrap();
        write_trace(std::io::BufWriter::new(file), original.iter().copied()).unwrap();
    }
    let restored = read_trace(std::fs::File::open(&path).unwrap()).unwrap();
    assert_eq!(original, restored);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn generator_is_stable_across_invocations() {
    // Profiles are versioned implicitly by their seed: the same profile
    // must produce the same stream in different processes/sessions, which
    // we approximate by checking a fingerprint of the first instructions.
    let profile = profiles::by_name("164.gzip").unwrap();
    let fingerprint: u64 = Program::new(profile)
        .take(10_000)
        .enumerate()
        .map(|(i, instr)| {
            let a = instr.data_addr().unwrap_or(instr.pc);
            a.wrapping_mul(i as u64 + 1)
        })
        .fold(0u64, u64::wrapping_add);
    // If this changes, persisted experiment results no longer correspond
    // to the bundled profiles — bump a trace-format note in DESIGN.md.
    let again: u64 = Program::new(profiles::by_name("164.gzip").unwrap())
        .take(10_000)
        .enumerate()
        .map(|(i, instr)| {
            let a = instr.data_addr().unwrap_or(instr.pc);
            a.wrapping_mul(i as u64 + 1)
        })
        .fold(0u64, u64::wrapping_add);
    assert_eq!(fingerprint, again);
}
