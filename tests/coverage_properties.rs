//! Coverage-metric properties: monotonicity relations the paper's Figures
//! 10–14 rest on, verified on identical traces through the public API.

use just_say_no::prelude::*;
use mnm_core::{Assignment, RmnmConfig, TechniqueConfig, TmnmConfig};

fn run_coverage(config: MnmConfig, seed_app: &str, n: usize) -> f64 {
    let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
    let mut mnm = Mnm::new(&hier, config);
    let profile = profiles::by_name(seed_app).unwrap();
    for instr in Program::new(profile).take(n) {
        if let Some(addr) = instr.data_addr() {
            mnm.run_access(&mut hier, Access::load(addr));
        }
    }
    mnm.stats().coverage()
}

/// Adding a sound component to a fixed technique stack can only help:
/// TMNM+RMNM covers at least as much as the same TMNM alone.
#[test]
fn adding_rmnm_never_reduces_coverage() {
    for app in ["164.gzip", "181.mcf", "300.twolf"] {
        let tmnm_only = MnmConfig::parse("TMNM_11x2").unwrap();
        let mut with_rmnm = tmnm_only.clone();
        with_rmnm.rmnm = Some(RmnmConfig::new(2048, 4));
        let alone = run_coverage(tmnm_only, app, 40_000);
        let combined = run_coverage(with_rmnm, app, 40_000);
        assert!(combined >= alone - 1e-12, "{app}: TMNM+RMNM {combined} < TMNM {alone}");
    }
}

/// Stacking a second technique per level likewise only helps.
#[test]
fn stacked_techniques_dominate_single_ones() {
    for app in ["175.vpr", "188.ammp"] {
        let single = MnmConfig::parse("TMNM_10x1").unwrap();
        let mut stacked = single.clone();
        stacked.assignments = vec![Assignment {
            levels: 2..=u8::MAX,
            techniques: vec![
                TechniqueConfig::Tmnm(TmnmConfig::new(10, 1)),
                TechniqueConfig::Cmnm(mnm_core::CmnmConfig::new(4, 10)),
            ],
        }];
        let lone = run_coverage(single, app, 40_000);
        let both = run_coverage(stacked, app, 40_000);
        assert!(both >= lone - 1e-12, "{app}: stacked {both} < single {lone}");
    }
}

/// More TMNM index bits never hurt on the same trace (a strictly finer
/// partition of the address space).
#[test]
fn wider_tmnm_tables_dominate() {
    for app in ["197.parser", "183.equake"] {
        let narrow = run_coverage(MnmConfig::parse("TMNM_8x1").unwrap(), app, 40_000);
        let wide = run_coverage(MnmConfig::parse("TMNM_14x1").unwrap(), app, 40_000);
        assert!(wide >= narrow - 0.02, "{app}: wider table lost coverage: {wide} vs {narrow}");
    }
}

/// Coverage is a fraction.
#[test]
fn coverage_stays_in_unit_interval() {
    for label in ["RMNM_128_1", "SMNM_10x2", "TMNM_12x3", "CMNM_8_12", "HMNM4"] {
        let c = run_coverage(MnmConfig::parse(label).unwrap(), "256.bzip2", 30_000);
        assert!((0.0..=1.0).contains(&c), "{label}: {c}");
    }
}

/// Per-slot coverage decomposes the total: the aggregate equals the
/// weighted mean of per-structure coverages.
#[test]
fn per_slot_coverage_decomposition() {
    let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
    let mut mnm = Mnm::new(&hier, MnmConfig::hmnm(3));
    let profile = profiles::by_name("176.gcc").unwrap();
    for instr in Program::new(profile).take(60_000) {
        if let Some(addr) = instr.data_addr() {
            mnm.run_access(&mut hier, Access::load(addr));
        }
    }
    let st = mnm.stats();
    let total: u64 = st.slots.iter().map(|s| s.bypassable_misses).sum();
    let identified: u64 = st.slots.iter().map(|s| s.identified_misses).sum();
    assert_eq!(st.bypassable_misses(), total);
    assert_eq!(st.identified_misses(), identified);
    assert!((st.coverage() - identified as f64 / total as f64).abs() < 1e-12);
    for s in &st.slots {
        assert!(s.identified_misses <= s.bypassable_misses);
    }
}
