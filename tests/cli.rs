//! Smoke tests of the `jsn` command-line tool.

use std::process::Command;

fn jsn(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_jsn")).args(args).output().expect("jsn runs")
}

#[test]
fn apps_lists_all_twenty() {
    let out = jsn(&["apps"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["164.gzip", "181.mcf", "301.apsi"] {
        assert!(text.contains(name), "missing {name}");
    }
    assert_eq!(text.lines().count(), 21, "header + 20 apps");
}

#[test]
fn run_reports_coverage() {
    let out = jsn(&["run", "164.gzip", "--config", "TMNM_10x1", "-n", "30000"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("coverage:"));
    assert!(text.contains("mean data access time"));
}

#[test]
fn run_cpu_mode_reports_cycles() {
    let out = jsn(&["run", "171.swim", "--config", "Baseline", "-n", "20000", "--cpu"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cycles:"));
    assert!(text.contains("IPC:"));
}

#[test]
fn unknown_app_fails_cleanly() {
    let out = jsn(&["run", "999.bogus"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown application"));
}

#[test]
fn bad_config_label_fails_cleanly() {
    let out = jsn(&["run", "164.gzip", "--config", "XMNM_1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unrecognized"));
}

#[test]
fn trace_round_trips_through_file() {
    let path = std::env::temp_dir().join("jsn_cli_trace.jsnt");
    let path_s = path.to_str().unwrap();
    let out = jsn(&["trace", "256.bzip2", "-o", path_s, "-n", "10000"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let restored =
        trace_synth::read_trace(std::fs::File::open(&path).unwrap()).expect("readable trace");
    assert_eq!(restored.len(), 10_000);
    std::fs::remove_file(&path).ok();
}

#[test]
fn help_prints_usage() {
    let out = jsn(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
