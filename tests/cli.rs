//! Smoke tests of the `jsn` command-line tool.

use std::process::Command;

fn jsn(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_jsn")).args(args).output().expect("jsn runs")
}

#[test]
fn apps_lists_all_twenty() {
    let out = jsn(&["apps"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["164.gzip", "181.mcf", "301.apsi"] {
        assert!(text.contains(name), "missing {name}");
    }
    assert_eq!(text.lines().count(), 21, "header + 20 apps");
}

#[test]
fn run_reports_coverage() {
    let out = jsn(&["run", "164.gzip", "--config", "TMNM_10x1", "-n", "30000"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("coverage:"));
    assert!(text.contains("mean data access time"));
}

#[test]
fn run_cpu_mode_reports_cycles() {
    let out = jsn(&["run", "171.swim", "--config", "Baseline", "-n", "20000", "--cpu"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cycles:"));
    assert!(text.contains("IPC:"));
}

#[test]
fn unknown_app_fails_cleanly() {
    let out = jsn(&["run", "999.bogus"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown application"));
}

#[test]
fn bad_config_label_fails_cleanly() {
    let out = jsn(&["run", "164.gzip", "--config", "XMNM_1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unrecognized"));
}

#[test]
fn trace_round_trips_through_file() {
    let path = std::env::temp_dir().join("jsn_cli_trace.jsnt");
    let path_s = path.to_str().unwrap();
    let out = jsn(&["trace", "256.bzip2", "-o", path_s, "-n", "10000"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let restored =
        trace_synth::read_trace(std::fs::File::open(&path).unwrap()).expect("readable trace");
    assert_eq!(restored.len(), 10_000);
    std::fs::remove_file(&path).ok();
}

#[test]
fn help_prints_usage() {
    let out = jsn(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn run_json_emits_parseable_counters() {
    use just_say_no::mnm_experiments::json::Json;
    let out = jsn(&["run", "164.gzip", "--config", "TMNM_10x1", "-n", "30000", "--json"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let doc = Json::parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("jsn-run/v1"));
    assert_eq!(doc.get("app").and_then(Json::as_str), Some("164.gzip"));
    let hier = doc.get("hierarchy").expect("hierarchy object");
    assert!(hier.get("accesses").and_then(Json::as_f64).unwrap() > 0.0);
    assert!(doc.get("mnm").and_then(|m| m.get("coverage")).is_some());
    assert!(doc.get("cpu").is_none(), "functional run has no cpu section");
}

#[test]
fn run_json_timed_includes_cpu() {
    use just_say_no::mnm_experiments::json::Json;
    let out = jsn(&["run", "171.swim", "--config", "Baseline", "-n", "20000", "--cpu", "--json"]);
    assert!(out.status.success());
    let doc = Json::parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    let cpu = doc.get("cpu").expect("cpu section");
    assert_eq!(cpu.get("instructions").and_then(Json::as_f64), Some(20000.0));
    assert!(cpu.get("cycles").and_then(Json::as_f64).unwrap() > 0.0);
}

/// `jsn diff` passes identical documents, flags an injected regression
/// with a nonzero exit, and honours `--tol`.
#[test]
fn diff_flags_regressions_and_passes_identity() {
    use just_say_no::mnm_experiments::{Json, Table};
    let dir = std::env::temp_dir();
    let a_path = dir.join("jsn_diff_a.json");
    let b_path = dir.join("jsn_diff_b.json");

    let mut t = Table::new("Figure X: smoke [%]", "app", &["HMNM4".to_owned()]);
    t.push_row("164.gzip", vec![88.25]);
    let doc = |t: &Table| {
        Json::obj(vec![("schema", Json::str("jsn-table/v1")), ("table", t.to_json())])
            .render_pretty()
    };
    std::fs::write(&a_path, doc(&t)).unwrap();
    std::fs::write(&b_path, doc(&t)).unwrap();

    let identical = jsn(&["diff", a_path.to_str().unwrap(), b_path.to_str().unwrap()]);
    assert!(identical.status.success(), "{}", String::from_utf8_lossy(&identical.stdout));

    // Inject a regression.
    t.rows[0].1[0] = 80.0;
    std::fs::write(&b_path, doc(&t)).unwrap();
    let regressed = jsn(&["diff", a_path.to_str().unwrap(), b_path.to_str().unwrap()]);
    assert!(!regressed.status.success(), "regression must exit nonzero");
    let text = String::from_utf8_lossy(&regressed.stdout);
    assert!(text.contains("164.gzip"), "names the row: {text}");
    assert!(text.contains("88.25 -> 80"), "shows both values: {text}");

    // A huge tolerance lets the same delta pass.
    let tolerant =
        jsn(&["diff", a_path.to_str().unwrap(), b_path.to_str().unwrap(), "--tol", "10"]);
    assert!(tolerant.status.success());

    std::fs::remove_file(&a_path).ok();
    std::fs::remove_file(&b_path).ok();
}

#[test]
fn diff_rejects_missing_and_malformed_input() {
    let out = jsn(&["diff", "/nonexistent/a.json", "/nonexistent/b.json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    let out = jsn(&["diff", "only_one.json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("two JSON files"));
}
