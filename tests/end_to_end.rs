//! Cross-crate end-to-end tests: workload → hierarchy → MNM → OoO core →
//! energy model, checking the orderings the paper's evaluation relies on.

use just_say_no::prelude::*;

const N: u64 = 40_000;

fn run_cycles(policy_name: &str) -> (u64, Option<f64>) {
    let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
    let cpu = CpuConfig::paper_eight_way();
    let profile = profiles::by_name("300.twolf").unwrap();
    match policy_name {
        "baseline" => {
            let s = simulate(&cpu, &mut hier, MemPolicy::Baseline, Program::new(profile), N);
            (s.cycles, None)
        }
        "perfect" => {
            let s = simulate(&cpu, &mut hier, MemPolicy::Perfect, Program::new(profile), N);
            (s.cycles, None)
        }
        label => {
            let mut mnm = Mnm::new(&hier, MnmConfig::parse(label).unwrap());
            let s = simulate(&cpu, &mut hier, MemPolicy::Mnm(&mut mnm), Program::new(profile), N);
            (s.cycles, Some(mnm.stats().coverage()))
        }
    }
}

#[test]
fn figure15_ordering_holds_end_to_end() {
    let (base, _) = run_cycles("baseline");
    let (hmnm4, cov4) = run_cycles("HMNM4");
    let (hmnm1, _) = run_cycles("HMNM1");
    let (perfect, _) = run_cycles("perfect");

    assert!(hmnm4 <= base, "a parallel MNM never slows execution");
    assert!(hmnm1 <= base);
    assert!(perfect <= hmnm4, "the oracle bounds every real technique");
    assert!(cov4.unwrap() > 0.0);
}

#[test]
fn simulation_is_deterministic() {
    let a = run_cycles("HMNM2");
    let b = run_cycles("HMNM2");
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}

#[test]
fn serial_mnm_trades_latency_for_energy() {
    // Same technique, both placements: serial pays delay on L1 misses,
    // parallel pays more MNM query energy.
    let profile = profiles::by_name("175.vpr").unwrap();
    let model = EnergyModel::default();

    let mut results = Vec::new();
    for placement in [MnmPlacement::Parallel, MnmPlacement::Serial] {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut mnm =
            Mnm::new(&hier, MnmConfig::parse("TMNM_12x3").unwrap().with_placement(placement));
        let mut latency_sum = 0u64;
        for instr in Program::new(profile.clone()).take(N as usize) {
            if let Some(addr) = instr.data_addr() {
                let r = mnm.run_access(&mut hier, Access::load(addr));
                latency_sum += mnm.adjusted_latency(&r);
            }
        }
        let l1_misses: u64 = hier
            .structures()
            .iter()
            .filter(|s| s.level == 1)
            .map(|s| hier.stats().structures[s.id.index()].misses)
            .sum();
        let energy = mnm_total_energy(&mnm, &model, l1_misses);
        results.push((latency_sum, energy.query_nj));
    }
    let (parallel, serial) = (results[0], results[1]);
    assert!(serial.0 > parallel.0, "serial placement adds delay: {serial:?} vs {parallel:?}");
    assert!(serial.1 < parallel.1, "serial placement queries less often");
}

#[test]
fn energy_accounting_covers_all_structures() {
    let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
    let profile = profiles::by_name("171.swim").unwrap();
    for instr in Program::new(profile).take(20_000) {
        if let Some(addr) = instr.data_addr() {
            hier.access(Access::load(addr), &BypassSet::none());
        }
    }
    let breakdown = account_hierarchy(&hier, &EnergyModel::default());
    assert_eq!(breakdown.structures.len(), 7);
    // The data path was exercised: dl1 energy positive, il1 untouched.
    let by_name = |n: &str| breakdown.structures.iter().find(|s| s.name == n).unwrap();
    assert!(by_name("dl1").probe_nj > 0.0);
    assert_eq!(by_name("il1").probe_nj, 0.0);
    assert!(breakdown.miss_fraction() > 0.0 && breakdown.miss_fraction() < 1.0);
}

#[test]
fn all_twenty_profiles_run_through_the_full_stack() {
    // Smoke coverage of every bundled profile through core + MNM.
    let cpu = CpuConfig::paper_eight_way();
    for profile in profiles::all() {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut mnm = Mnm::new(&hier, MnmConfig::hmnm(1));
        let s = simulate(
            &cpu,
            &mut hier,
            MemPolicy::Mnm(&mut mnm),
            Program::new(profile.clone()),
            5_000,
        );
        assert_eq!(s.instructions, 5_000, "{}", profile.name);
        assert!(s.cycles > 0, "{}", profile.name);
    }
}

#[test]
fn mnm_delay_only_hurts_serial_placement() {
    let profile = profiles::by_name("164.gzip").unwrap();
    let cycles_with_delay = |placement: MnmPlacement, delay: u64| {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let cfg =
            MnmConfig::parse("TMNM_10x1").unwrap().with_placement(placement).with_delay(delay);
        let mut mnm = Mnm::new(&hier, cfg);
        let cpu = CpuConfig::paper_eight_way();
        simulate(&cpu, &mut hier, MemPolicy::Mnm(&mut mnm), Program::new(profile.clone()), 20_000)
            .cycles
    };
    assert_eq!(
        cycles_with_delay(MnmPlacement::Parallel, 2),
        cycles_with_delay(MnmPlacement::Parallel, 8),
        "a parallel MNM hides its delay"
    );
    assert!(
        cycles_with_delay(MnmPlacement::Serial, 8) > cycles_with_delay(MnmPlacement::Serial, 1),
        "a serial MNM pays its delay on every L1 miss"
    );
}
