//! The paper's central correctness property (§3.6): an MNM **never**
//! incorrectly indicates a miss. Property-based tests drive every
//! technique with randomized traces over aliasing-heavy address spaces;
//! the hierarchy's debug assertions verify every single bypass against
//! actual cache contents, and we re-verify through the public API here.

use just_say_no::prelude::*;
use proptest::prelude::*;

fn tiny_hierarchy() -> Hierarchy {
    Hierarchy::new(HierarchyConfig {
        levels: vec![
            LevelConfig::Split {
                instr: CacheConfig::new("il1", 128, 1, 32, 1),
                data: CacheConfig::new("dl1", 128, 1, 32, 1),
            },
            LevelConfig::Split {
                instr: CacheConfig::new("il2", 512, 2, 32, 3),
                data: CacheConfig::new("dl2", 512, 2, 32, 3),
            },
            LevelConfig::Unified(CacheConfig::new("ul3", 2048, 2, 64, 9)),
        ],
        memory_latency: 60,
        inclusive: false,
    })
}

/// A randomized access: address within a tight (conflict-heavy) arena plus
/// a kind selector.
fn accesses(max_len: usize) -> impl Strategy<Value = Vec<(u32, u8)>> {
    proptest::collection::vec((0u32..0x8000, 0u8..3), 1..max_len)
}

fn config_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("RMNM_128_1".to_owned()),
        Just("RMNM_512_2".to_owned()),
        Just("SMNM_10x2".to_owned()),
        Just("SMNM_13x2".to_owned()),
        Just("TMNM_10x1".to_owned()),
        Just("TMNM_12x3".to_owned()),
        Just("CMNM_2_9".to_owned()),
        Just("CMNM_8_12".to_owned()),
        Just("HMNM1".to_owned()),
        Just("HMNM4".to_owned()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every flagged structure is genuinely missing the block, for every
    /// technique, on every prefix of every random trace.
    #[test]
    fn no_technique_ever_flags_a_resident_block(
        trace in accesses(600),
        config in config_strategy(),
    ) {
        let mut hier = tiny_hierarchy();
        let mut mnm = Mnm::new(&hier, MnmConfig::parse(&config).unwrap());
        for &(raw, kind) in &trace {
            let addr = u64::from(raw) & !0x3;
            let access = match kind {
                0 => Access::load(addr),
                1 => Access::store(addr),
                _ => Access::fetch(addr),
            };
            // Manually verify the query against cache contents before
            // letting the hierarchy (whose debug_asserts double-check)
            // consume the bypass set.
            let bypass = mnm.query(access);
            for info in hier.structures() {
                if bypass.contains(info.id) {
                    prop_assert!(
                        !hier.contains(info.id, addr),
                        "{} flagged {} which holds {addr:#x}",
                        config,
                        info.name
                    );
                }
            }
            mnm.run_access(&mut hier, access);
        }
    }

    /// Bypassing never changes where data is found or what gets cached:
    /// an MNM-guarded run supplies every access from the same level as an
    /// unguarded run of the same trace.
    #[test]
    fn bypassing_is_functionally_invisible(
        trace in accesses(400),
        config in config_strategy(),
    ) {
        let mut plain = tiny_hierarchy();
        let mut guarded = tiny_hierarchy();
        let mut mnm = Mnm::new(&guarded, MnmConfig::parse(&config).unwrap());
        for &(raw, kind) in &trace {
            let addr = u64::from(raw) & !0x3;
            let access = match kind {
                0 => Access::load(addr),
                1 => Access::store(addr),
                _ => Access::fetch(addr),
            };
            let a = plain.access(access, &BypassSet::none());
            let b = mnm.run_access(&mut guarded, access);
            prop_assert_eq!(a.supply_level, b.supply_level, "divergence at {:#x}", addr);
            prop_assert!(b.latency <= a.latency, "a bypass may only shorten the walk");
        }
        prop_assert_eq!(plain.stats().supplies_by_level.clone(),
                        guarded.stats().supplies_by_level.clone());
    }

    /// The perfect oracle is sound and complete: after bypassing, the only
    /// probed misses left are L1 misses.
    #[test]
    fn perfect_oracle_is_exact(trace in accesses(400)) {
        let mut hier = tiny_hierarchy();
        for &(raw, kind) in &trace {
            let addr = u64::from(raw) & !0x3;
            let access = match kind {
                0 => Access::load(addr),
                1 => Access::store(addr),
                _ => Access::fetch(addr),
            };
            let bypass = perfect_bypass(&hier, access);
            let r = hier.access(access, &bypass);
            let non_l1_misses = r
                .probes
                .iter()
                .filter(|p| p.level > 1 && p.outcome == cache_sim::ProbeOutcome::Miss)
                .count();
            prop_assert_eq!(non_l1_misses, 0, "perfect bypass left a probed miss");
        }
    }

    /// Flushing both sides resets to a consistent (all-cold) state.
    #[test]
    fn flush_restores_consistency(trace in accesses(200)) {
        let mut hier = tiny_hierarchy();
        let mut mnm = Mnm::new(&hier, MnmConfig::hmnm(2));
        for &(raw, _) in &trace {
            mnm.run_access(&mut hier, Access::load(u64::from(raw)));
        }
        hier.flush();
        mnm.flush();
        // Every non-L1 level is flagged cold again, and the run stays sound.
        for &(raw, _) in &trace {
            mnm.run_access(&mut hier, Access::load(u64::from(raw)));
        }
        prop_assert!(mnm.stats().accesses as usize == trace.len());
    }
}
