//! The paper's central correctness property (§3.6): an MNM **never**
//! incorrectly indicates a miss. Deterministic seeded sweeps (formerly
//! proptest) drive every technique with randomized traces over
//! aliasing-heavy address spaces; the hierarchy's debug assertions verify
//! every single bypass against actual cache contents, and we re-verify
//! through the public API here.

use cache_sim::{ProbeOutcome, ReplayScratch};
use just_say_no::prelude::*;

const CONFIGS: [&str; 10] = [
    "RMNM_128_1",
    "RMNM_512_2",
    "SMNM_10x2",
    "SMNM_13x2",
    "TMNM_10x1",
    "TMNM_12x3",
    "CMNM_2_9",
    "CMNM_8_12",
    "HMNM1",
    "HMNM4",
];

/// Minimal deterministic generator for test inputs (splitmix64).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A random access within a tight (conflict-heavy) arena.
    fn access(&mut self) -> Access {
        let addr = (self.next() % 0x8000) & !0x3;
        match self.next() % 3 {
            0 => Access::load(addr),
            1 => Access::store(addr),
            _ => Access::fetch(addr),
        }
    }

    fn trace(&mut self, max_len: u64) -> Vec<Access> {
        let n = 1 + self.next() % max_len;
        (0..n).map(|_| self.access()).collect()
    }
}

fn tiny_hierarchy() -> Hierarchy {
    Hierarchy::new(HierarchyConfig {
        levels: vec![
            LevelConfig::Split {
                instr: CacheConfig::new("il1", 128, 1, 32, 1),
                data: CacheConfig::new("dl1", 128, 1, 32, 1),
            },
            LevelConfig::Split {
                instr: CacheConfig::new("il2", 512, 2, 32, 3),
                data: CacheConfig::new("dl2", 512, 2, 32, 3),
            },
            LevelConfig::Unified(CacheConfig::new("ul3", 2048, 2, 64, 9)),
        ],
        memory_latency: 60,
        inclusive: false,
    })
}

/// Every flagged structure is genuinely missing the block, for every
/// technique, on every prefix of every random trace.
#[test]
fn no_technique_ever_flags_a_resident_block() {
    let mut gen = Gen(0x50124D);
    for case in 0..48u64 {
        let config = CONFIGS[(case % CONFIGS.len() as u64) as usize];
        let trace = gen.trace(600);
        let mut hier = tiny_hierarchy();
        let mut mnm = Mnm::new(&hier, MnmConfig::parse(config).unwrap());
        for &access in &trace {
            // Manually verify the query against cache contents before
            // letting the hierarchy (whose debug_asserts double-check)
            // consume the bypass set.
            let bypass = mnm.query(access);
            for info in hier.structures() {
                if bypass.contains(info.id) {
                    assert!(
                        !hier.contains(info.id, access.addr),
                        "{} flagged {} which holds {:#x}",
                        config,
                        info.name,
                        access.addr
                    );
                }
            }
            mnm.run_access(&mut hier, access);
        }
    }
}

/// Bypassing never changes where data is found or what gets cached:
/// an MNM-guarded run supplies every access from the same level as an
/// unguarded run of the same trace. This is the "sound bypass sets are
/// functionally invisible" property: any sound `BypassSet` only removes
/// probes of structures that would have missed anyway.
#[test]
fn bypassing_is_functionally_invisible() {
    let mut gen = Gen(0x14715);
    for case in 0..48u64 {
        let config = CONFIGS[(case % CONFIGS.len() as u64) as usize];
        let trace = gen.trace(400);
        let mut plain = tiny_hierarchy();
        let mut guarded = tiny_hierarchy();
        let mut mnm = Mnm::new(&guarded, MnmConfig::parse(config).unwrap());
        for &access in &trace {
            let a = plain.access(access, &BypassSet::none());
            let b = mnm.run_access(&mut guarded, access);
            assert_eq!(a.supply_level, b.supply_level, "divergence at {:#x}", access.addr);
            assert!(b.latency <= a.latency, "a bypass may only shorten the walk");
        }
        assert_eq!(plain.stats().supplies_by_level, guarded.stats().supplies_by_level);
    }
}

/// The perfect oracle is sound and complete: after bypassing, the only
/// probed misses left are L1 misses.
#[test]
fn perfect_oracle_is_exact() {
    let mut gen = Gen(0x0124C1E);
    for _ in 0..48 {
        let trace = gen.trace(400);
        let mut hier = tiny_hierarchy();
        let mut scratch = ReplayScratch::new();
        for &access in &trace {
            let bypass = perfect_bypass(&hier, access);
            hier.access_with_events(access, &bypass, &mut scratch);
            let non_l1_misses = scratch
                .probes()
                .iter()
                .filter(|p| p.level > 1 && p.outcome == ProbeOutcome::Miss)
                .count();
            assert_eq!(non_l1_misses, 0, "perfect bypass left a probed miss");
        }
    }
}

/// Flushing both sides resets to a consistent (all-cold) state.
#[test]
fn flush_restores_consistency() {
    let mut gen = Gen(0xF1054);
    for _ in 0..48 {
        let trace = gen.trace(200);
        let mut hier = tiny_hierarchy();
        let mut mnm = Mnm::new(&hier, MnmConfig::hmnm(2));
        for &access in &trace {
            mnm.run_access(&mut hier, Access::load(access.addr));
        }
        hier.flush();
        mnm.flush();
        // Every non-L1 level is flagged cold again, and the run stays sound.
        for &access in &trace {
            mnm.run_access(&mut hier, Access::load(access.addr));
        }
        assert_eq!(mnm.stats().accesses as usize, trace.len());
    }
}
