//! Multi-core scaling harness for the sharded simulation: sweeps core
//! counts, running each configuration through all three engines —
//! single-threaded reference, stop-the-world barrier baseline, and the
//! pipelined engine — over identical streams. Emits
//! `BENCH_shard_scaling.json` and enforces the committed floors in
//! `shard_floors.json`.
//!
//! Three gates, in increasing host-sensitivity:
//!
//! 1. **Correctness** (always on): all three reports must be
//!    bit-identical at every core count — the workspace's race-freedom
//!    proof — and no run may produce an unsound verdict.
//! 2. **Floors** (skipped when `JSN_BENCH_NO_FLOORS=1`): pipelined
//!    throughput and pipelined-over-single speedup must clear the
//!    committed per-core-count minimums, but only for configurations the
//!    host can actually run in parallel (simulated cores ≤ host cores).
//! 3. **Pipeline win** (hosts with ≥ 4 cores only): at 4+ simulated
//!    cores that fit the host, the pipelined engine must beat the
//!    barrier baseline in the same run — overlap of compute with
//!    resolution is the whole point of the engine, and losing to the
//!    baseline means the overlap regressed.

use std::time::Instant;

use mnm_core::MnmConfig;
use mnm_experiments::json::Json;
use mnm_shard::{sharded_streams, Engine, ShardConfig, ShardedSim};
use trace_synth::{profiles, SharingSpec};

const PROFILE: &str = "181.mcf";
const FILTER: &str = "HMNM4";
const SHARING: f64 = 0.25;
const EPOCH: usize = 2048;

/// Committed per-core-count floors (see the `note` field inside).
const FLOORS: &str = include_str!("../../shard_floors.json");

fn accesses_per_core() -> usize {
    std::env::var("JSN_BENCH_N").ok().and_then(|v| v.parse().ok()).unwrap_or(200_000)
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn build_sim(cores: usize, n: usize) -> ShardedSim {
    let profile = profiles::by_name(PROFILE).expect("profile");
    let config = ShardConfig {
        epoch: EPOCH,
        ..ShardConfig::new(cores, MnmConfig::parse(FILTER).expect("filter label"))
    };
    let spec = SharingSpec {
        sharing_ratio: SHARING,
        line_bytes: config.l3.block_bytes,
        seed: 42,
        ..SharingSpec::new(cores)
    };
    let streams = sharded_streams(&profile, &spec, n, config.l1.block_bytes);
    ShardedSim::new(config, streams)
}

struct Point {
    cores: usize,
    accesses: u64,
    single_nanos: u64,
    barrier_nanos: u64,
    pipelined_nanos: u64,
    resolver_occupancy: f64,
    /// Whether the host could run this configuration truly in parallel
    /// (simulated cores ≤ host cores) — floors only apply when it could.
    parallel_capable: bool,
}

impl Point {
    fn maccs(&self, nanos: u64) -> f64 {
        self.accesses as f64 * 1e3 / nanos as f64
    }
    fn barrier_speedup(&self) -> f64 {
        self.single_nanos as f64 / self.barrier_nanos as f64
    }
    fn pipelined_speedup(&self) -> f64 {
        self.single_nanos as f64 / self.pipelined_nanos as f64
    }
    fn to_json(&self) -> Json {
        let round2 = |x: f64| (x * 100.0).round() / 100.0;
        Json::obj(vec![
            ("cores", Json::num(self.cores as f64)),
            ("accesses", Json::num(self.accesses as f64)),
            ("parallel_capable", Json::num(if self.parallel_capable { 1.0 } else { 0.0 })),
            ("single_nanos", Json::num(self.single_nanos as f64)),
            ("barrier_nanos", Json::num(self.barrier_nanos as f64)),
            ("pipelined_nanos", Json::num(self.pipelined_nanos as f64)),
            ("single_maccs_per_sec", Json::num(round2(self.maccs(self.single_nanos)))),
            ("barrier_maccs_per_sec", Json::num(round2(self.maccs(self.barrier_nanos)))),
            ("pipelined_maccs_per_sec", Json::num(round2(self.maccs(self.pipelined_nanos)))),
            ("barrier_speedup", Json::num(round2(self.barrier_speedup()))),
            ("pipelined_speedup", Json::num(round2(self.pipelined_speedup()))),
            ("resolver_occupancy", Json::num(round2(self.resolver_occupancy))),
        ])
    }
}

/// Check the floors for every parallel-capable point. Returns failure
/// messages (empty = pass).
fn check_floors(points: &[Point]) -> Vec<String> {
    let doc = Json::parse(FLOORS).expect("shard_floors.json must parse");
    let Some(floors) = doc.get("floors") else {
        return vec!["shard_floors.json has no `floors` object".to_owned()];
    };
    let mut failures = Vec::new();
    for p in points.iter().filter(|p| p.parallel_capable) {
        let Some(floor) = floors.get(&p.cores.to_string()) else {
            failures.push(format!("no committed floor for {} cores", p.cores));
            continue;
        };
        let maccs_min = floor.get("pipelined_maccs_min").and_then(Json::as_f64).unwrap_or(0.0);
        let speedup_min = floor.get("pipelined_speedup_min").and_then(Json::as_f64).unwrap_or(0.0);
        let maccs = p.maccs(p.pipelined_nanos);
        if maccs < maccs_min {
            failures.push(format!(
                "{} cores: pipelined {:.2} Maccs/s below floor {:.2}",
                p.cores, maccs, maccs_min
            ));
        }
        if p.pipelined_speedup() < speedup_min {
            failures.push(format!(
                "{} cores: pipelined speedup {:.2}x below floor {:.2}x",
                p.cores,
                p.pipelined_speedup(),
                speedup_min
            ));
        }
    }
    failures
}

fn main() {
    let n = accesses_per_core();
    let host = host_cores();
    // Record points up to at least 4 cores even on smaller hosts (the
    // committed artifact should show the sweep shape everywhere); floors
    // only gate the parallel-capable subset.
    let cap = host.max(4);
    let sweep: Vec<usize> = [1usize, 2, 4, 8, 16].into_iter().filter(|&c| c <= cap).collect();
    println!(
        "shard scaling: {PROFILE} / {FILTER}, sharing {SHARING}, epoch {EPOCH}, \
         {n} accesses/core, host has {host} cores"
    );

    let mut points = Vec::new();
    for &cores in &sweep {
        let run = |engine: Engine| {
            let mut sim = build_sim(cores, n);
            let t = Instant::now();
            let report = sim.run_engine(engine);
            (report, t.elapsed().as_nanos() as u64)
        };
        let (single, single_nanos) = run(Engine::Single);
        let (barrier, barrier_nanos) = run(Engine::Barrier);
        let (pipelined, pipelined_nanos) = run(Engine::Pipelined);

        assert_eq!(
            single, barrier,
            "barrier and single-threaded reports diverged at {cores} cores"
        );
        assert_eq!(
            single, pipelined,
            "pipelined and single-threaded reports diverged at {cores} cores"
        );
        assert_eq!(pipelined.total_unsound(), 0, "unsound verdicts at {cores} cores");

        let point = Point {
            cores,
            accesses: pipelined.total_accesses(),
            single_nanos,
            barrier_nanos,
            pipelined_nanos,
            resolver_occupancy: pipelined.timing.resolver_occupancy(),
            parallel_capable: cores <= host,
        };
        println!(
            "  {:>2} cores: single {:>7.2} | barrier {:>7.2} ({:.2}x) | pipelined {:>7.2} \
             Maccs/s ({:.2}x, resolver {:.0}%){}",
            cores,
            point.maccs(point.single_nanos),
            point.maccs(point.barrier_nanos),
            point.barrier_speedup(),
            point.maccs(point.pipelined_nanos),
            point.pipelined_speedup(),
            100.0 * point.resolver_occupancy,
            if point.parallel_capable { "" } else { "  [host too small: floors skipped]" },
        );

        // The pipeline-win gate: on hosts with real parallelism, overlap
        // must beat stop-the-world in the same run.
        if host >= 4 && cores >= 4 && point.parallel_capable {
            assert!(
                point.pipelined_speedup() > point.barrier_speedup(),
                "pipelined speedup {:.2}x did not beat barrier {:.2}x at {cores} cores",
                point.pipelined_speedup(),
                point.barrier_speedup()
            );
        }
        points.push(point);
    }

    let doc = Json::obj(vec![
        ("benchmark", Json::str("shard_scaling")),
        ("profile", Json::str(PROFILE)),
        ("filter", Json::str(FILTER)),
        ("epoch", Json::num(EPOCH as f64)),
        ("host_cores", Json::num(host as f64)),
        ("points", Json::Arr(points.iter().map(Point::to_json).collect())),
    ])
    .render_pretty();
    std::fs::write("BENCH_shard_scaling.json", &doc).expect("write BENCH_shard_scaling.json");
    println!(
        "wrote BENCH_shard_scaling.json ({} configurations, all reports identical)",
        points.len()
    );

    if std::env::var_os("JSN_BENCH_NO_FLOORS").is_some() {
        println!("JSN_BENCH_NO_FLOORS set: skipping shard floor enforcement");
        return;
    }
    let failures = check_floors(&points);
    if failures.is_empty() {
        let enforced = points.iter().filter(|p| p.parallel_capable).count();
        println!("all {enforced} parallel-capable configuration(s) above their committed floors");
    } else {
        for f in &failures {
            eprintln!("shard floor FAILED: {f}");
        }
        std::process::exit(1);
    }
}
