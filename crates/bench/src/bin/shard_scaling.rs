//! Multi-core scaling harness for the sharded simulation: sweeps core
//! counts, running each configuration once single-threaded and once on
//! `std::thread` workers over identical streams, and reports throughput
//! plus parallel speedup. Emits `BENCH_shard_scaling.json`.
//!
//! Unlike `replay_throughput` this harness carries no committed floors —
//! parallel speedup depends on the host's core count and load — but it
//! *does* fail hard on correctness: the parallel and single-threaded
//! reports must be bit-identical at every core count (the workspace's
//! race-freedom proof), and no run may produce an unsound verdict.

use std::time::Instant;

use mnm_core::MnmConfig;
use mnm_experiments::json::Json;
use mnm_shard::{sharded_streams, ShardConfig, ShardedSim};
use trace_synth::{profiles, SharingSpec};

const PROFILE: &str = "181.mcf";
const FILTER: &str = "HMNM4";
const SHARING: f64 = 0.25;
const EPOCH: usize = 2048;

fn accesses_per_core() -> usize {
    std::env::var("JSN_BENCH_N").ok().and_then(|v| v.parse().ok()).unwrap_or(200_000)
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn build_sim(cores: usize, n: usize) -> ShardedSim {
    let profile = profiles::by_name(PROFILE).expect("profile");
    let config = ShardConfig {
        epoch: EPOCH,
        ..ShardConfig::new(cores, MnmConfig::parse(FILTER).expect("filter label"))
    };
    let spec = SharingSpec {
        sharing_ratio: SHARING,
        line_bytes: config.l3.block_bytes,
        seed: 42,
        ..SharingSpec::new(cores)
    };
    let streams = sharded_streams(&profile, &spec, n, config.l1.block_bytes);
    ShardedSim::new(config, streams)
}

struct Point {
    cores: usize,
    accesses: u64,
    single_nanos: u64,
    parallel_nanos: u64,
}

impl Point {
    fn maccs(&self, nanos: u64) -> f64 {
        self.accesses as f64 * 1e3 / nanos as f64
    }
    fn speedup(&self) -> f64 {
        self.single_nanos as f64 / self.parallel_nanos as f64
    }
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("cores", Json::num(self.cores as f64)),
            ("accesses", Json::num(self.accesses as f64)),
            ("single_nanos", Json::num(self.single_nanos as f64)),
            ("parallel_nanos", Json::num(self.parallel_nanos as f64)),
            (
                "single_maccs_per_sec",
                Json::num((self.maccs(self.single_nanos) * 100.0).round() / 100.0),
            ),
            (
                "parallel_maccs_per_sec",
                Json::num((self.maccs(self.parallel_nanos) * 100.0).round() / 100.0),
            ),
            ("speedup", Json::num((self.speedup() * 100.0).round() / 100.0)),
        ])
    }
}

fn main() {
    let n = accesses_per_core();
    let host = host_cores();
    let sweep: Vec<usize> =
        [1usize, 2, 4, 8, 16].into_iter().filter(|&c| c == 1 || c <= host).collect();
    println!(
        "shard scaling: {PROFILE} / {FILTER}, sharing {SHARING}, epoch {EPOCH}, \
         {n} accesses/core, host has {host} cores"
    );

    let mut points = Vec::new();
    for &cores in &sweep {
        let mut single_sim = build_sim(cores, n);
        let t0 = Instant::now();
        let single = single_sim.run_single_threaded();
        let single_nanos = t0.elapsed().as_nanos() as u64;

        let mut par_sim = build_sim(cores, n);
        let t1 = Instant::now();
        let parallel = par_sim.run();
        let parallel_nanos = t1.elapsed().as_nanos() as u64;

        assert_eq!(
            single, parallel,
            "parallel and single-threaded reports diverged at {cores} cores"
        );
        assert_eq!(parallel.total_unsound(), 0, "unsound verdicts at {cores} cores");

        let point =
            Point { cores, accesses: parallel.total_accesses(), single_nanos, parallel_nanos };
        println!(
            "  {:>2} cores: single {:>7.2} Maccs/s, parallel {:>7.2} Maccs/s, speedup {:.2}x",
            cores,
            point.maccs(point.single_nanos),
            point.maccs(point.parallel_nanos),
            point.speedup(),
        );
        points.push(point);
    }

    let doc = Json::obj(vec![
        ("benchmark", Json::str("shard_scaling")),
        ("profile", Json::str(PROFILE)),
        ("filter", Json::str(FILTER)),
        ("host_cores", Json::num(host as f64)),
        ("points", Json::Arr(points.iter().map(Point::to_json).collect())),
    ])
    .render_pretty();
    std::fs::write("BENCH_shard_scaling.json", &doc).expect("write BENCH_shard_scaling.json");
    println!(
        "wrote BENCH_shard_scaling.json ({} configurations, all reports identical)",
        points.len()
    );
}
