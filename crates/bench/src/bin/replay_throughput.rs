//! Replay-throughput harness: drives synthetic access streams through the
//! hierarchy under one scenario per filter family, measuring accesses/sec
//! with `std::time::Instant` and heap allocations with the crate's
//! counting allocator. Emits `BENCH_replay.json`.
//!
//! The harness is the executable proof of the zero-allocation hot path
//! and the throughput regression gate: after warmup, **every** scenario —
//! including the perfect oracle — must perform zero heap allocations per
//! access, and each scenario must stay above its committed floor in
//! `floors.json` (set `JSN_BENCH_NO_FLOORS=1` to measure on hardware the
//! floors were not calibrated for). Violations exit non-zero so CI's
//! bench-smoke job fails.

use std::time::Instant;

use cache_sim::{Access, BatchSummary, Hierarchy, HierarchyConfig, NoFilter, ReplaySession};
use mnm_bench::{allocations, render_report, ScenarioResult, LEGACY_ALLOCS_PER_ACCESS};
use mnm_core::{Mnm, MnmConfig, PerfectFilter};
use mnm_experiments::json::Json;
use trace_synth::{profiles, InstrKind, Program};

#[global_allocator]
static ALLOC: mnm_bench::CountingAlloc = mnm_bench::CountingAlloc;

const WARMUP: usize = 50_000;
const MEASURE: usize = 1_000_000;

/// Batch size for the chunked `run_many` scenario: big enough to amortize
/// the scratch swap, small enough to model a trace-reader refill loop.
const BATCH: usize = 4096;

/// Committed per-scenario throughput floors (accesses/sec), conservative
/// relative to the reference measurement so normal jitter never trips the
/// gate while a real regression (for example, reintroducing dynamic
/// dispatch or a per-access allocation) does.
const FLOORS: &str = include_str!("../../floors.json");

/// One Mnm-driven scenario per filter family: label in the report, MNM
/// configuration string.
const FAMILY_SCENARIOS: [(&str, &str); 7] = [
    ("session_rmnm", "RMNM_512_2"),
    ("session_smnm", "SMNM_13x2"),
    ("session_tmnm", "TMNM_12x3"),
    ("session_cmnm", "CMNM_8_12"),
    ("session_bloom", "BLOOM_12x2"),
    ("session_hmnm4", "HMNM4"),
    ("session_hmnm4_batched", "HMNM4"),
];

/// Materialize the reference stream of one profile (fetch-block fetches
/// plus every load/store), so generation cost and its allocations stay
/// outside the measured region.
fn materialize(profile_name: &str, n: usize) -> Vec<Access> {
    let profile = profiles::by_name(profile_name).expect("profile");
    let mut out = Vec::with_capacity(n);
    let mut cur_block = u64::MAX;
    for instr in Program::new(profile) {
        let block = instr.pc >> 5;
        if block != cur_block {
            cur_block = block;
            out.push(Access::fetch(instr.pc));
        }
        match instr.kind {
            InstrKind::Load { addr } => out.push(Access::load(addr)),
            InstrKind::Store { addr } => out.push(Access::store(addr)),
            InstrKind::Branch { mispredicted } => {
                if mispredicted {
                    cur_block = u64::MAX;
                }
            }
            InstrKind::Op { .. } => {}
        }
        if out.len() >= n {
            break;
        }
    }
    out
}

struct Measured {
    nanos: u64,
    allocs: u64,
}

/// Run `f` over the warmup slice, then time it over the measured slice,
/// returning wall time and allocation count attributable to the latter.
/// `f` receives a whole slice so batched drivers can chunk it themselves.
fn measure(mut f: impl FnMut(&[Access]), stream: &[Access]) -> Measured {
    f(&stream[..WARMUP]);
    let alloc_before = allocations();
    let t0 = Instant::now();
    f(&stream[WARMUP..]);
    let nanos = t0.elapsed().as_nanos() as u64;
    Measured { nanos, allocs: allocations() - alloc_before }
}

fn scenario(label: &str, stream: &[Access], f: impl FnMut(&[Access])) -> ScenarioResult {
    let m = measure(f, stream);
    let accesses = (stream.len() - WARMUP) as u64;
    if m.allocs != 0 {
        eprintln!("FATAL: scenario {label} allocated {} times in steady state", m.allocs);
        std::process::exit(1);
    }
    let r = ScenarioResult {
        label: label.to_owned(),
        accesses,
        nanos: m.nanos,
        allocations: m.allocs,
        allocations_avoided: accesses * LEGACY_ALLOCS_PER_ACCESS - m.allocs.min(accesses),
    };
    println!(
        "{:<22} {:>12.0} accesses/s   {:>6} allocs   {:>9} avoided",
        r.label,
        r.accesses_per_sec(),
        r.allocations,
        r.allocations_avoided
    );
    r
}

/// Check every result against the committed floors. Returns the failure
/// messages (empty = gate passed). A floor without a matching scenario is
/// itself a failure: renaming a scenario must not silently drop its gate.
fn floor_failures(results: &[ScenarioResult]) -> Vec<String> {
    let doc = Json::parse(FLOORS).expect("floors.json must parse");
    let Some(Json::Obj(floors)) = doc.get("floors").cloned() else {
        return vec!["floors.json has no `floors` object".to_owned()];
    };
    let mut failures = Vec::new();
    for (label, floor) in &floors {
        let floor = floor.as_f64().unwrap_or(f64::INFINITY);
        match results.iter().find(|r| r.label == *label) {
            None => failures.push(format!("floor `{label}` has no matching scenario")),
            Some(r) if r.accesses_per_sec() < floor => failures.push(format!(
                "{label}: {:.0} accesses/s is below the committed floor of {floor:.0}",
                r.accesses_per_sec()
            )),
            Some(_) => {}
        }
    }
    for r in results {
        if !floors.iter().any(|(label, _)| *label == r.label) {
            failures.push(format!("scenario `{}` has no committed floor", r.label));
        }
    }
    failures
}

fn main() {
    let stream = materialize("164.gzip", WARMUP + MEASURE);
    assert!(stream.len() == WARMUP + MEASURE, "trace too short");
    let mut results = Vec::new();

    // Baseline: explicit session, no filter.
    {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut session = ReplaySession::new(&mut hier, NoFilter);
        results.push(scenario("session_baseline", &stream, |s| {
            for &a in s {
                session.step(a);
            }
        }));
    }

    // Internal-scratch convenience wrapper.
    {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let bypass = cache_sim::BypassSet::none();
        results.push(scenario("access_wrapper", &stream, |s| {
            for &a in s {
                hier.access(a, &bypass);
            }
        }));
    }

    // One full-protocol scenario per filter family (query + walk + event
    // feedback + coverage), plus the chunked batch entry point.
    for (label, config) in FAMILY_SCENARIOS {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut mnm = Mnm::new(&hier, MnmConfig::parse(config).expect("bench config"));
        if label.ends_with("_batched") {
            let mut total = BatchSummary::default();
            results.push(scenario(label, &stream, |s| {
                for chunk in s.chunks(BATCH) {
                    total.merge(mnm.run_many(&mut hier, chunk));
                }
            }));
        } else {
            results.push(scenario(label, &stream, |s| {
                for &a in s {
                    mnm.run_access(&mut hier, a);
                }
            }));
        }
    }

    // Perfect oracle: dry_run_bypass builds its verdict on the stack, so
    // the oracle is held to the same zero-allocation standard.
    {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut session = ReplaySession::new(&mut hier, PerfectFilter);
        results.push(scenario("session_perfect", &stream, |s| {
            for &a in s {
                session.step(a);
            }
        }));
    }

    if std::env::var_os("JSN_BENCH_NO_FLOORS").is_some() {
        println!("\nJSN_BENCH_NO_FLOORS set: skipping throughput floor enforcement");
    } else {
        let failures = floor_failures(&results);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("FATAL: {f}");
            }
            std::process::exit(1);
        }
        println!("\nall {} scenarios above their committed floors", results.len());
    }

    let report = render_report(&results);
    // Atomic + retrying write: a crash mid-write (or an injected torn
    // write) must never leave a half-baked benchmark artifact behind.
    if let Err(e) = mnm_experiments::fsio::write_artifact(
        std::path::Path::new("BENCH_replay.json"),
        report.as_bytes(),
    ) {
        eprintln!("error: failed to write BENCH_replay.json: {e}");
        std::process::exit(1);
    }
    println!("wrote BENCH_replay.json");
}
