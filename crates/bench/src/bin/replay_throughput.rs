//! Replay-throughput harness: drives synthetic access streams through the
//! hierarchy under several filter configurations, measuring accesses/sec
//! with `std::time::Instant` and heap allocations with the crate's
//! counting allocator. Emits `BENCH_replay.json`.
//!
//! The harness is also the executable proof of the zero-allocation hot
//! path: after warmup, the baseline, internal-scratch and MNM scenarios
//! must perform **zero** heap allocations per access, and the process
//! aborts if they do not.

use std::time::Instant;

use cache_sim::{Access, Hierarchy, HierarchyConfig, NoFilter, ReplaySession};
use mnm_bench::{allocations, render_report, ScenarioResult, LEGACY_ALLOCS_PER_ACCESS};
use mnm_core::{Mnm, MnmConfig, PerfectFilter};
use trace_synth::{profiles, InstrKind, Program};

#[global_allocator]
static ALLOC: mnm_bench::CountingAlloc = mnm_bench::CountingAlloc;

const WARMUP: usize = 50_000;
const MEASURE: usize = 1_000_000;

/// Materialize the reference stream of one profile (fetch-block fetches
/// plus every load/store), so generation cost and its allocations stay
/// outside the measured region.
fn materialize(profile_name: &str, n: usize) -> Vec<Access> {
    let profile = profiles::by_name(profile_name).expect("profile");
    let mut out = Vec::with_capacity(n);
    let mut cur_block = u64::MAX;
    for instr in Program::new(profile) {
        let block = instr.pc >> 5;
        if block != cur_block {
            cur_block = block;
            out.push(Access::fetch(instr.pc));
        }
        match instr.kind {
            InstrKind::Load { addr } => out.push(Access::load(addr)),
            InstrKind::Store { addr } => out.push(Access::store(addr)),
            InstrKind::Branch { mispredicted } => {
                if mispredicted {
                    cur_block = u64::MAX;
                }
            }
            InstrKind::Op { .. } => {}
        }
        if out.len() >= n {
            break;
        }
    }
    out
}

struct Measured {
    nanos: u64,
    allocs: u64,
}

/// Time `f` over the measured slice, returning wall time and allocation
/// count attributable to it.
fn measure(mut f: impl FnMut(Access), stream: &[Access]) -> Measured {
    for &a in &stream[..WARMUP] {
        f(a);
    }
    let alloc_before = allocations();
    let t0 = Instant::now();
    for &a in &stream[WARMUP..] {
        f(a);
    }
    let nanos = t0.elapsed().as_nanos() as u64;
    Measured { nanos, allocs: allocations() - alloc_before }
}

fn scenario(
    label: &str,
    stream: &[Access],
    expect_zero_alloc: bool,
    f: impl FnMut(Access),
) -> ScenarioResult {
    let m = measure(f, stream);
    let accesses = (stream.len() - WARMUP) as u64;
    if expect_zero_alloc && m.allocs != 0 {
        eprintln!("FATAL: scenario {label} allocated {} times in steady state", m.allocs);
        std::process::exit(1);
    }
    let r = ScenarioResult {
        label: label.to_owned(),
        accesses,
        nanos: m.nanos,
        allocations: m.allocs,
        allocations_avoided: accesses * LEGACY_ALLOCS_PER_ACCESS - m.allocs.min(accesses),
    };
    println!(
        "{:<22} {:>12.0} accesses/s   {:>6} allocs   {:>9} avoided",
        r.label,
        r.accesses_per_sec(),
        r.allocations,
        r.allocations_avoided
    );
    r
}

fn main() {
    let stream = materialize("164.gzip", WARMUP + MEASURE);
    assert!(stream.len() == WARMUP + MEASURE, "trace too short");
    let mut results = Vec::new();

    // Baseline: explicit session, no filter.
    {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut session = ReplaySession::new(&mut hier, NoFilter);
        results.push(scenario("session_baseline", &stream, true, |a| {
            session.step(a);
        }));
    }

    // Internal-scratch convenience wrapper.
    {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let bypass = cache_sim::BypassSet::none();
        results.push(scenario("access_wrapper", &stream, true, |a| {
            hier.access(a, &bypass);
        }));
    }

    // Full MNM protocol (query + walk + event feedback + coverage).
    {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut mnm = Mnm::new(&hier, MnmConfig::hmnm(4));
        results.push(scenario("session_hmnm4", &stream, true, |a| {
            mnm.run_access(&mut hier, a);
        }));
    }

    // Perfect oracle: dry_run_misses allocates its result vector, so this
    // scenario documents the oracle's cost rather than asserting zero.
    {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut session = ReplaySession::new(&mut hier, PerfectFilter);
        results.push(scenario("session_perfect", &stream, false, |a| {
            session.step(a);
        }));
    }

    let report = render_report(&results);
    // Atomic + retrying write: a crash mid-write (or an injected torn
    // write) must never leave a half-baked benchmark artifact behind.
    if let Err(e) = mnm_experiments::fsio::write_artifact(
        std::path::Path::new("BENCH_replay.json"),
        report.as_bytes(),
    ) {
        eprintln!("error: failed to write BENCH_replay.json: {e}");
        std::process::exit(1);
    }
    println!("\nwrote BENCH_replay.json");
}
