//! # mnm-bench
//!
//! Criterion benchmark crate. All content lives in `benches/`:
//!
//! * `filters` — per-technique query/update micro-benchmarks;
//! * `cache` — hierarchy walk throughput (hits, misses, bypassed walks);
//! * `trace` — workload generation and OoO-model throughput;
//! * `figures` — scaled-down end-to-end regeneration of every paper
//!   artifact (Figures 2-3, Table 2, Figures 10-16) plus two ablations.
//!
//! Run with `cargo bench --workspace`. The full-size figure outputs come
//! from the `mnm-experiments` binaries, not from these benches.
