//! # mnm-bench
//!
//! Dependency-free throughput harness for the replay hot path.
//!
//! The crate deliberately uses no external benchmark framework (the
//! reference environment builds offline, so criterion is unavailable):
//! timing comes from [`std::time::Instant`], and allocation accounting
//! from [`CountingAlloc`], a `#[global_allocator]` wrapper around the
//! system allocator that counts every heap allocation.
//!
//! Run the harness with:
//!
//! ```text
//! cargo run --release -p mnm-bench --bin replay_throughput
//! ```
//!
//! It replays synthetic workloads through the cache hierarchy under
//! several filter configurations and writes `BENCH_replay.json` with
//! accesses/second and allocations-avoided counters, verifying along the
//! way that the steady-state hot path performs **zero** heap allocations
//! per access.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use mnm_experiments::json::Json;

/// Heap allocations observed by [`CountingAlloc`] since process start.
pub static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper around the system allocator. Register it in a
/// binary or test with:
///
/// ```text
/// #[global_allocator]
/// static ALLOC: mnm_bench::CountingAlloc = mnm_bench::CountingAlloc;
/// ```
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

/// Allocations counted so far (monotone).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Measurements from one benchmark scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario label (`"baseline"`, `"hmnm4"`, ...).
    pub label: String,
    /// Accesses driven during the measured phase.
    pub accesses: u64,
    /// Wall-clock nanoseconds of the measured phase.
    pub nanos: u64,
    /// Heap allocations observed during the measured phase.
    pub allocations: u64,
    /// Per-access allocations the pre-refactor API would have performed
    /// over the same phase (probe vector + event vector + path clone,
    /// i.e. 3 per access), minus the allocations actually observed.
    pub allocations_avoided: u64,
}

impl ScenarioResult {
    /// Accesses per second.
    pub fn accesses_per_sec(&self) -> f64 {
        if self.nanos == 0 {
            0.0
        } else {
            self.accesses as f64 * 1e9 / self.nanos as f64
        }
    }

    /// One JSON object, built with the workspace's shared writer
    /// (`mnm_experiments::json`; the workspace carries no serde).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("label", Json::str(&self.label)),
            ("accesses", Json::num(self.accesses as f64)),
            ("nanos", Json::num(self.nanos as f64)),
            ("accesses_per_sec", Json::num((self.accesses_per_sec() * 10.0).round() / 10.0)),
            ("allocations", Json::num(self.allocations as f64)),
            ("allocations_avoided", Json::num(self.allocations_avoided as f64)),
        ])
    }
}

/// Number of heap allocations the pre-refactor per-access API performed:
/// a probe `Vec`, an event `Vec`, and a clone of the structure path.
pub const LEGACY_ALLOCS_PER_ACCESS: u64 = 3;

/// Render a full `BENCH_replay.json` document from scenario results.
pub fn render_report(results: &[ScenarioResult]) -> String {
    Json::obj(vec![
        ("benchmark", Json::str("replay_throughput")),
        ("scenarios", Json::Arr(results.iter().map(ScenarioResult::to_json).collect())),
    ])
    .render_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_is_well_formed() {
        let r = ScenarioResult {
            label: "baseline".into(),
            accesses: 1000,
            nanos: 2_000_000,
            allocations: 0,
            allocations_avoided: 3000,
        };
        assert!((r.accesses_per_sec() - 500_000.0).abs() < 1.0);
        let doc = render_report(&[r]);
        assert!(doc.contains("\"accesses_per_sec\": 500000"));
        assert!(doc.contains("\"allocations_avoided\": 3000"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        // The document parses back with the shared reader.
        let parsed = Json::parse(&doc).expect("well-formed");
        let scenarios = parsed.get("scenarios").and_then(Json::as_arr).unwrap();
        assert_eq!(scenarios[0].get("accesses").and_then(Json::as_f64), Some(1000.0));
    }
}
