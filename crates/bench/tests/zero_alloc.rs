//! The acceptance test for the zero-allocation replay hot path: after a
//! short warmup, driving accesses through every supported entry point
//! (explicit scratch, internal scratch, full MNM protocol for every filter
//! family, the perfect oracle, and the batched APIs) performs no heap
//! allocation at all.

use cache_sim::{
    Access, BypassSet, Hierarchy, HierarchyConfig, NoFilter, ReplayScratch, ReplaySession,
};
use mnm_bench::allocations;
use mnm_core::{Mnm, MnmConfig, PerfectFilter};

#[global_allocator]
static ALLOC: mnm_bench::CountingAlloc = mnm_bench::CountingAlloc;

/// Mixed re-referencing stream over a modest arena: hits, misses,
/// evictions and stores all occur, with no per-access allocation.
fn stream(i: u64) -> Access {
    let addr = (i.wrapping_mul(0x9E37_79B9) >> 8) % 0x10000;
    match i % 3 {
        0 => Access::load(addr),
        1 => Access::store(addr),
        _ => Access::fetch(addr),
    }
}

#[test]
fn explicit_scratch_path_is_allocation_free() {
    let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
    let mut scratch = ReplayScratch::new();
    let none = BypassSet::none();
    for i in 0..2_000 {
        hier.access_with_events(stream(i), &none, &mut scratch);
    }
    let before = allocations();
    for i in 2_000..10_000 {
        hier.access_with_events(stream(i), &none, &mut scratch);
    }
    assert_eq!(allocations() - before, 0, "steady-state access_with_events allocated");
}

#[test]
fn internal_scratch_wrapper_is_allocation_free() {
    let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
    let none = BypassSet::none();
    for i in 0..2_000 {
        hier.access(stream(i), &none);
    }
    let before = allocations();
    for i in 2_000..10_000 {
        hier.access(stream(i), &none);
    }
    assert_eq!(allocations() - before, 0, "steady-state access() allocated");
}

#[test]
fn replay_session_is_allocation_free() {
    let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
    let mut session = ReplaySession::new(&mut hier, NoFilter);
    for i in 0..2_000 {
        session.step(stream(i));
    }
    let before = allocations();
    for i in 2_000..10_000 {
        session.step(stream(i));
    }
    assert_eq!(allocations() - before, 0, "steady-state ReplaySession allocated");
}

#[test]
fn mnm_protocol_is_allocation_free_for_every_family() {
    for label in ["RMNM_512_2", "SMNM_13x2", "TMNM_12x3", "CMNM_8_12", "BLOOM_12x2", "HMNM4"] {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut mnm = Mnm::new(&hier, MnmConfig::parse(label).unwrap());
        for i in 0..2_000 {
            mnm.run_access(&mut hier, stream(i));
        }
        let before = allocations();
        for i in 2_000..10_000 {
            mnm.run_access(&mut hier, stream(i));
        }
        assert_eq!(allocations() - before, 0, "{label}: steady-state Mnm::run_access allocated");
    }
}

#[test]
fn perfect_oracle_session_is_allocation_free() {
    // `perfect_bypass` builds its verdict with `dry_run_bypass`, which
    // returns a stack `BypassSet` instead of collecting a Vec — the
    // regression this test pins down (the Vec cost ~50k allocs/1M).
    let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
    let mut session = ReplaySession::new(&mut hier, PerfectFilter);
    for i in 0..2_000 {
        session.step(stream(i));
    }
    let before = allocations();
    for i in 2_000..10_000 {
        session.step(stream(i));
    }
    assert_eq!(allocations() - before, 0, "steady-state perfect-oracle session allocated");
}

#[test]
fn batched_run_many_is_allocation_free() {
    let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
    let mut mnm = Mnm::new(&hier, MnmConfig::hmnm(4));
    // Chunks are materialized before the measured region, as a trace
    // reader would refill a fixed buffer.
    let warm: Vec<Access> = (0..2_000).map(stream).collect();
    let chunks: Vec<Vec<Access>> =
        (0..8).map(|c| (2_000 + c * 1_000..3_000 + c * 1_000).map(stream).collect()).collect();
    mnm.run_many(&mut hier, &warm);
    let before = allocations();
    let mut total = cache_sim::BatchSummary::default();
    for chunk in &chunks {
        total.merge(mnm.run_many(&mut hier, chunk));
    }
    assert_eq!(allocations() - before, 0, "steady-state Mnm::run_many allocated");
    assert_eq!(total.accesses, 8_000);
}

#[test]
fn batched_query_many_is_allocation_free_once_warm() {
    let hier = Hierarchy::new(HierarchyConfig::paper_five_level());
    let mut mnm = Mnm::new(&hier, MnmConfig::hmnm(4));
    let chunk: Vec<Access> = (0..1_000).map(stream).collect();
    let mut out = Vec::new();
    // First call sizes `out`; later calls reuse its capacity.
    mnm.query_many(&chunk, &mut out);
    let before = allocations();
    for _ in 0..8 {
        mnm.query_many(&chunk, &mut out);
    }
    assert_eq!(allocations() - before, 0, "steady-state Mnm::query_many allocated");
    assert_eq!(out.len(), chunk.len());
}

#[test]
fn batched_session_process_many_is_allocation_free() {
    let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
    let mut session = ReplaySession::new(&mut hier, NoFilter);
    let warm: Vec<Access> = (0..2_000).map(stream).collect();
    let chunk: Vec<Access> = (2_000..10_000).map(stream).collect();
    session.process_many(&warm);
    let before = allocations();
    let summary = session.process_many(&chunk);
    assert_eq!(allocations() - before, 0, "steady-state process_many allocated");
    assert_eq!(summary.accesses, 8_000);
}
