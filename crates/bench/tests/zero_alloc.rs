//! The acceptance test for the zero-allocation replay hot path: after a
//! short warmup, driving accesses through every supported entry point
//! (explicit scratch, internal scratch, full MNM protocol) performs no
//! heap allocation at all.

use cache_sim::{
    Access, BypassSet, Hierarchy, HierarchyConfig, NoFilter, ReplayScratch, ReplaySession,
};
use mnm_bench::allocations;
use mnm_core::{Mnm, MnmConfig};

#[global_allocator]
static ALLOC: mnm_bench::CountingAlloc = mnm_bench::CountingAlloc;

/// Mixed re-referencing stream over a modest arena: hits, misses,
/// evictions and stores all occur, with no per-access allocation.
fn stream(i: u64) -> Access {
    let addr = (i.wrapping_mul(0x9E37_79B9) >> 8) % 0x10000;
    match i % 3 {
        0 => Access::load(addr),
        1 => Access::store(addr),
        _ => Access::fetch(addr),
    }
}

#[test]
fn explicit_scratch_path_is_allocation_free() {
    let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
    let mut scratch = ReplayScratch::new();
    let none = BypassSet::none();
    for i in 0..2_000 {
        hier.access_with_events(stream(i), &none, &mut scratch);
    }
    let before = allocations();
    for i in 2_000..10_000 {
        hier.access_with_events(stream(i), &none, &mut scratch);
    }
    assert_eq!(allocations() - before, 0, "steady-state access_with_events allocated");
}

#[test]
fn internal_scratch_wrapper_is_allocation_free() {
    let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
    let none = BypassSet::none();
    for i in 0..2_000 {
        hier.access(stream(i), &none);
    }
    let before = allocations();
    for i in 2_000..10_000 {
        hier.access(stream(i), &none);
    }
    assert_eq!(allocations() - before, 0, "steady-state access() allocated");
}

#[test]
fn replay_session_is_allocation_free() {
    let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
    let mut session = ReplaySession::new(&mut hier, NoFilter);
    for i in 0..2_000 {
        session.step(stream(i));
    }
    let before = allocations();
    for i in 2_000..10_000 {
        session.step(stream(i));
    }
    assert_eq!(allocations() - before, 0, "steady-state ReplaySession allocated");
}

#[test]
fn mnm_protocol_is_allocation_free() {
    let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
    let mut mnm = Mnm::new(&hier, MnmConfig::hmnm(4));
    for i in 0..2_000 {
        mnm.run_access(&mut hier, stream(i));
    }
    let before = allocations();
    for i in 2_000..10_000 {
        mnm.run_access(&mut hier, stream(i));
    }
    assert_eq!(allocations() - before, 0, "steady-state Mnm::run_access allocated");
}
