//! Workload-generator and timing-model throughput benchmarks.

use cache_sim::{Hierarchy, HierarchyConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ooo_model::{simulate, CpuConfig, MemPolicy};
use trace_synth::{profiles, Program};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.throughput(Throughput::Elements(100_000));
    for name in ["164.gzip", "181.mcf", "171.swim"] {
        group.bench_function(name, |b| {
            let profile = profiles::by_name(name).unwrap();
            b.iter(|| {
                let program = Program::new(profile.clone());
                let mut sum = 0u64;
                for instr in program.take(100_000) {
                    sum = sum.wrapping_add(black_box(instr.pc));
                }
                sum
            })
        });
    }
    group.finish();
}

fn bench_timing_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("ooo_simulation");
    group.sample_size(10);
    group.throughput(Throughput::Elements(50_000));
    for name in ["164.gzip", "181.mcf"] {
        group.bench_function(name, |b| {
            let profile = profiles::by_name(name).unwrap();
            let cpu = CpuConfig::paper_eight_way();
            b.iter(|| {
                let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
                simulate(&cpu, &mut hier, MemPolicy::Baseline, Program::new(profile.clone()), 50_000)
                    .cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation, bench_timing_model);
criterion_main!(benches);
