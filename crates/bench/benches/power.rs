//! Energy-model and TLB-substrate benchmarks.

use cache_sim::{CacheConfig, TwoLevelTlb};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mnm_core::{BloomConfig, BloomFilter, MissFilter};
use power_model::EnergyModel;

fn bench_energy_model(c: &mut Criterion) {
    let model = EnergyModel::default();
    let configs: Vec<CacheConfig> = vec![
        CacheConfig::new("l1", 4 * 1024, 1, 32, 2),
        CacheConfig::new("l2", 16 * 1024, 2, 32, 8),
        CacheConfig::new("l3", 128 * 1024, 4, 64, 18),
        CacheConfig::new("l4", 512 * 1024, 4, 128, 34),
        CacheConfig::new("l5", 2 * 1024 * 1024, 8, 128, 70),
    ];
    let mut group = c.benchmark_group("energy_model");
    group.bench_function("cache_read_energy_5_levels", |b| {
        b.iter(|| configs.iter().map(|cfg| model.cache_read_energy(black_box(cfg))).sum::<f64>())
    });
    group.bench_function("small_array_energy", |b| {
        b.iter(|| {
            [768u64, 9216, 36864, 98304]
                .iter()
                .map(|&bits| model.small_array_energy(black_box(bits)))
                .sum::<f64>()
        })
    });
    group.finish();
}

fn bench_tlb(c: &mut Criterion) {
    let mut group = c.benchmark_group("tlb");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("two_level_translate", |b| {
        let mut tlb = TwoLevelTlb::typical();
        let mut events = Vec::new();
        let mut x = 0x1357_9BDFu64;
        b.iter(|| {
            let mut walks = 0u64;
            for _ in 0..4096 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                events.clear();
                let r = tlb.translate(black_box(x % (1 << 28)), false, &mut events);
                walks += u64::from(r.supply_level == 3);
            }
            walks
        })
    });
    group.finish();
}

fn bench_bloom(c: &mut Criterion) {
    let mut group = c.benchmark_group("bloom_filter");
    group.throughput(Throughput::Elements(4096));
    group.bench_function("BLOOM_13x4 query", |b| {
        let mut f = BloomFilter::new(BloomConfig::new(13, 4));
        for i in 0..2048u64 {
            f.on_place(i * 37);
        }
        b.iter(|| (0..4096u64).filter(|&i| f.is_definite_miss(black_box(i * 53))).count())
    });
    group.finish();
}

criterion_group!(benches, bench_energy_model, bench_tlb, bench_bloom);
criterion_main!(benches);
