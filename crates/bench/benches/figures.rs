//! Scaled-down end-to-end benches, one per paper artifact (Figures 2–3,
//! Table 2, Figures 10–16): each measures the cost of regenerating a
//! miniature version of the corresponding result. The full-size outputs
//! come from the `mnm-experiments` binaries; these benches track the
//! harness's own performance per figure.

use criterion::{criterion_group, criterion_main, Criterion};
use mnm_experiments::ablation;
use mnm_experiments::coverage::coverage_table;
use mnm_experiments::depth::depth_fractions;
use mnm_experiments::power::power_reduction_table;
use mnm_experiments::timing::{characteristics_table, execution_reduction_table};
use mnm_experiments::{RunParams, FIG10_CONFIGS, FIG11_CONFIGS, FIG12_CONFIGS, FIG13_CONFIGS, FIG14_CONFIGS};

fn tiny() -> RunParams {
    RunParams { warmup: 1_000, measure: 8_000 }
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_regeneration");
    group.sample_size(10);

    group.bench_function("fig02_fig03_depth_fractions", |b| {
        b.iter(|| depth_fractions(tiny()))
    });
    group.bench_function("table2_characteristics", |b| {
        b.iter(|| characteristics_table(tiny()))
    });
    group.bench_function("fig10_rmnm_coverage", |b| {
        b.iter(|| coverage_table("fig10", &FIG10_CONFIGS, tiny()))
    });
    group.bench_function("fig11_smnm_coverage", |b| {
        b.iter(|| coverage_table("fig11", &FIG11_CONFIGS, tiny()))
    });
    group.bench_function("fig12_tmnm_coverage", |b| {
        b.iter(|| coverage_table("fig12", &FIG12_CONFIGS, tiny()))
    });
    group.bench_function("fig13_cmnm_coverage", |b| {
        b.iter(|| coverage_table("fig13", &FIG13_CONFIGS, tiny()))
    });
    group.bench_function("fig14_hmnm_coverage", |b| {
        b.iter(|| coverage_table("fig14", &FIG14_CONFIGS, tiny()))
    });
    group.bench_function("fig15_execution_reduction", |b| {
        b.iter(|| execution_reduction_table(tiny()))
    });
    group.bench_function("fig16_power_reduction", |b| {
        b.iter(|| power_reduction_table(tiny()))
    });
    group.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_regeneration");
    group.sample_size(10);
    group.bench_function("abl02_counter_width", |b| {
        b.iter(|| ablation::counter_width_table(tiny()))
    });
    group.bench_function("abl05_inclusion", |b| b.iter(|| ablation::inclusion_table(tiny())));
    group.finish();
}

criterion_group!(benches, bench_figures, bench_ablations);
criterion_main!(benches);
