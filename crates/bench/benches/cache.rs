//! Simulator-substrate benchmarks: hierarchy walk throughput on hit-heavy,
//! miss-heavy and MNM-bypassed reference streams.

use cache_sim::{Access, BypassSet, Hierarchy, HierarchyConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mnm_core::{Mnm, MnmConfig};

fn hot_addrs(n: usize) -> Vec<u64> {
    (0..n).map(|i| ((i * 32) % 2048) as u64).collect()
}

fn cold_addrs(n: usize) -> Vec<u64> {
    let mut x = 0x9E37_79B9u64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % (1 << 26)) & !31
        })
        .collect()
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy_access");
    let hot = hot_addrs(4096);
    let cold = cold_addrs(4096);

    group.bench_function("l1_hits", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::paper_five_level());
        for &a in &hot {
            h.access(Access::load(a), &BypassSet::none());
        }
        b.iter(|| {
            for &a in &hot {
                black_box(h.access(Access::load(black_box(a)), &BypassSet::none()).latency);
            }
        })
    });

    group.bench_function("full_walk_misses", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::paper_five_level());
        b.iter(|| {
            for &a in &cold {
                black_box(h.access(Access::load(black_box(a)), &BypassSet::none()).latency);
            }
        })
    });

    group.bench_function("mnm_guarded_walk", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut mnm = Mnm::new(&h, MnmConfig::hmnm(4));
        b.iter(|| {
            for &a in &cold {
                black_box(mnm.run_access(&mut h, Access::load(black_box(a))).latency);
            }
        })
    });

    group.bench_function("perfect_oracle_walk", |b| {
        let mut h = Hierarchy::new(HierarchyConfig::paper_five_level());
        b.iter(|| {
            for &a in &cold {
                let access = Access::load(black_box(a));
                let bypass = mnm_core::perfect_bypass(&h, access);
                black_box(h.access(access, &bypass).latency);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hierarchy);
criterion_main!(benches);
