//! Micro-benchmarks of the individual MNM techniques: query and update
//! throughput at the paper's configuration points. The paper's premise is
//! that MNM structures are much faster than the caches they guard; these
//! benches quantify the software-model cost per operation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mnm_core::{Cmnm, CmnmConfig, MissFilter, Rmnm, RmnmConfig, SmnmConfig, SmnmFilter, TmnmConfig, TmnmFilter};

/// A deterministic pseudo-random block-address stream with reuse.
fn addr_stream(n: usize) -> Vec<u64> {
    let mut x = 0x243F_6A88_85A3_08D3u64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % 0x40_0000
        })
        .collect()
}

fn bench_queries(c: &mut Criterion) {
    let addrs = addr_stream(4096);
    let mut group = c.benchmark_group("filter_query");

    let mut tmnm = TmnmFilter::new(TmnmConfig::new(12, 3));
    let mut cmnm = Cmnm::new(CmnmConfig::new(8, 12));
    let mut smnm = SmnmFilter::new(SmnmConfig::new(20, 3));
    for &a in &addrs[..2048] {
        tmnm.on_place(a);
        cmnm.on_place(a);
        smnm.on_place(a);
    }

    group.bench_function("TMNM_12x3", |b| {
        b.iter(|| addrs.iter().filter(|&&a| tmnm.is_definite_miss(black_box(a))).count())
    });
    group.bench_function("CMNM_8_12", |b| {
        b.iter(|| addrs.iter().filter(|&&a| cmnm.is_definite_miss(black_box(a))).count())
    });
    group.bench_function("SMNM_20x3", |b| {
        b.iter(|| addrs.iter().filter(|&&a| smnm.is_definite_miss(black_box(a))).count())
    });

    let mut rmnm = Rmnm::new(RmnmConfig::new(4096, 8), 5);
    for &a in &addrs[..2048] {
        rmnm.on_replace((a % 5) as usize, a);
    }
    group.bench_function("RMNM_4096_8", |b| {
        b.iter(|| addrs.iter().filter(|&&a| rmnm.is_definite_miss(3, black_box(a))).count())
    });
    group.finish();
}

fn bench_updates(c: &mut Criterion) {
    let addrs = addr_stream(4096);
    let mut group = c.benchmark_group("filter_update");

    group.bench_function("TMNM_12x3 place+replace", |b| {
        let mut f = TmnmFilter::new(TmnmConfig::new(12, 3));
        b.iter(|| {
            for &a in &addrs {
                f.on_place(black_box(a));
            }
            for &a in &addrs {
                f.on_replace(black_box(a));
            }
        })
    });
    group.bench_function("CMNM_8_12 place+replace", |b| {
        let mut f = Cmnm::new(CmnmConfig::new(8, 12));
        b.iter(|| {
            for &a in &addrs {
                f.on_place(black_box(a));
            }
            for &a in &addrs {
                f.on_replace(black_box(a));
            }
        })
    });
    group.bench_function("RMNM_4096_8 replace+place", |b| {
        let mut f = Rmnm::new(RmnmConfig::new(4096, 8), 5);
        b.iter(|| {
            for &a in &addrs {
                f.on_replace(2, black_box(a));
            }
            for &a in &addrs {
                f.on_place(2, black_box(a));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_queries, bench_updates);
criterion_main!(benches);
