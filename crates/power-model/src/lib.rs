//! # power-model
//!
//! Analytic per-access energy model for caches and MNM structures.
//!
//! The paper obtains cache energies from **CACTI 3.1** and SMNM checker
//! energies from Synopsys Design Compiler on RTL (Section 4.4). Neither
//! tool is redistributable, so this crate substitutes a CACTI-*style*
//! component model — decoder, wordline, bitline, sense amplifiers, tag
//! match, output drive, and inter-subarray routing — with constants set for
//! a 2003-era 0.18 µm process. Figures 3 and 16 report *fractions* and
//! *relative reductions*, so only the relative scaling (small MNM arrays
//! vs. large caches) must be faithful, which the component model preserves:
//! energy grows roughly with the square root of capacity via subarray
//! partitioning, exactly CACTI's qualitative behaviour.
//!
//! ```
//! use cache_sim::CacheConfig;
//! use power_model::EnergyModel;
//!
//! let m = EnergyModel::default();
//! let small = m.cache_read_energy(&CacheConfig::new("dl1", 4 * 1024, 1, 32, 2));
//! let large = m.cache_read_energy(&CacheConfig::new("ul5", 2 * 1024 * 1024, 8, 128, 70));
//! assert!(large > 4.0 * small);
//! ```

mod accounting;
mod cacti;
mod mnm_energy;

pub use accounting::{account_hierarchy, CacheEnergyBreakdown, StructureEnergy};
pub use cacti::EnergyModel;
pub use mnm_energy::{mnm_access_energy, mnm_total_energy, MnmEnergy};
