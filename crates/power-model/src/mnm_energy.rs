//! Energy costing of the MNM structures themselves.

use mnm_core::{Mnm, MnmPlacement};

use crate::cacti::EnergyModel;

/// Energy totals for a Mostly No Machine, in nJ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MnmEnergy {
    /// Energy of all definite-miss queries.
    pub query_nj: f64,
    /// Energy of all bookkeeping updates (placements/replacements).
    pub update_nj: f64,
}

impl MnmEnergy {
    /// Total MNM energy.
    pub fn total_nj(&self) -> f64 {
        self.query_nj + self.update_nj
    }
}

/// Energy of a single MNM query: every per-structure filter plus the shared
/// RMNM are probed in parallel.
pub fn mnm_access_energy(mnm: &Mnm, model: &EnergyModel) -> f64 {
    mnm.storage()
        .iter()
        .map(|c| {
            if let Some(rest) = c.label.strip_prefix("SMNM_") {
                let width: u32 = rest.split('x').next().and_then(|w| w.parse().ok()).unwrap_or(10);
                model.smnm_checker_energy(c.bits, width)
            } else {
                model.small_array_energy(c.bits)
            }
        })
        .sum()
}

/// Total MNM energy over a finished simulation.
///
/// A **serial** MNM (paper Figure 1b) is only queried after an L1 miss, so
/// the caller passes the number of L1-missing accesses in
/// `l1_miss_accesses`; a **parallel** MNM is queried on every access
/// recorded in the machine's statistics. Updates happen identically in both
/// placements (every placement/replacement flows through the MNM).
pub fn mnm_total_energy(mnm: &Mnm, model: &EnergyModel, l1_miss_accesses: u64) -> MnmEnergy {
    let per_query = mnm_access_energy(mnm, model);
    let queries = match mnm.config().placement {
        MnmPlacement::Parallel => mnm.stats().accesses,
        MnmPlacement::Serial => l1_miss_accesses,
        // Consultations at the first guarded level; deeper levels consult
        // less and touch only their own filters. This is an upper bound;
        // the experiment harness (`mnm-experiments::power`) does the exact
        // per-level accounting from hierarchy counters.
        MnmPlacement::Distributed => l1_miss_accesses,
    };
    // One update touches one structure's filters plus the RMNM; charge the
    // per-structure average of the query cost per update as an estimate of
    // the partial activation.
    let components = mnm.storage().len().max(1) as f64;
    let per_update = per_query / components;
    let updates: u64 = mnm.stats().slots.iter().map(|s| s.updates).sum();
    MnmEnergy { query_nj: queries as f64 * per_query, update_nj: updates as f64 * per_update }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{Access, Hierarchy, HierarchyConfig};
    use mnm_core::MnmConfig;

    fn run(config: MnmConfig) -> (Mnm, Hierarchy, u64) {
        let mut h = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut m = Mnm::new(&h, config);
        // A small hot set: mostly L1 hits after the first round.
        for i in 0..512u64 {
            m.run_access(&mut h, Access::load((i % 16) * 32));
        }
        let l1_misses: u64 = h
            .structures()
            .iter()
            .filter(|s| s.level == 1)
            .map(|s| h.stats().structures[s.id.index()].misses)
            .sum();
        (m, h, l1_misses)
    }

    #[test]
    fn serial_queries_cost_less_than_parallel() {
        let (m, _, l1_misses) = run(MnmConfig::hmnm(2));
        let model = EnergyModel::default();
        let parallel = mnm_total_energy(&m, &model, l1_misses);
        // Re-interpret the same run as serial placement.
        let (ms, _, l1m) = run(MnmConfig::hmnm(2).with_placement(mnm_core::MnmPlacement::Serial));
        let serial = mnm_total_energy(&ms, &model, l1m);
        assert!(serial.query_nj < parallel.query_nj);
        assert!(parallel.total_nj() > 0.0);
    }

    #[test]
    fn bigger_hybrids_cost_more_per_query() {
        let model = EnergyModel::default();
        let h = Hierarchy::new(HierarchyConfig::paper_five_level());
        let e1 = mnm_access_energy(&Mnm::new(&h, MnmConfig::hmnm(1)), &model);
        let e4 = mnm_access_energy(&Mnm::new(&h, MnmConfig::hmnm(4)), &model);
        assert!(e4 > e1);
    }

    #[test]
    fn mnm_query_is_cheaper_than_an_l2_probe() {
        // The premise of the whole paper: the MNM must cost much less than
        // the caches it saves.
        let model = EnergyModel::default();
        let h = Hierarchy::new(HierarchyConfig::paper_five_level());
        let m = Mnm::new(&h, MnmConfig::hmnm(4));
        let query = mnm_access_energy(&m, &model);
        let l2 = model.cache_read_energy(&cache_sim::CacheConfig::new("l2", 16 * 1024, 2, 32, 8));
        assert!(query < 2.0 * l2, "HMNM4 query {query} nJ vs L2 probe {l2} nJ");
    }
}
