//! CACTI-style component energy model.

use cache_sim::CacheConfig;

/// Per-component energy constants, in nanojoules. Defaults approximate a
/// 0.18 µm process (the CACTI 3.1 era of the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Decoder energy per address bit decoded.
    pub decode_nj_per_bit: f64,
    /// Wordline energy per column driven.
    pub wordline_nj_per_col: f64,
    /// Bitline precharge+swing energy per bit-cell on the active subarray
    /// (scales with rows × cols of the subarray).
    pub bitline_nj_per_cell: f64,
    /// Sense-amplifier energy per column sensed.
    pub sense_nj_per_col: f64,
    /// Tag read + comparator energy per way compared.
    pub tag_nj_per_way: f64,
    /// Output driver energy per data bit delivered.
    pub output_nj_per_bit: f64,
    /// Routing energy coefficient: multiplied by the square root of the
    /// total bit count (H-tree wire length grows with the array side).
    pub route_nj_per_sqrt_bit: f64,
    /// Maximum subarray rows before folding.
    pub max_subarray_rows: u64,
    /// Maximum subarray columns before splitting.
    pub max_subarray_cols: u64,
    /// Energy per flip-flop toggled in random logic (SMNM checkers).
    pub ff_nj: f64,
    /// Energy per equivalent gate in random logic (SMNM checkers).
    pub gate_nj: f64,
    /// Activation factor for small MNM arrays: narrow read-out ports and
    /// divided word/bit lines activate only a fraction of the array that a
    /// full cache-line read would.
    pub small_array_activation: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            decode_nj_per_bit: 0.004,
            wordline_nj_per_col: 0.00008,
            bitline_nj_per_cell: 0.0000045,
            sense_nj_per_col: 0.00012,
            tag_nj_per_way: 0.010,
            output_nj_per_bit: 0.0006,
            route_nj_per_sqrt_bit: 0.00055,
            max_subarray_rows: 256,
            max_subarray_cols: 512,
            ff_nj: 0.00018,
            gate_nj: 0.000001,
            small_array_activation: 0.06,
        }
    }
}

impl EnergyModel {
    /// Dynamic energy (nJ) of one read probe of a raw SRAM array of
    /// `rows × cols` bits, after subarray partitioning. This is the shared
    /// primitive behind both cache and MNM-table costs.
    pub fn array_read_energy(&self, rows: u64, cols: u64) -> f64 {
        let total_bits = (rows * cols) as f64;
        let mut r = rows.max(1);
        let mut c = cols.max(1);
        // Fold tall arrays into wider ones.
        while r > self.max_subarray_rows && r.is_multiple_of(2) {
            r /= 2;
            c *= 2;
        }
        // Split wide arrays into subarrays; only one is activated, the
        // rest cost routing.
        while c > self.max_subarray_cols && c.is_multiple_of(2) {
            c /= 2;
        }
        let index_bits = (64 - rows.max(2).leading_zeros()) as f64;
        let decode = self.decode_nj_per_bit * index_bits;
        let wordline = self.wordline_nj_per_col * c as f64;
        let bitline = self.bitline_nj_per_cell * (r * c) as f64;
        let sense = self.sense_nj_per_col * c as f64;
        let route = self.route_nj_per_sqrt_bit * total_bits.sqrt();
        decode + wordline + bitline + sense + route
    }

    /// Dynamic energy (nJ) of one read probe (tag + data, probed in
    /// parallel as the paper's Equation 1 assumes).
    pub fn cache_read_energy(&self, cfg: &CacheConfig) -> f64 {
        let data_rows = cfg.num_sets();
        let data_cols = cfg.block_bytes * 8 * u64::from(cfg.assoc);
        let data = self.array_read_energy(data_rows, data_cols);
        // Tag array: ~(32 - index - offset) tag bits + state per way.
        let tag_bits = 32u64
            .saturating_sub(data_rows.trailing_zeros() as u64)
            .saturating_sub(cfg.block_shift() as u64)
            + 2;
        let tag_array = self.array_read_energy(data_rows, tag_bits * u64::from(cfg.assoc));
        let compare = self.tag_nj_per_way * f64::from(cfg.assoc);
        let output = self.output_nj_per_bit * 64.0; // critical word out
        data + tag_array + compare + output
    }

    /// Dynamic energy (nJ) of one line fill (write of a full block plus a
    /// tag update; bitline writes swing harder than reads).
    pub fn cache_write_energy(&self, cfg: &CacheConfig) -> f64 {
        1.15 * self.cache_read_energy(cfg)
            + self.output_nj_per_bit * (cfg.block_bytes * 8) as f64 * 0.1
    }

    /// Dynamic energy (nJ) of probing/updating a small MNM storage array of
    /// `bits` total bits, modelled as a square array.
    pub fn small_array_energy(&self, bits: u64) -> f64 {
        if bits == 0 {
            return 0.0;
        }
        let side = (bits as f64).sqrt().ceil() as u64;
        self.small_array_activation
            * self.array_read_energy(side.max(1), bits.div_ceil(side.max(1)))
    }

    /// Dynamic energy (nJ) of one SMNM checker evaluation: `ffs` flip-flops
    /// plus O(width⁴) comparator/adder logic (the paper's §3.2 complexity
    /// bound, costed per gate).
    pub fn smnm_checker_energy(&self, ffs: u64, sum_width: u32) -> f64 {
        // Only a fraction of the logic toggles per access.
        let gates = f64::from(sum_width).powi(4) * 0.25;
        self.ff_nj * ffs as f64 * 0.02 + self.gate_nj * gates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_caches() -> Vec<CacheConfig> {
        vec![
            CacheConfig::new("l1", 4 * 1024, 1, 32, 2),
            CacheConfig::new("l2", 16 * 1024, 2, 32, 8),
            CacheConfig::new("l3", 128 * 1024, 4, 64, 18),
            CacheConfig::new("l4", 512 * 1024, 4, 128, 34),
            CacheConfig::new("l5", 2 * 1024 * 1024, 8, 128, 70),
        ]
    }

    #[test]
    fn energy_grows_monotonically_with_capacity() {
        let m = EnergyModel::default();
        let energies: Vec<f64> = paper_caches().iter().map(|c| m.cache_read_energy(c)).collect();
        for w in energies.windows(2) {
            assert!(w[1] > w[0], "energy must grow with cache level: {energies:?}");
        }
    }

    #[test]
    fn energy_scales_sublinearly_with_capacity() {
        // CACTI-like: 512x capacity should cost far less than 512x energy.
        let m = EnergyModel::default();
        let e1 = m.cache_read_energy(&CacheConfig::new("a", 4 * 1024, 1, 32, 1));
        let e512 = m.cache_read_energy(&CacheConfig::new("b", 2 * 1024 * 1024, 8, 128, 1));
        assert!(e512 / e1 < 100.0, "ratio {}", e512 / e1);
        assert!(e512 / e1 > 4.0, "ratio {}", e512 / e1);
    }

    #[test]
    fn reasonable_absolute_magnitudes_for_180nm() {
        let m = EnergyModel::default();
        let l1 = m.cache_read_energy(&CacheConfig::new("l1", 4 * 1024, 1, 32, 2));
        let l5 = m.cache_read_energy(&CacheConfig::new("l5", 2 * 1024 * 1024, 8, 128, 70));
        assert!((0.05..2.0).contains(&l1), "L1 read {l1} nJ");
        assert!((0.5..20.0).contains(&l5), "L5 read {l5} nJ");
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let m = EnergyModel::default();
        for c in paper_caches() {
            assert!(m.cache_write_energy(&c) > m.cache_read_energy(&c));
        }
    }

    #[test]
    fn mnm_structures_are_much_cheaper_than_caches() {
        // Paper §4.2: "compared to the caches the delay and power
        // consumption is very small". CMNM_8_12 is the largest table:
        // 8 * 4096 * 3 bits.
        let m = EnergyModel::default();
        let cmnm = m.small_array_energy(8 * 4096 * 3);
        let l2 = m.cache_read_energy(&CacheConfig::new("l2", 16 * 1024, 2, 32, 8));
        assert!(cmnm < l2, "CMNM {cmnm} nJ must be below an L2 probe {l2} nJ");
    }

    #[test]
    fn smnm_checker_energy_grows_with_width() {
        let m = EnergyModel::default();
        let small = m.smnm_checker_energy(651, 10);
        let large = m.smnm_checker_energy(2871, 20);
        assert!(large > small);
        assert!(small > 0.0);
    }

    #[test]
    fn zero_bits_costs_nothing() {
        assert_eq!(EnergyModel::default().small_array_energy(0), 0.0);
    }
}
