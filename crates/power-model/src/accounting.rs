//! Turning simulation counters into energy totals.

use cache_sim::{AccessKind, Hierarchy};

use crate::cacti::EnergyModel;

/// Energy totals for one cache structure, in nJ.
#[derive(Debug, Clone, PartialEq)]
pub struct StructureEnergy {
    /// Structure name ("dl1", "ul3", ...).
    pub name: String,
    /// Energy of all performed probes (hits + misses).
    pub probe_nj: f64,
    /// Energy of probes that missed — the waste the MNM eliminates
    /// (Figure 3's numerator).
    pub miss_probe_nj: f64,
    /// Energy of line fills.
    pub fill_nj: f64,
    /// Energy of write-back traffic this structure sent to its next level
    /// (charged as writes at the receiving cache).
    pub writeback_nj: f64,
}

impl StructureEnergy {
    /// Total energy charged to this structure.
    pub fn total_nj(&self) -> f64 {
        self.probe_nj + self.fill_nj + self.writeback_nj
    }
}

/// Energy breakdown of a whole cache system after a simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEnergyBreakdown {
    /// Per-structure totals.
    pub structures: Vec<StructureEnergy>,
}

impl CacheEnergyBreakdown {
    /// Total cache energy (probes + fills), in nJ.
    pub fn total_nj(&self) -> f64 {
        self.structures.iter().map(StructureEnergy::total_nj).sum()
    }

    /// Energy of miss probes, in nJ.
    pub fn miss_probe_nj(&self) -> f64 {
        self.structures.iter().map(|s| s.miss_probe_nj).sum()
    }

    /// Fraction of the total cache energy spent on probes that missed
    /// (paper Figure 3).
    pub fn miss_fraction(&self) -> f64 {
        let total = self.total_nj();
        if total == 0.0 {
            0.0
        } else {
            self.miss_probe_nj() / total
        }
    }
}

/// Charge every probe and fill recorded in the hierarchy's statistics.
///
/// Bypassed probes cost nothing — that is exactly the serial MNM's saving
/// (paper §4.4).
pub fn account_hierarchy(hierarchy: &Hierarchy, model: &EnergyModel) -> CacheEnergyBreakdown {
    let stats = hierarchy.stats();
    let structures = hierarchy
        .structures()
        .iter()
        .map(|info| {
            let cfg = hierarchy.cache(info.id).config();
            let st = stats.structures[info.id.index()];
            let read = model.cache_read_energy(cfg);
            let write = model.cache_write_energy(cfg);
            // Writebacks are charged as writes at the next level on this
            // structure's path; the outermost level writes to memory,
            // which is not cache energy.
            let path = if info.instr_only {
                hierarchy.path(AccessKind::InstrFetch)
            } else {
                hierarchy.path(AccessKind::Load)
            };
            let next_write = path
                .iter()
                .position(|sid| *sid == info.id)
                .and_then(|pos| path.get(pos + 1))
                .map(|next| model.cache_write_energy(hierarchy.cache(*next).config()))
                .unwrap_or(0.0);
            StructureEnergy {
                name: info.name.clone(),
                probe_nj: st.probes as f64 * read,
                miss_probe_nj: st.misses as f64 * read,
                fill_nj: st.fills as f64 * write,
                writeback_nj: st.writebacks as f64 * next_write,
            }
        })
        .collect();
    CacheEnergyBreakdown { structures }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{Access, BypassSet, HierarchyConfig};

    #[test]
    fn cold_misses_dominate_energy_on_cold_hierarchy() {
        let mut h = Hierarchy::new(HierarchyConfig::paper_five_level());
        for i in 0..64u64 {
            h.access(Access::load(i * 4096), &BypassSet::none());
        }
        let b = account_hierarchy(&h, &EnergyModel::default());
        // All probes missed, so miss fraction = probe share of total.
        assert!(b.miss_fraction() > 0.3, "fraction {}", b.miss_fraction());
        assert!(b.total_nj() > 0.0);
        assert_eq!(b.structures.len(), 7);
    }

    #[test]
    fn warm_hits_have_zero_miss_energy() {
        let mut h = Hierarchy::new(HierarchyConfig::paper_five_level());
        h.access(Access::load(0x100), &BypassSet::none());
        h.reset_stats();
        for _ in 0..100 {
            h.access(Access::load(0x100), &BypassSet::none());
        }
        let b = account_hierarchy(&h, &EnergyModel::default());
        assert_eq!(b.miss_probe_nj(), 0.0);
        assert!(b.total_nj() > 0.0);
        assert_eq!(b.miss_fraction(), 0.0);
    }

    #[test]
    fn bypasses_reduce_total_energy() {
        let cfg = HierarchyConfig::paper_five_level();
        let mut plain = Hierarchy::new(cfg.clone());
        let mut bypassing = Hierarchy::new(cfg);
        for i in 0..64u64 {
            let access = Access::load(i * 4096);
            plain.access(access, &BypassSet::none());
            let bypass: BypassSet = bypassing.dry_run_misses(access).into_iter().collect();
            bypassing.access(access, &bypass);
        }
        let m = EnergyModel::default();
        let e_plain = account_hierarchy(&plain, &m).total_nj();
        let e_bypass = account_hierarchy(&bypassing, &m).total_nj();
        assert!(e_bypass < e_plain, "bypassing must save energy: {e_bypass} vs {e_plain}");
    }
}
