//! Integration sweep: the one-sided soundness invariant for every filter
//! preset across all 20 named application profiles, plus the checker's
//! own acceptance test — a deliberately unsound filter must be caught
//! and shrunk to a tiny reproducer.
//!
//! Quick mode: trace lengths are sized so the whole sweep stays in the
//! normal `cargo test` budget; `jsn check --seeds 64` is the deep sweep.

use cache_sim::{Access, BypassSet, CacheEvent, Hierarchy, ProbeRecord, StructureId};
use mnm_check::{
    check_ops, render_ops, shrink_ops, CheckFilter, Scenario, TraceGen, ViolationKind,
    DEFAULT_FILTERS,
};
use mnm_core::{Mnm, MnmConfig};
use trace_synth::profiles;

/// Every filter preset, on every named profile: no definite-miss flag may
/// ever land on a resident block, the event stream must conserve blocks,
/// and the stats must reconcile with the reference model.
///
/// The profile generator picks the profile by `seed % 20`, so seeds
/// `0..20` enumerate all of them exactly once per filter.
#[test]
fn every_preset_is_sound_on_every_profile() {
    let num_profiles = profiles::names().len();
    assert_eq!(num_profiles, 20, "the paper models 20 applications");
    for filter in DEFAULT_FILTERS {
        for profile_idx in 0..num_profiles as u64 {
            let scenario = Scenario {
                filter: filter.to_owned(),
                gen: TraceGen::Profile,
                seed: profile_idx,
                len: 1200,
            };
            let report = mnm_check::run_scenario(&scenario).expect("labels are valid");
            assert!(
                report.passed(),
                "{filter} on profile #{profile_idx}:\n{}",
                report.render_failure()
            );
            assert!(report.counters.accesses > 0);
        }
    }
}

/// A wrapper that lies: every `period`-th time a data access targets a
/// block resident in the victim structure, it flags that structure as a
/// definite miss anyway. This is the checker's acceptance gate — the
/// injected unsoundness must be detected and shrink to a minimal
/// reproducer well under 32 accesses.
struct InjectedUnsound {
    inner: Mnm,
    target: StructureId,
    period: u64,
    lies_told: u64,
}

impl CheckFilter for InjectedUnsound {
    fn query(&mut self, hierarchy: &Hierarchy, access: Access) -> BypassSet {
        let mut set = CheckFilter::query(&mut self.inner, hierarchy, access);
        if !access.kind.is_instruction() && hierarchy.contains(self.target, access.addr) {
            self.lies_told += 1;
            if self.lies_told.is_multiple_of(self.period) {
                set.insert(self.target);
            }
        }
        set
    }

    fn observe_events(&mut self, hierarchy: &Hierarchy, events: &[CacheEvent]) {
        CheckFilter::observe_events(&mut self.inner, hierarchy, events);
    }

    fn note_probes(&mut self, access: Access, probes: &[ProbeRecord]) {
        CheckFilter::note_probes(&mut self.inner, access, probes);
    }

    fn flush_system(&mut self, hierarchy: &mut Hierarchy) {
        CheckFilter::flush_system(&mut self.inner, hierarchy);
    }
}

#[test]
fn injected_unsound_filter_is_caught_and_shrinks_small() {
    let scenario =
        Scenario { filter: "HMNM2".to_owned(), gen: TraceGen::Aliasing, seed: 0x5EED, len: 2000 };
    let ops = scenario.gen.generate(scenario.seed, scenario.len);

    let build = |hier: &Hierarchy| {
        let target = hier.structures().iter().find(|s| s.name == "ul2").unwrap().id;
        InjectedUnsound {
            inner: Mnm::new(hier, MnmConfig::parse("HMNM2").unwrap()),
            target,
            period: 5,
            lies_told: 0,
        }
    };

    let mut hier = scenario.hierarchy();
    let mut evil = build(&hier);
    let (_, violation) = check_ops(&ops, &mut hier, &mut evil);
    let violation = violation.expect("the injected unsoundness must be detected");
    assert_eq!(violation.kind, ViolationKind::UnsoundFlag);
    assert!(violation.detail.contains("ul2"), "{}", violation.detail);

    let shrunk = shrink_ops(&ops, |candidate| {
        let mut h = scenario.hierarchy();
        let mut f = build(&h);
        check_ops(candidate, &mut h, &mut f).1.is_some()
    });
    assert!(
        shrunk.len() <= 32,
        "reproducer must be minimal, got {} ops:\n{}",
        shrunk.len(),
        render_ops(&shrunk)
    );
    // 1-minimality: the shrunk stream still fails, and replaying it
    // reproduces the same violation class.
    let mut h = scenario.hierarchy();
    let mut f = build(&h);
    let (_, v) = check_ops(&shrunk, &mut h, &mut f);
    assert_eq!(v.expect("shrunk trace still fails").kind, ViolationKind::UnsoundFlag);
}

/// The combined-flush invariant end to end: a checked flush-heavy replay
/// passes (caches and filter clear together), while flushing only the
/// hierarchy mid-trace — the bug class `Mnm::flush_system` exists to
/// prevent — is flagged as unsound by the checker.
#[test]
fn hierarchy_only_flush_is_caught_as_unsound() {
    /// Routes `flush_system` to the *filter only*, leaving the caches
    /// warm: the filter goes cold and starts flagging resident blocks.
    struct FilterOnlyFlush(Mnm);

    impl CheckFilter for FilterOnlyFlush {
        fn query(&mut self, hierarchy: &Hierarchy, access: Access) -> BypassSet {
            CheckFilter::query(&mut self.0, hierarchy, access)
        }

        fn observe_events(&mut self, hierarchy: &Hierarchy, events: &[CacheEvent]) {
            CheckFilter::observe_events(&mut self.0, hierarchy, events);
        }

        fn note_probes(&mut self, access: Access, probes: &[ProbeRecord]) {
            CheckFilter::note_probes(&mut self.0, access, probes);
        }

        fn flush_system(&mut self, _hierarchy: &mut Hierarchy) {
            self.0.flush();
        }
    }

    let scenario =
        Scenario { filter: "CMNM_8_12".to_owned(), gen: TraceGen::FlushHeavy, seed: 7, len: 3000 };
    let ops = scenario.gen.generate(scenario.seed, scenario.len);

    // Correctly combined flush: sound.
    let mut hier = scenario.hierarchy();
    let mut mnm = Mnm::new(&hier, MnmConfig::parse("CMNM_8_12").unwrap());
    let (counters, violation) = check_ops(&ops, &mut hier, &mut mnm);
    assert!(violation.is_none(), "{}", violation.unwrap());
    assert!(counters.flushes > 0, "the flush generator must actually flush");

    // Desynchronized flush: the checker convicts the filter within a few
    // ops of the first flush. The exact symptom depends on the trace —
    // a cold filter flagging a still-resident block, the warm caches
    // diverging from the flushed reference model, or a warm cache
    // evicting a block the restarted event ledger never saw placed.
    let mut hier = scenario.hierarchy();
    let mut broken = FilterOnlyFlush(Mnm::new(&hier, MnmConfig::parse("CMNM_8_12").unwrap()));
    let (counters, violation) = check_ops(&ops, &mut hier, &mut broken);
    let v = violation.expect("a filter-only flush must be caught");
    assert!(counters.flushes >= 1, "detection must follow a flush, not precede one: {v}");
}
