//! Engine-identity property sweep: the pipelined and barrier drivers
//! must reproduce the single-threaded reference bit-for-bit across
//! epoch lengths (including degenerate epoch = 1 and the `auto` tuner),
//! core counts, and every adversarial sharing workload — and stay sound
//! while doing it.
//!
//! This is the race-freedom proof for the SPSC pipeline: any lost
//! message, reordered handoff, or mis-rotated rescue window shows up as
//! a report mismatch somewhere in this matrix.

use mnm_check::{MulticoreChecker, MulticoreScenario, ShardWorkload};
use mnm_core::MnmConfig;
use mnm_shard::{autotune_epoch, ShardConfig, ShardedSim};

const WORKLOADS: [ShardWorkload; 3] =
    [ShardWorkload::PingPong, ShardWorkload::FalseSharing, ShardWorkload::EvictionRace];

/// Epoch lengths under test. `None` means `--epoch auto`: the tuner
/// picks a concrete epoch first, then identity is asserted at that
/// epoch (the same contract `jsn shard --epoch auto` provides).
const EPOCHS: [Option<usize>; 5] = [Some(1), Some(7), Some(64), Some(4096), None];

const CORES: [usize; 4] = [1, 2, 4, 8];

fn identity_case(workload: ShardWorkload, cores: usize, epoch: Option<usize>) {
    let mnm = MnmConfig::parse("HMNM4").unwrap();
    let mut config = ShardConfig::new(cores, mnm);
    let len = if epoch == Some(1) { 600 } else { 1_500 };
    let streams = workload.generate(&config, 0xBEEF ^ cores as u64, len, 0.5);
    config.epoch = match epoch {
        Some(e) => e,
        None => autotune_epoch(&config, &streams).0,
    };
    let single = ShardedSim::new(config.clone(), streams.clone()).run_single_threaded();
    let pipelined = ShardedSim::new(config.clone(), streams.clone()).run();
    let barrier = ShardedSim::new(config, streams).run_barrier();
    let label = format!("{} cores={cores} epoch={epoch:?}", workload.name());
    assert_eq!(pipelined, single, "pipelined diverged from single: {label}");
    assert_eq!(barrier, single, "barrier diverged from single: {label}");
    assert_eq!(single.total_unsound(), 0, "unsound verdicts: {label}");
}

#[test]
fn identity_holds_across_epoch_lengths_cores_and_workloads() {
    for workload in WORKLOADS {
        for cores in CORES {
            for epoch in EPOCHS {
                identity_case(workload, cores, epoch);
            }
        }
    }
}

/// The lockstep checker accepts the pipelined schedule: verdicts stay
/// sound at issue time against the application-time frozen image, for
/// every adversarial workload.
#[test]
fn observed_runs_stay_sound_under_the_pipelined_schedule() {
    for workload in WORKLOADS {
        let scenario = MulticoreScenario {
            filter: "HMNM4".to_owned(),
            workload,
            cores: 4,
            sharing_ratio: 0.5,
            seed: 0xFEED,
            len: 3_000,
            epoch: 128,
        };
        let mnm = MnmConfig::parse(&scenario.filter).unwrap();
        let mut config = ShardConfig::new(scenario.cores, mnm);
        config.epoch = scenario.epoch;
        let streams = scenario.workload.generate(
            &config,
            scenario.seed,
            scenario.len,
            scenario.sharing_ratio,
        );
        let mut checker = MulticoreChecker::new(&config);
        let observed = ShardedSim::new(config.clone(), streams.clone())
            .run_single_threaded_observed(&mut checker);
        assert!(checker.violations.is_empty(), "{:?}", checker.violations);
        let pipelined = ShardedSim::new(config, streams).run();
        assert_eq!(pipelined, observed, "{}", scenario.reproducer_line());
    }
}

/// Thread-oversubscription stress for the SPSC handoff: many short
/// 8-core pipelined runs (9 live threads per run) on whatever host this
/// is — including single-core CI containers, where every handoff forces
/// a scheduler round-trip through the ring's yield path. Any dropped or
/// duplicated message diverges the report.
#[test]
fn spsc_handoff_survives_oversubscription() {
    let mnm = MnmConfig::parse("CMNM_8_12").unwrap();
    for round in 0..12u64 {
        let mut config = ShardConfig::new(8, mnm.clone());
        config.epoch = 32; // short epochs -> maximum handoff pressure
        let streams = ShardWorkload::PingPong.generate(&config, round, 400, 0.5);
        let single = ShardedSim::new(config.clone(), streams.clone()).run_single_threaded();
        let pipelined = ShardedSim::new(config, streams).run();
        assert_eq!(pipelined, single, "round {round} diverged");
    }
}
