//! Lockstep equivalence between the fast query paths and the
//! reference dispatch model.
//!
//! The machine's hot loop dispatches statically over `FilterKind` and
//! consults the shared RMNM through a single `miss_mask` tag search per
//! access; the batched `run_many`/`query_many` entry points hoist scratch
//! management out of the per-access loop. None of that may change a single
//! verdict or statistic. This test rebuilds the pre-refactor machine shape
//! — boxed `dyn MissFilter` stacks per slot and one RMNM set scan per
//! guarded structure — from public APIs, replays every filter family over
//! all 20 synthetic application profiles, and requires bit-identical
//! bypass sets on every access, then proves the batched paths produce the
//! same summaries, machine statistics, and hierarchy statistics as the
//! stepped path.

use cache_sim::{
    Access, AccessKind, BatchSummary, BypassSet, CacheEvent, EventKind, Hierarchy, HierarchyConfig,
    ReplayScratch, StructureId,
};
use mnm_check::{Op, TraceGen};
use mnm_core::{
    BloomFilter, Cmnm, Granularity, MissFilter, Mnm, MnmConfig, Rmnm, SmnmFilter, TechniqueConfig,
    TmnmFilter,
};

/// One configuration per filter family, plus the paper's largest hybrid.
const LABELS: [&str; 6] =
    ["RMNM_512_2", "SMNM_13x2", "TMNM_12x3", "CMNM_8_12", "BLOOM_12x2", "HMNM4"];

/// How the seed machine dispatched: one boxed trait object per technique.
fn boxed(t: TechniqueConfig) -> Box<dyn MissFilter> {
    match t {
        TechniqueConfig::Smnm(c) => Box::new(SmnmFilter::new(c)),
        TechniqueConfig::Tmnm(c) => Box::new(TmnmFilter::new(c)),
        TechniqueConfig::Cmnm(c) => Box::new(Cmnm::new(c)),
        TechniqueConfig::Bloom(c) => Box::new(BloomFilter::new(c)),
    }
}

/// The pre-refactor machine shape, rebuilt from public APIs: per-slot
/// `Vec<Box<dyn MissFilter>>` and a per-slot RMNM membership test (one
/// set scan per guarded structure instead of one shared mask).
struct Shadow {
    gran: Granularity,
    structures: Vec<StructureId>,
    filters: Vec<Vec<Box<dyn MissFilter>>>,
    slot_of_structure: Vec<Option<usize>>,
    instr_slots: Vec<usize>,
    data_slots: Vec<usize>,
    rmnm: Option<Rmnm>,
}

impl Shadow {
    fn build(hierarchy: &Hierarchy, config: &MnmConfig) -> Self {
        let gran = Granularity::from_bytes(hierarchy.mnm_granularity());
        let mut structures = Vec::new();
        let mut filters = Vec::new();
        let mut slot_of_structure = vec![None; hierarchy.structures().len()];
        for info in hierarchy.structures() {
            if info.level < 2 {
                continue;
            }
            let max_live = (hierarchy.cache(info.id).config().size_bytes / gran.bytes()) as usize;
            let stack: Vec<Box<dyn MissFilter>> = config
                .techniques_for_level(info.level)
                .into_iter()
                .map(|t| {
                    let mut f = boxed(t);
                    f.reserve(max_live);
                    f
                })
                .collect();
            slot_of_structure[info.id.index()] = Some(structures.len());
            structures.push(info.id);
            filters.push(stack);
        }
        let slot_path = |kind| {
            hierarchy
                .path(kind)
                .iter()
                .filter_map(|sid| slot_of_structure[sid.index()])
                .collect::<Vec<_>>()
        };
        Shadow {
            gran,
            instr_slots: slot_path(AccessKind::InstrFetch),
            data_slots: slot_path(AccessKind::Load),
            rmnm: config.rmnm.map(|rc| Rmnm::new(rc, structures.len())),
            structures,
            filters,
            slot_of_structure,
        }
    }

    fn query(&self, access: Access) -> BypassSet {
        let block = self.gran.block_of(access.addr);
        let slots = if access.kind.is_instruction() { &self.instr_slots } else { &self.data_slots };
        let mut set = BypassSet::none();
        for &si in slots {
            let miss = self.rmnm.as_ref().is_some_and(|r| r.is_definite_miss(si, block))
                || self.filters[si].iter().any(|f| f.is_definite_miss(block));
            if miss {
                set.insert(self.structures[si]);
            }
        }
        set
    }

    fn observe_events(&mut self, events: &[CacheEvent]) {
        for ev in events {
            let Some(si) = self.slot_of_structure[ev.structure.index()] else {
                continue;
            };
            for block in ev.sub_blocks(self.gran.bytes()) {
                match ev.kind {
                    EventKind::Placed => {
                        for f in &mut self.filters[si] {
                            f.on_place(block);
                        }
                        if let Some(r) = &mut self.rmnm {
                            r.on_place(si, block);
                        }
                    }
                    EventKind::Replaced => {
                        for f in &mut self.filters[si] {
                            f.on_replace(block);
                        }
                        if let Some(r) = &mut self.rmnm {
                            r.on_replace(si, block);
                        }
                    }
                    EventKind::Invalidated => {
                        for f in &mut self.filters[si] {
                            f.on_invalidate(block);
                        }
                        if let Some(r) = &mut self.rmnm {
                            r.on_invalidate(si, block);
                        }
                    }
                }
            }
        }
    }
}

/// The access stream of one profile seed (profile traces contain no
/// flush ops, so every op is an access).
fn profile_accesses(seed: u64, len: usize) -> Vec<Access> {
    TraceGen::Profile
        .generate(seed, len)
        .into_iter()
        .map(|op| match op {
            Op::Access(a) => a,
            Op::Flush => unreachable!("profile traces never flush"),
        })
        .collect()
}

#[test]
fn enum_dispatch_matches_the_trait_object_path_on_every_profile() {
    // Seeds 0..20 select all 20 synthetic programs (profile = seed % 20).
    for label in LABELS {
        let config = MnmConfig::parse(label).unwrap();
        for seed in 0..20u64 {
            let trace = profile_accesses(seed, 1_200);
            let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
            let mut mnm = Mnm::new(&hier, config.clone());
            let mut shadow = Shadow::build(&hier, &config);
            let mut scratch = ReplayScratch::new();
            for (i, &access) in trace.iter().enumerate() {
                let expect = shadow.query(access);
                let got = mnm.query(access);
                assert_eq!(
                    got, expect,
                    "{label} seed {seed}: verdicts diverged at access {i} ({access:?})"
                );
                hier.access_with_events(access, &got, &mut scratch);
                mnm.observe_events(scratch.events());
                mnm.note_probes(scratch.probes());
                shadow.observe_events(scratch.events());
            }
            assert!(mnm.stats().accesses > 0);
        }
    }
}

#[test]
fn batched_paths_match_the_stepped_path_exactly() {
    for label in LABELS {
        let config = MnmConfig::parse(label).unwrap();
        let trace = profile_accesses(7, 2_000);

        // Stepped reference: one run_access per element.
        let mut h1 = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut m1 = Mnm::new(&h1, config.clone());
        let mut stepped = BatchSummary::default();
        for &a in &trace {
            stepped.absorb(m1.run_access(&mut h1, a));
        }

        // Batched: run_many over deliberately odd-sized chunks.
        let mut h2 = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut m2 = Mnm::new(&h2, config.clone());
        let mut batched = BatchSummary::default();
        for chunk in trace.chunks(97) {
            batched.merge(m2.run_many(&mut h2, chunk));
        }

        assert_eq!(stepped, batched, "{label}: batch summaries diverged");
        assert_eq!(m1.stats(), m2.stats(), "{label}: machine statistics diverged");
        assert_eq!(h1.stats(), h2.stats(), "{label}: hierarchy statistics diverged");

        // query_many must agree verdict-for-verdict with query. Queries
        // never mutate filter state (only counters), so probing the warm
        // machine twice is legal.
        let probe = &trace[..256];
        let mut out = Vec::new();
        m2.query_many(probe, &mut out);
        for (i, &a) in probe.iter().enumerate() {
            assert_eq!(out[i], m2.query(a), "{label}: query_many diverged at {i}");
        }
    }
}
