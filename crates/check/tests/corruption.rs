//! End-to-end corruption drills: with a `flip` fault plan installed, the
//! checker must catch every injected filter-state bit flip as an
//! `UnsoundFlag` soundness violation and produce a shrunk reproducer.
//!
//! The fault plan is process-global, so every test here serializes on one
//! lock and restores the no-plan state before releasing it.

use std::sync::{Mutex, MutexGuard};

use mnm_check::harness::ViolationKind;
use mnm_check::{run_scenario, Scenario, TraceGen};
use mnm_experiments::faults::{injected, install, FaultPlan};

static FAULT_STATE: Mutex<()> = Mutex::new(());

/// Serialize tests on the process-global fault plan; a panicking peer
/// poisons the mutex but leaves nothing worth protecting.
fn lock_faults() -> MutexGuard<'static, ()> {
    FAULT_STATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn scenario(filter: &str) -> Scenario {
    Scenario { filter: filter.to_owned(), gen: TraceGen::Aliasing, seed: 0x51, len: 1500 }
}

#[test]
fn every_injected_flip_is_caught_with_a_reproducer() {
    let _guard = lock_faults();
    install(Some(FaultPlan::parse("seed=11,flip=1/1").unwrap()));

    for filter in ["TMNM_12x1", "SMNM_13x2", "CMNM_8_12"] {
        let report = run_scenario(&scenario(filter)).unwrap();
        let violation = report
            .violation
            .unwrap_or_else(|| panic!("{filter}: injected bit flip escaped the checker"));
        assert_eq!(violation.kind, ViolationKind::UnsoundFlag, "{filter}");
        assert!(
            violation.detail.contains("flagged a definite miss"),
            "{filter}: {}",
            violation.detail
        );
        let repro = report.reproducer.expect("shrunk reproducer");
        assert!(!repro.is_empty(), "{filter}: reproducer must retain the witness");
        assert!(
            repro.len() < 1500 / 2 + 1,
            "{filter}: reproducer did not shrink below the checked stream ({} ops)",
            repro.len()
        );
    }

    // Every corruption was logged as an injected fault.
    let flips: Vec<_> = injected().into_iter().filter(|f| f.kind == "flip").collect();
    assert_eq!(flips.len(), 3, "one recorded flip per corrupted scenario");

    install(None);
}

#[test]
fn corrupted_runs_are_deterministic() {
    let _guard = lock_faults();
    install(Some(FaultPlan::parse("seed=23,flip=1/1").unwrap()));

    let a = run_scenario(&scenario("SMNM_13x2")).unwrap();
    let b = run_scenario(&scenario("SMNM_13x2")).unwrap();
    let index = |r: &mnm_check::ScenarioReport| r.violation.as_ref().map(|v| (v.index, v.kind));
    assert_eq!(index(&a), index(&b));
    assert_eq!(a.reproducer.map(|o| o.len()), b.reproducer.map(|o| o.len()));

    install(None);
}

#[test]
fn the_oracle_filter_is_never_corrupted() {
    let _guard = lock_faults();
    install(Some(FaultPlan::parse("seed=3,flip=1/1").unwrap()));

    let report = run_scenario(&scenario("PERFECT")).unwrap();
    assert!(report.violation.is_none(), "the perfect filter has no state to flip");

    install(None);
}

#[test]
fn without_a_plan_the_scenario_runs_clean() {
    let _guard = lock_faults();
    install(None);

    let report = run_scenario(&scenario("TMNM_12x1")).unwrap();
    assert!(report.violation.is_none());
    assert!(injected().is_empty());
}
