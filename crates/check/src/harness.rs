//! The differential replay harness.
//!
//! [`check_ops`] drives an op stream through three models in lockstep:
//!
//! 1. the real [`Hierarchy`] with the filter-under-test supplying bypass
//!    sets,
//! 2. the independent [`RefModel`](crate::reference::RefModel), which
//!    always probes everything, and
//! 3. a per-structure live-block ledger folded from the hierarchy's
//!    placement/replacement event stream.
//!
//! Per access it asserts the paper's one-sided contract (§3.6): every
//! structure the filter flags as a *definite miss* must actually not hold
//! the block — in the hierarchy **and** in the reference model — before
//! the access is driven. Per event it asserts block conservation (every
//! placement is new, every replacement was live). Periodically and at the
//! end it reconciles `HierarchyStats` and full residency against the
//! reference. The first violation stops the replay; the harness never
//! lets an unsound bypass reach the hierarchy (which would abort debug
//! builds via its own assertion before the violation could be reported).

use std::collections::HashSet;

use cache_sim::{Access, BypassSet, CacheEvent, EventKind, Hierarchy, ProbeRecord, ReplayScratch};
use mnm_core::{perfect_bypass, Mnm, PerfectFilter};

use crate::generate::Op;
use crate::reference::RefModel;

/// Residency and stats are fully reconciled every this many accesses (and
/// once more at the end of the stream).
const FULL_AUDIT_PERIOD: u64 = 1024;

/// A filter that can be driven by the checker: the
/// [`AccessFilter`](cache_sim::AccessFilter) protocol plus the combined
/// flush step of a full-system flush.
pub trait CheckFilter {
    /// Decide which structures `access` may bypass.
    fn query(&mut self, hierarchy: &Hierarchy, access: Access) -> BypassSet;

    /// Observe the placement/replacement events the access caused.
    fn observe_events(&mut self, _hierarchy: &Hierarchy, _events: &[CacheEvent]) {}

    /// Observe the probe trail of the completed access.
    fn note_probes(&mut self, _access: Access, _probes: &[ProbeRecord]) {}

    /// Flush the caches *and* this filter's state in one step. The default
    /// suits stateless filters; stateful ones must clear themselves here —
    /// clearing only one side is exactly the bug class the flush-heavy
    /// generator hunts.
    fn flush_system(&mut self, hierarchy: &mut Hierarchy) {
        hierarchy.flush();
    }
}

impl CheckFilter for Mnm {
    fn query(&mut self, _hierarchy: &Hierarchy, access: Access) -> BypassSet {
        Mnm::query(self, access)
    }

    fn observe_events(&mut self, _hierarchy: &Hierarchy, events: &[CacheEvent]) {
        Mnm::observe_events(self, events);
    }

    fn note_probes(&mut self, _access: Access, probes: &[ProbeRecord]) {
        Mnm::note_probes(self, probes);
    }

    fn flush_system(&mut self, hierarchy: &mut Hierarchy) {
        Mnm::flush_system(self, hierarchy);
    }
}

impl CheckFilter for PerfectFilter {
    fn query(&mut self, hierarchy: &Hierarchy, access: Access) -> BypassSet {
        perfect_bypass(hierarchy, access)
    }
}

/// What kind of invariant a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A "definite miss" flag on a structure that holds the block.
    UnsoundFlag,
    /// The event stream placed a live block or replaced a dead one.
    Conservation,
    /// Hierarchy and reference model disagree on resident blocks.
    ResidencyDivergence,
    /// `HierarchyStats` does not reconcile with the reference counters.
    StatsDivergence,
    /// Hierarchy and reference model disagree on the supplying level.
    SupplyDivergence,
}

/// One invariant violation, pinned to the op that exposed it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Index into the op stream.
    pub index: usize,
    /// Invariant class.
    pub kind: ViolationKind,
    /// Human-readable description with structure names and addresses.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "op {}: {:?}: {}", self.index, self.kind, self.detail)
    }
}

/// Work counters of one checked replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckCounters {
    /// Accesses driven.
    pub accesses: u64,
    /// Full-system flushes executed.
    pub flushes: u64,
    /// Structure flags validated against actual contents.
    pub flags: u64,
    /// Accesses with at least one flagged structure.
    pub flagged_accesses: u64,
    /// Full residency/stats reconciliations performed.
    pub audits: u64,
}

/// Replay `ops` through `hierarchy` with `filter`, checking every
/// invariant. Returns the work counters and the first violation, if any.
///
/// The hierarchy must be fresh (empty caches, zero stats) and must use
/// `Lru`/`Fifo` replacement and the non-inclusive fill policy — the
/// invariants are stated against that regime.
pub fn check_ops<F: CheckFilter>(
    ops: &[Op],
    hierarchy: &mut Hierarchy,
    filter: &mut F,
) -> (CheckCounters, Option<Violation>) {
    let mut refm = RefModel::new(hierarchy).expect("checker requires Lru/Fifo replacement");
    let mut scratch = ReplayScratch::new();
    let num_structs = hierarchy.structures().len();
    let mut live: Vec<HashSet<u64>> = vec![HashSet::new(); num_structs];
    let mut ev_fills = vec![0u64; num_structs];
    let mut ev_evictions = vec![0u64; num_structs];
    let mut ev_invalidations = vec![0u64; num_structs];
    let mut counters = CheckCounters::default();

    for (index, op) in ops.iter().enumerate() {
        let fail = |kind, detail| Some(Violation { index, kind, detail });
        match *op {
            Op::Flush => {
                // The combined step: caches and filter state clear
                // together (the satellite invariant of this checker).
                // Flushed blocks leave no Replaced events, so the event
                // ledger restarts alongside the (also reset) stats.
                filter.flush_system(hierarchy);
                refm.flush();
                for set in &mut live {
                    set.clear();
                }
                ev_fills.fill(0);
                ev_evictions.fill(0);
                ev_invalidations.fill(0);
                counters.flushes += 1;
            }
            Op::Access(access) => {
                counters.accesses += 1;
                let bypass = filter.query(hierarchy, access);

                // (a) One-sided soundness, checked before the access can
                // perturb anything. Only flags the hierarchy would act on
                // count: on-path structures beyond L1.
                let mut flags = 0u64;
                for &sid in hierarchy.path(access.kind) {
                    if hierarchy.structures()[sid.index()].level < 2 || !bypass.contains(sid) {
                        continue;
                    }
                    flags += 1;
                    let name = &hierarchy.structures()[sid.index()].name;
                    if hierarchy.contains(sid, access.addr) {
                        return (
                            counters,
                            fail(
                                ViolationKind::UnsoundFlag,
                                format!(
                                    "{name} holds {:#x} but was flagged a definite miss",
                                    access.addr
                                ),
                            ),
                        );
                    }
                    if refm.contains(sid, access.addr) {
                        return (
                            counters,
                            fail(
                                ViolationKind::UnsoundFlag,
                                format!(
                                    "reference model holds {:#x} in {name} (hierarchy does \
                                     not): residency already diverged",
                                    access.addr
                                ),
                            ),
                        );
                    }
                }
                counters.flags += flags;
                if flags > 0 {
                    counters.flagged_accesses += 1;
                }

                let result = hierarchy.access_with_events(access, &bypass, &mut scratch);

                // (b) Block conservation over the event stream.
                for ev in scratch.events() {
                    let idx = ev.structure.index();
                    let name = &hierarchy.structures()[idx].name;
                    match ev.kind {
                        EventKind::Placed => {
                            ev_fills[idx] += 1;
                            if !live[idx].insert(ev.block_base) {
                                return (
                                    counters,
                                    fail(
                                        ViolationKind::Conservation,
                                        format!(
                                            "{name}: block {:#x} placed while already live",
                                            ev.block_base
                                        ),
                                    ),
                                );
                            }
                        }
                        EventKind::Replaced | EventKind::Invalidated => {
                            if ev.kind == EventKind::Replaced {
                                ev_evictions[idx] += 1;
                            } else {
                                ev_invalidations[idx] += 1;
                            }
                            if !live[idx].remove(&ev.block_base) {
                                return (
                                    counters,
                                    fail(
                                        ViolationKind::Conservation,
                                        format!(
                                            "{name}: block {:#x} removed but never placed",
                                            ev.block_base
                                        ),
                                    ),
                                );
                            }
                        }
                    }
                }

                filter.observe_events(hierarchy, scratch.events());
                filter.note_probes(access, scratch.probes());

                // (c) Reference model lockstep.
                let ref_supply = refm.access(access);
                if ref_supply != result.supply_level {
                    return (
                        counters,
                        fail(
                            ViolationKind::SupplyDivergence,
                            format!(
                                "access {:#x}: hierarchy supplied from level {}, reference \
                                 from level {ref_supply}",
                                access.addr, result.supply_level
                            ),
                        ),
                    );
                }

                if counters.accesses % FULL_AUDIT_PERIOD == 0 {
                    counters.audits += 1;
                    if let Some(v) =
                        audit(hierarchy, &refm, &live, &ev_fills, &ev_evictions, &ev_invalidations)
                    {
                        return (counters, Some(Violation { index, ..v }));
                    }
                }
            }
        }
    }

    counters.audits += 1;
    let last = ops.len().saturating_sub(1);
    let end_violation = audit(hierarchy, &refm, &live, &ev_fills, &ev_evictions, &ev_invalidations)
        .map(|v| Violation { index: last, ..v });
    (counters, end_violation)
}

/// Full reconciliation: residency equality (hierarchy vs event ledger vs
/// reference) and counter identities per structure. Returns the first
/// discrepancy with a placeholder index of 0 (the caller pins it).
fn audit(
    hierarchy: &Hierarchy,
    refm: &RefModel,
    live: &[HashSet<u64>],
    ev_fills: &[u64],
    ev_evictions: &[u64],
    ev_invalidations: &[u64],
) -> Option<Violation> {
    let fail = |kind, detail| Some(Violation { index: 0, kind, detail });
    for info in hierarchy.structures() {
        let idx = info.id.index();
        let name = &info.name;
        let st = hierarchy.stats().structures[idx];
        let rc = refm.structure(idx);

        // Counter reconciliation: a sound bypass replaces exactly one
        // probe-and-miss, so probes shift between columns but their sum is
        // conserved, and fills/evictions are untouched.
        let checks: [(&str, u64, u64); 5] = [
            ("probes+bypasses", st.probes + st.bypasses, rc.probes),
            ("hits", st.hits, rc.hits),
            ("misses+bypasses", st.misses + st.bypasses, rc.misses),
            ("fills", st.fills, rc.fills),
            ("evictions", st.evictions, rc.evictions),
        ];
        for (what, got, want) in checks {
            if got != want {
                return fail(
                    ViolationKind::StatsDivergence,
                    format!("{name}: {what} = {got}, reference says {want}"),
                );
            }
        }

        // Event-ledger identities: fills = evictions + invalidations +
        // live set, and the ledger agrees with the stats counters.
        if ev_fills[idx] != st.fills
            || ev_evictions[idx] != st.evictions
            || ev_invalidations[idx] != st.invalidations
        {
            return fail(
                ViolationKind::Conservation,
                format!(
                    "{name}: event stream saw {}/{}/{} fills/evictions/invalidations, \
                     stats say {}/{}/{}",
                    ev_fills[idx],
                    ev_evictions[idx],
                    ev_invalidations[idx],
                    st.fills,
                    st.evictions,
                    st.invalidations
                ),
            );
        }
        if ev_fills[idx] != ev_evictions[idx] + ev_invalidations[idx] + live[idx].len() as u64 {
            return fail(
                ViolationKind::Conservation,
                format!(
                    "{name}: fills ({}) != evictions ({}) + invalidations ({}) + live blocks ({})",
                    ev_fills[idx],
                    ev_evictions[idx],
                    ev_invalidations[idx],
                    live[idx].len()
                ),
            );
        }

        // Residency: hierarchy, event ledger, and reference must hold
        // exactly the same blocks.
        let mut main: Vec<u64> = hierarchy.cache(info.id).resident_blocks().collect();
        main.sort_unstable();
        let mut ledger: Vec<u64> = live[idx].iter().copied().collect();
        ledger.sort_unstable();
        if main != ledger {
            return fail(
                ViolationKind::Conservation,
                format!(
                    "{name}: event ledger tracks {} blocks, cache holds {}",
                    ledger.len(),
                    main.len()
                ),
            );
        }
        let reference = rc.resident();
        if main != reference {
            return fail(
                ViolationKind::ResidencyDivergence,
                format!("{name}: cache holds {} blocks, reference {}", main.len(), reference.len()),
            );
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::TraceGen;
    use cache_sim::{CacheConfig, HierarchyConfig, LevelConfig, StructureId};
    use mnm_core::MnmConfig;

    fn tiny() -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            levels: vec![
                LevelConfig::Split {
                    instr: CacheConfig::new("il1", 128, 1, 32, 1),
                    data: CacheConfig::new("dl1", 128, 1, 32, 1),
                },
                LevelConfig::Unified(CacheConfig::new("ul2", 512, 2, 32, 8)),
                LevelConfig::Unified(CacheConfig::new("ul3", 2048, 4, 64, 18)),
            ],
            memory_latency: 100,
            inclusive: false,
        })
    }

    #[test]
    fn sound_filters_pass_every_generator() {
        for gen in TraceGen::ALL {
            let ops = gen.generate(11, 1500);
            let mut hier = tiny();
            let mut mnm = Mnm::new(&hier, MnmConfig::hmnm(4));
            let (counters, violation) = check_ops(&ops, &mut hier, &mut mnm);
            assert!(violation.is_none(), "{}: {}", gen.name(), violation.unwrap());
            assert!(counters.accesses > 0);
            assert!(counters.audits > 0);
        }
    }

    #[test]
    fn perfect_filter_passes_and_flags_aggressively() {
        let ops = TraceGen::Aliasing.generate(3, 2000);
        let mut hier = tiny();
        let (counters, violation) = check_ops(&ops, &mut hier, &mut PerfectFilter);
        assert!(violation.is_none(), "{}", violation.unwrap());
        assert!(counters.flags > 0, "the oracle must flag misses in a thrashing arena");
    }

    /// A deliberately unsound filter: every k-th time a data access
    /// targets a block resident in the target structure, it flags that
    /// structure anyway — the exact lie the contract forbids.
    struct Evil {
        inner: Mnm,
        target: StructureId,
        every: u64,
        n: u64,
    }

    impl CheckFilter for Evil {
        fn query(&mut self, hierarchy: &Hierarchy, access: Access) -> BypassSet {
            let mut set = CheckFilter::query(&mut self.inner, hierarchy, access);
            if !access.kind.is_instruction() && hierarchy.contains(self.target, access.addr) {
                self.n += 1;
                if self.n.is_multiple_of(self.every) {
                    set.insert(self.target);
                }
            }
            set
        }

        fn observe_events(&mut self, hierarchy: &Hierarchy, events: &[CacheEvent]) {
            CheckFilter::observe_events(&mut self.inner, hierarchy, events);
        }

        fn note_probes(&mut self, access: Access, probes: &[ProbeRecord]) {
            CheckFilter::note_probes(&mut self.inner, access, probes);
        }

        fn flush_system(&mut self, hierarchy: &mut Hierarchy) {
            CheckFilter::flush_system(&mut self.inner, hierarchy);
        }
    }

    #[test]
    fn unsound_flags_are_caught_before_reaching_the_hierarchy() {
        let ops = TraceGen::Aliasing.generate(5, 400);
        let mut hier = tiny();
        let ul2 = hier.structures().iter().find(|s| s.name == "ul2").unwrap().id;
        let mut evil =
            Evil { inner: Mnm::new(&hier, MnmConfig::hmnm(1)), target: ul2, every: 7, n: 0 };
        let (_, violation) = check_ops(&ops, &mut hier, &mut evil);
        let v = violation.expect("the evil filter must be caught");
        assert_eq!(v.kind, ViolationKind::UnsoundFlag);
        assert!(v.detail.contains("ul2"), "{}", v.detail);
    }
}
