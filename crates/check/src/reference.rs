//! An independent naive reference model of the cache hierarchy.
//!
//! This is a from-scratch re-implementation of the hierarchy's residency
//! semantics — probe the access path in order until a hit, fill every
//! structure below the supplier — sharing **no code** with
//! `cache_sim::Cache`. The differential harness replays every access
//! through both and cross-checks residency, per-structure counters, and
//! the supplying level, so a bookkeeping bug in either implementation
//! surfaces as a divergence instead of silently corrupting results.
//!
//! The reference never sees bypass sets: it always probes everything. A
//! *sound* filter only skips probes that would have missed, so the two
//! models must agree on every fill, eviction, and supply level; any
//! disagreement convicts the filter (or one of the models).
//!
//! Only `Lru` and `Fifo` replacement are supported. `Random` uses a
//! per-cache private xorshift stream whose reproduction here would defeat
//! the "independent implementation" purpose.

use cache_sim::{Access, AccessKind, Hierarchy, ReplacementPolicy, StructureId};

#[derive(Debug, Clone, Copy)]
struct RefLine {
    valid: bool,
    block: u64,
    stamp: u64,
}

/// One set-associative structure of the reference model.
#[derive(Debug)]
pub struct RefCache {
    name: String,
    level: u8,
    sets: u64,
    assoc: usize,
    block_shift: u32,
    /// Whether a hit refreshes the stamp (LRU) or not (FIFO).
    touch_on_hit: bool,
    lines: Vec<RefLine>,
    clock: u64,
    /// Cumulative counters, reconciled against `HierarchyStats`.
    pub probes: u64,
    /// Probe hits.
    pub hits: u64,
    /// Probe misses.
    pub misses: u64,
    /// Blocks installed (excluding refreshes of resident blocks).
    pub fills: u64,
    /// Blocks displaced by fills.
    pub evictions: u64,
}

impl RefCache {
    fn block_of(&self, addr: u64) -> u64 {
        addr >> self.block_shift
    }

    fn set_base(&self, block: u64) -> usize {
        ((block % self.sets) as usize) * self.assoc
    }

    fn lookup(&mut self, addr: u64) -> bool {
        let block = self.block_of(addr);
        let base = self.set_base(block);
        self.clock += 1;
        self.probes += 1;
        for way in 0..self.assoc {
            let line = &mut self.lines[base + way];
            if line.valid && line.block == block {
                if self.touch_on_hit {
                    line.stamp = self.clock;
                }
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    fn fill(&mut self, addr: u64) {
        let block = self.block_of(addr);
        let base = self.set_base(block);
        self.clock += 1;
        let mut victim = None;
        let mut victim_stamp = u64::MAX;
        let mut empty = None;
        for way in 0..self.assoc {
            let line = &self.lines[base + way];
            if line.valid && line.block == block {
                // Already resident (a refill racing a sibling fill):
                // refresh only, like the simulator.
                self.lines[base + way].stamp = self.clock;
                return;
            }
            if !line.valid {
                if empty.is_none() {
                    empty = Some(way);
                }
            } else if line.stamp < victim_stamp {
                victim_stamp = line.stamp;
                victim = Some(way);
            }
        }
        let way = match empty {
            Some(w) => w,
            None => {
                self.evictions += 1;
                victim.expect("full set has a victim")
            }
        };
        self.lines[base + way] = RefLine { valid: true, block, stamp: self.clock };
        self.fills += 1;
    }

    /// Whether the block containing `addr` is resident.
    pub fn contains(&self, addr: u64) -> bool {
        let block = self.block_of(addr);
        let base = self.set_base(block);
        self.lines[base..base + self.assoc].iter().any(|l| l.valid && l.block == block)
    }

    /// Sorted byte base addresses of all resident blocks.
    pub fn resident(&self) -> Vec<u64> {
        let mut out: Vec<u64> =
            self.lines.iter().filter(|l| l.valid).map(|l| l.block << self.block_shift).collect();
        out.sort_unstable();
        out
    }

    /// Structure name (mirrors the hierarchy's).
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// The reference hierarchy: one [`RefCache`] per structure, indexed by
/// [`StructureId::index`], always probed without bypass.
#[derive(Debug)]
pub struct RefModel {
    structs: Vec<RefCache>,
    instr_path: Vec<usize>,
    data_path: Vec<usize>,
    memory_level: u8,
}

impl RefModel {
    /// Mirror the geometry of `hierarchy`.
    ///
    /// # Errors
    ///
    /// Returns a message if any structure uses `Random` replacement.
    pub fn new(hierarchy: &Hierarchy) -> Result<RefModel, String> {
        let mut structs = Vec::new();
        for info in hierarchy.structures() {
            let cfg = hierarchy.cache(info.id).config();
            let touch_on_hit = match cfg.replacement {
                ReplacementPolicy::Lru => true,
                ReplacementPolicy::Fifo => false,
                ReplacementPolicy::Random => {
                    return Err(format!(
                        "reference model cannot mirror Random replacement ({})",
                        info.name
                    ));
                }
            };
            let sets = cfg.size_bytes / (u64::from(cfg.assoc) * cfg.block_bytes);
            let assoc = cfg.assoc as usize;
            structs.push(RefCache {
                name: info.name.clone(),
                level: info.level,
                sets,
                assoc,
                block_shift: cfg.block_bytes.trailing_zeros(),
                touch_on_hit,
                lines: vec![RefLine { valid: false, block: 0, stamp: 0 }; sets as usize * assoc],
                clock: 0,
                probes: 0,
                hits: 0,
                misses: 0,
                fills: 0,
                evictions: 0,
            });
        }
        let to_idx = |ids: &[StructureId]| ids.iter().map(|s| s.index()).collect::<Vec<_>>();
        Ok(RefModel {
            instr_path: to_idx(hierarchy.path(AccessKind::InstrFetch)),
            data_path: to_idx(hierarchy.path(AccessKind::Load)),
            memory_level: hierarchy.memory_level(),
            structs,
        })
    }

    /// Drive one access (always probing every structure on the path) and
    /// return the supplying level.
    pub fn access(&mut self, access: Access) -> u8 {
        let instr = access.kind.is_instruction();
        let path_len = if instr { self.instr_path.len() } else { self.data_path.len() };
        let mut supply = self.memory_level;
        for i in 0..path_len {
            let si = if instr { self.instr_path[i] } else { self.data_path[i] };
            if self.structs[si].lookup(access.addr) {
                supply = self.structs[si].level;
                break;
            }
        }
        for i in 0..path_len {
            let si = if instr { self.instr_path[i] } else { self.data_path[i] };
            if self.structs[si].level >= supply {
                break;
            }
            self.structs[si].fill(access.addr);
        }
        supply
    }

    /// Whether structure `sid` holds the block containing `addr`.
    pub fn contains(&self, sid: StructureId, addr: u64) -> bool {
        self.structs[sid.index()].contains(addr)
    }

    /// The reference structure at raw index `idx`.
    pub fn structure(&self, idx: usize) -> &RefCache {
        &self.structs[idx]
    }

    /// Number of mirrored structures.
    pub fn len(&self) -> usize {
        self.structs.len()
    }

    /// Whether the model mirrors no structures (never true for a valid
    /// hierarchy; present for `len` hygiene).
    pub fn is_empty(&self) -> bool {
        self.structs.is_empty()
    }

    /// Drop all blocks and counters (mirrors `Hierarchy::flush`, which
    /// also resets statistics).
    pub fn flush(&mut self) {
        for s in &mut self.structs {
            for l in &mut s.lines {
                *l = RefLine { valid: false, block: 0, stamp: 0 };
            }
            s.clock = 0;
            s.probes = 0;
            s.hits = 0;
            s.misses = 0;
            s.fills = 0;
            s.evictions = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{BypassSet, CacheConfig, HierarchyConfig, LevelConfig};

    fn tiny() -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            levels: vec![
                LevelConfig::Split {
                    instr: CacheConfig::new("il1", 64, 1, 32, 2),
                    data: CacheConfig::new("dl1", 64, 1, 32, 2),
                },
                LevelConfig::Unified(CacheConfig::new("ul2", 256, 2, 32, 8)),
            ],
            memory_latency: 100,
            inclusive: false,
        })
    }

    #[test]
    fn mirrors_an_unfiltered_replay_exactly() {
        let mut hier = tiny();
        let mut refm = RefModel::new(&hier).unwrap();
        let mut x = 0x2463_5148_u64;
        for i in 0..5_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = x % 0x1000;
            let access = match i % 3 {
                0 => Access::load(addr),
                1 => Access::store(addr),
                _ => Access::fetch(addr),
            };
            let r = hier.access(access, &BypassSet::none());
            let ref_supply = refm.access(access);
            assert_eq!(r.supply_level, ref_supply, "step {i}");
        }
        for info in hier.structures() {
            let idx = info.id.index();
            let st = hier.stats().structures[idx];
            let rc = refm.structure(idx);
            assert_eq!(st.probes, rc.probes, "{} probes", info.name);
            assert_eq!(st.hits, rc.hits, "{} hits", info.name);
            assert_eq!(st.misses, rc.misses, "{} misses", info.name);
            assert_eq!(st.fills, rc.fills, "{} fills", info.name);
            assert_eq!(st.evictions, rc.evictions, "{} evictions", info.name);
            let mut main: Vec<u64> = hier.cache(info.id).resident_blocks().collect();
            main.sort_unstable();
            assert_eq!(main, rc.resident(), "{} residency", info.name);
        }
    }

    #[test]
    fn rejects_random_replacement() {
        let hier = Hierarchy::new(HierarchyConfig {
            levels: vec![LevelConfig::Unified(
                CacheConfig::new("l1", 256, 2, 32, 2).with_replacement(ReplacementPolicy::Random),
            )],
            memory_latency: 50,
            inclusive: false,
        });
        assert!(RefModel::new(&hier).is_err());
    }

    #[test]
    fn flush_empties_the_model() {
        let mut hier = tiny();
        let mut refm = RefModel::new(&hier).unwrap();
        hier.access(Access::load(0x40), &BypassSet::none());
        refm.access(Access::load(0x40));
        let dl1 = hier.structures().iter().find(|s| s.name == "dl1").unwrap().id;
        assert!(refm.contains(dl1, 0x40));
        refm.flush();
        assert!(!refm.contains(dl1, 0x40));
        assert_eq!(refm.structure(dl1.index()).probes, 0);
    }
}
