//! Differential soundness checker for the miss-determination filters.
//!
//! The paper's correctness contract (§3.6) is one-sided: an MNM may say
//! "maybe present" about anything, but a "definite miss" verdict must
//! never be wrong. The simulator enforces this with a `debug_assert!` in
//! the hierarchy's bypass path — which vanishes in release builds and
//! only fires *after* an unsound filter has already been asked to steer
//! the access. This crate closes both gaps: it replays randomized traces
//! through every filter in lockstep with the perfect oracle and an
//! independently implemented reference cache model, validating each
//! definite-miss flag against actual residency *before* the access is
//! driven, checking block conservation over the placement/replacement
//! event stream, and reconciling `HierarchyStats` against the reference
//! counters.
//!
//! When an invariant breaks, the failing trace is shrunk (ddmin-style
//! greedy bisection, [`shrink::shrink_ops`]) to a 1-minimal reproducer
//! and reported together with the `jsn check` command line that replays
//! it.
//!
//! Why the differential design is sound for `Lru`/`Fifo` (and why
//! `Random` is excluded): a sound filter's bypasses skip only lookups
//! that would have missed, so stamp assignments happen in the same order
//! in the filtered and unfiltered machines and victim selection — min
//! stamp, first index on ties — is identical. Residency, fills, and
//! evictions of the filtered hierarchy must therefore exactly equal an
//! unfiltered replay, which is what [`reference::RefModel`] computes.
//! `Random` replacement draws from a private per-cache stream that a
//! bypass would desynchronize, so the checker rejects it up front.

pub mod corrupt;
pub mod generate;
pub mod harness;
pub mod multicore;
pub mod reference;
pub mod shrink;

pub use generate::{render_ops, scenario_seed, splitmix64, Op, TraceGen};
pub use harness::{check_ops, CheckCounters, CheckFilter, Violation, ViolationKind};
pub use multicore::{
    run_multicore_scenario, run_multicore_suite, MulticoreChecker, MulticoreReport,
    MulticoreScenario, ShardWorkload, MULTICORE_FILTERS,
};
pub use reference::{RefCache, RefModel};
pub use shrink::shrink_ops;

use cache_sim::{
    Access, BypassSet, CacheConfig, CacheEvent, Hierarchy, HierarchyConfig, LevelConfig,
    ProbeRecord, ReplacementPolicy,
};
use mnm_core::{Mnm, MnmConfig, PerfectFilter};
use mnm_experiments::json::Json;

/// Filter labels the default suite sweeps: at least one preset per
/// technique family, every hybrid, and the perfect oracle itself (which
/// checks the checker — the oracle flags maximally and must never trip).
pub const DEFAULT_FILTERS: [&str; 11] = [
    "RMNM_128_1",
    "RMNM_512_2",
    "SMNM_13x2",
    "TMNM_12x1",
    "CMNM_8_12",
    "BLOOM_12x2",
    "HMNM1",
    "HMNM2",
    "HMNM3",
    "HMNM4",
    "PERFECT",
];

/// Either filter implementation the suite can drive.
pub enum AnyFilter {
    /// A real MNM configuration.
    Mnm(Box<Mnm>),
    /// The perfect oracle.
    Perfect(PerfectFilter),
}

impl CheckFilter for AnyFilter {
    fn query(&mut self, hierarchy: &Hierarchy, access: Access) -> BypassSet {
        match self {
            AnyFilter::Mnm(m) => CheckFilter::query(m.as_mut(), hierarchy, access),
            AnyFilter::Perfect(p) => CheckFilter::query(p, hierarchy, access),
        }
    }

    fn observe_events(&mut self, hierarchy: &Hierarchy, events: &[CacheEvent]) {
        match self {
            AnyFilter::Mnm(m) => CheckFilter::observe_events(m.as_mut(), hierarchy, events),
            AnyFilter::Perfect(p) => CheckFilter::observe_events(p, hierarchy, events),
        }
    }

    fn note_probes(&mut self, access: Access, probes: &[ProbeRecord]) {
        match self {
            AnyFilter::Mnm(m) => CheckFilter::note_probes(m.as_mut(), access, probes),
            AnyFilter::Perfect(p) => CheckFilter::note_probes(p, access, probes),
        }
    }

    fn flush_system(&mut self, hierarchy: &mut Hierarchy) {
        match self {
            AnyFilter::Mnm(m) => CheckFilter::flush_system(m.as_mut(), hierarchy),
            AnyFilter::Perfect(p) => CheckFilter::flush_system(p, hierarchy),
        }
    }
}

/// Build the filter named by `label` against `hierarchy`.
///
/// # Errors
///
/// Returns a message when the label is neither `PERFECT` nor a valid
/// [`MnmConfig`] label.
pub fn build_filter(label: &str, hierarchy: &Hierarchy) -> Result<AnyFilter, String> {
    if label.eq_ignore_ascii_case("perfect") {
        return Ok(AnyFilter::Perfect(PerfectFilter));
    }
    let config = MnmConfig::parse(label).map_err(|e| e.to_string())?;
    Ok(AnyFilter::Mnm(Box::new(Mnm::new(hierarchy, config))))
}

/// One fully-specified checker run, replayable from its fields alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Filter label (`PERFECT` or an [`MnmConfig`] label).
    pub filter: String,
    /// Trace generator family.
    pub gen: TraceGen,
    /// Generator seed.
    pub seed: u64,
    /// Trace length in ops.
    pub len: usize,
}

impl Scenario {
    /// The `jsn check` invocation that replays exactly this scenario.
    pub fn reproducer_line(&self) -> String {
        format!(
            "jsn check --filter {} --gen {} --seed {:#x} --len {}",
            self.filter,
            self.gen.name(),
            self.seed,
            self.len
        )
    }

    /// The hierarchy this scenario runs on. The choice is a pure function
    /// of the generator so a seed line reproduces the whole machine:
    /// profile traces use the paper's five-level hierarchy; adversarial
    /// traces use a tiny conflict-heavy three-level machine (with a Fifo
    /// outer level so both supported policies stay covered) that the
    /// small arenas can actually thrash.
    pub fn hierarchy(&self) -> Hierarchy {
        match self.gen {
            TraceGen::Profile => Hierarchy::new(HierarchyConfig::paper_five_level()),
            TraceGen::Aliasing | TraceGen::FlushHeavy | TraceGen::Saturation => {
                Hierarchy::new(HierarchyConfig {
                    levels: vec![
                        LevelConfig::Split {
                            instr: CacheConfig::new("il1", 128, 1, 32, 1),
                            data: CacheConfig::new("dl1", 128, 1, 32, 1),
                        },
                        LevelConfig::Unified(CacheConfig::new("ul2", 512, 2, 32, 8)),
                        LevelConfig::Unified(
                            CacheConfig::new("ul3", 2048, 4, 64, 18)
                                .with_replacement(ReplacementPolicy::Fifo),
                        ),
                    ],
                    memory_latency: 100,
                    inclusive: false,
                })
            }
        }
    }
}

/// The outcome of one scenario: counters, plus the violation and its
/// minimized reproducer when the scenario failed.
#[derive(Debug)]
pub struct ScenarioReport {
    /// What was run.
    pub scenario: Scenario,
    /// Work done before the stream ended or the first violation.
    pub counters: CheckCounters,
    /// The first violation, if any.
    pub violation: Option<Violation>,
    /// The 1-minimal op stream still exhibiting a violation (only when
    /// `violation` is set).
    pub reproducer: Option<Vec<Op>>,
}

impl ScenarioReport {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }

    /// Render the failure block: scenario line, violation, minimized
    /// reproducer. Empty string when the scenario passed.
    pub fn render_failure(&self) -> String {
        let Some(violation) = &self.violation else {
            return String::new();
        };
        let mut out = String::new();
        out.push_str("soundness violation\n");
        out.push_str(&format!("  scenario: {}\n", self.scenario.reproducer_line()));
        out.push_str(&format!("  {violation}\n"));
        if let Some(ops) = &self.reproducer {
            out.push_str(&format!("  minimized reproducer ({} ops):\n", ops.len()));
            for line in render_ops(ops).lines() {
                out.push_str(&format!("    {line}\n"));
            }
        }
        out
    }
}

/// Run one scenario: generate the trace, check it, and shrink on failure.
///
/// When the installed fault plan (`JSN_FAULT`) selects this scenario's
/// site for a `flip`, the run goes through
/// [`corrupt::run_corrupted_scenario`] instead: one filter-state bit is
/// flipped mid-trace and the checker is expected to catch the lie.
pub fn run_scenario(scenario: &Scenario) -> Result<ScenarioReport, String> {
    if !scenario.filter.eq_ignore_ascii_case("perfect") {
        if let Some(seed) = mnm_experiments::faults::flip_seed(&corrupt::scenario_site(scenario)) {
            return corrupt::run_corrupted_scenario(scenario, seed);
        }
    }
    run_plain_scenario(scenario)
}

/// The uncorrupted scenario path (also the fallback when no corrupting
/// flip exists for a fault-selected scenario).
pub(crate) fn run_plain_scenario(scenario: &Scenario) -> Result<ScenarioReport, String> {
    let ops = scenario.gen.generate(scenario.seed, scenario.len);
    let mut hierarchy = scenario.hierarchy();
    let mut filter = build_filter(&scenario.filter, &hierarchy)?;
    let (counters, violation) = check_ops(&ops, &mut hierarchy, &mut filter);

    let reproducer = violation.as_ref().map(|_| {
        shrink_ops(&ops, |candidate| {
            let mut h = scenario.hierarchy();
            match build_filter(&scenario.filter, &h) {
                Ok(mut f) => check_ops(candidate, &mut h, &mut f).1.is_some(),
                Err(_) => false,
            }
        })
    });

    Ok(ScenarioReport { scenario: scenario.clone(), counters, violation, reproducer })
}

/// Aggregate outcome of a suite sweep.
#[derive(Debug)]
pub struct SuiteReport {
    /// Every scenario run, in `(filter, gen, seed-index)` order.
    pub scenarios: Vec<ScenarioReport>,
}

impl SuiteReport {
    /// Whether every scenario passed.
    pub fn passed(&self) -> bool {
        self.scenarios.iter().all(ScenarioReport::passed)
    }

    /// The failing scenario reports.
    pub fn failures(&self) -> Vec<&ScenarioReport> {
        self.scenarios.iter().filter(|s| !s.passed()).collect()
    }

    /// Total accesses checked across all scenarios.
    pub fn total_accesses(&self) -> u64 {
        self.scenarios.iter().map(|s| s.counters.accesses).sum()
    }

    /// The machine-readable report (`jsn-check/v1`). Seeds are rendered
    /// as hex strings because they exceed JSON's exact-integer range.
    pub fn to_json(&self) -> Json {
        let scenarios = self
            .scenarios
            .iter()
            .map(|report| {
                let c = report.counters;
                let mut fields = vec![
                    ("filter", Json::str(&report.scenario.filter)),
                    ("gen", Json::str(report.scenario.gen.name())),
                    ("seed", Json::str(&format!("{:#x}", report.scenario.seed))),
                    ("len", Json::num(report.scenario.len as u32)),
                    ("passed", Json::Bool(report.passed())),
                    (
                        "counters",
                        Json::obj(vec![
                            ("accesses", Json::num(c.accesses as f64)),
                            ("flushes", Json::num(c.flushes as f64)),
                            ("flags", Json::num(c.flags as f64)),
                            ("flagged_accesses", Json::num(c.flagged_accesses as f64)),
                            ("audits", Json::num(c.audits as f64)),
                        ]),
                    ),
                ];
                if let Some(v) = &report.violation {
                    fields.push((
                        "violation",
                        Json::obj(vec![
                            ("index", Json::num(v.index as f64)),
                            ("kind", Json::str(&format!("{:?}", v.kind))),
                            ("detail", Json::str(&v.detail)),
                            ("replay", Json::str(&report.scenario.reproducer_line())),
                            (
                                "reproducer",
                                Json::str(
                                    report
                                        .reproducer
                                        .as_deref()
                                        .map(render_ops)
                                        .as_deref()
                                        .unwrap_or(""),
                                ),
                            ),
                        ]),
                    ));
                }
                Json::obj(fields)
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::str("jsn-check/v1")),
            ("passed", Json::Bool(self.passed())),
            ("total_accesses", Json::num(self.total_accesses() as f64)),
            ("scenarios", Json::Arr(scenarios)),
        ])
    }
}

/// Sweep `seeds_per` deterministic seeds of every generator for each
/// filter label. Scenario seeds come from [`scenario_seed`], so the suite
/// is identical across runs and any failure's seed line replays alone.
pub fn run_suite(
    filters: &[&str],
    gens: &[TraceGen],
    seeds_per: u64,
    len: usize,
) -> Result<SuiteReport, String> {
    let mut scenarios = Vec::new();
    for &filter in filters {
        for &gen in gens {
            for k in 0..seeds_per {
                let scenario = Scenario {
                    filter: filter.to_owned(),
                    gen,
                    seed: scenario_seed(filter, gen, k),
                    len,
                };
                scenarios.push(run_scenario(&scenario)?);
            }
        }
    }
    Ok(SuiteReport { scenarios })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_filter_labels_all_build() {
        let scenario = Scenario { filter: String::new(), gen: TraceGen::Aliasing, seed: 0, len: 0 };
        let hier = scenario.hierarchy();
        for label in DEFAULT_FILTERS {
            assert!(build_filter(label, &hier).is_ok(), "{label}");
        }
        assert!(build_filter("NOPE_1", &hier).is_err());
    }

    #[test]
    fn a_small_suite_passes_and_serializes() {
        let report = run_suite(&["HMNM4", "PERFECT"], &TraceGen::ALL, 1, 600).unwrap();
        assert!(report.passed(), "{:?}", report.failures().first().map(|f| f.render_failure()));
        assert_eq!(report.scenarios.len(), 2 * TraceGen::ALL.len());
        assert!(report.total_accesses() > 0);
        let json = report.to_json();
        assert_eq!(json.get("schema").and_then(Json::as_str), Some("jsn-check/v1"));
        assert_eq!(json.get("passed"), Some(&Json::Bool(true)));
        let rendered = json.render_pretty();
        let parsed = Json::parse(&rendered).expect("round-trips");
        assert_eq!(parsed, json);
    }

    #[test]
    fn scenario_reproducer_line_is_replayable_syntax() {
        let s = Scenario {
            filter: "TMNM_12x1".into(),
            gen: TraceGen::FlushHeavy,
            seed: 0xDEAD_BEEF,
            len: 512,
        };
        assert_eq!(
            s.reproducer_line(),
            "jsn check --filter TMNM_12x1 --gen flush --seed 0xdeadbeef --len 512"
        );
    }
}
