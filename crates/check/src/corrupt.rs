//! Filter-state corruption: proving the checker catches soft errors.
//!
//! The fault layer (`mnm_experiments::faults`, `JSN_FAULT` with a `flip`
//! clause) asks this module to flip one bit of MNM filter state mid-trace.
//! The point is *adversarial validation of the checker itself*: a flipped
//! counter or flip-flop makes the filter lie about a resident block, and
//! the harness must report that lie as an [`UnsoundFlag`] violation with a
//! shrunk reproducer — before the bypass can reach the hierarchy.
//!
//! The corrupting flip is found by *guided search*, not blind fuzzing:
//! replay the trace prefix, then — per filter component on the data path —
//! iterate resident blocks of the guarded structure and flip exactly the
//! state bit guarding each one (`Mnm::state_bit_of`). For the SMNM a
//! guarding flip-flop always lies immediately; for TMNM/CMNM/Bloom it lies
//! whenever the counter is 1, which a handful of candidate blocks makes
//! near-certain. A blind-flip fallback covers anything the guided pass
//! misses. The whole search is a pure function of the scenario and the
//! plan's seed, so a failing run replays exactly.
//!
//! [`UnsoundFlag`]: crate::harness::ViolationKind::UnsoundFlag

use cache_sim::{Access, AccessKind, BypassSet, CacheEvent, Hierarchy, ProbeRecord};
use mnm_core::Mnm;

use crate::generate::{splitmix64, Op};
use crate::harness::{check_ops, CheckFilter};
use crate::shrink::shrink_ops;
use crate::{build_filter, AnyFilter, Scenario, ScenarioReport};

/// The fault-injection site of a scenario: `{filter}:{gen}:{seed}`.
pub fn scenario_site(s: &Scenario) -> String {
    format!("{}:{}:{:#x}", s.filter, s.gen.name(), s.seed)
}

/// One bit flip, scheduled by access count: after `after_accesses`
/// queries, flip `bit` of component `(slot, filter)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlipSpec {
    /// Queries answered before the flip lands (the flip applies at the
    /// start of query number `after_accesses`, 0-based).
    pub after_accesses: u64,
    /// Slot index into the MNM's guarded structures.
    pub slot: usize,
    /// Component filter index within the slot.
    pub filter: usize,
    /// State bit to XOR.
    pub bit: u64,
}

/// An [`Mnm`] wrapper that applies a [`FlipSpec`] mid-replay — the
/// checker-side twin of a soft error in filter SRAM.
pub struct CorruptedMnm {
    inner: Box<Mnm>,
    spec: FlipSpec,
    seen: u64,
    applied: bool,
}

impl CorruptedMnm {
    /// Wrap `inner` with one scheduled flip.
    pub fn new(inner: Box<Mnm>, spec: FlipSpec) -> Self {
        CorruptedMnm { inner, spec, seen: 0, applied: false }
    }
}

impl CheckFilter for CorruptedMnm {
    fn query(&mut self, _hierarchy: &Hierarchy, access: Access) -> BypassSet {
        if !self.applied && self.seen == self.spec.after_accesses {
            self.applied = true;
            self.inner.flip_filter_bit(self.spec.slot, self.spec.filter, self.spec.bit);
        }
        self.seen += 1;
        self.inner.query(access)
    }

    fn observe_events(&mut self, _hierarchy: &Hierarchy, events: &[CacheEvent]) {
        self.inner.observe_events(events);
    }

    fn note_probes(&mut self, _access: Access, probes: &[ProbeRecord]) {
        self.inner.note_probes(probes);
    }

    fn flush_system(&mut self, hierarchy: &mut Hierarchy) {
        self.inner.flush_system(hierarchy);
    }
}

/// How many resident blocks each guided/fallback probe samples.
const GUIDED_BLOCKS_PER_COMPONENT: usize = 64;
const FALLBACK_TRIES: u64 = 512;
const FALLBACK_BLOCKS_PER_TRY: usize = 8;

/// Replay `prefix` and search for a bit flip that makes the filter lie
/// about a block then resident in a guarded data-path structure. Returns
/// the (reverted) flip plus the witness access that exposes it.
fn find_unsound_flip(
    scenario: &Scenario,
    prefix: &[Op],
    flip_seed: u64,
) -> Result<Option<(FlipSpec, Access)>, String> {
    let mut hier = scenario.hierarchy();
    let AnyFilter::Mnm(mut mnm) = build_filter(&scenario.filter, &hier)? else {
        return Ok(None); // the oracle has no corruptible state
    };
    // Drive the prefix through the same harness the corrupted replay will
    // use, so the machine state here is exactly the pre-flip state there.
    let (_, violation) = check_ops(prefix, &mut hier, mnm.as_mut());
    if violation.is_some() {
        return Ok(None); // the filter is broken without our help
    }

    let after_accesses = prefix.iter().filter(|op| matches!(op, Op::Access(_))).count() as u64;
    let slot_sids = mnm.slot_structures();
    let load_path = hier.path(AccessKind::Load).to_vec();
    let eligible: Vec<(usize, usize, u64)> = mnm
        .fault_surface()
        .into_iter()
        .filter(|&(si, _, _)| {
            let sid = slot_sids[si];
            hier.structures()[sid.index()].level >= 2 && load_path.contains(&sid)
        })
        .collect();

    let lies = |mnm: &mut Mnm, si: usize, fi: usize, bit: u64, addr: u64| -> bool {
        mnm.flip_filter_bit(si, fi, bit);
        let lied = mnm.query(Access::load(addr)).contains(slot_sids[si]);
        mnm.flip_filter_bit(si, fi, bit); // always revert; the corrupted replay re-applies
        lied
    };

    // Guided pass: flip exactly the bit guarding a resident block.
    for &(si, fi, _) in &eligible {
        let mut blocks: Vec<u64> = hier.cache(slot_sids[si]).resident_blocks().collect();
        if blocks.is_empty() {
            continue;
        }
        let rot = splitmix64(flip_seed ^ ((si as u64) << 8) ^ fi as u64) as usize % blocks.len();
        blocks.rotate_left(rot);
        for &addr in blocks.iter().take(GUIDED_BLOCKS_PER_COMPONENT) {
            let Some(bit) = mnm.state_bit_of(si, fi, addr) else { continue };
            if lies(&mut mnm, si, fi, bit, addr) {
                return Ok(Some((
                    FlipSpec { after_accesses, slot: si, filter: fi, bit },
                    Access::load(addr),
                )));
            }
        }
    }

    // Blind fallback: random bits, sampled resident blocks.
    if !eligible.is_empty() {
        for t in 0..FALLBACK_TRIES {
            let r = splitmix64(flip_seed ^ 0x5eed ^ t);
            let (si, fi, bits) = eligible[r as usize % eligible.len()];
            let bit = splitmix64(r) % bits;
            let blocks: Vec<u64> = hier.cache(slot_sids[si]).resident_blocks().collect();
            if blocks.is_empty() {
                continue;
            }
            let start = splitmix64(r ^ 1) as usize % blocks.len();
            for k in 0..FALLBACK_BLOCKS_PER_TRY.min(blocks.len()) {
                let addr = blocks[(start + k) % blocks.len()];
                if lies(&mut mnm, si, fi, bit, addr) {
                    return Ok(Some((
                        FlipSpec { after_accesses, slot: si, filter: fi, bit },
                        Access::load(addr),
                    )));
                }
            }
        }
    }
    Ok(None)
}

/// Run `scenario` with one injected bit flip. The corrupted filter must be
/// caught: the report carries the `UnsoundFlag` violation and its shrunk
/// reproducer. When no corrupting flip exists (e.g. a filter with no
/// exposed state), the scenario runs uncorrupted with a note.
pub fn run_corrupted_scenario(
    scenario: &Scenario,
    flip_seed: u64,
) -> Result<ScenarioReport, String> {
    let ops = scenario.gen.generate(scenario.seed, scenario.len);
    let prefix = &ops[..ops.len() / 2];

    let Some((spec, witness)) = find_unsound_flip(scenario, prefix, flip_seed)? else {
        eprintln!(
            "fault: no corrupting flip found for `{}`; running uncorrupted",
            scenario_site(scenario)
        );
        return crate::run_plain_scenario(scenario);
    };

    // The checked stream: clean prefix, then the witness access. The flip
    // lands at the witness's own query, so the violation is deterministic.
    let mut checked: Vec<Op> = prefix.to_vec();
    checked.push(Op::Access(witness));

    let build_corrupted = |spec: FlipSpec| -> Result<CorruptedMnm, String> {
        let hier = scenario.hierarchy();
        match build_filter(&scenario.filter, &hier)? {
            AnyFilter::Mnm(mnm) => Ok(CorruptedMnm::new(mnm, spec)),
            AnyFilter::Perfect(_) => Err("oracle cannot be corrupted".to_owned()),
        }
    };

    let mut hierarchy = scenario.hierarchy();
    let mut filter = build_corrupted(spec)?;
    let (counters, violation) = check_ops(&checked, &mut hierarchy, &mut filter);

    // When shrinking, the flip is re-scheduled at the candidate's final
    // access (where the witness sits) rather than at a fixed index: a
    // fixed `after_accesses` would never fire once ddmin deletes earlier
    // ops, making every deletion look like it cured the failure.
    let reproducer = violation.as_ref().map(|_| {
        shrink_ops(&checked, |candidate| {
            let n = candidate.iter().filter(|op| matches!(op, Op::Access(_))).count() as u64;
            if n == 0 {
                return false;
            }
            let respec = FlipSpec { after_accesses: n - 1, ..spec };
            let mut h = scenario.hierarchy();
            match build_corrupted(respec) {
                Ok(mut f) => check_ops(candidate, &mut h, &mut f).1.is_some(),
                Err(_) => false,
            }
        })
    });

    Ok(ScenarioReport { scenario: scenario.clone(), counters, violation, reproducer })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::TraceGen;
    use crate::harness::ViolationKind;

    fn scenario(filter: &str) -> Scenario {
        Scenario { filter: filter.to_owned(), gen: TraceGen::Aliasing, seed: 0x77, len: 1200 }
    }

    #[test]
    fn guided_search_finds_a_lie_for_every_stateful_family() {
        for filter in ["TMNM_12x1", "SMNM_13x2", "CMNM_8_12", "BLOOM_12x2", "HMNM4"] {
            let s = scenario(filter);
            let ops = s.gen.generate(s.seed, s.len);
            let found = find_unsound_flip(&s, &ops[..ops.len() / 2], 7).unwrap();
            assert!(found.is_some(), "{filter}: no corrupting flip found");
        }
    }

    #[test]
    fn corrupted_replay_is_caught_as_unsound_flag() {
        let report = run_corrupted_scenario(&scenario("TMNM_12x1"), 7).unwrap();
        let v = report.violation.expect("the lie must be caught");
        assert_eq!(v.kind, ViolationKind::UnsoundFlag);
        assert!(v.detail.contains("flagged a definite miss"), "{}", v.detail);
        let repro = report.reproducer.expect("shrunk reproducer");
        assert!(!repro.is_empty());
        assert!(repro.len() <= 1200 / 2 + 1);
    }

    #[test]
    fn search_is_deterministic_in_the_seed() {
        let s = scenario("CMNM_8_12");
        let ops = s.gen.generate(s.seed, s.len);
        let a = find_unsound_flip(&s, &ops[..ops.len() / 2], 42).unwrap();
        let b = find_unsound_flip(&s, &ops[..ops.len() / 2], 42).unwrap();
        assert_eq!(a.map(|(spec, w)| (spec, w.addr)), b.map(|(spec, w)| (spec, w.addr)));
    }
}
