//! Deterministic trace generation for the differential checker.
//!
//! Every scenario is reproducible from `(generator, seed, len)` alone: the
//! profile generator reuses the 20 synthetic SPEC2000-like programs from
//! `trace-synth`, and the adversarial generators target the specific
//! weaknesses each filter family could hide — aliasing (hash/tag
//! collisions), flushes (state clearing races between filters and caches),
//! and saturation (sticky counters pinned at their ceiling).

use cache_sim::Access;
use trace_synth::{profiles, Prng, Program};

/// One step of a checked replay: a memory access or a full system flush
/// (caches and filters cleared in the same step).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Drive one access through hierarchy, filter, and reference model.
    Access(Access),
    /// Flush caches and filter state together (`Mnm::flush_system`).
    Flush,
}

/// The checker's trace generator families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceGen {
    /// An application profile from `trace-synth`, chosen by seed; exercises
    /// realistic locality plus the instruction-fetch path.
    Profile,
    /// Uniform random accesses in a tight arena: constant conflict
    /// evictions at every level, the worst case for tag/hash aliasing.
    Aliasing,
    /// Aliasing-heavy traffic interleaved with full-system flushes,
    /// probing filter/cache reset propagation.
    FlushHeavy,
    /// A small ring of set-conflicting blocks cycled far past the cache
    /// associativity: every block is placed and replaced over and over,
    /// pushing TMNM/Bloom counters into (and back out of) saturation.
    Saturation,
}

impl TraceGen {
    /// All generator families, in reporting order.
    pub const ALL: [TraceGen; 4] =
        [TraceGen::Profile, TraceGen::Aliasing, TraceGen::FlushHeavy, TraceGen::Saturation];

    /// The name used by `jsn check --gen`.
    pub fn name(self) -> &'static str {
        match self {
            TraceGen::Profile => "profile",
            TraceGen::Aliasing => "aliasing",
            TraceGen::FlushHeavy => "flush",
            TraceGen::Saturation => "saturation",
        }
    }

    /// Parse a `--gen` argument.
    pub fn parse(name: &str) -> Option<TraceGen> {
        TraceGen::ALL.into_iter().find(|g| g.name() == name)
    }

    /// Produce the deterministic op stream for `seed`, with exactly `len`
    /// ops (the last op is always an access, never a trailing flush).
    pub fn generate(self, seed: u64, len: usize) -> Vec<Op> {
        let mut ops = Vec::with_capacity(len);
        match self {
            TraceGen::Profile => generate_profile(seed, len, &mut ops),
            TraceGen::Aliasing => generate_arena(seed, len, 0, &mut ops),
            TraceGen::FlushHeavy => generate_arena(seed, len, 48, &mut ops),
            TraceGen::Saturation => generate_saturation(seed, len, &mut ops),
        }
        while matches!(ops.last(), Some(Op::Flush)) {
            ops.pop();
        }
        ops
    }
}

fn generate_profile(seed: u64, len: usize, ops: &mut Vec<Op>) {
    let names = profiles::names();
    let profile = profiles::by_name(&names[(seed as usize) % names.len()])
        .expect("profile names are self-consistent");
    // Vary the window into the program by seed so different seeds of the
    // same profile see different phases.
    let skip = ((seed >> 8) % 4096) as usize;
    for instr in Program::new(profile).skip(skip) {
        if ops.len() >= len {
            break;
        }
        ops.push(Op::Access(Access::fetch(instr.pc)));
        if let Some(addr) = instr.data_addr() {
            if ops.len() >= len {
                break;
            }
            let access = match instr.kind {
                trace_synth::InstrKind::Store { .. } => Access::store(addr),
                _ => Access::load(addr),
            };
            ops.push(Op::Access(access));
        }
    }
}

/// Random accesses confined to a small arena. `flush_inv` > 0 inserts a
/// full-system flush with probability 1/`flush_inv` per op.
fn generate_arena(seed: u64, len: usize, flush_inv: u64, ops: &mut Vec<Op>) {
    let mut rng = Prng::seed_from_u64(seed);
    // Arena sizes bracket the adversarial hierarchy's outermost cache, so
    // some seeds thrash every level and others only the inner ones.
    let arena = [0x1000u64, 0x2000, 0x4000][(seed % 3) as usize];
    for _ in 0..len {
        if flush_inv > 0 && rng.next_u64().is_multiple_of(flush_inv) {
            ops.push(Op::Flush);
            continue;
        }
        let addr = (rng.next_u64() % arena) & !0x3;
        ops.push(Op::Access(pick_kind(&mut rng, addr)));
    }
}

fn generate_saturation(seed: u64, len: usize, ops: &mut Vec<Op>) {
    let mut rng = Prng::seed_from_u64(seed ^ 0xD1F7_5A7A_710B_u64);
    // A ring of `group` blocks spaced a power-of-two stride apart: they
    // share sets in every power-of-two-sized structure, so each re-visit
    // evicts a ring neighbour. Ring size exceeds any configured
    // associativity; nothing ever stays resident for a full revolution.
    let group = 5 + rng.next_u64() % 8;
    let stride = 0x400u64 << (rng.next_u64() % 3);
    let mut pos = 0u64;
    for _ in 0..len {
        let r = rng.next_u64();
        // Mostly march the ring; occasionally revisit or hop to a second
        // ring offset by one block so both halves of larger lines appear.
        if !r.is_multiple_of(4) {
            pos += 1;
        }
        let base = if r.is_multiple_of(16) { 0x20 } else { 0 };
        let addr = base + (pos % group) * stride;
        ops.push(Op::Access(pick_kind(&mut rng, addr)));
    }
}

fn pick_kind(rng: &mut Prng, addr: u64) -> Access {
    match rng.next_u64() % 4 {
        0 => Access::store(addr),
        1 => Access::fetch(addr),
        _ => Access::load(addr),
    }
}

/// Render an op stream in the reproducer format (one op per line:
/// `load 0x…`, `store 0x…`, `fetch 0x…`, or `flush`).
pub fn render_ops(ops: &[Op]) -> String {
    let mut out = String::new();
    for op in ops {
        match op {
            Op::Flush => out.push_str("flush\n"),
            Op::Access(a) => {
                let verb = match a.kind {
                    cache_sim::AccessKind::Load => "load",
                    cache_sim::AccessKind::Store => "store",
                    cache_sim::AccessKind::InstrFetch => "fetch",
                };
                out.push_str(&format!("{verb} {:#x}\n", a.addr));
            }
        }
    }
    out
}

/// splitmix64 — the checker's seed derivation primitive.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the deterministic seed of scenario `k` for `(filter, gen)`:
/// FNV-1a over the names, finalized with splitmix64 per index.
pub fn scenario_seed(filter: &str, gen: TraceGen, k: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in filter.bytes().chain(gen.name().bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    splitmix64(h ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for gen in TraceGen::ALL {
            let a = gen.generate(42, 500);
            let b = gen.generate(42, 500);
            assert_eq!(a, b, "{}", gen.name());
            assert!(a.len() <= 500);
            assert!(!a.is_empty());
            let c = gen.generate(43, 500);
            assert_ne!(a, c, "{}: different seeds must differ", gen.name());
        }
    }

    #[test]
    fn flush_heavy_contains_flushes_and_others_do_not() {
        let flushes = |g: TraceGen| g.generate(7, 2000).iter().filter(|o| **o == Op::Flush).count();
        assert!(flushes(TraceGen::FlushHeavy) > 0);
        assert_eq!(flushes(TraceGen::Aliasing), 0);
        assert_eq!(flushes(TraceGen::Profile), 0);
        assert_eq!(flushes(TraceGen::Saturation), 0);
    }

    #[test]
    fn traces_never_end_in_a_flush() {
        for seed in 0..32 {
            let ops = TraceGen::FlushHeavy.generate(seed, 200);
            assert!(!matches!(ops.last(), Some(Op::Flush)));
        }
    }

    #[test]
    fn gen_names_round_trip() {
        for g in TraceGen::ALL {
            assert_eq!(TraceGen::parse(g.name()), Some(g));
        }
        assert_eq!(TraceGen::parse("bogus"), None);
    }

    #[test]
    fn scenario_seeds_are_spread() {
        let a = scenario_seed("TMNM_12x3", TraceGen::Aliasing, 0);
        let b = scenario_seed("TMNM_12x3", TraceGen::Aliasing, 1);
        let c = scenario_seed("SMNM_13x2", TraceGen::Aliasing, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Stable across runs: these are replayable identifiers.
        assert_eq!(a, scenario_seed("TMNM_12x3", TraceGen::Aliasing, 0));
    }

    #[test]
    fn render_ops_formats_every_kind() {
        let ops = [
            Op::Access(Access::load(0x40)),
            Op::Access(Access::store(0x80)),
            Op::Access(Access::fetch(0xc0)),
            Op::Flush,
        ];
        assert_eq!(render_ops(&ops), "load 0x40\nstore 0x80\nfetch 0xc0\nflush\n");
    }
}
