//! Multi-core soundness checking for the sharded simulation.
//!
//! Single-core checking ([`check_ops`](crate::check_ops)) validates one
//! filter against one hierarchy. The sharded simulation adds two new
//! ways to go wrong, and this module checks both from the observer hooks
//! [`ShardedSim`] exposes:
//!
//! * **Private desync** — coherence invalidations (remote stores,
//!   shared-L3 victims) remove blocks from a core's private caches; if
//!   the removal does not reach that core's filters, a later rebuild
//!   would disagree with the live filter state and — for counting
//!   filters — decrements could go missing. The checker maintains a
//!   per-core, per-structure residency ledger from the event stream and
//!   validates every definite-miss verdict for the private L2 against
//!   it, plus event conservation (never place a resident block, never
//!   remove an absent one).
//! * **Shared-L3 verdict staleness** — per-core shared-slot filters are
//!   refreshed only when a resolution round's results are applied (one
//!   epoch behind issue under the pipelined schedule), so a verdict can
//!   be overtaken by another core's fill. The checker maintains a global
//!   L3 ledger updated exactly when the cores' filters are (the
//!   `l3_events` hook fires at application time, not resolution time)
//!   and requires every shared-L3 definite-miss verdict to be sound *at
//!   issue time* against that frozen image — a strictly stronger
//!   condition than the simulator's resolution-time classification.
//!
//! Every scenario additionally verifies **engine identity**: the
//! pipelined and barrier drivers must reproduce the observed
//! single-threaded run bit-for-bit (the report equality that proves the
//! SPSC handoff and the overlap of compute with resolution change
//! nothing observable).
//!
//! Adversarial workloads concentrate on the cross-core races:
//! producer/consumer ping-pong over a handful of shared lines, false
//! sharing at distinct offsets of the same lines, simultaneous-eviction
//! pressure on one shared-L3 set, and profile-driven sharing across all
//! 20 synthetic applications.

use cache_sim::{Access, BypassSet, CacheEvent, EventKind, StructureId};
use mnm_core::MnmConfig;
use mnm_shard::{sharded_streams, L3Outcome, ShardConfig, ShardObserver, ShardReport, ShardedSim};
use std::collections::HashSet;
use trace_synth::profiles;
use trace_synth::sharing::SharingSpec;

use crate::splitmix64;

/// Filter labels the multi-core suite sweeps (the single-core defaults
/// minus the perfect oracle, which is not a buildable `MnmConfig`).
pub const MULTICORE_FILTERS: [&str; 10] = [
    "RMNM_128_1",
    "RMNM_512_2",
    "SMNM_13x2",
    "TMNM_12x1",
    "CMNM_8_12",
    "BLOOM_12x2",
    "HMNM1",
    "HMNM2",
    "HMNM3",
    "HMNM4",
];

/// Families of multi-core trace generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardWorkload {
    /// Producer/consumer ping-pong: even cores store a small set of
    /// shared lines, odd cores load them, with private filler in
    /// between. Maximizes store-invalidation traffic.
    PingPong,
    /// All cores hammer distinct byte offsets of the *same* L3 lines —
    /// every store invalidates every other core's copy even though no
    /// addresses collide.
    FalseSharing,
    /// Every core walks one ring of addresses aliasing into a single
    /// shared-L3 set, so fills continuously evict each other and victim
    /// back-invalidations race with refills.
    EvictionRace,
    /// A synthetic application profile (selected by `seed % 20`, as the
    /// single-core `TraceGen::Profile` does) sharded with
    /// [`sharded_streams`].
    Profile,
}

impl ShardWorkload {
    /// CLI name of this workload.
    pub fn name(self) -> &'static str {
        match self {
            ShardWorkload::PingPong => "pingpong",
            ShardWorkload::FalseSharing => "falsesharing",
            ShardWorkload::EvictionRace => "evictionrace",
            ShardWorkload::Profile => "profile",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "pingpong" => Some(ShardWorkload::PingPong),
            "falsesharing" => Some(ShardWorkload::FalseSharing),
            "evictionrace" => Some(ShardWorkload::EvictionRace),
            "profile" => Some(ShardWorkload::Profile),
            _ => None,
        }
    }

    /// Generate the per-core access streams for this workload.
    pub fn generate(
        self,
        config: &ShardConfig,
        seed: u64,
        len: usize,
        sharing_ratio: f64,
    ) -> Vec<Vec<Access>> {
        match self {
            ShardWorkload::Profile => {
                let all = profiles::all();
                let profile = &all[(seed % all.len() as u64) as usize];
                let spec = SharingSpec {
                    cores: config.cores,
                    sharing_ratio,
                    shared_bytes: 64 * 1024,
                    line_bytes: config.l3.block_bytes,
                    seed,
                };
                sharded_streams(profile, &spec, len, config.l1.block_bytes)
            }
            _ => (0..config.cores)
                .map(|core| self.adversarial_stream(config, core, seed, len))
                .collect(),
        }
    }

    fn adversarial_stream(
        self,
        config: &ShardConfig,
        core: usize,
        seed: u64,
        len: usize,
    ) -> Vec<Access> {
        let line = config.l3.block_bytes;
        let mut state = splitmix64(seed ^ (core as u64).wrapping_mul(0x9E37_79B9));
        let mut rng = move || {
            state = splitmix64(state);
            state
        };
        let mut out = Vec::with_capacity(len);
        match self {
            ShardWorkload::PingPong => {
                // 16 shared lines ping-ponged in bursts; private filler
                // keeps the L2 warm so invalidations hit real residents.
                let shared_base = 0x0010_0000u64;
                let private_base = 0x4000_0000 + core as u64 * 0x0100_0000;
                for i in 0..len {
                    let slot = (i as u64 / 8) % 16;
                    let addr = shared_base + slot * line;
                    if i % 4 == 3 {
                        out.push(Access::load(private_base + rng() % 0x8000));
                    } else if core.is_multiple_of(2) && i % 8 < 4 {
                        out.push(Access::store(addr));
                    } else {
                        out.push(Access::load(addr));
                    }
                }
            }
            ShardWorkload::FalseSharing => {
                // 64 lines, each core owning its own 8-byte offset.
                let base = 0x0020_0000u64;
                let offset = (core as u64 * 8) % line;
                for i in 0..len {
                    let l = rng() % 64;
                    let addr = base + l * line + offset;
                    if i % 3 == 0 {
                        out.push(Access::store(addr));
                    } else {
                        out.push(Access::load(addr));
                    }
                }
            }
            ShardWorkload::EvictionRace => {
                // A ring of lines all mapping to shared-L3 set 0: ring
                // length is 4x the associativity, so the set thrashes.
                let sets = config.l3.size_bytes / (u64::from(config.l3.assoc) * line);
                let stride = sets * line;
                let ring = u64::from(config.l3.assoc) * 4;
                for i in 0..len {
                    let k = (i as u64 + core as u64 * 3) % ring;
                    let addr = k * stride;
                    if rng() % 8 == 0 {
                        out.push(Access::store(addr));
                    } else {
                        out.push(Access::load(addr));
                    }
                }
            }
            ShardWorkload::Profile => unreachable!("handled in generate"),
        }
        out
    }
}

/// One multi-core checking scenario.
#[derive(Debug, Clone)]
pub struct MulticoreScenario {
    /// MNM configuration label.
    pub filter: String,
    /// Workload family.
    pub workload: ShardWorkload,
    /// Number of simulated cores.
    pub cores: usize,
    /// Sharing ratio (profile workload only).
    pub sharing_ratio: f64,
    /// Generator seed.
    pub seed: u64,
    /// Accesses per core.
    pub len: usize,
    /// Epoch length.
    pub epoch: usize,
}

impl MulticoreScenario {
    /// The `jsn shard` command line that replays exactly this scenario.
    pub fn reproducer_line(&self) -> String {
        format!(
            "jsn shard --check --config {} --workload {} --cores {} --sharing {} --seed {} -n {} --epoch {}",
            self.filter,
            self.workload.name(),
            self.cores,
            self.sharing_ratio,
            self.seed,
            self.len,
            self.epoch
        )
    }
}

/// Lockstep multi-core reference model: per-core private residency
/// ledgers plus a global shared-L3 ledger frozen between resolution
/// broadcasts.
pub struct MulticoreChecker {
    gran: u64,
    l3_line: u64,
    ul2_id: StructureId,
    ul3_id: StructureId,
    /// Per core, per private structure (il1/dl1/ul2): resident block
    /// bases.
    private: Vec<Vec<HashSet<u64>>>,
    /// Shared-L3 resident line bases, as of the last applied resolution
    /// broadcast — exactly what every core's shared-slot filter knows.
    l3: HashSet<u64>,
    /// Violations found, rendered for humans.
    pub violations: Vec<String>,
    /// Resolution outcome tallies `[hit, miss, bypassed, rescued, unsound]`.
    pub outcomes: [u64; 5],
    /// Coherence invalidation events observed per core.
    pub invalidations_seen: Vec<u64>,
}

impl MulticoreChecker {
    /// Build a checker for a simulation using `config`.
    pub fn new(config: &ShardConfig) -> Self {
        MulticoreChecker {
            gran: config.l2.block_bytes,
            l3_line: config.l3.block_bytes,
            ul2_id: StructureId::new(2),
            ul3_id: StructureId::new(3),
            private: (0..config.cores).map(|_| vec![HashSet::new(); 3]).collect(),
            l3: HashSet::new(),
            violations: Vec::new(),
            outcomes: [0; 5],
            invalidations_seen: vec![0; config.cores],
        }
    }

    fn apply_private(&mut self, core: usize, events: &[CacheEvent]) {
        for ev in events {
            let idx = ev.structure.index();
            let set = &mut self.private[core][idx];
            match ev.kind {
                EventKind::Placed => {
                    if !set.insert(ev.block_base) {
                        self.violations.push(format!(
                            "core {core} structure {idx}: placed already-resident block {:#x}",
                            ev.block_base
                        ));
                    }
                }
                EventKind::Replaced | EventKind::Invalidated => {
                    if !set.remove(&ev.block_base) {
                        self.violations.push(format!(
                            "core {core} structure {idx}: removed absent block {:#x} ({:?})",
                            ev.block_base, ev.kind
                        ));
                    }
                }
            }
        }
    }
}

impl ShardObserver for MulticoreChecker {
    fn verdict(&mut self, core: usize, access: Access, verdict: BypassSet) {
        if verdict.contains(self.ul2_id) {
            let block = access.addr & !(self.gran - 1);
            if self.private[core][2].contains(&block) {
                self.violations.push(format!(
                    "core {core}: unsound private-L2 verdict for {:#x} (block {block:#x} resident)",
                    access.addr
                ));
            }
        }
        if verdict.contains(self.ul3_id) {
            let l3line = access.addr & !(self.l3_line - 1);
            if self.l3.contains(&l3line) {
                self.violations.push(format!(
                    "core {core}: unsound shared-L3 verdict for {:#x} at issue time \
                     (line {l3line:#x} resident in the epoch-start image)",
                    access.addr
                ));
            }
        }
    }

    fn private_step(&mut self, core: usize, _access: Access, events: &[CacheEvent]) {
        self.apply_private(core, events);
    }

    fn coherence_invalidation(
        &mut self,
        core: usize,
        _line: u64,
        removed: u32,
        events: &[CacheEvent],
    ) {
        if events.len() != removed as usize {
            self.violations.push(format!(
                "core {core}: invalidation removed {removed} blocks but emitted {} events",
                events.len()
            ));
        }
        self.invalidations_seen[core] += u64::from(removed);
        self.apply_private(core, events);
    }

    fn l3_resolution(&mut self, core: usize, access: Access, outcome: L3Outcome) {
        let slot = match outcome {
            L3Outcome::Hit => 0,
            L3Outcome::Miss => 1,
            L3Outcome::Bypassed => 2,
            L3Outcome::Rescued => 3,
            L3Outcome::Unsound => 4,
        };
        self.outcomes[slot] += 1;
        if outcome == L3Outcome::Unsound {
            self.violations.push(format!(
                "core {core}: simulator classified shared-L3 verdict for {:#x} as unsound",
                access.addr
            ));
        }
    }

    fn l3_events(&mut self, events: &[CacheEvent]) {
        for ev in events {
            match ev.kind {
                EventKind::Placed => {
                    if !self.l3.insert(ev.block_base) {
                        self.violations.push(format!(
                            "shared L3 placed already-resident line {:#x}",
                            ev.block_base
                        ));
                    }
                }
                EventKind::Replaced | EventKind::Invalidated => {
                    if !self.l3.remove(&ev.block_base) {
                        self.violations.push(format!(
                            "shared L3 removed absent line {:#x} ({:?})",
                            ev.block_base, ev.kind
                        ));
                    }
                }
            }
        }
    }
}

/// Result of one checked multi-core scenario.
#[derive(Debug)]
pub struct MulticoreReport {
    /// The scenario that ran.
    pub scenario: MulticoreScenario,
    /// The simulation's own report.
    pub report: ShardReport,
    /// Checker violations (empty = passed).
    pub violations: Vec<String>,
}

impl MulticoreReport {
    /// Whether the scenario passed cleanly.
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.report.total_unsound() == 0
    }
}

/// Run one scenario under the lockstep checker.
///
/// # Errors
///
/// Returns an error if the filter label does not parse.
pub fn run_multicore_scenario(scenario: &MulticoreScenario) -> Result<MulticoreReport, String> {
    let mnm = MnmConfig::parse(&scenario.filter)
        .map_err(|_| format!("unknown filter label '{}'", scenario.filter))?;
    let mut config = ShardConfig::new(scenario.cores, mnm);
    config.epoch = scenario.epoch;
    let streams =
        scenario.workload.generate(&config, scenario.seed, scenario.len, scenario.sharing_ratio);
    let mut checker = MulticoreChecker::new(&config);
    let mut sim = ShardedSim::new(config.clone(), streams.clone());
    let report = sim.run_single_threaded_observed(&mut checker);
    let mut violations = checker.violations;
    // The checker's event ledger and the simulator's counters must agree
    // on how much coherence traffic each core absorbed.
    for (core, c) in report.cores.iter().enumerate() {
        if checker.invalidations_seen[core] != c.invalidations_received {
            violations.push(format!(
                "core {core}: checker saw {} coherence removals, simulator counted {}",
                checker.invalidations_seen[core], c.invalidations_received
            ));
        }
    }
    // Engine identity: both parallel drivers must reproduce the observed
    // single-threaded run bit-for-bit.
    let pipelined = ShardedSim::new(config.clone(), streams.clone()).run();
    if pipelined != report {
        violations.push("pipelined engine report diverges from single-threaded".to_owned());
    }
    let barrier = ShardedSim::new(config, streams).run_barrier();
    if barrier != report {
        violations.push("barrier engine report diverges from single-threaded".to_owned());
    }
    Ok(MulticoreReport { scenario: scenario.clone(), report, violations })
}

/// Sweep every filter over the adversarial workloads, and — unless
/// `quick` — over sharded versions of all 20 application profiles.
/// Returns the failing reports (empty = all sound).
///
/// # Errors
///
/// Propagates label-parse failures from
/// [`run_multicore_scenario`].
pub fn run_multicore_suite(quick: bool) -> Result<(Vec<MulticoreReport>, usize), String> {
    let adversarial =
        [ShardWorkload::PingPong, ShardWorkload::FalseSharing, ShardWorkload::EvictionRace];
    let mut failures = Vec::new();
    let mut total = 0usize;
    let filters: &[&str] =
        if quick { &["HMNM4", "RMNM_512_2", "CMNM_8_12"] } else { &MULTICORE_FILTERS };
    for filter in filters {
        for workload in adversarial {
            let scenario = MulticoreScenario {
                filter: (*filter).to_owned(),
                workload,
                cores: 4,
                sharing_ratio: 0.5,
                seed: 0xC0FFEE,
                len: if quick { 3_000 } else { 6_000 },
                epoch: 512,
            };
            total += 1;
            let report = run_multicore_scenario(&scenario)?;
            if !report.passed() {
                failures.push(report);
            }
        }
        let profile_seeds: u64 = if quick { 3 } else { 20 };
        for seed in 0..profile_seeds {
            let scenario = MulticoreScenario {
                filter: (*filter).to_owned(),
                workload: ShardWorkload::Profile,
                cores: 4,
                sharing_ratio: 0.4,
                seed,
                len: if quick { 3_000 } else { 5_000 },
                epoch: 512,
            };
            total += 1;
            let report = run_multicore_scenario(&scenario)?;
            if !report.passed() {
                failures.push(report);
            }
        }
    }
    Ok((failures, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick suite (3 filters x 3 adversarial workloads + 3
    /// profiles) must be entirely sound.
    #[test]
    fn quick_multicore_suite_is_sound() {
        let (failures, total) = run_multicore_suite(true).unwrap();
        assert!(total >= 18);
        assert!(
            failures.is_empty(),
            "multi-core soundness failures:\n{}",
            failures
                .iter()
                .flat_map(|f| f.violations.iter().take(3).cloned())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    /// The ping-pong workload must actually exercise the coherence
    /// machinery it was built to stress.
    #[test]
    fn ping_pong_generates_cross_core_invalidations() {
        let scenario = MulticoreScenario {
            filter: "HMNM4".to_owned(),
            workload: ShardWorkload::PingPong,
            cores: 4,
            sharing_ratio: 0.5,
            seed: 7,
            len: 4_000,
            epoch: 256,
        };
        let report = run_multicore_scenario(&scenario).unwrap();
        assert!(report.passed(), "{:?}", report.violations);
        let invals: u64 = report.report.cores.iter().map(|c| c.invalidations_received).sum();
        assert!(invals > 100, "ping-pong produced almost no invalidations ({invals})");
    }

    /// The eviction-race workload must thrash the shared L3.
    #[test]
    fn eviction_race_forces_shared_l3_victims() {
        let scenario = MulticoreScenario {
            filter: "RMNM_512_2".to_owned(),
            workload: ShardWorkload::EvictionRace,
            cores: 4,
            sharing_ratio: 0.0,
            seed: 3,
            len: 4_000,
            epoch: 256,
        };
        let report = run_multicore_scenario(&scenario).unwrap();
        assert!(report.passed(), "{:?}", report.violations);
        assert!(
            report.report.l3.structures[0].evictions > 100,
            "eviction race produced almost no shared-L3 victims"
        );
    }
}
