//! Greedy trace minimization (ddmin-style) for violation reproducers.
//!
//! Given a failing op stream and a predicate that replays a candidate
//! stream from scratch and reports whether it still fails, [`shrink_ops`]
//! repeatedly deletes chunks (halving the chunk size on a full fruitless
//! pass) until no single-op deletion preserves the failure. The result is
//! 1-minimal: removing any one remaining op makes the violation vanish.

use crate::generate::Op;

/// Upper bound on predicate invocations; shrinking stops (keeping the
/// best reduction so far) once it is reached. Each invocation replays the
/// candidate trace through a fresh hierarchy, so this caps shrink cost.
const MAX_PROBES: usize = 4096;

/// Minimize `ops` while `still_fails` holds.
///
/// `still_fails` must be a pure function of the candidate stream (it
/// should rebuild the hierarchy, filter, and reference model from scratch
/// on every call) and must return `true` for the initial `ops`.
pub fn shrink_ops<F>(ops: &[Op], mut still_fails: F) -> Vec<Op>
where
    F: FnMut(&[Op]) -> bool,
{
    let mut current: Vec<Op> = ops.to_vec();
    let mut probes = 0usize;
    let mut chunk = (current.len() / 2).max(1);

    loop {
        let mut progressed = false;
        let mut start = 0;
        while start < current.len() {
            if probes >= MAX_PROBES {
                return current;
            }
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            probes += 1;
            if !candidate.is_empty() && still_fails(&candidate) {
                current = candidate;
                progressed = true;
                // Re-test at the same start: the next chunk slid into
                // this position.
            } else {
                start = end;
            }
        }
        if !progressed {
            if chunk == 1 {
                return current;
            }
            chunk = (chunk / 2).max(1);
        } else {
            // Keep the chunk size while deletions are still landing.
            chunk = chunk.min(current.len().max(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::Access;

    fn ops_of(addrs: &[u64]) -> Vec<Op> {
        addrs.iter().map(|&a| Op::Access(Access::load(a))).collect()
    }

    #[test]
    fn shrinks_to_the_single_triggering_op() {
        // Failure iff address 0xBAD is present anywhere.
        let mut addrs: Vec<u64> = (0..200).map(|i| i * 0x40).collect();
        addrs.insert(137, 0xBAD);
        let ops = ops_of(&addrs);
        let fails = |candidate: &[Op]| {
            candidate.iter().any(|o| matches!(o, Op::Access(a) if a.addr == 0xBAD))
        };
        let shrunk = shrink_ops(&ops, fails);
        assert_eq!(shrunk, ops_of(&[0xBAD]));
    }

    #[test]
    fn preserves_order_of_a_required_pair() {
        // Failure needs 0xA0 followed (not necessarily adjacently) by 0xB0.
        let mut addrs: Vec<u64> = (0..150).map(|i| 0x1000 + i * 0x40).collect();
        addrs.insert(20, 0xA0);
        addrs.insert(90, 0xB0);
        let ops = ops_of(&addrs);
        let fails = |candidate: &[Op]| {
            let pos = |want: u64| {
                candidate.iter().position(|o| matches!(o, Op::Access(a) if a.addr == want))
            };
            matches!((pos(0xA0), pos(0xB0)), (Some(a), Some(b)) if a < b)
        };
        let shrunk = shrink_ops(&ops, fails);
        assert_eq!(shrunk, ops_of(&[0xA0, 0xB0]));
    }

    #[test]
    fn result_is_one_minimal() {
        // Failure iff at least 3 distinct "hot" addresses appear.
        let hot = [0x10u64, 0x20, 0x30, 0x40];
        let mut addrs: Vec<u64> = (0..100).map(|i| 0x2000 + i * 0x40).collect();
        for (i, h) in hot.iter().enumerate() {
            addrs.insert(10 + i * 17, *h);
        }
        let ops = ops_of(&addrs);
        let fails = |candidate: &[Op]| {
            let mut seen = std::collections::HashSet::new();
            for o in candidate {
                if let Op::Access(a) = o {
                    if hot.contains(&a.addr) {
                        seen.insert(a.addr);
                    }
                }
            }
            seen.len() >= 3
        };
        let shrunk = shrink_ops(&ops, fails);
        assert_eq!(shrunk.len(), 3);
        for i in 0..shrunk.len() {
            let mut without: Vec<Op> = shrunk.clone();
            without.remove(i);
            assert!(!fails(&without), "removing op {i} should break the failure");
        }
    }

    #[test]
    fn empty_trace_shrinks_to_empty() {
        let mut probes = 0usize;
        let shrunk = shrink_ops(&[], |_| {
            probes += 1;
            true
        });
        assert!(shrunk.is_empty());
        // Deleting from nothing yields only empty candidates, which are
        // never accepted; the loop must still terminate promptly.
        assert_eq!(probes, 0, "no candidate to probe on an empty trace");
    }

    #[test]
    fn single_op_trace_is_already_minimal() {
        let ops = ops_of(&[0xBAD]);
        let shrunk = shrink_ops(&ops, |candidate| {
            candidate.iter().any(|o| matches!(o, Op::Access(a) if a.addr == 0xBAD))
        });
        assert_eq!(shrunk, ops);
    }

    #[test]
    fn failure_that_vanishes_under_bisection_returns_the_original() {
        // A non-deterministic (or state-dependent) failure that never
        // reproduces on any sub-trace: the contract says keep the best
        // reduction so far, which is the untouched original.
        let ops = ops_of(&(0..64).map(|i| i * 0x40).collect::<Vec<_>>());
        let full_len = ops.len();
        let shrunk = shrink_ops(&ops, |candidate| candidate.len() == full_len);
        assert_eq!(shrunk, ops, "no deletion reproduces, so nothing may be dropped");
    }
}
