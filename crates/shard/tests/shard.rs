//! End-to-end properties of the sharded simulation.

use mnm_core::MnmConfig;
use mnm_shard::{sharded_streams, ShardConfig, ShardedSim};
use trace_synth::profiles;
use trace_synth::sharing::SharingSpec;

fn spec(cores: usize, ratio: f64) -> SharingSpec {
    SharingSpec {
        sharing_ratio: ratio,
        // A small arena so shared lines genuinely collide across cores.
        shared_bytes: 64 * 1024,
        seed: 11,
        ..SharingSpec::new(cores)
    }
}

fn sim(label: &str, cores: usize, ratio: f64, n: usize, epoch: usize) -> ShardedSim {
    let mut config = ShardConfig::new(cores, MnmConfig::parse(label).unwrap());
    config.epoch = epoch;
    let profile = profiles::by_name("181.mcf").unwrap();
    let streams = sharded_streams(&profile, &spec(cores, ratio), n, config.l1.block_bytes);
    ShardedSim::new(config, streams)
}

/// The parallel driver must be a pure performance optimization: same
/// epochs, same per-core counters, same shared-L3 statistics,
/// bit-for-bit. This is the race-freedom proof CI leans on.
#[test]
fn parallel_and_single_threaded_reports_are_identical() {
    for label in ["HMNM4", "RMNM_512_2", "SMNM_13x2"] {
        let parallel = sim(label, 4, 0.4, 6_000, 512).run();
        let single = sim(label, 4, 0.4, 6_000, 512).run_single_threaded();
        assert_eq!(parallel, single, "{label}: parallel run diverged from single-threaded");
    }
}

/// No filter family may ever produce an unsound shared-L3 verdict, and
/// under a sharing workload coherence traffic must actually flow:
/// remote stores / L3 victims remove private blocks, and those removals
/// reach the filters as invalidations.
#[test]
fn sharing_workloads_are_sound_and_generate_coherence_traffic() {
    for label in ["HMNM4", "CMNM_8_12", "TMNM_12x3", "BLOOM_12x2"] {
        let report = sim(label, 4, 0.5, 8_000, 512).run_single_threaded();
        assert_eq!(report.total_unsound(), 0, "{label}: unsound shared-L3 verdicts");
        let invals: u64 = report.cores.iter().map(|c| c.invalidations_received).sum();
        assert!(invals > 0, "{label}: no coherence invalidations despite 50% sharing");
        let filter_invals: u64 = report
            .cores
            .iter()
            .map(|c| c.mnm.slots.iter().map(|s| s.invalidations).sum::<u64>())
            .sum();
        assert!(filter_invals > 0, "{label}: invalidations never reached the filters");
        let stores: u64 = report.cores.iter().map(|c| c.store_lines_published).sum();
        assert!(stores > 0, "{label}: no store lines published");
    }
}

/// Filters must earn their keep at the shared level: definite-miss
/// verdicts skip L3 probes, and the event-ledger identity
/// `fills == evictions + invalidations + resident` holds for the L3 and
/// every private structure.
#[test]
fn l3_bypasses_happen_and_conservation_holds() {
    let report = sim("HMNM4", 4, 0.3, 8_000, 512).run_single_threaded();
    let bypasses: u64 = report.cores.iter().map(|c| c.l3_bypasses).sum();
    assert!(bypasses > 0, "no shared-L3 probes were saved");
    let l3 = &report.l3.structures[0];
    assert_eq!(l3.probes, l3.hits + l3.misses);
    assert!(l3.fills >= l3.evictions + l3.invalidations);
    for (ci, core) in report.cores.iter().enumerate() {
        for st in &core.private.structures {
            assert_eq!(st.probes, st.hits + st.misses, "core {ci}");
            assert!(st.fills >= st.evictions + st.invalidations, "core {ci}");
        }
        // Every L3 request was classified exactly once.
        assert_eq!(
            core.l3_requests,
            core.l3_hits + core.l3_misses + core.l3_bypasses,
            "core {ci}: request classification does not add up"
        );
    }
}

/// All cores observe the same global shared-L3 event stream, so their
/// shared-slot filters track identical state: the ul3 slot's update
/// count must agree across cores.
#[test]
fn shared_slot_filter_state_is_identical_across_cores() {
    let report = sim("CMNM_8_12", 4, 0.5, 6_000, 512).run_single_threaded();
    let ul3_updates: Vec<u64> =
        report.cores.iter().map(|c| c.mnm.slots.last().unwrap().updates).collect();
    assert!(
        ul3_updates.windows(2).all(|w| w[0] == w[1]),
        "shared-slot update counts diverged across cores: {ul3_updates:?}"
    );
    assert!(ul3_updates[0] > 0, "shared slot never saw an event");
}

/// One core with zero sharing degenerates to a plain single-threaded
/// replay: nothing is published, nothing is invalidated, and nothing is
/// unsound.
#[test]
fn single_core_run_has_no_coherence_traffic() {
    let report = sim("HMNM4", 1, 0.0, 6_000, 512).run_single_threaded();
    assert_eq!(report.total_unsound(), 0);
    let core = &report.cores[0];
    assert_eq!(core.invalidations_received, 0, "no peers, so no store invalidations");
    assert_eq!(core.accesses, 6_000);
}
