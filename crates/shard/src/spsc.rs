//! Bounded single-producer/single-consumer handoff slots for the
//! pipelined epoch engine.
//!
//! Each simulated core owns exactly two of these rings: an **outbox**
//! (core → resolver) carrying the epoch's shared-level requests, and an
//! **inbox** (resolver → core) carrying one resolution round's results.
//! Both endpoints are single-threaded by construction — one core thread,
//! one resolver thread — so the ring needs no CAS loops: the producer
//! owns `tail`, the consumer owns `head`, and a pair of
//! acquire/release `AtomicUsize` sequence numbers publishes each slot.
//! Cores therefore never contend on a shared lock the way the old
//! `Mutex<CoreState>` + `Barrier` handoff made them do.
//!
//! The sequence numbers and every slot are cache-line padded
//! ([`CachePadded`]): `head` is written by the consumer on every pop and
//! `tail` by the producer on every push, so sharing a line between them
//! (or with a payload slot) would ping-pong ownership on every handoff —
//! the textbook false-sharing penalty this module exists to avoid. On
//! the single-core dev host the padding is measurably free; on
//! multi-core hosts it keeps the two hot indices out of each other's
//! coherence traffic.
//!
//! Capacity is [`DEPTH`] messages. The pipeline is one epoch deep, which
//! bounds the in-flight count per direction at two (see the proof in the
//! module docs of [`sim`](crate::sim)); `DEPTH = 4` leaves headroom for
//! the stop message without ever blocking a correct schedule.
//!
//! Blocking strategy: a short spin (`hint::spin_loop`) followed by
//! `thread::yield_now`. The yield matters — identity tests run 8-core
//! simulations on single-core containers, where a pure spin would
//! livelock the scheduler.

use cache_sim::CachePadded;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Ring capacity. Must be a power of two ≥ the pipeline's maximum
/// in-flight count per direction (2 results + 1 stop message).
const DEPTH: usize = 4;

/// Spins before the wait loop starts yielding the host thread.
const SPINS_BEFORE_YIELD: u32 = 64;

/// A bounded SPSC ring of `T`, safe for exactly one producer thread and
/// one consumer thread.
pub(crate) struct SpscRing<T> {
    /// Next sequence number the consumer will pop. Written only by the
    /// consumer.
    head: CachePadded<AtomicUsize>,
    /// Next sequence number the producer will push. Written only by the
    /// producer.
    tail: CachePadded<AtomicUsize>,
    /// Payload cells, one line each so a slot write never invalidates the
    /// neighbouring slot the consumer may be reading.
    slots: [CachePadded<UnsafeCell<Option<T>>>; DEPTH],
}

// SAFETY: the ring hands each `T` from exactly one thread to exactly one
// other; the acquire/release pair on `tail`/`head` orders every slot
// write before the matching read. `T: Send` is all that is required.
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    pub(crate) fn new() -> Self {
        SpscRing {
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            slots: std::array::from_fn(|_| CachePadded::new(UnsafeCell::new(None))),
        }
    }

    /// Producer side: publish `value`, blocking (spin, then yield) while
    /// the ring is full. Must only ever be called from one thread.
    pub(crate) fn push(&self, value: T) {
        let tail = self.tail.load(Ordering::Relaxed);
        let mut spins = 0u32;
        while tail.wrapping_sub(self.head.load(Ordering::Acquire)) == DEPTH {
            wait(&mut spins);
        }
        // SAFETY: slots in [head, head+DEPTH) are owned by the producer
        // once `tail - head < DEPTH`; only this thread writes `tail`.
        unsafe {
            *self.slots[tail % DEPTH].get() = Some(value);
        }
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
    }

    /// Consumer side: take the next message, blocking (spin, then yield)
    /// while the ring is empty. Must only ever be called from one thread.
    pub(crate) fn pop(&self) -> T {
        let head = self.head.load(Ordering::Relaxed);
        let mut spins = 0u32;
        while self.tail.load(Ordering::Acquire) == head {
            wait(&mut spins);
        }
        // SAFETY: the release store of `tail` above made this slot's
        // contents visible; only this thread writes `head`.
        let value = unsafe { (*self.slots[head % DEPTH].get()).take() };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        value.expect("SPSC slot published without a payload")
    }
}

#[inline]
fn wait(spins: &mut u32) {
    if *spins < SPINS_BEFORE_YIELD {
        *spins += 1;
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Every message arrives exactly once, in order, under real
    /// cross-thread contention (including full-ring backpressure).
    #[test]
    fn handoff_preserves_order_and_loses_nothing() {
        const N: usize = 10_000;
        let ring = Arc::new(SpscRing::<usize>::new());
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..N {
                    ring.push(i);
                }
            })
        };
        for i in 0..N {
            assert_eq!(ring.pop(), i);
        }
        producer.join().unwrap();
    }

    /// The ring never exceeds its depth: a producer pushing DEPTH + 1
    /// messages blocks until the consumer drains one.
    #[test]
    fn full_ring_applies_backpressure() {
        let ring = Arc::new(SpscRing::<u32>::new());
        for i in 0..DEPTH as u32 {
            ring.push(i);
        }
        let t = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                ring.push(99); // blocks until a pop frees a slot
                ring.tail.load(Ordering::Relaxed)
            })
        };
        assert_eq!(ring.pop(), 0);
        assert_eq!(t.join().unwrap(), DEPTH + 1);
        for i in 1..DEPTH as u32 {
            assert_eq!(ring.pop(), i);
        }
        assert_eq!(ring.pop(), 99);
    }
}
