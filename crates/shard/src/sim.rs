//! The epoch-synchronized sharded simulator.
//!
//! ## Execution model
//!
//! Time is divided into **epochs** of `epoch` accesses per core. Within
//! an epoch every core runs entirely on private state — its own L1/L2
//! hierarchy and its own MNM — so the parallel driver needs no
//! synchronization until the epoch ends. Accesses that miss every
//! private level are queued as shared-L3 requests instead of being
//! resolved immediately: the shared L3 is **frozen** from a core's point
//! of view for the duration of an epoch.
//!
//! At the **barrier** the leader resolves all queued L3 requests
//! serially in core-major program order (deterministic regardless of
//! thread scheduling), then distributes three things into per-core
//! inboxes:
//!
//! * **invalidations** — L3 replacement victims (to every core) and
//!   lines stored by other cores (coherence), applied to private caches
//!   *and* filters through the `Invalidated` event path;
//! * the **global L3 event list** — every core applies the same list, so
//!   per-core shared-L3 filter state is identical everywhere;
//! * this core's **L3 probe records** for coverage accounting.
//!
//! Each core applies its inbox at the start of its next epoch, in
//! parallel, before touching new accesses.
//!
//! ## Verdict soundness across the barrier
//!
//! A definite-miss verdict for the shared L3 is issued against the
//! epoch-start L3 image. By resolution time the line may have been
//! placed *by this barrier itself* (an earlier request of any core);
//! such a verdict is demoted to a normal probe and counted as a
//! [`stale bypass rescue`](crate::CoreReport::stale_bypass_rescues) —
//! the verdict was sound when issued. A bypass verdict that finds a line
//! which was already resident at epoch start is a genuine soundness
//! violation and counted in
//! [`unsound_verdicts`](crate::CoreReport::unsound_verdicts).

use crate::config::ShardConfig;
use crate::report::{CoreReport, ShardReport};
use cache_sim::{
    Access, AccessKind, BypassSet, CacheEvent, EventKind, Hierarchy, ProbeRecord, ReplayScratch,
    StructureId,
};
use mnm_core::Mnm;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};

/// How one shared-L3 request was resolved at the barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L3Outcome {
    /// Probed the L3 and hit.
    Hit,
    /// Probed the L3 and missed; memory supplied.
    Miss,
    /// Definite-miss verdict honored: probe skipped, block indeed absent.
    Bypassed,
    /// Definite-miss verdict found the block resident, but only because
    /// this barrier placed it after the verdict was issued. Sound;
    /// demoted to a probe.
    Rescued,
    /// Definite-miss verdict found a block that was resident at epoch
    /// start: a genuine soundness violation.
    Unsound,
}

/// Hooks for lockstep checking. Only the single-threaded driver
/// ([`ShardedSim::run_single_threaded_observed`]) invokes an observer;
/// the parallel driver is proven equivalent to it by report identity.
pub trait ShardObserver {
    /// A core issued a verdict for an access (before the access ran).
    fn verdict(&mut self, _core: usize, _access: Access, _verdict: BypassSet) {}
    /// A core drove an access through its private hierarchy; `events`
    /// are the resulting private placements/replacements.
    fn private_step(&mut self, _core: usize, _access: Access, _events: &[CacheEvent]) {}
    /// A coherence invalidation removed `removed` blocks covering `line`
    /// from a core's private caches; `events` are the `Invalidated`
    /// events fed to that core's filters.
    fn coherence_invalidation(
        &mut self,
        _core: usize,
        _line: u64,
        _removed: u32,
        _events: &[CacheEvent],
    ) {
    }
    /// The barrier resolved one of a core's shared-L3 requests.
    fn l3_resolution(&mut self, _core: usize, _access: Access, _outcome: L3Outcome) {}
    /// The barrier finished: the global shared-L3 event list every core
    /// will apply at its next epoch start.
    fn l3_events(&mut self, _events: &[CacheEvent]) {}
}

/// The no-op observer used by the parallel driver.
struct NoopObserver;

impl ShardObserver for NoopObserver {}

/// An access that left the private levels during an epoch, waiting for
/// barrier resolution against the shared L3.
struct L3Request {
    access: Access,
    /// The epoch-start verdict claimed the shared L3 definitely misses.
    bypass_l3: bool,
}

/// Everything one core owns.
struct CoreState {
    id: usize,
    hier: Hierarchy,
    mnm: Mnm,
    stream: Vec<Access>,
    pos: usize,
    pending: Vec<L3Request>,
    /// L3 lines stored to this epoch, deduplicated, in store order.
    store_lines: Vec<u64>,
    store_seen: HashSet<u64>,
    inbox_invals: Vec<u64>,
    inbox_events: Arc<Vec<CacheEvent>>,
    inbox_probes: Vec<ProbeRecord>,
    report: CoreReport,
    scratch: ReplayScratch,
    ev_buf: Vec<CacheEvent>,
}

/// State only the barrier leader touches.
struct SharedState {
    l3: Hierarchy,
    /// L3 lines placed during the current barrier (stale-bypass rescue
    /// detection).
    placed: HashSet<u64>,
    scratch: ReplayScratch,
    epochs: u64,
}

/// Immutable per-run facts threaded through the drivers.
#[derive(Clone, Copy)]
struct Ctx {
    l3_template_id: StructureId,
    private_memory_level: u8,
    l3_block_bytes: u64,
    min_private_block: u64,
    epoch: usize,
}

/// An N-core sharded simulation (see the module docs for the model).
pub struct ShardedSim {
    config: ShardConfig,
    cores: Vec<Mutex<CoreState>>,
    shared: Mutex<SharedState>,
    ctx: Ctx,
}

impl ShardedSim {
    /// Build the simulation over one pre-materialized access stream per
    /// core.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid or `streams.len()` does not match
    /// `config.cores`.
    pub fn new(config: ShardConfig, streams: Vec<Vec<Access>>) -> Self {
        config.validate();
        assert_eq!(streams.len(), config.cores, "need exactly one access stream per core");
        let template = Hierarchy::new(config.template_hierarchy());
        let l3_template_id = template
            .structures()
            .iter()
            .find(|s| s.level == 3)
            .expect("template hierarchy has a level-3 structure")
            .id;
        let private_cfg = config.private_hierarchy();
        let min_private_block = private_cfg
            .levels
            .iter()
            .flat_map(|l| l.configs())
            .map(|c| c.block_bytes)
            .min()
            .expect("private hierarchy has levels");
        let cores = streams
            .into_iter()
            .enumerate()
            .map(|(id, stream)| {
                let hier = Hierarchy::new(private_cfg.clone());
                let mnm = Mnm::new(&template, config.mnm.clone());
                Mutex::new(CoreState {
                    id,
                    hier,
                    mnm,
                    stream,
                    pos: 0,
                    pending: Vec::new(),
                    store_lines: Vec::new(),
                    store_seen: HashSet::new(),
                    inbox_invals: Vec::new(),
                    inbox_events: Arc::new(Vec::new()),
                    inbox_probes: Vec::new(),
                    report: CoreReport::default(),
                    scratch: ReplayScratch::new(),
                    ev_buf: Vec::new(),
                })
            })
            .collect();
        // base_level 3: the standalone L3 hierarchy represents the outer
        // level of the template system, so its structure is bypassable
        // (level-1 structures never are) and probes carry the true level.
        let shared = Mutex::new(SharedState {
            l3: Hierarchy::with_base_level(config.l3_hierarchy(), 3),
            placed: HashSet::new(),
            scratch: ReplayScratch::new(),
            epochs: 0,
        });
        let ctx = Ctx {
            l3_template_id,
            private_memory_level: Hierarchy::new(private_cfg).memory_level(),
            l3_block_bytes: config.l3.block_bytes,
            min_private_block,
            epoch: config.epoch,
        };
        ShardedSim { config, cores, shared, ctx }
    }

    /// The configuration this simulation was built with.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// Run with one host thread per core. Produces a report
    /// bit-identical to [`ShardedSim::run_single_threaded`].
    pub fn run(&mut self) -> ShardReport {
        let barrier = Barrier::new(self.config.cores);
        let done = AtomicBool::new(false);
        let ctx = self.ctx;
        let cores = &self.cores;
        let shared = &self.shared;
        std::thread::scope(|scope| {
            for t in 0..self.config.cores {
                let barrier = &barrier;
                let done = &done;
                scope.spawn(move || {
                    let mut noop = NoopObserver;
                    loop {
                        {
                            let mut core = cores[t].lock().unwrap();
                            run_epoch(ctx, &mut core, &mut noop);
                        }
                        if barrier.wait().is_leader() {
                            let mut sh = shared.lock().unwrap();
                            let all_done = resolve_barrier(ctx, cores, &mut sh, &mut noop);
                            done.store(all_done, Ordering::SeqCst);
                        }
                        barrier.wait();
                        if done.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                });
            }
        });
        self.build_report()
    }

    /// Run everything on the calling thread (the reference execution the
    /// parallel driver must match).
    pub fn run_single_threaded(&mut self) -> ShardReport {
        self.run_single_threaded_observed(&mut NoopObserver)
    }

    /// Single-threaded run with lockstep checking hooks.
    pub fn run_single_threaded_observed(&mut self, obs: &mut dyn ShardObserver) -> ShardReport {
        let ctx = self.ctx;
        loop {
            for m in &self.cores {
                let mut core = m.lock().unwrap();
                run_epoch(ctx, &mut core, obs);
            }
            let mut sh = self.shared.lock().unwrap();
            if resolve_barrier(ctx, &self.cores, &mut sh, obs) {
                break;
            }
        }
        self.build_report()
    }

    fn build_report(&self) -> ShardReport {
        let cores = self
            .cores
            .iter()
            .map(|m| {
                let core = m.lock().unwrap();
                let mut r = core.report.clone();
                r.private = core.hier.stats().clone();
                r.mnm = core.mnm.stats().clone();
                r
            })
            .collect();
        let sh = self.shared.lock().unwrap();
        ShardReport { cores, l3: sh.l3.stats().clone(), epochs: sh.epochs }
    }
}

/// One core's epoch: apply the inbox from the previous barrier, then run
/// up to `ctx.epoch` accesses on private state.
fn run_epoch(ctx: Ctx, core: &mut CoreState, obs: &mut dyn ShardObserver) {
    // Coherence invalidations first: they reflect barrier-time state and
    // must land before any new access queries the filters.
    let invals = std::mem::take(&mut core.inbox_invals);
    for &line in &invals {
        core.ev_buf.clear();
        let mut removed = 0u32;
        let mut off = 0;
        while off < ctx.l3_block_bytes {
            removed += core.hier.invalidate_block(line + off, &mut core.ev_buf);
            off += ctx.min_private_block;
        }
        core.mnm.observe_events(&core.ev_buf);
        core.report.invalidations_received += u64::from(removed);
        if removed > 0 {
            obs.coherence_invalidation(core.id, line, removed, &core.ev_buf);
        }
    }
    // Then the global shared-L3 event list: every core applies the same
    // list, so shared-slot filter state is identical on all cores.
    let events = std::mem::replace(&mut core.inbox_events, Arc::new(Vec::new()));
    core.mnm.observe_events(&events);
    let probes = std::mem::take(&mut core.inbox_probes);
    core.mnm.note_probes(&probes);

    for _ in 0..ctx.epoch {
        let Some(&access) = core.stream.get(core.pos) else {
            break;
        };
        core.pos += 1;
        let verdict = core.mnm.query(access);
        obs.verdict(core.id, access, verdict);
        let res = core.hier.access_with_events(access, &verdict, &mut core.scratch);
        core.mnm.observe_events(core.scratch.events());
        core.mnm.note_probes(core.scratch.probes());
        obs.private_step(core.id, access, core.scratch.events());
        core.report.accesses += 1;
        core.report.cycles += res.latency;
        if access.kind == AccessKind::Store {
            let line = access.addr & !(ctx.l3_block_bytes - 1);
            if core.store_seen.insert(line) {
                core.store_lines.push(line);
            }
        }
        if res.supply_level == ctx.private_memory_level {
            core.pending
                .push(L3Request { access, bypass_l3: verdict.contains(ctx.l3_template_id) });
        }
    }
}

/// The serial barrier phase: resolve every queued L3 request in
/// core-major program order, then fill the per-core inboxes. Returns
/// true when the whole simulation has drained.
fn resolve_barrier(
    ctx: Ctx,
    cores: &[Mutex<CoreState>],
    shared: &mut SharedState,
    obs: &mut dyn ShardObserver,
) -> bool {
    shared.placed.clear();
    shared.epochs += 1;
    let l3_sid = StructureId::new(0);
    let mut global_events: Vec<CacheEvent> = Vec::new();
    let mut victims: Vec<u64> = Vec::new();
    let mut victim_seen: HashSet<u64> = HashSet::new();
    let mut store_pub: Vec<Vec<u64>> = Vec::with_capacity(cores.len());
    let mut probes_out: Vec<Vec<ProbeRecord>> = (0..cores.len()).map(|_| Vec::new()).collect();

    for (ci, m) in cores.iter().enumerate() {
        let mut core = m.lock().unwrap();
        let reqs = std::mem::take(&mut core.pending);
        for req in reqs {
            core.report.l3_requests += 1;
            let resident = shared.l3.contains(l3_sid, req.access.addr);
            let line = req.access.addr & !(ctx.l3_block_bytes - 1);
            let mut bypass = BypassSet::none();
            let outcome = if req.bypass_l3 && !resident {
                bypass.insert(l3_sid);
                L3Outcome::Bypassed
            } else if req.bypass_l3 && shared.placed.contains(&line) {
                L3Outcome::Rescued
            } else if req.bypass_l3 {
                L3Outcome::Unsound
            } else if resident {
                L3Outcome::Hit
            } else {
                L3Outcome::Miss
            };
            let res = shared.l3.access_with_events(req.access, &bypass, &mut shared.scratch);
            core.report.cycles += res.latency;
            match outcome {
                L3Outcome::Hit => core.report.l3_hits += 1,
                L3Outcome::Miss => core.report.l3_misses += 1,
                L3Outcome::Bypassed => core.report.l3_bypasses += 1,
                L3Outcome::Rescued => {
                    core.report.stale_bypass_rescues += 1;
                    core.report.l3_hits += 1;
                }
                L3Outcome::Unsound => {
                    core.report.unsound_verdicts += 1;
                    core.report.l3_hits += 1;
                }
            }
            obs.l3_resolution(ci, req.access, outcome);
            for ev in shared.scratch.events() {
                global_events.push(CacheEvent { structure: ctx.l3_template_id, ..*ev });
                match ev.kind {
                    EventKind::Placed => {
                        shared.placed.insert(ev.block_base);
                    }
                    EventKind::Replaced => {
                        if victim_seen.insert(ev.block_base) {
                            victims.push(ev.block_base);
                        }
                    }
                    EventKind::Invalidated => {}
                }
            }
            for p in shared.scratch.probes() {
                probes_out[ci].push(ProbeRecord { structure: ctx.l3_template_id, ..*p });
            }
        }
        let published = std::mem::take(&mut core.store_lines);
        core.store_seen.clear();
        core.report.store_lines_published += published.len() as u64;
        store_pub.push(published);
    }
    obs.l3_events(&global_events);

    // Distribute: L3 victims invalidate every core's private copies;
    // store lines invalidate every *other* core's.
    let events = Arc::new(global_events);
    let mut all_done = true;
    for (ci, m) in cores.iter().enumerate() {
        let mut core = m.lock().unwrap();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut invals: Vec<u64> = Vec::new();
        for &v in &victims {
            if seen.insert(v) {
                invals.push(v);
            }
        }
        for (cj, lines) in store_pub.iter().enumerate() {
            if cj == ci {
                continue;
            }
            for &l in lines {
                if seen.insert(l) {
                    invals.push(l);
                }
            }
        }
        let busy = core.pos < core.stream.len()
            || !invals.is_empty()
            || !events.is_empty()
            || !probes_out[ci].is_empty();
        core.inbox_invals = invals;
        core.inbox_events = events.clone();
        core.inbox_probes = std::mem::take(&mut probes_out[ci]);
        if busy {
            all_done = false;
        }
    }
    all_done
}
