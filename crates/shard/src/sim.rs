//! The pipelined epoch-synchronized sharded simulator.
//!
//! ## Execution model
//!
//! Time is divided into **epochs** of `epoch` accesses per core. Within
//! an epoch every core runs entirely on private state — its own L1/L2
//! hierarchy and its own MNM — so the drivers need no synchronization
//! while an epoch computes. Accesses that miss every private level are
//! queued as shared-L3 requests instead of being resolved immediately:
//! the shared L3 is **frozen** from a core's point of view for the
//! duration of an epoch.
//!
//! ## The one-epoch-deep pipeline
//!
//! The original engine alternated: all cores compute epoch E, a barrier,
//! one thread serially resolves epoch E's shared-L3 queue while every
//! core idles, repeat — a textbook Amdahl ceiling (the serial resolve
//! phase bounded `shard_scaling` speedup no matter the core count). The
//! paper's own pitch is hiding latency by deciding misses *early*; the
//! engine now hides its resolution latency the same way:
//!
//! * cores compute epoch **E+1** while the resolver drains epoch **E**'s
//!   queues — compute and resolution overlap instead of alternating;
//! * the results of resolving epoch E (coherence invalidations, the
//!   global L3 event list, probe records, per-core counter deltas) are
//!   applied at the start of epoch **E+2**, the first epoch that begins
//!   after the resolution is guaranteed complete.
//!
//! Epoch E therefore runs against the L3 image left by resolution of
//! epoch E−2 — a *frozen view*, exactly as before, just one resolution
//! round deeper. Everything that made the frozen-view argument sound is
//! unchanged: requests still resolve serially in core-major program
//! order (deterministic regardless of thread scheduling), every core
//! still applies the identical global event list (so shared-slot filter
//! state is bit-identical everywhere), and verdicts are still classified
//! at resolution time as sound bypass / stale rescue / unsound. Only
//! *when* resolution happens relative to the next epoch's compute moved.
//!
//! ## Engines
//!
//! Three drivers execute the identical schedule and must produce
//! bit-identical [`ShardReport`]s (asserted in tests, the
//! `shard_scaling` bench, and CI):
//!
//! * [`Engine::Pipelined`] (the default, [`ShardedSim::run`]) — one host
//!   thread per core plus a dedicated resolver thread. Handoff is
//!   per-core bounded SPSC rings ([`crate::spsc`]): an outbox (epoch
//!   requests + published store lines) and an inbox (resolution
//!   results). Cores never touch a shared lock; the old
//!   `Mutex<CoreState>` + `Barrier` pair is gone.
//! * [`Engine::Barrier`] ([`ShardedSim::run_barrier`]) — the
//!   stop-the-world baseline: same schedule, but resolution happens
//!   inside the barrier window while cores wait. Kept as the speedup
//!   baseline the bench compares against (`--pipeline off`).
//! * [`Engine::Single`] ([`ShardedSim::run_single_threaded`]) — the
//!   whole schedule on the calling thread; the reference execution and
//!   the only driver that invokes a [`ShardObserver`].
//!
//! ### Why the SPSC depth is bounded
//!
//! A core entering epoch E+2 blocks until resolution of epoch E arrives
//! in its inbox, so a core can run at most ~1.5 epochs ahead of the
//! resolver; symmetrically the resolver blocks on each core's outbox.
//! Per direction at most two messages are ever in flight (plus the final
//! stop message), so a 4-slot ring never deadlocks.
//!
//! ## Verdict soundness across the pipeline
//!
//! A definite-miss verdict for the shared L3 issued during epoch E is
//! issued against the post-R(E−2) L3 image (R(x) = resolution of epoch
//! x). By the time R(E) examines the request, the line may have been
//! placed by R(E−1) or by an earlier request within R(E) — placements
//! the verdict could not have seen; such a verdict is demoted to a
//! normal probe and counted as a
//! [`stale bypass rescue`](crate::CoreReport::stale_bypass_rescues).
//! A bypass verdict that finds a line which was already resident in the
//! frozen image is a genuine soundness violation and counted in
//! [`unsound_verdicts`](crate::CoreReport::unsound_verdicts). The
//! resolver tracks the rescue window as the placement sets of the
//! current and previous resolution rounds — exactly the events the
//! issuing filter had not yet absorbed.

use crate::config::ShardConfig;
use crate::report::{CoreReport, ShardReport, ShardTiming};
use crate::spsc::SpscRing;
use cache_sim::{
    Access, AccessKind, BypassSet, CacheEvent, EventKind, Hierarchy, ProbeRecord, ReplayScratch,
    StructureId,
};
use mnm_core::Mnm;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Instant;

/// How one shared-L3 request was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L3Outcome {
    /// Probed the L3 and hit.
    Hit,
    /// Probed the L3 and missed; memory supplied.
    Miss,
    /// Definite-miss verdict honored: probe skipped, block indeed absent.
    Bypassed,
    /// Definite-miss verdict found the block resident, but only because
    /// a resolution round after the verdict's frozen view placed it.
    /// Sound; demoted to a probe.
    Rescued,
    /// Definite-miss verdict found a block that was resident in the
    /// verdict's frozen view: a genuine soundness violation.
    Unsound,
}

/// The execution engine driving the epoch schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Cores compute epoch E+1 while a dedicated resolver thread drains
    /// epoch E; SPSC handoff, no shared locks. The default.
    Pipelined,
    /// Stop-the-world baseline: resolution runs inside the barrier
    /// window while every core idles (`--pipeline off`).
    Barrier,
    /// Everything on the calling thread; the reference execution.
    Single,
}

impl Engine {
    /// Stable label used in reports and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Engine::Pipelined => "pipelined",
            Engine::Barrier => "barrier",
            Engine::Single => "single",
        }
    }
}

/// Hooks for lockstep checking. Only the single-threaded driver
/// ([`ShardedSim::run_single_threaded_observed`]) invokes an observer;
/// the parallel drivers are proven equivalent to it by report identity.
///
/// Hook timing follows the *cores'* view of the pipeline: `l3_events`
/// fires when a resolution round's global event list is **applied** (the
/// moment every core's shared-slot filter state advances), not when the
/// resolver produced it — so an observer validating verdicts against its
/// own ledger sees exactly the frozen image the filters saw, one-epoch
/// pipelining included.
pub trait ShardObserver {
    /// A core issued a verdict for an access (before the access ran).
    fn verdict(&mut self, _core: usize, _access: Access, _verdict: BypassSet) {}
    /// A core drove an access through its private hierarchy; `events`
    /// are the resulting private placements/replacements.
    fn private_step(&mut self, _core: usize, _access: Access, _events: &[CacheEvent]) {}
    /// A coherence invalidation removed `removed` blocks covering `line`
    /// from a core's private caches; `events` are the `Invalidated`
    /// events fed to that core's filters.
    fn coherence_invalidation(
        &mut self,
        _core: usize,
        _line: u64,
        _removed: u32,
        _events: &[CacheEvent],
    ) {
    }
    /// The resolver resolved one of a core's shared-L3 requests.
    fn l3_resolution(&mut self, _core: usize, _access: Access, _outcome: L3Outcome) {}
    /// A resolution round's global shared-L3 event list is being applied
    /// by every core (the filters' frozen view advances past it now).
    fn l3_events(&mut self, _events: &[CacheEvent]) {}
}

/// The no-op observer used by the parallel drivers.
struct NoopObserver;

impl ShardObserver for NoopObserver {}

/// An access that left the private levels during an epoch, waiting for
/// resolution against the shared L3.
struct L3Request {
    access: Access,
    /// The epoch-start verdict claimed the shared L3 definitely misses.
    bypass_l3: bool,
}

/// One epoch's worth of core → resolver traffic.
struct OutMsg {
    /// Shared-L3 requests in program order.
    requests: Vec<L3Request>,
    /// L3 lines this core stored to this epoch, deduplicated, in store
    /// order (published as invalidations to every other core).
    stores: Vec<u64>,
    /// The core's stream is fully consumed.
    exhausted: bool,
}

impl OutMsg {
    fn empty() -> Self {
        OutMsg { requests: Vec::new(), stores: Vec::new(), exhausted: true }
    }

    fn is_empty(&self) -> bool {
        self.requests.is_empty() && self.stores.is_empty()
    }
}

/// Per-core counter deltas accumulated by the resolver; folded into the
/// core's own [`CoreReport`] when the core applies the resolution (the
/// resolver never touches core-owned state).
#[derive(Debug, Clone, Copy, Default)]
struct ResolveDelta {
    l3_requests: u64,
    l3_hits: u64,
    l3_misses: u64,
    l3_bypasses: u64,
    stale_bypass_rescues: u64,
    unsound_verdicts: u64,
    cycles: u64,
    store_lines_published: u64,
}

impl ResolveDelta {
    fn is_zero(&self) -> bool {
        self.l3_requests == 0
            && self.l3_hits == 0
            && self.l3_misses == 0
            && self.l3_bypasses == 0
            && self.stale_bypass_rescues == 0
            && self.unsound_verdicts == 0
            && self.cycles == 0
            && self.store_lines_published == 0
    }
}

/// One resolution round's results for one core (resolver → core).
struct ResolvedMsg {
    /// Coherence invalidations: L3 victims (every core) then other
    /// cores' store lines, deduplicated, in deterministic order.
    invals: Vec<u64>,
    /// The global L3 event list — identical for every core, so per-core
    /// shared-slot filter state stays identical everywhere.
    events: Arc<Vec<CacheEvent>>,
    /// This core's L3 probe records for coverage accounting.
    probes: Vec<ProbeRecord>,
    /// Counter deltas this core folds into its report.
    delta: ResolveDelta,
    /// The simulation is complete; the core thread exits.
    stop: bool,
}

impl ResolvedMsg {
    fn prime() -> Self {
        ResolvedMsg {
            invals: Vec::new(),
            events: Arc::new(Vec::new()),
            probes: Vec::new(),
            delta: ResolveDelta::default(),
            stop: false,
        }
    }

    fn stop() -> Self {
        ResolvedMsg { stop: true, ..ResolvedMsg::prime() }
    }

    fn is_empty(&self) -> bool {
        self.invals.is_empty()
            && self.events.is_empty()
            && self.probes.is_empty()
            && self.delta.is_zero()
    }
}

/// Everything one core owns. Exactly one thread touches a `CoreState`
/// at any time: its own thread in the parallel engines (no `Mutex`),
/// the calling thread in the single engine.
struct CoreState {
    id: usize,
    hier: Hierarchy,
    mnm: Mnm,
    stream: Vec<Access>,
    pos: usize,
    pending: Vec<L3Request>,
    store_lines: Vec<u64>,
    store_seen: HashSet<u64>,
    report: CoreReport,
    scratch: ReplayScratch,
    ev_buf: Vec<CacheEvent>,
    /// Nanoseconds this core spent computing epochs + applying inboxes.
    compute_nanos: u64,
    /// Nanoseconds this core spent stalled waiting for handoff.
    stall_nanos: u64,
}

/// State only the resolver touches (the leader thread in the barrier
/// engine, the dedicated resolver thread in the pipelined engine, the
/// calling thread in the single engine).
struct ResolverState {
    l3: Hierarchy,
    /// L3 lines placed during the current resolution round.
    placed_cur: HashSet<u64>,
    /// L3 lines placed during the previous round — still invisible to
    /// the filters that issued this round's verdicts (stale-bypass
    /// rescue window, see the module docs).
    placed_prev: HashSet<u64>,
    scratch: ReplayScratch,
    access_buf: Vec<Access>,
    /// Rounds executed — the number of epochs the schedule ran.
    rounds: u64,
    /// Nanoseconds spent inside [`resolve_round`].
    resolve_nanos: u64,
}

/// Immutable per-run facts threaded through the drivers.
#[derive(Clone, Copy)]
struct Ctx {
    l3_template_id: StructureId,
    private_memory_level: u8,
    l3_block_bytes: u64,
    min_private_block: u64,
    epoch: usize,
}

/// An N-core sharded simulation (see the module docs for the model).
pub struct ShardedSim {
    config: ShardConfig,
    cores: Vec<CoreState>,
    resolver: ResolverState,
    ctx: Ctx,
    timing: ShardTiming,
}

impl ShardedSim {
    /// Build the simulation over one pre-materialized access stream per
    /// core.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid or `streams.len()` does not match
    /// `config.cores`.
    pub fn new(config: ShardConfig, streams: Vec<Vec<Access>>) -> Self {
        config.validate();
        assert_eq!(streams.len(), config.cores, "need exactly one access stream per core");
        let template = Hierarchy::new(config.template_hierarchy());
        let l3_template_id = template
            .structures()
            .iter()
            .find(|s| s.level == 3)
            .expect("template hierarchy has a level-3 structure")
            .id;
        let private_cfg = config.private_hierarchy();
        let min_private_block = private_cfg
            .levels
            .iter()
            .flat_map(|l| l.configs())
            .map(|c| c.block_bytes)
            .min()
            .expect("private hierarchy has levels");
        let cores = streams
            .into_iter()
            .enumerate()
            .map(|(id, stream)| CoreState {
                id,
                hier: Hierarchy::new(private_cfg.clone()),
                mnm: Mnm::new(&template, config.mnm.clone()),
                stream,
                pos: 0,
                pending: Vec::new(),
                store_lines: Vec::new(),
                store_seen: HashSet::new(),
                report: CoreReport::default(),
                scratch: ReplayScratch::new(),
                ev_buf: Vec::new(),
                compute_nanos: 0,
                stall_nanos: 0,
            })
            .collect();
        // base_level 3: the standalone L3 hierarchy represents the outer
        // level of the template system, so its structure is bypassable
        // (level-1 structures never are) and probes carry the true level.
        let resolver = ResolverState {
            l3: Hierarchy::with_base_level(config.l3_hierarchy(), 3),
            placed_cur: HashSet::new(),
            placed_prev: HashSet::new(),
            scratch: ReplayScratch::new(),
            access_buf: Vec::new(),
            rounds: 0,
            resolve_nanos: 0,
        };
        let ctx = Ctx {
            l3_template_id,
            private_memory_level: Hierarchy::new(private_cfg).memory_level(),
            l3_block_bytes: config.l3.block_bytes,
            min_private_block,
            epoch: config.epoch,
        };
        ShardedSim { config, cores, resolver, ctx, timing: ShardTiming::default() }
    }

    /// The configuration this simulation was built with.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// Run the pipelined engine (one host thread per core plus a
    /// resolver thread). Produces a report bit-identical to
    /// [`ShardedSim::run_single_threaded`].
    pub fn run(&mut self) -> ShardReport {
        self.run_engine(Engine::Pipelined)
    }

    /// Run the stop-the-world barrier baseline. Produces a report
    /// bit-identical to [`ShardedSim::run_single_threaded`].
    pub fn run_barrier(&mut self) -> ShardReport {
        self.run_engine(Engine::Barrier)
    }

    /// Run everything on the calling thread (the reference execution the
    /// parallel drivers must match).
    pub fn run_single_threaded(&mut self) -> ShardReport {
        self.run_engine(Engine::Single)
    }

    /// Run the selected engine.
    pub fn run_engine(&mut self, engine: Engine) -> ShardReport {
        match engine {
            Engine::Pipelined => self.run_pipelined(),
            Engine::Barrier => self.run_barrier_engine(),
            Engine::Single => self.run_single_threaded_observed(&mut NoopObserver),
        }
    }

    /// Single-threaded run with lockstep checking hooks.
    pub fn run_single_threaded_observed(&mut self, obs: &mut dyn ShardObserver) -> ShardReport {
        let ctx = self.ctx;
        let wall = Instant::now();
        let n = self.cores.len();
        let mut inbox: Vec<Option<ResolvedMsg>> = (0..n).map(|_| None).collect();
        let mut prev_outs: Vec<OutMsg> = (0..n).map(|_| OutMsg::empty()).collect();
        let mut compute_nanos = 0u64;
        loop {
            self.resolver.rounds += 1;
            // Epoch start: the frozen view advances past the resolution
            // round being applied (if any) — tell the observer first so
            // its ledger matches the filters when verdicts are checked.
            if let Some(msg) = inbox.iter().flatten().next() {
                obs.l3_events(&msg.events);
            }
            let t0 = Instant::now();
            let mut cur_outs = Vec::with_capacity(n);
            for (ci, core) in self.cores.iter_mut().enumerate() {
                if let Some(msg) = inbox[ci].take() {
                    apply_inbox(ctx, core, &msg, obs);
                }
                cur_outs.push(run_epoch_compute(ctx, core, obs));
            }
            compute_nanos += elapsed_nanos(t0);
            let outs = std::mem::replace(&mut prev_outs, cur_outs);
            let msgs = resolve_round(ctx, outs, &mut self.resolver, obs);
            let done = prev_outs.iter().all(|o| o.exhausted && o.is_empty())
                && msgs.iter().all(ResolvedMsg::is_empty);
            for (ci, m) in msgs.into_iter().enumerate() {
                inbox[ci] = Some(m);
            }
            if done {
                break;
            }
        }
        self.timing = ShardTiming {
            engine: Engine::Single.label().to_owned(),
            wall_nanos: elapsed_nanos(wall),
            compute_nanos,
            resolve_nanos: self.resolver.resolve_nanos,
            stall_nanos: 0,
        };
        self.build_report()
    }

    /// The pipelined engine: compute overlaps resolution, handoff over
    /// per-core SPSC rings, no shared locks anywhere on the hot path.
    fn run_pipelined(&mut self) -> ShardReport {
        let ctx = self.ctx;
        let wall = Instant::now();
        let n = self.config.cores;
        let outboxes: Vec<SpscRing<OutMsg>> = (0..n).map(|_| SpscRing::new()).collect();
        let inboxes: Vec<SpscRing<ResolvedMsg>> = (0..n).map(|_| SpscRing::new()).collect();
        let cores = &mut self.cores;
        let resolver = &mut self.resolver;
        std::thread::scope(|scope| {
            for (t, core) in cores.iter_mut().enumerate() {
                let outbox = &outboxes[t];
                let inbox = &inboxes[t];
                scope.spawn(move || {
                    let mut noop = NoopObserver;
                    // Epoch 0 primes the pipeline: no results exist yet.
                    let t0 = Instant::now();
                    let out = run_epoch_compute(ctx, core, &mut noop);
                    core.compute_nanos += elapsed_nanos(t0);
                    outbox.push(out);
                    loop {
                        let t1 = Instant::now();
                        let msg = inbox.pop();
                        core.stall_nanos += elapsed_nanos(t1);
                        if msg.stop {
                            break;
                        }
                        let t2 = Instant::now();
                        apply_inbox(ctx, core, &msg, &mut noop);
                        let out = run_epoch_compute(ctx, core, &mut noop);
                        core.compute_nanos += elapsed_nanos(t2);
                        outbox.push(out);
                    }
                });
            }
            scope.spawn(|| {
                let mut noop = NoopObserver;
                // Prime each core with an empty round-(-1) result so
                // epoch 1 starts without waiting on resolution of epoch 0
                // — that is the pipeline.
                for inbox in &inboxes {
                    inbox.push(ResolvedMsg::prime());
                }
                let mut prev_empty = true;
                loop {
                    let outs: Vec<OutMsg> = outboxes.iter().map(SpscRing::pop).collect();
                    resolver.rounds += 1;
                    let done = prev_empty && outs.iter().all(|o| o.exhausted && o.is_empty());
                    if done {
                        for inbox in &inboxes {
                            inbox.push(ResolvedMsg::stop());
                        }
                        break;
                    }
                    let msgs = resolve_round(ctx, outs, resolver, &mut noop);
                    prev_empty = msgs.iter().all(ResolvedMsg::is_empty);
                    for (ci, m) in msgs.into_iter().enumerate() {
                        inboxes[ci].push(m);
                    }
                }
            });
        });
        self.timing = ShardTiming {
            engine: Engine::Pipelined.label().to_owned(),
            wall_nanos: elapsed_nanos(wall),
            compute_nanos: self.cores.iter().map(|c| c.compute_nanos).sum(),
            resolve_nanos: self.resolver.resolve_nanos,
            stall_nanos: self.cores.iter().map(|c| c.stall_nanos).sum(),
        };
        self.build_report()
    }

    /// The stop-the-world baseline: same schedule, but resolution runs
    /// inside the barrier window while every core idles.
    fn run_barrier_engine(&mut self) -> ShardReport {
        let ctx = self.ctx;
        let wall = Instant::now();
        let n = self.config.cores;
        let barrier = Barrier::new(n);
        let done = AtomicBool::new(false);
        let out_slots: Vec<Mutex<Option<OutMsg>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let in_slots: Vec<Mutex<Option<ResolvedMsg>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let prev_outs: Mutex<Vec<OutMsg>> = Mutex::new((0..n).map(|_| OutMsg::empty()).collect());
        let resolver = Mutex::new(&mut self.resolver);
        let cores = &mut self.cores;
        std::thread::scope(|scope| {
            for (t, core) in cores.iter_mut().enumerate() {
                let barrier = &barrier;
                let done = &done;
                let out_slots = &out_slots;
                let in_slots = &in_slots;
                let prev_outs = &prev_outs;
                let resolver = &resolver;
                scope.spawn(move || {
                    let mut noop = NoopObserver;
                    loop {
                        let t0 = Instant::now();
                        let msg = in_slots[t].lock().unwrap().take();
                        if let Some(msg) = msg {
                            apply_inbox(ctx, core, &msg, &mut noop);
                        }
                        let out = run_epoch_compute(ctx, core, &mut noop);
                        *out_slots[t].lock().unwrap() = Some(out);
                        core.compute_nanos += elapsed_nanos(t0);
                        let t1 = Instant::now();
                        if barrier.wait().is_leader() {
                            let mut rs = resolver.lock().unwrap();
                            rs.rounds += 1;
                            let cur: Vec<OutMsg> = out_slots
                                .iter()
                                .map(|s| s.lock().unwrap().take().expect("core missed a round"))
                                .collect();
                            let mut prev = prev_outs.lock().unwrap();
                            let outs = std::mem::replace(&mut *prev, cur);
                            let msgs = resolve_round(ctx, outs, &mut rs, &mut noop);
                            let all_done = prev.iter().all(|o| o.exhausted && o.is_empty())
                                && msgs.iter().all(ResolvedMsg::is_empty);
                            for (ci, m) in msgs.into_iter().enumerate() {
                                *in_slots[ci].lock().unwrap() = Some(m);
                            }
                            done.store(all_done, Ordering::SeqCst);
                        }
                        barrier.wait();
                        core.stall_nanos += elapsed_nanos(t1);
                        if done.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                });
            }
        });
        self.timing = ShardTiming {
            engine: Engine::Barrier.label().to_owned(),
            wall_nanos: elapsed_nanos(wall),
            compute_nanos: self.cores.iter().map(|c| c.compute_nanos).sum(),
            resolve_nanos: self.resolver.resolve_nanos,
            stall_nanos: self.cores.iter().map(|c| c.stall_nanos).sum(),
        };
        self.build_report()
    }

    fn build_report(&self) -> ShardReport {
        let cores = self
            .cores
            .iter()
            .map(|core| {
                let mut r = core.report.clone();
                r.private = core.hier.stats().clone();
                r.mnm = core.mnm.stats().clone();
                r
            })
            .collect();
        ShardReport {
            cores,
            l3: self.resolver.l3.stats().clone(),
            epochs: self.resolver.rounds,
            timing: self.timing.clone(),
        }
    }
}

fn elapsed_nanos(since: Instant) -> u64 {
    since.elapsed().as_nanos() as u64
}

/// Apply one resolution round's results to a core: coherence
/// invalidations first (they reflect resolution-time state and must land
/// before any new access queries the filters), then the global shared-L3
/// event list and this core's probe records in one batched filter
/// refresh, then the resolver's counter deltas.
fn apply_inbox(ctx: Ctx, core: &mut CoreState, msg: &ResolvedMsg, obs: &mut dyn ShardObserver) {
    for &line in &msg.invals {
        core.ev_buf.clear();
        let mut removed = 0u32;
        let mut off = 0;
        while off < ctx.l3_block_bytes {
            removed += core.hier.invalidate_block(line + off, &mut core.ev_buf);
            off += ctx.min_private_block;
        }
        core.mnm.observe_events(&core.ev_buf);
        core.report.invalidations_received += u64::from(removed);
        if removed > 0 {
            obs.coherence_invalidation(core.id, line, removed, &core.ev_buf);
        }
    }
    core.mnm.absorb_resolution(&msg.events, &msg.probes);
    let d = &msg.delta;
    core.report.l3_requests += d.l3_requests;
    core.report.l3_hits += d.l3_hits;
    core.report.l3_misses += d.l3_misses;
    core.report.l3_bypasses += d.l3_bypasses;
    core.report.stale_bypass_rescues += d.stale_bypass_rescues;
    core.report.unsound_verdicts += d.unsound_verdicts;
    core.report.cycles += d.cycles;
    core.report.store_lines_published += d.store_lines_published;
}

/// One core's compute phase: run up to `ctx.epoch` accesses on private
/// state, queuing shared-L3 requests and published store lines into the
/// epoch's outbox.
fn run_epoch_compute(ctx: Ctx, core: &mut CoreState, obs: &mut dyn ShardObserver) -> OutMsg {
    for _ in 0..ctx.epoch {
        let Some(&access) = core.stream.get(core.pos) else {
            break;
        };
        core.pos += 1;
        let verdict = core.mnm.query(access);
        obs.verdict(core.id, access, verdict);
        let res = core.hier.access_with_events(access, &verdict, &mut core.scratch);
        core.mnm.observe_events(core.scratch.events());
        core.mnm.note_probes(core.scratch.probes());
        obs.private_step(core.id, access, core.scratch.events());
        core.report.accesses += 1;
        core.report.cycles += res.latency;
        if access.kind == AccessKind::Store {
            let line = access.addr & !(ctx.l3_block_bytes - 1);
            if core.store_seen.insert(line) {
                core.store_lines.push(line);
            }
        }
        if res.supply_level == ctx.private_memory_level {
            core.pending
                .push(L3Request { access, bypass_l3: verdict.contains(ctx.l3_template_id) });
        }
    }
    core.store_seen.clear();
    OutMsg {
        requests: std::mem::take(&mut core.pending),
        stores: std::mem::take(&mut core.store_lines),
        exhausted: core.pos >= core.stream.len(),
    }
}

/// The serial resolution phase: resolve every queued L3 request in
/// core-major program order through the hierarchy's batched
/// [`run_requests`](Hierarchy::run_requests) walk, then package per-core
/// results (invalidations, the global event list, probe records, counter
/// deltas) for application two epochs after the requests were issued.
fn resolve_round(
    ctx: Ctx,
    outs: Vec<OutMsg>,
    rs: &mut ResolverState,
    obs: &mut dyn ShardObserver,
) -> Vec<ResolvedMsg> {
    let t0 = Instant::now();
    let n = outs.len();
    // Rotate the rescue window: this round's verdicts were issued
    // against the image two rounds back, so placements from the previous
    // round are still invisible to them.
    std::mem::swap(&mut rs.placed_prev, &mut rs.placed_cur);
    rs.placed_cur.clear();
    let l3_sid = StructureId::new(0);
    let mut global_events: Vec<CacheEvent> = Vec::new();
    let mut victims: Vec<u64> = Vec::new();
    let mut victim_seen: HashSet<u64> = HashSet::new();
    let mut store_pub: Vec<Vec<u64>> = Vec::with_capacity(n);
    let mut probes_out: Vec<Vec<ProbeRecord>> = (0..n).map(|_| Vec::new()).collect();
    let mut deltas: Vec<ResolveDelta> = vec![ResolveDelta::default(); n];

    let ResolverState { l3, placed_cur, placed_prev, scratch, access_buf, .. } = rs;
    for (ci, out) in outs.into_iter().enumerate() {
        let reqs = out.requests;
        let delta = &mut deltas[ci];
        delta.l3_requests += reqs.len() as u64;
        access_buf.clear();
        access_buf.extend(reqs.iter().map(|r| r.access));
        // `decide` and `observe` alternate strictly per request; the
        // cursor advances in `observe` so both see the same index.
        let cursor = std::cell::Cell::new(0usize);
        let probes = &mut probes_out[ci];
        l3.run_requests(
            access_buf,
            scratch,
            |hier, access| {
                let mut bypass = BypassSet::none();
                if reqs[cursor.get()].bypass_l3 && !hier.contains(l3_sid, access.addr) {
                    bypass.insert(l3_sid);
                }
                bypass
            },
            |access, res, scratch| {
                let i = cursor.get();
                cursor.set(i + 1);
                let line = access.addr & !(ctx.l3_block_bytes - 1);
                // Classify before absorbing this request's own events:
                // the rescue window must not include the fill this very
                // request is about to cause.
                let outcome = if res.bypassed > 0 {
                    L3Outcome::Bypassed
                } else if reqs[i].bypass_l3 {
                    if placed_cur.contains(&line) || placed_prev.contains(&line) {
                        L3Outcome::Rescued
                    } else {
                        L3Outcome::Unsound
                    }
                } else if res.misses == 0 {
                    L3Outcome::Hit
                } else {
                    L3Outcome::Miss
                };
                delta.cycles += res.latency;
                match outcome {
                    L3Outcome::Hit => delta.l3_hits += 1,
                    L3Outcome::Miss => delta.l3_misses += 1,
                    L3Outcome::Bypassed => delta.l3_bypasses += 1,
                    L3Outcome::Rescued => {
                        delta.stale_bypass_rescues += 1;
                        delta.l3_hits += 1;
                    }
                    L3Outcome::Unsound => {
                        delta.unsound_verdicts += 1;
                        delta.l3_hits += 1;
                    }
                }
                obs.l3_resolution(ci, access, outcome);
                for ev in scratch.events() {
                    global_events.push(CacheEvent { structure: ctx.l3_template_id, ..*ev });
                    match ev.kind {
                        EventKind::Placed => {
                            placed_cur.insert(ev.block_base);
                        }
                        EventKind::Replaced => {
                            if victim_seen.insert(ev.block_base) {
                                victims.push(ev.block_base);
                            }
                        }
                        EventKind::Invalidated => {}
                    }
                }
                for p in scratch.probes() {
                    probes.push(ProbeRecord { structure: ctx.l3_template_id, ..*p });
                }
            },
        );
        deltas[ci].store_lines_published += out.stores.len() as u64;
        store_pub.push(out.stores);
    }

    // Package per-core results: L3 victims invalidate every core's
    // private copies; store lines invalidate every *other* core's.
    let events = Arc::new(global_events);
    let msgs = (0..n)
        .map(|ci| {
            let mut seen: HashSet<u64> = HashSet::new();
            let mut invals: Vec<u64> = Vec::new();
            for &v in &victims {
                if seen.insert(v) {
                    invals.push(v);
                }
            }
            for (cj, lines) in store_pub.iter().enumerate() {
                if cj == ci {
                    continue;
                }
                for &l in lines {
                    if seen.insert(l) {
                        invals.push(l);
                    }
                }
            }
            ResolvedMsg {
                invals,
                events: events.clone(),
                probes: std::mem::take(&mut probes_out[ci]),
                delta: deltas[ci],
                stop: false,
            }
        })
        .collect();
    rs.resolve_nanos += elapsed_nanos(t0);
    msgs
}
