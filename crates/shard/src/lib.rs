//! # mnm-shard
//!
//! Multi-core sharded simulation for the *"Just Say No"* (HPCA 2003)
//! reproduction: N cores, each owning a private L1/L2 hierarchy **and**
//! its own MNM filter state, sharing one L3, driven by an
//! epoch-synchronized replay loop so an N-core simulation actually uses
//! N host cores.
//!
//! The interesting part is keeping the *filters* coherent, not just the
//! caches: cross-core stores and shared-L3 replacements remove blocks
//! from remote private caches, and every removal flows into the remote
//! core's filters through the `Invalidated` event path — a blocked
//! filter update here would leave a filter believing a block is still
//! resident (harmless) or, worse, un-counted state that drifts from the
//! cache. The default engine is **pipelined**: a dedicated resolver
//! thread drains epoch E's shared-L3 queues while the cores already
//! compute epoch E+1, with per-core bounded SPSC rings instead of a
//! stop-the-world barrier. See [`sim`] for the execution model, the
//! frozen-view soundness argument, and the three engines (pipelined /
//! barrier / single) whose reports are bit-identical by contract.
//!
//! ```
//! use mnm_core::MnmConfig;
//! use mnm_shard::{sharded_streams, ShardConfig, ShardedSim};
//! use trace_synth::{profiles, sharing::SharingSpec};
//!
//! let config = ShardConfig::new(2, MnmConfig::parse("CMNM_8_12").unwrap());
//! let mut spec = SharingSpec::new(2);
//! spec.sharing_ratio = 0.5;
//! let profile = profiles::by_name("181.mcf").unwrap();
//! let streams = sharded_streams(&profile, &spec, 5_000, config.l1.block_bytes);
//! let mut sim = ShardedSim::new(config, streams);
//! let report = sim.run_single_threaded();
//! assert_eq!(report.total_unsound(), 0);
//! ```

mod config;
mod report;
mod sim;
mod spsc;
mod stream;
mod tune;

pub use config::ShardConfig;
pub use report::{CoreReport, ShardReport, ShardTiming};
pub use sim::{Engine, L3Outcome, ShardObserver, ShardedSim};
pub use stream::sharded_streams;
pub use tune::{autotune_epoch, TunePoint, EPOCH_CANDIDATES};
