//! Building per-core access streams from synthetic workloads.

use cache_sim::Access;
use trace_synth::sharing::{sharded_programs, SharingSpec};
use trace_synth::{AppProfile, InstrKind};

/// Materialize `accesses_per_core` cache accesses for each core from
/// `profile` under `spec`, using the same instruction-to-access
/// convention as the single-core experiment runner: one instruction
/// fetch per new fetch block (`fetch_block_bytes`, normally the L1-I
/// line size, refetched after a misprediction), one data access per
/// load/store.
pub fn sharded_streams(
    profile: &AppProfile,
    spec: &SharingSpec,
    accesses_per_core: usize,
    fetch_block_bytes: u64,
) -> Vec<Vec<Access>> {
    assert!(fetch_block_bytes.is_power_of_two(), "fetch block size must be a power of two");
    let fetch_shift = fetch_block_bytes.trailing_zeros();
    sharded_programs(profile, spec)
        .into_iter()
        .map(|mut program| {
            let mut out = Vec::with_capacity(accesses_per_core);
            let mut cur_block = u64::MAX;
            while out.len() < accesses_per_core {
                let instr = program.next().expect("synthetic programs are endless");
                let block = instr.pc >> fetch_shift;
                if block != cur_block {
                    cur_block = block;
                    out.push(Access::fetch(instr.pc));
                    if out.len() >= accesses_per_core {
                        break;
                    }
                }
                match instr.kind {
                    InstrKind::Load { addr } => out.push(Access::load(addr)),
                    InstrKind::Store { addr } => out.push(Access::store(addr)),
                    InstrKind::Branch { mispredicted } => {
                        if mispredicted {
                            cur_block = u64::MAX;
                        }
                    }
                    InstrKind::Op { .. } => {}
                }
            }
            out.truncate(accesses_per_core);
            out
        })
        .collect()
}
