//! Epoch-length autotuning (`--epoch auto`).
//!
//! The epoch length trades synchronization overhead against resolver
//! pressure: short epochs hand off constantly (handoff and per-round
//! fixed costs dominate), long epochs queue so many shared-L3 requests
//! per round that the single resolver thread becomes the pipeline's
//! bottleneck — cores stall waiting for results no matter how many host
//! cores exist.
//!
//! The tuner calibrates **before** the real run: for each candidate
//! epoch it replays a short prefix of the actual streams through the
//! single-threaded engine (deterministic, thread-free, so calibration
//! itself is bit-stable) and reads the phase timing off the report. The
//! figure of merit is **resolver occupancy relative to per-core
//! compute**: `resolve_nanos / (compute_nanos / cores)` estimates what
//! fraction of one core's epoch the resolver needs to drain the round in
//! the pipelined engine. It picks the *smallest* candidate whose
//! occupancy stays below [`OCCUPANCY_TARGET`] — smallest because shorter
//! epochs keep filter state fresher (fewer stale-bypass rescues) and
//! bound queue memory; the occupancy ceiling is what guarantees the
//! resolver can hide behind compute.
//!
//! The tuner returns a **concrete** epoch, and the caller runs every
//! engine with it — so `--epoch auto` preserves the pipelined ==
//! barrier == single bit-identity contract (identity is a property of
//! the chosen epoch, not of the tuning procedure).

use crate::config::ShardConfig;
use crate::sim::ShardedSim;
use cache_sim::Access;

/// Candidate epoch lengths, ascending. Spans the regime where handoff
/// overhead dominates (64) to where resolver batching saturates (16384).
pub const EPOCH_CANDIDATES: [usize; 5] = [64, 256, 1024, 4096, 16384];

/// Per-core accesses replayed for each calibration point.
const CALIBRATION_ACCESSES: usize = 16_384;

/// Highest resolver occupancy (resolve time over per-core compute time)
/// a candidate may show and still be eligible. Below this the resolver
/// hides behind compute in the pipelined engine with margin for host
/// noise.
const OCCUPANCY_TARGET: f64 = 0.85;

/// One calibration measurement.
#[derive(Debug, Clone)]
pub struct TunePoint {
    /// The candidate epoch length.
    pub epoch: usize,
    /// Compute nanoseconds over the calibration prefix (all cores).
    pub compute_nanos: u64,
    /// Resolver nanoseconds over the calibration prefix.
    pub resolve_nanos: u64,
    /// `resolve_nanos / (compute_nanos / cores)`: the fraction of one
    /// core's epoch the resolver needs.
    pub occupancy: f64,
}

/// Pick an epoch length for `config` by calibrating over a prefix of
/// `streams`. Returns the chosen epoch and every measurement taken.
///
/// # Panics
///
/// Panics if `streams.len() != config.cores` (same contract as
/// [`ShardedSim::new`]).
pub fn autotune_epoch(config: &ShardConfig, streams: &[Vec<Access>]) -> (usize, Vec<TunePoint>) {
    assert_eq!(streams.len(), config.cores, "need exactly one access stream per core");
    let mut points = Vec::with_capacity(EPOCH_CANDIDATES.len());
    for &epoch in &EPOCH_CANDIDATES {
        let prefix: Vec<Vec<Access>> =
            streams.iter().map(|s| s[..s.len().min(CALIBRATION_ACCESSES)].to_vec()).collect();
        let mut cfg = config.clone();
        cfg.epoch = epoch;
        let mut sim = ShardedSim::new(cfg, prefix);
        let report = sim.run_single_threaded();
        let t = &report.timing;
        let per_core_compute = t.compute_nanos as f64 / config.cores as f64;
        let occupancy =
            if per_core_compute > 0.0 { t.resolve_nanos as f64 / per_core_compute } else { 0.0 };
        points.push(TunePoint {
            epoch,
            compute_nanos: t.compute_nanos,
            resolve_nanos: t.resolve_nanos,
            occupancy,
        });
    }
    let chosen = points
        .iter()
        .find(|p| p.occupancy <= OCCUPANCY_TARGET)
        .or_else(|| {
            // No candidate hides the resolver; take the least-saturated.
            points.iter().min_by(|a, b| a.occupancy.total_cmp(&b.occupancy))
        })
        .map(|p| p.epoch)
        .expect("EPOCH_CANDIDATES is non-empty");
    (chosen, points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::sharded_streams;
    use mnm_core::MnmConfig;
    use trace_synth::profiles;
    use trace_synth::sharing::SharingSpec;

    /// The tuner returns one of its candidates, measures every
    /// candidate, and the chosen epoch drives a normal identical run.
    #[test]
    fn autotune_picks_a_candidate_and_preserves_identity() {
        let config = ShardConfig::new(2, MnmConfig::parse("HMNM4").unwrap());
        let mut spec = SharingSpec::new(2);
        spec.sharing_ratio = 0.25;
        let profile = profiles::by_name("181.mcf").unwrap();
        let streams = sharded_streams(&profile, &spec, 6_000, config.l1.block_bytes);
        let (epoch, points) = autotune_epoch(&config, &streams);
        assert!(EPOCH_CANDIDATES.contains(&epoch));
        assert_eq!(points.len(), EPOCH_CANDIDATES.len());
        assert!(points.iter().all(|p| p.occupancy.is_finite()));

        let mut cfg = config.clone();
        cfg.epoch = epoch;
        let mut a = ShardedSim::new(cfg.clone(), streams.clone());
        let mut b = ShardedSim::new(cfg, streams);
        assert_eq!(a.run(), b.run_single_threaded());
    }
}
