//! Multi-core simulation configuration.

use cache_sim::{CacheConfig, HierarchyConfig, LevelConfig};
use mnm_core::MnmConfig;

/// Geometry and policy of an N-core sharded simulation.
///
/// Every core owns a private split L1 and unified L2 plus its own MNM
/// filter state; all cores share one L3. The MNM is built against the
/// **template hierarchy** ([`ShardConfig::template_hierarchy`]) — the
/// three-level system one core observes — so its verdicts carry a bit for
/// the private L2 *and* the shared L3.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of simulated cores (= worker threads in the parallel run).
    pub cores: usize,
    /// Accesses each core executes per epoch between barriers.
    pub epoch: usize,
    /// MNM filter configuration instantiated once per core.
    pub mnm: MnmConfig,
    /// Private L1 geometry (instantiated split into il1/dl1).
    pub l1: CacheConfig,
    /// Private unified L2 geometry.
    pub l2: CacheConfig,
    /// Shared L3 geometry.
    pub l3: CacheConfig,
    /// Main-memory latency behind the shared L3, in cycles.
    pub memory_latency: u64,
}

impl ShardConfig {
    /// Default geometry: per-core 4 KB direct-mapped split L1 (32 B,
    /// 2 cycles) and 64 KB 4-way unified L2 (32 B, 10 cycles), shared
    /// 1 MB 8-way L3 (64 B, 24 cycles), 320-cycle memory.
    pub fn new(cores: usize, mnm: MnmConfig) -> Self {
        ShardConfig {
            cores,
            epoch: 2048,
            mnm,
            l1: CacheConfig::new("l1", 4 * 1024, 1, 32, 2),
            l2: CacheConfig::new("ul2", 64 * 1024, 4, 32, 10),
            l3: CacheConfig::new("ul3", 1024 * 1024, 8, 64, 24),
            memory_latency: 320,
        }
    }

    /// The three-level hierarchy one core observes: private L1 + L2 with
    /// the shared L3 behind them. Per-core [`Mnm`](mnm_core::Mnm)s are
    /// built against this, so structure ids are il1=0, dl1=1, ul2=2,
    /// ul3=3 everywhere — the private hierarchy uses the matching prefix
    /// and shared-L3 events are remapped onto id 3.
    pub fn template_hierarchy(&self) -> HierarchyConfig {
        HierarchyConfig {
            levels: vec![
                LevelConfig::split_symmetric(&self.l1),
                LevelConfig::Unified(self.l2.clone()),
                LevelConfig::Unified(self.l3.clone()),
            ],
            memory_latency: self.memory_latency,
            inclusive: false,
        }
    }

    /// One core's private two-level hierarchy. Its memory latency is
    /// zero: whatever spills past the private L2 is priced by the shared
    /// L3 at the next barrier, not here.
    pub fn private_hierarchy(&self) -> HierarchyConfig {
        HierarchyConfig {
            levels: vec![
                LevelConfig::split_symmetric(&self.l1),
                LevelConfig::Unified(self.l2.clone()),
            ],
            memory_latency: 0,
            inclusive: false,
        }
    }

    /// The shared L3 as a standalone single-level hierarchy (reusing the
    /// simulator's fill/eviction/stats machinery). Its `StructureId(0)`
    /// is remapped to the template's ul3 id before events reach any
    /// per-core filter.
    pub fn l3_hierarchy(&self) -> HierarchyConfig {
        HierarchyConfig {
            levels: vec![LevelConfig::Unified(self.l3.clone())],
            memory_latency: self.memory_latency,
            inclusive: false,
        }
    }

    /// Validate the geometry.
    ///
    /// # Panics
    ///
    /// Panics on zero cores, a zero-length epoch, or invalid cache
    /// configurations.
    pub fn validate(&self) {
        assert!(self.cores > 0, "sharded simulation needs at least one core");
        assert!(self.epoch > 0, "epoch length must be positive");
        self.template_hierarchy().validate().expect("invalid shard cache geometry");
        assert!(
            self.l3.block_bytes >= self.l1.block_bytes
                && self.l3.block_bytes >= self.l2.block_bytes,
            "the shared L3 line must be at least as large as private lines \
             (coherence is tracked at L3-line granularity)"
        );
    }
}
