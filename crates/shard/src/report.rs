//! Per-core and aggregate results of a sharded run.

use cache_sim::HierarchyStats;
use mnm_core::MnmStats;

/// Counters one core accumulates across the run. Everything here is
/// deterministic: the parallel and single-threaded drivers must produce
/// bit-identical reports (that identity is the race-freedom check CI
/// runs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreReport {
    /// Accesses this core executed.
    pub accesses: u64,
    /// Total access latency in cycles (private probes plus the shared-L3
    /// or memory latency of every request that left the private levels).
    pub cycles: u64,
    /// Requests that missed every private level and went to the shared L3.
    pub l3_requests: u64,
    /// L3 requests that probed and hit.
    pub l3_hits: u64,
    /// L3 requests that probed and missed (memory supplied).
    pub l3_misses: u64,
    /// L3 requests whose definite-miss verdict skipped the L3 probe —
    /// the block was indeed absent.
    pub l3_bypasses: u64,
    /// Bypass verdicts that found the block resident because *this
    /// barrier* placed it (after the verdict was issued against the
    /// epoch-start L3 image). Sound: demoted to a normal probe.
    pub stale_bypass_rescues: u64,
    /// Bypass verdicts that found the block resident although it was
    /// already resident at epoch start. These are genuine soundness
    /// violations; a correct filter never produces one.
    pub unsound_verdicts: u64,
    /// Blocks removed from this core's private caches by coherence
    /// (remote stores and shared-L3 replacements).
    pub invalidations_received: u64,
    /// Distinct L3 lines this core stored to (per-epoch deduplicated) —
    /// each is broadcast as an invalidation to every other core.
    pub store_lines_published: u64,
    /// Private-hierarchy statistics (il1/dl1/ul2).
    pub private: HierarchyStats,
    /// This core's MNM statistics (private L2 slot + shared L3 slot).
    pub mnm: MnmStats,
}

/// Wall-clock phase breakdown of one run. Purely diagnostic: timing is
/// host-dependent and therefore **excluded from report equality** — the
/// bit-identity contract between engines covers simulation results only.
#[derive(Debug, Clone)]
pub struct ShardTiming {
    /// Which engine produced the run (`pipelined`, `barrier`, `single`).
    pub engine: String,
    /// Wall-clock nanoseconds for the whole run.
    pub wall_nanos: u64,
    /// Nanoseconds spent computing epochs (summed across cores in the
    /// parallel engines — divide by the core count for per-core time).
    pub compute_nanos: u64,
    /// Nanoseconds the resolver spent draining shared-L3 queues.
    pub resolve_nanos: u64,
    /// Nanoseconds cores spent stalled waiting for handoff (summed
    /// across cores; zero in the single engine).
    pub stall_nanos: u64,
}

impl Default for ShardTiming {
    fn default() -> Self {
        ShardTiming {
            engine: "unrun".to_owned(),
            wall_nanos: 0,
            compute_nanos: 0,
            resolve_nanos: 0,
            stall_nanos: 0,
        }
    }
}

impl ShardTiming {
    /// Fraction of the run's wall clock the resolver was busy. Near 1.0
    /// means resolution is the bottleneck (epochs too short or too many
    /// shared requests); the `--epoch auto` tuner targets keeping this
    /// below its occupancy ceiling.
    pub fn resolver_occupancy(&self) -> f64 {
        if self.wall_nanos == 0 {
            return 0.0;
        }
        self.resolve_nanos as f64 / self.wall_nanos as f64
    }
}

/// The full result of a sharded run.
#[derive(Debug, Clone, Default)]
pub struct ShardReport {
    /// One report per core, in core order.
    pub cores: Vec<CoreReport>,
    /// Shared-L3 statistics (a single-structure hierarchy).
    pub l3: HierarchyStats,
    /// Number of epochs executed (including the final drain epoch).
    pub epochs: u64,
    /// Host-dependent phase timing (not part of report equality).
    pub timing: ShardTiming,
}

// Manual equality: `timing` is host noise, everything else is the
// deterministic simulation result the engines must agree on bit-for-bit.
impl PartialEq for ShardReport {
    fn eq(&self, other: &Self) -> bool {
        self.cores == other.cores && self.l3 == other.l3 && self.epochs == other.epochs
    }
}

impl ShardReport {
    /// Total accesses across all cores.
    pub fn total_accesses(&self) -> u64 {
        self.cores.iter().map(|c| c.accesses).sum()
    }

    /// Total unsound verdicts across all cores (must be zero for a sound
    /// filter configuration).
    pub fn total_unsound(&self) -> u64 {
        self.cores.iter().map(|c| c.unsound_verdicts).sum()
    }

    /// Serialize as the `jsn-shard/v1` JSON document.
    pub fn to_json(&self, config_label: &str, cores: usize, epoch: usize, sharing: f64) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str("  \"schema\": \"jsn-shard/v1\",\n");
        s.push_str(&format!("  \"config\": \"{config_label}\",\n"));
        s.push_str(&format!("  \"cores\": {cores},\n"));
        s.push_str(&format!("  \"epoch\": {epoch},\n"));
        s.push_str(&format!("  \"sharing_ratio\": {sharing},\n"));
        // One line on purpose: timing is host noise, and CI strips it
        // with `grep -v '"timing"'` before diffing engine outputs.
        s.push_str(&format!(
            "  \"timing\": {{\"engine\": \"{}\", \"wall_nanos\": {}, \"compute_nanos\": {}, \
             \"resolve_nanos\": {}, \"stall_nanos\": {}, \"resolver_occupancy\": {:.6}}},\n",
            self.timing.engine,
            self.timing.wall_nanos,
            self.timing.compute_nanos,
            self.timing.resolve_nanos,
            self.timing.stall_nanos,
            self.timing.resolver_occupancy(),
        ));
        s.push_str(&format!("  \"epochs_run\": {},\n", self.epochs));
        s.push_str(&format!("  \"total_accesses\": {},\n", self.total_accesses()));
        s.push_str(&format!("  \"unsound_verdicts\": {},\n", self.total_unsound()));
        let l3s = &self.l3.structures[0];
        s.push_str(&format!(
            "  \"l3\": {{\"probes\": {}, \"hits\": {}, \"misses\": {}, \"bypasses\": {}, \
             \"fills\": {}, \"evictions\": {}, \"invalidations\": {}, \"writebacks\": {}}},\n",
            l3s.probes,
            l3s.hits,
            l3s.misses,
            l3s.bypasses,
            l3s.fills,
            l3s.evictions,
            l3s.invalidations,
            l3s.writebacks,
        ));
        s.push_str("  \"per_core\": [\n");
        for (i, c) in self.cores.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"core\": {i}, \"accesses\": {}, \"cycles\": {}, \"l3_requests\": {}, \
                 \"l3_hits\": {}, \"l3_misses\": {}, \"l3_bypasses\": {}, \
                 \"stale_bypass_rescues\": {}, \"unsound_verdicts\": {}, \
                 \"invalidations_received\": {}, \"store_lines_published\": {}, \
                 \"flagged_accesses\": {}, \"filter_coverage\": {:.6}}}{}\n",
                c.accesses,
                c.cycles,
                c.l3_requests,
                c.l3_hits,
                c.l3_misses,
                c.l3_bypasses,
                c.stale_bypass_rescues,
                c.unsound_verdicts,
                c.invalidations_received,
                c.store_lines_published,
                c.mnm.accesses_with_flags,
                c.mnm.coverage(),
                if i + 1 == self.cores.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }
}
