//! Property-style tests of the synthetic workload generator: determinism,
//! mix conformance, address-space discipline and locality structure.
//!
//! Formerly proptest-based; rewritten as exhaustive deterministic sweeps
//! over all 20 profiles (plus a seeded PRNG for prefix lengths) so the
//! workspace needs no external crates. Coverage went up, not down: every
//! profile is now exercised by every property on every run.

use trace_synth::{profiles, InstrKind, Prng, Program};

/// Any prefix of any profile's stream replays identically.
#[test]
fn prefixes_are_deterministic() {
    let mut rng = Prng::seed_from_u64(0x00DE_7E51);
    for profile in profiles::all() {
        let n = rng.gen_range(1..4000) as usize;
        let a: Vec<_> = Program::new(profile.clone()).take(n).collect();
        let b: Vec<_> = Program::new(profile).take(n).collect();
        assert_eq!(a, b);
    }
}

/// The empirical instruction mix converges to the profile's fractions.
#[test]
fn mix_converges() {
    for profile in profiles::all() {
        let n = 60_000;
        let instrs: Vec<_> = Program::new(profile.clone()).take(n).collect();
        let count = |f: &dyn Fn(&InstrKind) -> bool| {
            instrs.iter().filter(|i| f(&i.kind)).count() as f64 / n as f64
        };
        let loads = count(&|k| matches!(k, InstrKind::Load { .. }));
        let stores = count(&|k| matches!(k, InstrKind::Store { .. }));
        let branches = count(&|k| matches!(k, InstrKind::Branch { .. }));
        assert!((loads - profile.load_frac).abs() < 0.02, "{}: loads {loads}", profile.name);
        assert!((stores - profile.store_frac).abs() < 0.02, "{}: stores {stores}", profile.name);
        assert!(
            (branches - profile.branch_frac).abs() < 0.02,
            "{}: branches {branches}",
            profile.name
        );
    }
}

/// Addresses stay inside the declared arenas: code in the footprint,
/// data inside the region span; everything 4/8-byte aligned.
#[test]
fn address_discipline() {
    let mut rng = Prng::seed_from_u64(0xADD2);
    for profile in profiles::all() {
        let n = rng.gen_range(1000..20_000) as usize;
        let code_lo = Program::new(profile.clone()).next().unwrap().pc & !0xFFF;
        let code_hi = code_lo + profile.code_footprint + 0x1000;
        for i in Program::new(profile.clone()).take(n) {
            assert!(i.pc >= code_lo && i.pc < code_hi, "pc {:#x}", i.pc);
            assert_eq!(i.pc % 4, 0);
            if let Some(a) = i.data_addr() {
                assert_eq!(a % 8, 0);
                assert!(a >= 0x1000_0000, "data below arena: {a:#x}");
            }
        }
    }
}

/// Dependency distances are bounded.
#[test]
fn dependencies_are_short_and_backward() {
    for profile in profiles::all() {
        for i in Program::new(profile).take(10_000) {
            for d in [i.src1, i.src2] {
                assert!(d <= 15, "distance {d}");
            }
        }
    }
}

/// Misprediction rate converges to the profile's parameter.
#[test]
fn mispredict_rate_converges() {
    for profile in profiles::all() {
        let mut branches = 0u64;
        let mut wrong = 0u64;
        for i in Program::new(profile.clone()).take(80_000) {
            if let InstrKind::Branch { mispredicted } = i.kind {
                branches += 1;
                wrong += u64::from(mispredicted);
            }
        }
        if branches <= 500 {
            continue;
        }
        let rate = wrong as f64 / branches as f64;
        assert!(
            (rate - profile.mispredict_rate).abs() < 0.03,
            "{}: rate {rate} vs {}",
            profile.name,
            profile.mispredict_rate
        );
    }
}

/// Locality contrast across the suite: a chaser touches far more distinct
/// data blocks than a hot-set app over the same window.
#[test]
fn locality_spectrum_is_wide() {
    let distinct_blocks = |name: &str| {
        let profile = profiles::by_name(name).unwrap();
        Program::new(profile)
            .take(100_000)
            .filter_map(|i| i.data_addr())
            .map(|a| a >> 5)
            .collect::<std::collections::HashSet<_>>()
            .len()
    };
    let gzip = distinct_blocks("164.gzip");
    let mcf = distinct_blocks("181.mcf");
    assert!(mcf > 4 * gzip, "mcf {mcf} blocks vs gzip {gzip}");
}

/// Instruction-side contrast: apsi's code footprint dwarfs mcf's.
#[test]
fn code_footprint_spectrum_is_wide() {
    let distinct_pcs = |name: &str| {
        let profile = profiles::by_name(name).unwrap();
        Program::new(profile)
            .take(100_000)
            .map(|i| i.pc >> 5)
            .collect::<std::collections::HashSet<_>>()
            .len()
    };
    let apsi = distinct_pcs("301.apsi");
    let mcf = distinct_pcs("181.mcf");
    assert!(apsi > 8 * mcf, "apsi {apsi} fetch blocks vs mcf {mcf}");
}
