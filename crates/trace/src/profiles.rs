//! The 20 synthetic SPEC CPU2000-like application profiles.
//!
//! The paper simulates 10 integer and 10 floating-point SPEC2000
//! applications (Section 4.1, Table 2). Each profile below is a synthetic
//! stand-in tuned to reproduce the *qualitative* cache behaviour its
//! namesake is known for in the literature:
//!
//! * `181.mcf`, `179.art` — huge pointer-chasing footprints, poor hit
//!   rates at every level;
//! * `171.swim`, `172.mgrid`, `189.lucas` — large strided array sweeps,
//!   strong spatial locality, capacity-bound outer levels;
//! * `176.gcc`, `253.perlbmk`, `301.apsi` — large instruction footprints
//!   (the paper singles out `301.apsi`'s high level-2 I-cache miss ratio);
//! * `164.gzip`, `186.crafty`, `177.mesa` — compact hot sets, high L1
//!   hit rates.
//!
//! The exact numbers are *not* expected to match the paper's Table 2 — the
//! substitution preserves the spread of per-level hit rates, which is what
//! the MNM coverage and benefit results depend on.

// The region tables below deliberately write sizes as `N * KB` for column
// alignment, including `1 * KB`.
#![allow(clippy::identity_op)]
use crate::program::{AppCategory, AppProfile, RegionSpec};
use crate::regions::RegionKind;

use AppCategory::{FloatingPoint, Integer};
use RegionKind::{Hot, PointerChase, Random};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

fn stride(bytes: u32) -> RegionKind {
    RegionKind::Strided { stride: bytes }
}

#[allow(clippy::too_many_arguments)]
fn profile(
    name: &str,
    category: AppCategory,
    seed: u64,
    mix: (f64, f64, f64, f64), // load, store, branch, fp
    mispredict: f64,
    code_kb: u64,
    loops: (f64, f64, u32), // backedge prob, call prob, body length
    dep_density: f64,
    regions: Vec<RegionSpec>,
) -> AppProfile {
    AppProfile {
        name: name.to_owned(),
        category,
        seed,
        load_frac: mix.0,
        store_frac: mix.1,
        branch_frac: mix.2,
        fp_frac: mix.3,
        mispredict_rate: mispredict,
        code_footprint: code_kb * KB,
        loop_backedge_prob: loops.0,
        call_prob: loops.1,
        avg_loop_body: loops.2,
        dep_density,
        regions,
        phase_drift: None,
    }
}

fn region(kind: RegionKind, size: u64, weight: u32) -> RegionSpec {
    RegionSpec { kind, size, weight }
}

/// All 20 application profiles (10 integer, then 10 floating point).
pub fn all() -> Vec<AppProfile> {
    vec![
        // ---------------- CINT2000-like ----------------
        profile(
            "164.gzip",
            Integer,
            0x1640,
            (0.26, 0.11, 0.16, 0.0),
            0.06,
            16,
            (0.85, 0.04, 14),
            0.55,
            vec![
                region(Hot, 2 * KB, 30),
                region(stride(8), 256 * KB, 5),
                region(Random, 64 * KB, 2),
            ],
        ),
        profile(
            "175.vpr",
            Integer,
            0x1750,
            (0.30, 0.10, 0.14, 0.05),
            0.08,
            48,
            (0.80, 0.06, 12),
            0.55,
            vec![
                region(Hot, 3 * KB, 20),
                region(PointerChase, 512 * KB, 4),
                region(stride(16), 128 * KB, 2),
            ],
        ),
        profile(
            "176.gcc",
            Integer,
            0x1760,
            (0.28, 0.14, 0.17, 0.0),
            0.09,
            384,
            (0.62, 0.28, 10),
            0.50,
            vec![
                region(Hot, 4 * KB, 18),
                region(Random, 1 * MB, 3),
                region(stride(8), 512 * KB, 2),
            ],
        ),
        profile(
            "181.mcf",
            Integer,
            0x1810,
            (0.34, 0.09, 0.16, 0.0),
            0.09,
            8,
            (0.85, 0.03, 16),
            0.65,
            vec![
                region(Hot, 2 * KB, 12),
                region(PointerChase, 12 * MB, 8),
                region(stride(8), 1 * MB, 1),
            ],
        ),
        profile(
            "186.crafty",
            Integer,
            0x1860,
            (0.27, 0.08, 0.15, 0.0),
            0.07,
            96,
            (0.72, 0.16, 11),
            0.50,
            vec![region(Hot, 4 * KB, 20), region(Random, 512 * KB, 4)],
        ),
        profile(
            "197.parser",
            Integer,
            0x1970,
            (0.29, 0.12, 0.16, 0.0),
            0.08,
            80,
            (0.78, 0.10, 12),
            0.55,
            vec![
                region(Hot, 2 * KB, 16),
                region(PointerChase, 1 * MB, 4),
                region(Random, 256 * KB, 2),
            ],
        ),
        profile(
            "253.perlbmk",
            Integer,
            0x2530,
            (0.28, 0.13, 0.17, 0.0),
            0.08,
            320,
            (0.60, 0.30, 9),
            0.50,
            vec![
                region(Hot, 4 * KB, 18),
                region(Random, 512 * KB, 3),
                region(PointerChase, 256 * KB, 2),
            ],
        ),
        profile(
            "255.vortex",
            Integer,
            0x2550,
            (0.30, 0.13, 0.15, 0.0),
            0.06,
            192,
            (0.68, 0.22, 12),
            0.50,
            vec![region(Hot, 4 * KB, 16), region(Random, 2 * MB, 4)],
        ),
        profile(
            "256.bzip2",
            Integer,
            0x2560,
            (0.28, 0.12, 0.14, 0.0),
            0.07,
            16,
            (0.85, 0.04, 15),
            0.55,
            vec![
                region(Hot, 2 * KB, 14),
                region(stride(8), 4 * MB, 6),
                region(Random, 384 * KB, 2),
            ],
        ),
        profile(
            "300.twolf",
            Integer,
            0x3000,
            (0.29, 0.09, 0.15, 0.03),
            0.08,
            64,
            (0.80, 0.08, 12),
            0.55,
            vec![
                region(Hot, 2 * KB, 14),
                region(PointerChase, 384 * KB, 6),
                region(Random, 96 * KB, 2),
            ],
        ),
        // ---------------- CFP2000-like ----------------
        profile(
            "168.wupwise",
            FloatingPoint,
            0x1680,
            (0.28, 0.10, 0.07, 0.55),
            0.03,
            24,
            (0.88, 0.04, 20),
            0.45,
            vec![region(Hot, 2 * KB, 10), region(stride(8), 2 * MB, 8)],
        ),
        profile(
            "171.swim",
            FloatingPoint,
            0x1710,
            (0.31, 0.12, 0.04, 0.60),
            0.02,
            8,
            (0.93, 0.02, 24),
            0.40,
            vec![
                region(stride(8), 8 * MB, 8),
                region(stride(8), 4 * MB, 3),
                region(Hot, 1 * KB, 4),
            ],
        ),
        profile(
            "172.mgrid",
            FloatingPoint,
            0x1720,
            (0.33, 0.09, 0.03, 0.62),
            0.02,
            8,
            (0.93, 0.02, 26),
            0.40,
            vec![
                region(stride(8), 4 * MB, 7),
                region(stride(512), 4 * MB, 2),
                region(Hot, 1 * KB, 3),
            ],
        ),
        profile(
            "173.applu",
            FloatingPoint,
            0x1730,
            (0.30, 0.11, 0.05, 0.58),
            0.03,
            40,
            (0.88, 0.04, 22),
            0.45,
            vec![region(stride(8), 4 * MB, 7), region(Random, 512 * KB, 1), region(Hot, 2 * KB, 4)],
        ),
        profile(
            "177.mesa",
            FloatingPoint,
            0x1770,
            (0.27, 0.12, 0.10, 0.40),
            0.05,
            128,
            (0.74, 0.18, 14),
            0.50,
            vec![
                region(Hot, 4 * KB, 16),
                region(stride(16), 1 * MB, 4),
                region(Random, 128 * KB, 2),
            ],
        ),
        profile(
            "179.art",
            FloatingPoint,
            0x1790,
            (0.33, 0.08, 0.08, 0.50),
            0.04,
            8,
            (0.88, 0.02, 18),
            0.50,
            vec![
                region(PointerChase, 6 * MB, 7),
                region(stride(8), 512 * KB, 2),
                region(Hot, 1 * KB, 4),
            ],
        ),
        profile(
            "183.equake",
            FloatingPoint,
            0x1830,
            (0.31, 0.10, 0.08, 0.52),
            0.04,
            24,
            (0.86, 0.05, 18),
            0.50,
            vec![
                region(PointerChase, 2 * MB, 4),
                region(stride(8), 2 * MB, 5),
                region(Hot, 2 * KB, 5),
            ],
        ),
        profile(
            "188.ammp",
            FloatingPoint,
            0x1880,
            (0.30, 0.10, 0.07, 0.55),
            0.04,
            48,
            (0.85, 0.06, 18),
            0.50,
            vec![
                region(PointerChase, 2 * MB, 5),
                region(Random, 512 * KB, 1),
                region(Hot, 2 * KB, 6),
            ],
        ),
        profile(
            "189.lucas",
            FloatingPoint,
            0x1890,
            (0.30, 0.11, 0.03, 0.62),
            0.02,
            8,
            (0.93, 0.02, 28),
            0.40,
            vec![
                region(stride(8), 16 * MB, 6),
                region(stride(512), 8 * MB, 1),
                region(Hot, 1 * KB, 4),
            ],
        ),
        profile(
            "301.apsi",
            FloatingPoint,
            0x3010,
            (0.29, 0.11, 0.09, 0.50),
            0.05,
            512,
            (0.52, 0.40, 10),
            0.45,
            vec![region(stride(8), 1 * MB, 5), region(Random, 256 * KB, 2), region(Hot, 2 * KB, 8)],
        ),
    ]
}

/// Look a profile up by its SPEC-style name (e.g. `"181.mcf"`).
pub fn by_name(name: &str) -> Option<AppProfile> {
    all().into_iter().find(|p| p.name == name)
}

/// Names of all 20 applications in suite order.
pub fn names() -> Vec<String> {
    all().into_iter().map(|p| p.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_profiles_ten_per_suite() {
        let apps = all();
        assert_eq!(apps.len(), 20);
        assert_eq!(apps.iter().filter(|p| p.category == Integer).count(), 10);
        assert_eq!(apps.iter().filter(|p| p.category == FloatingPoint).count(), 10);
    }

    #[test]
    fn every_profile_validates() {
        for p in all() {
            p.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn names_are_unique_and_seeds_differ() {
        let apps = all();
        let names: std::collections::HashSet<_> = apps.iter().map(|p| &p.name).collect();
        assert_eq!(names.len(), 20);
        let seeds: std::collections::HashSet<_> = apps.iter().map(|p| p.seed).collect();
        assert_eq!(seeds.len(), 20);
    }

    #[test]
    fn by_name_finds_paper_applications() {
        assert!(by_name("301.apsi").is_some());
        assert!(by_name("300.twolf").is_some());
        assert!(by_name("999.nope").is_none());
    }

    #[test]
    fn footprints_span_a_wide_range() {
        let apps = all();
        let min = apps.iter().map(|p| p.data_footprint()).min().unwrap();
        let max = apps.iter().map(|p| p.data_footprint()).max().unwrap();
        assert!(min < 1 * MB, "smallest footprint should fit mid-level caches");
        assert!(max > 8 * MB, "largest footprint must exceed the 2MB L5");
    }

    #[test]
    fn apsi_has_the_largest_code_footprint() {
        let apps = all();
        let apsi = apps.iter().find(|p| p.name == "301.apsi").unwrap();
        assert!(apps.iter().all(|p| p.code_footprint <= apsi.code_footprint));
    }
}
