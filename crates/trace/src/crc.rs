//! Table-driven CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), std-only.
//!
//! The `jsn serve` wire protocol checksums every frame with this CRC so
//! that byte corruption on the wire — a flipped bit in a record payload,
//! a duplicated or sheared write from a broken middlebox — is *detected*
//! rather than silently mis-decoded into plausible-looking trace
//! records. The table lives here, next to the record codec, because the
//! trace encoding is the unit the checksum protects: a `Records` frame
//! is this crate's fixed-width records behind a checksummed header.
//!
//! The implementation is the classic reflected table-driven byte-at-a-
//! time loop; the 256-entry table is built at compile time.

/// The 256-entry reflected lookup table for polynomial `0xEDB88320`.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// An incremental CRC-32 over a byte stream.
///
/// Use [`crc32`] for one-shot slices; use this when a frame is hashed
/// in pieces (header bytes, then payload) without concatenating.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh checksum (state `0xFFFFFFFF`).
    pub fn new() -> Crc32 {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The finalized (bit-inverted) CRC value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Known-answer vectors for the IEEE CRC-32 — the same values every
    /// zlib/PNG/Ethernet implementation produces.
    #[test]
    fn known_answer_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
        assert_eq!(crc32(&[0x00]), 0xD202_EF8D);
        assert_eq!(crc32(&[0xFF; 32]), 0xFF6C_AB0B);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(4096).collect();
        let whole = crc32(&data);
        for split in [0, 1, 7, 100, 4095, 4096] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn single_bit_flips_always_change_the_crc() {
        let data = [0x5Au8; 64];
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data;
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), clean, "flip at {byte}:{bit} went undetected");
            }
        }
    }
}
