//! A small deterministic pseudo-random number generator.
//!
//! The synthetic workload generator needs fast, seed-reproducible draws,
//! not cryptographic quality. This is xoshiro256++ (Blackman & Vigna)
//! seeded through SplitMix64, self-contained so the workspace builds with
//! no external crates (the reference environment is offline).
//!
//! Determinism is part of the trace format contract: a profile's `seed`
//! fully determines its instruction stream, so changing this algorithm
//! changes every synthetic trace. Do not swap it casually.

/// xoshiro256++ generator state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Build a generator whose full 256-bit state is derived from `seed`
    /// with SplitMix64 (the initialisation the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Prng { s: [next_sm(), next_sm(), next_sm(), next_sm()] }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        // Multiply-shift rejection-free bounding (Lemire); the tiny bias
        // (< 2^-64 per draw) is irrelevant for workload synthesis.
        let hi = ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64;
        range.start + hi
    }

    /// Uniform integer in `[lo, hi]`.
    pub fn gen_range_inclusive(&mut self, range: std::ops::RangeInclusive<u64>) -> u64 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        self.gen_range(lo..hi + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Prng::seed_from_u64(99);
        let mut b = Prng::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Prng::seed_from_u64(1);
        let mut b = Prng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Prng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_draws_stay_in_bounds_and_cover() {
        let mut r = Prng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(5..15);
            assert!((5..15).contains(&v));
            seen[(v - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range appear");
    }

    #[test]
    fn bool_frequency_tracks_p() {
        let mut r = Prng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "observed {frac}");
    }

    #[test]
    fn inclusive_range_reaches_endpoints() {
        let mut r = Prng::seed_from_u64(5);
        let draws: Vec<u64> = (0..200).map(|_| r.gen_range_inclusive(0..=3)).collect();
        assert!(draws.contains(&0) && draws.contains(&3));
    }
}
