//! Trace record types.

/// The dynamic behaviour of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrKind {
    /// A computational instruction with the given execute latency in
    /// cycles (1 = simple ALU, 3 = multiply, 12 = FP divide, ...).
    Op {
        /// Functional-unit latency in cycles.
        latency: u8,
    },
    /// A data-cache read from `addr`.
    Load {
        /// Effective byte address.
        addr: u64,
    },
    /// A data-cache write to `addr` (write-allocate).
    Store {
        /// Effective byte address.
        addr: u64,
    },
    /// A control transfer. `mispredicted` records whether the modelled
    /// branch predictor got it wrong (the redirect penalty is charged by
    /// the timing model).
    Branch {
        /// Whether the modelled predictor mispredicted this instance.
        mispredicted: bool,
    },
}

/// One dynamic instruction in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// Instruction address (drives the I-side cache path).
    pub pc: u64,
    /// Dynamic behaviour.
    pub kind: InstrKind,
    /// Distance (in dynamic instructions) to the producer of the first
    /// source operand; 0 = no register dependence.
    pub src1: u8,
    /// Distance to the producer of the second source operand; 0 = none.
    pub src2: u8,
}

impl Instr {
    /// The data address touched, if this is a memory instruction.
    pub fn data_addr(&self) -> Option<u64> {
        match self.kind {
            InstrKind::Load { addr } | InstrKind::Store { addr } => Some(addr),
            _ => None,
        }
    }

    /// Whether this instruction reads or writes the data cache.
    pub fn is_memory(&self) -> bool {
        self.data_addr().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_addr_only_for_memory_ops() {
        let ld = Instr { pc: 0, kind: InstrKind::Load { addr: 0x10 }, src1: 0, src2: 0 };
        let op = Instr { pc: 0, kind: InstrKind::Op { latency: 1 }, src1: 1, src2: 2 };
        assert_eq!(ld.data_addr(), Some(0x10));
        assert!(ld.is_memory());
        assert_eq!(op.data_addr(), None);
        assert!(!op.is_memory());
    }
}
