//! Data-region locality models.
//!
//! Each region owns a byte range of the synthetic address space and
//! produces effective addresses following one access pattern. The patterns
//! are the classic locality archetypes that determine multi-level cache
//! behaviour:
//!
//! * [`RegionKind::Hot`] — uniform reuse of a small set; almost always
//!   L1-resident (stack frames, globals).
//! * [`RegionKind::Strided`] — sequential streaming with a fixed stride;
//!   high spatial locality, footprint-bound temporal locality (SPEC FP
//!   array sweeps like `swim`/`mgrid`).
//! * [`RegionKind::PointerChase`] — a pseudo-random permutation walk; no
//!   spatial locality, reuse distance ≈ region size (`mcf`, `art`).
//! * [`RegionKind::Random`] — independent uniform references; worst case
//!   for every level smaller than the region.

use crate::rng::Prng;

/// The access pattern of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// Heavy reuse of the whole (small) region, uniformly.
    Hot,
    /// Sequential walk with the given byte stride, wrapping at the end.
    Strided {
        /// Byte distance between consecutive references.
        stride: u32,
    },
    /// Pseudo-random permutation walk over the region's cache blocks.
    PointerChase,
    /// Independent uniform random references.
    Random,
}

/// A live data region: a byte range plus pattern state.
#[derive(Debug, Clone)]
pub struct Region {
    base: u64,
    size: u64,
    kind: RegionKind,
    cursor: u64,
}

impl Region {
    /// Create a region of `size` bytes at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or, for [`RegionKind::Strided`], the
    /// stride is zero.
    pub fn new(base: u64, size: u64, kind: RegionKind) -> Self {
        assert!(size >= 8, "region size must be at least 8 bytes");
        if let RegionKind::Strided { stride } = kind {
            assert!(stride > 0, "stride must be positive");
        }
        Region { base, size, kind, cursor: 0 }
    }

    /// First byte of the region.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The pattern this region follows.
    pub fn kind(&self) -> RegionKind {
        self.kind
    }

    /// Move the region to a new base address (phase drift: the program
    /// abandons one allocation and works on a fresh one).
    pub fn rebase(&mut self, new_base: u64) {
        self.base = new_base;
    }

    /// Produce the next effective address (8-byte aligned).
    pub fn next_addr(&mut self, rng: &mut Prng) -> u64 {
        let offset = match self.kind {
            RegionKind::Hot | RegionKind::Random => rng.gen_range(0..self.size),
            RegionKind::Strided { stride } => {
                let o = self.cursor;
                self.cursor = (self.cursor + u64::from(stride)) % self.size;
                o
            }
            RegionKind::PointerChase => {
                // Walk a fixed pseudo-random permutation of the region's
                // 64-byte nodes: an LCG with odd multiplier is a bijection
                // modulo a power of two, giving a full reuse distance with
                // zero spatial locality.
                let nodes = (self.size / 64).next_power_of_two().max(2);
                self.cursor = (self
                    .cursor
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407))
                    & (nodes - 1);
                (self.cursor * 64) % self.size
            }
        };
        self.base + (offset & !7).min(self.size - 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    fn rng() -> Prng {
        Prng::seed_from_u64(7)
    }

    #[test]
    fn addresses_stay_in_bounds() {
        let mut r = rng();
        for kind in [
            RegionKind::Hot,
            RegionKind::Strided { stride: 24 },
            RegionKind::PointerChase,
            RegionKind::Random,
        ] {
            let mut region = Region::new(0x10_0000, 4096, kind);
            for _ in 0..10_000 {
                let a = region.next_addr(&mut r);
                assert!(
                    (0x10_0000..0x10_0000 + 4096).contains(&a),
                    "{kind:?} produced out-of-bounds {a:#x}"
                );
                assert_eq!(a % 8, 0, "addresses are 8-byte aligned");
            }
        }
    }

    #[test]
    fn strided_walks_sequentially_and_wraps() {
        let mut r = rng();
        let mut region = Region::new(0, 128, RegionKind::Strided { stride: 32 });
        let addrs: Vec<_> = (0..6).map(|_| region.next_addr(&mut r)).collect();
        assert_eq!(addrs, vec![0, 32, 64, 96, 0, 32]);
    }

    #[test]
    fn pointer_chase_touches_many_distinct_blocks() {
        let mut r = rng();
        let mut region = Region::new(0, 1 << 20, RegionKind::PointerChase);
        let mut blocks = std::collections::HashSet::new();
        for _ in 0..4096 {
            blocks.insert(region.next_addr(&mut r) >> 6);
        }
        // A permutation walk revisits nothing until the cycle closes.
        assert!(blocks.len() > 3000, "only {} distinct blocks", blocks.len());
    }

    #[test]
    fn hot_region_reuses_small_set() {
        let mut r = rng();
        let mut region = Region::new(0, 256, RegionKind::Hot);
        let mut blocks = std::collections::HashSet::new();
        for _ in 0..1000 {
            blocks.insert(region.next_addr(&mut r) >> 6);
        }
        assert!(blocks.len() <= 4, "a 256B hot region spans at most 4 blocks");
    }

    #[test]
    #[should_panic(expected = "at least 8 bytes")]
    fn zero_size_rejected() {
        Region::new(0, 0, RegionKind::Hot);
    }
}
