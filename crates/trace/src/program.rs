//! The synthetic program generator.

use crate::record::{Instr, InstrKind};
use crate::regions::{Region, RegionKind};
use crate::rng::Prng;

/// Base address where synthetic code is laid out.
pub const CODE_BASE: u64 = 0x0040_0000;
/// Base address where the first data region is laid out.
pub const DATA_BASE: u64 = 0x1000_0000;
/// Guard gap between consecutive data regions.
const REGION_GAP: u64 = 64 * 1024;

/// Optional phase behaviour: every `period` instructions, all non-hot data
/// regions are re-based `drift_bytes` further up the address space,
/// modelling allocation-driven phase changes (each program phase works on
/// freshly allocated data). Stationary profiles leave this unset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseDrift {
    /// Instructions per phase.
    pub period: u64,
    /// Bytes the region bases move at each phase boundary.
    pub drift_bytes: u64,
}

/// SPEC CPU2000 suite half.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppCategory {
    /// CINT2000-like.
    Integer,
    /// CFP2000-like.
    FloatingPoint,
}

/// A weighted data region in a profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionSpec {
    /// Locality model.
    pub kind: RegionKind,
    /// Region size in bytes.
    pub size: u64,
    /// Relative probability of a memory reference landing here.
    pub weight: u32,
}

/// Everything that defines one synthetic application.
///
/// See the crate docs for how profiles substitute for SPEC2000 binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Display name ("181.mcf", ...).
    pub name: String,
    /// Suite half.
    pub category: AppCategory,
    /// RNG seed; everything is deterministic given the profile.
    pub seed: u64,
    /// Fraction of instructions that are loads.
    pub load_frac: f64,
    /// Fraction of instructions that are stores.
    pub store_frac: f64,
    /// Fraction of instructions that are branches.
    pub branch_frac: f64,
    /// Of the remaining computational instructions, the fraction executed
    /// on (longer-latency) floating-point units.
    pub fp_frac: f64,
    /// Branch misprediction rate of the modelled predictor.
    pub mispredict_rate: f64,
    /// Bytes of hot code; drives the I-side footprint.
    pub code_footprint: u64,
    /// At a branch: probability of a short backward jump (loop iteration).
    pub loop_backedge_prob: f64,
    /// At a branch: probability of a jump to a random function in the
    /// footprint (call/return behaviour). The rest fall through.
    pub call_prob: f64,
    /// Mean loop-body length in instructions (backward-jump distance).
    pub avg_loop_body: u32,
    /// Probability that an instruction depends on a recent producer.
    pub dep_density: f64,
    /// Weighted data regions.
    pub regions: Vec<RegionSpec>,
    /// Optional allocation-driven phase drift.
    pub phase_drift: Option<PhaseDrift>,
}

impl AppProfile {
    /// Check mix fractions and region specs.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency (fractions outside
    /// \[0,1\], mix summing above 1, no regions, or zero weights).
    pub fn validate(&self) -> Result<(), String> {
        let fracs = [
            ("load_frac", self.load_frac),
            ("store_frac", self.store_frac),
            ("branch_frac", self.branch_frac),
            ("fp_frac", self.fp_frac),
            ("mispredict_rate", self.mispredict_rate),
            ("loop_backedge_prob", self.loop_backedge_prob),
            ("call_prob", self.call_prob),
            ("dep_density", self.dep_density),
        ];
        for (name, v) in fracs {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{}: {name} = {v} outside [0, 1]", self.name));
            }
        }
        if self.load_frac + self.store_frac + self.branch_frac > 1.0 {
            return Err(format!("{}: instruction mix sums above 1", self.name));
        }
        if self.loop_backedge_prob + self.call_prob > 1.0 {
            return Err(format!("{}: branch behaviour sums above 1", self.name));
        }
        if self.regions.is_empty() {
            return Err(format!("{}: needs at least one data region", self.name));
        }
        if self.regions.iter().any(|r| r.weight == 0 || r.size < 8) {
            return Err(format!("{}: regions need positive weight and size >= 8", self.name));
        }
        if self.code_footprint < 64 {
            return Err(format!("{}: code footprint below 64 bytes", self.name));
        }
        if let Some(d) = self.phase_drift {
            if d.period == 0 {
                return Err(format!("{}: phase period must be positive", self.name));
            }
        }
        Ok(())
    }

    /// Total bytes of data touched across all regions.
    pub fn data_footprint(&self) -> u64 {
        self.regions.iter().map(|r| r.size).sum()
    }
}

/// An infinite, deterministic instruction stream following an
/// [`AppProfile`]. Implements [`Iterator`]; take as many instructions as
/// the experiment needs.
#[derive(Debug, Clone)]
pub struct Program {
    profile: AppProfile,
    rng: Prng,
    regions: Vec<Region>,
    cumulative_weights: Vec<u32>,
    total_weight: u32,
    pc: u64,
    emitted: u64,
}

impl Program {
    /// Instantiate the generator.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`AppProfile::validate`].
    pub fn new(profile: AppProfile) -> Self {
        profile.validate().expect("invalid application profile");
        let rng = Prng::seed_from_u64(profile.seed);
        let mut base = DATA_BASE;
        let mut regions = Vec::with_capacity(profile.regions.len());
        let mut cumulative_weights = Vec::with_capacity(profile.regions.len());
        let mut total = 0;
        for spec in &profile.regions {
            regions.push(Region::new(base, spec.size, spec.kind));
            base += spec.size + REGION_GAP;
            total += spec.weight;
            cumulative_weights.push(total);
        }
        Program {
            pc: CODE_BASE,
            rng,
            regions,
            cumulative_weights,
            total_weight: total,
            profile,
            emitted: 0,
        }
    }

    /// The profile driving this program.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// Dynamic instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    fn pick_region(&mut self) -> usize {
        let draw = self.rng.gen_range(0..u64::from(self.total_weight)) as u32;
        self.cumulative_weights.partition_point(|&c| c <= draw)
    }

    fn deps(&mut self) -> (u8, u8) {
        let draw = |p: f64, rng: &mut Prng| -> u8 {
            if rng.gen_bool(p) {
                // Geometric-ish short distances: most values are small.
                let r: f64 = rng.gen_f64();
                (1.0 + (-r.ln()) * 2.5).min(15.0) as u8
            } else {
                0
            }
        };
        let s1 = draw(self.profile.dep_density, &mut self.rng);
        let s2 = draw(self.profile.dep_density * 0.5, &mut self.rng);
        (s1, s2)
    }

    /// Phase boundary: move every non-hot region to fresh addresses.
    /// Bases stay within the low 2^31 bytes so block addresses remain in
    /// the 32-bit space the CMNM examines.
    fn enter_next_phase(&mut self, drift_bytes: u64) {
        for (region, spec) in self.regions.iter_mut().zip(&self.profile.regions) {
            if spec.kind == RegionKind::Hot {
                continue;
            }
            let new_base = (region.base() + region.size() + drift_bytes) % (1 << 31);
            region.rebase(new_base.max(DATA_BASE));
        }
    }

    fn next_pc_after_branch(&mut self) -> u64 {
        let footprint = self.profile.code_footprint;
        let r: f64 = self.rng.gen_f64();
        if r < self.profile.loop_backedge_prob {
            // Loop back ~one body length (jittered).
            let body = self.profile.avg_loop_body.max(2);
            let dist = self
                .rng
                .gen_range_inclusive(u64::from(body / 2)..=u64::from(body + body / 2))
                .max(1)
                * 4;
            self.pc.saturating_sub(dist).max(CODE_BASE)
        } else if r < self.profile.loop_backedge_prob + self.profile.call_prob {
            // Jump to a random 64-byte-aligned function entry.
            CODE_BASE + (self.rng.gen_range(0..footprint) & !63)
        } else {
            // Fall through.
            self.pc
        }
    }

    fn step(&mut self) -> Instr {
        if let Some(drift) = self.profile.phase_drift {
            if self.emitted > 0 && self.emitted.is_multiple_of(drift.period) {
                self.enter_next_phase(drift.drift_bytes);
            }
        }
        let pc = self.pc;
        self.pc += 4;
        if self.pc >= CODE_BASE + self.profile.code_footprint {
            self.pc = CODE_BASE;
        }

        let draw: f64 = self.rng.gen_f64();
        let (load_f, store_f, branch_f, fp_f, mispredict) = (
            self.profile.load_frac,
            self.profile.store_frac,
            self.profile.branch_frac,
            self.profile.fp_frac,
            self.profile.mispredict_rate,
        );
        let (src1, src2) = self.deps();
        let kind = if draw < load_f {
            let region = self.pick_region();
            InstrKind::Load { addr: self.regions[region].next_addr(&mut self.rng) }
        } else if draw < load_f + store_f {
            let region = self.pick_region();
            InstrKind::Store { addr: self.regions[region].next_addr(&mut self.rng) }
        } else if draw < load_f + store_f + branch_f {
            let mispredicted = self.rng.gen_bool(mispredict);
            self.pc = self.next_pc_after_branch();
            InstrKind::Branch { mispredicted }
        } else {
            let fp = self.rng.gen_bool(fp_f);
            let long = self.rng.gen_bool(0.1);
            let latency = match (fp, long) {
                (false, false) => 1,
                (false, true) => 3, // integer multiply
                (true, false) => 4, // FP add/mul pipeline
                (true, true) => 12, // FP divide
            };
            InstrKind::Op { latency }
        };

        self.emitted += 1;
        Instr { pc, kind, src1, src2 }
    }
}

impl Iterator for Program {
    type Item = Instr;

    fn next(&mut self) -> Option<Instr> {
        Some(self.step())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_profile() -> AppProfile {
        AppProfile {
            name: "test.app".into(),
            category: AppCategory::Integer,
            seed: 42,
            load_frac: 0.3,
            store_frac: 0.1,
            branch_frac: 0.15,
            fp_frac: 0.0,
            mispredict_rate: 0.05,
            code_footprint: 16 * 1024,
            loop_backedge_prob: 0.6,
            call_prob: 0.1,
            avg_loop_body: 12,
            dep_density: 0.5,
            regions: vec![
                RegionSpec { kind: RegionKind::Hot, size: 2048, weight: 6 },
                RegionSpec { kind: RegionKind::Strided { stride: 8 }, size: 256 * 1024, weight: 3 },
                RegionSpec { kind: RegionKind::Random, size: 64 * 1024, weight: 1 },
            ],
            phase_drift: None,
        }
    }

    #[test]
    fn deterministic_replay() {
        let a: Vec<_> = Program::new(test_profile()).take(5000).collect();
        let b: Vec<_> = Program::new(test_profile()).take(5000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut p2 = test_profile();
        p2.seed = 43;
        let a: Vec<_> = Program::new(test_profile()).take(1000).collect();
        let b: Vec<_> = Program::new(p2).take(1000).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn mix_matches_fractions() {
        let instrs: Vec<_> = Program::new(test_profile()).take(100_000).collect();
        let n = instrs.len() as f64;
        let loads =
            instrs.iter().filter(|i| matches!(i.kind, InstrKind::Load { .. })).count() as f64;
        let stores =
            instrs.iter().filter(|i| matches!(i.kind, InstrKind::Store { .. })).count() as f64;
        let branches =
            instrs.iter().filter(|i| matches!(i.kind, InstrKind::Branch { .. })).count() as f64;
        assert!((loads / n - 0.3).abs() < 0.02, "load fraction {}", loads / n);
        assert!((stores / n - 0.1).abs() < 0.02);
        assert!((branches / n - 0.15).abs() < 0.02);
    }

    #[test]
    fn pcs_stay_in_code_footprint() {
        let p = test_profile();
        let hi = CODE_BASE + p.code_footprint;
        for i in Program::new(p).take(50_000) {
            assert!((CODE_BASE..hi).contains(&i.pc), "pc {:#x} out of footprint", i.pc);
        }
    }

    #[test]
    fn data_addrs_fall_in_declared_regions() {
        let p = test_profile();
        let total: u64 = p.data_footprint() + 3 * REGION_GAP;
        for i in Program::new(p).take(50_000) {
            if let Some(a) = i.data_addr() {
                assert!(
                    (DATA_BASE..DATA_BASE + total).contains(&a),
                    "data address {a:#x} outside region arena"
                );
            }
        }
    }

    #[test]
    fn code_locality_repeats_blocks() {
        // Loops mean the same 32-byte fetch blocks recur heavily.
        let blocks: Vec<u64> =
            Program::new(test_profile()).take(20_000).map(|i| i.pc >> 5).collect();
        let distinct: std::collections::HashSet<_> = blocks.iter().collect();
        assert!(distinct.len() < blocks.len() / 10, "{} distinct blocks", distinct.len());
    }

    #[test]
    fn validate_catches_bad_mix() {
        let mut p = test_profile();
        p.load_frac = 0.8;
        p.store_frac = 0.3;
        assert!(p.validate().is_err());
        let mut p = test_profile();
        p.regions.clear();
        assert!(p.validate().is_err());
        let mut p = test_profile();
        p.mispredict_rate = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn phase_drift_moves_data_footprint() {
        use crate::program::PhaseDrift;
        let mut p = test_profile();
        p.phase_drift = Some(PhaseDrift { period: 5_000, drift_bytes: 1 << 22 });
        let blocks = |profile: AppProfile, n: usize| -> std::collections::HashSet<u64> {
            Program::new(profile).take(n).filter_map(|i| i.data_addr()).map(|a| a >> 5).collect()
        };
        let stationary = blocks(test_profile(), 40_000);
        let drifting = blocks(p, 40_000);
        assert!(
            drifting.len() > stationary.len(),
            "drift must touch more distinct blocks: {} vs {}",
            drifting.len(),
            stationary.len()
        );
        // And it must actually leave the stationary arena: the stationary
        // profile never exceeds its region span, the drifting one does.
        let stationary_max = stationary.iter().max().copied().unwrap_or(0);
        let drifting_max = drifting.iter().max().copied().unwrap_or(0);
        assert!(
            drifting_max > stationary_max + (1 << 15),
            "drifting max block {drifting_max:#x} vs stationary {stationary_max:#x}"
        );
    }

    #[test]
    fn phase_drift_is_deterministic() {
        use crate::program::PhaseDrift;
        let mut p = test_profile();
        p.phase_drift = Some(PhaseDrift { period: 1_000, drift_bytes: 1 << 20 });
        let a: Vec<_> = Program::new(p.clone()).take(10_000).collect();
        let b: Vec<_> = Program::new(p).take(10_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_phase_period_rejected() {
        use crate::program::PhaseDrift;
        let mut p = test_profile();
        p.phase_drift = Some(PhaseDrift { period: 0, drift_bytes: 4096 });
        assert!(p.validate().is_err());
    }

    #[test]
    fn emitted_counts_instructions() {
        let mut prog = Program::new(test_profile());
        for _ in 0..123 {
            prog.next();
        }
        assert_eq!(prog.emitted(), 123);
    }
}
