//! Sharded (multi-core) trace generation.
//!
//! Produces one deterministic per-core instruction stream per simulated
//! core from a single [`AppProfile`], with a tunable **sharing ratio**: a
//! fraction of data cache lines is remapped into one arena common to all
//! cores, the rest into per-core private windows. Remapping is a pure
//! function of the line address, so each core's reuse structure (stack
//! locality, strides, pointer chains) survives the transformation — only
//! *where* the lines live changes. Cores run the same code image (shared
//! PCs, as a parallel workload would) but distinct per-core data seeds,
//! so their access interleavings differ.
//!
//! This feeds the `jsn shard` multi-core simulation: shared lines are
//! what cross-core stores and shared-L3 replacements fight over.

use crate::program::{AppProfile, Program};
use crate::record::{Instr, InstrKind};

/// How per-core streams are derived and how much of the data footprint
/// is shared.
#[derive(Debug, Clone, PartialEq)]
pub struct SharingSpec {
    /// Number of cores (streams) to generate.
    pub cores: usize,
    /// Fraction of data cache lines remapped into the shared arena, in
    /// `[0, 1]`.
    pub sharing_ratio: f64,
    /// Size of the shared arena in bytes (power of two). Smaller arenas
    /// force more cross-core line collisions.
    pub shared_bytes: u64,
    /// Remap granularity in bytes (power of two); use the largest line
    /// size in the simulated hierarchy so a "shared line" is shared at
    /// every level.
    pub line_bytes: u64,
    /// Extra seed folded into both the remap hash and the per-core
    /// profile seeds.
    pub seed: u64,
}

impl SharingSpec {
    /// A reasonable default: 4 cores, 1/4 of lines shared in a 256 KiB
    /// arena at 64-byte granularity.
    pub fn new(cores: usize) -> Self {
        SharingSpec {
            cores,
            sharing_ratio: 0.25,
            shared_bytes: 256 * 1024,
            line_bytes: 64,
            seed: 0,
        }
    }

    fn validate(&self) {
        assert!(self.cores > 0, "sharing spec needs at least one core");
        assert!((0.0..=1.0).contains(&self.sharing_ratio), "sharing ratio must be within [0, 1]");
        assert!(
            self.shared_bytes.is_power_of_two() && self.line_bytes.is_power_of_two(),
            "shared arena and line size must be powers of two"
        );
        assert!(self.shared_bytes >= self.line_bytes);
    }
}

/// Byte base of the shared arena in the remapped address space.
pub const SHARED_BASE: u64 = 0x5000_0000_0000;
/// Byte base of core 0's private window; each core's window is
/// `PRIVATE_STRIDE` above the previous one.
pub const PRIVATE_BASE: u64 = 0x6000_0000_0000;
/// Distance between consecutive cores' private windows (larger than any
/// profile's data footprint).
pub const PRIVATE_STRIDE: u64 = 0x0100_0000_0000;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One core's remapped instruction stream.
#[derive(Debug)]
pub struct SharedProgram {
    program: Program,
    core: u64,
    line_shift: u32,
    shared_lines: u64,
    /// `sharing_ratio` scaled to u64 per-mille-of-2^16 fixed point.
    share_threshold: u64,
    hash_seed: u64,
}

impl SharedProgram {
    /// Whether `addr` (already remapped) falls in the shared arena.
    pub fn is_shared(addr: u64) -> bool {
        (SHARED_BASE..PRIVATE_BASE).contains(&addr)
    }

    fn remap(&self, addr: u64) -> u64 {
        let line = addr >> self.line_shift;
        let h = splitmix64(line ^ self.hash_seed);
        let offset = addr & ((1 << self.line_shift) - 1);
        if (h & 0xFFFF) < self.share_threshold {
            // Shared: the placement hash is core-independent, so every
            // core that visits this (profile-space) line lands on the
            // same shared line.
            let slot = splitmix64(h) % self.shared_lines;
            SHARED_BASE + (slot << self.line_shift) + offset
        } else {
            // Private: keep the core's own locality structure intact by
            // translating, not hashing. Profile address spaces are far
            // smaller than PRIVATE_STRIDE, so windows never overlap.
            PRIVATE_BASE + self.core * PRIVATE_STRIDE + addr
        }
    }
}

impl Iterator for SharedProgram {
    type Item = Instr;

    fn next(&mut self) -> Option<Instr> {
        let mut instr = self.program.next()?;
        instr.kind = match instr.kind {
            InstrKind::Load { addr } => InstrKind::Load { addr: self.remap(addr) },
            InstrKind::Store { addr } => InstrKind::Store { addr: self.remap(addr) },
            other => other,
        };
        Some(instr)
    }
}

/// Build the per-core streams for `profile` under `spec`. Deterministic:
/// the same profile + spec reproduces the same streams.
///
/// # Panics
///
/// Panics if the spec is malformed (zero cores, ratio outside `[0, 1]`,
/// non-power-of-two sizes).
pub fn sharded_programs(profile: &AppProfile, spec: &SharingSpec) -> Vec<SharedProgram> {
    spec.validate();
    let line_shift = spec.line_bytes.trailing_zeros();
    let shared_lines = (spec.shared_bytes / spec.line_bytes).max(1);
    // Exact at the endpoints: ratio 0 never shares, ratio 1 always does.
    let share_threshold = (spec.sharing_ratio * 65536.0).round() as u64;
    (0..spec.cores)
        .map(|core| {
            let mut p = profile.clone();
            // Distinct data/control interleavings per core, same code image.
            p.seed ^= splitmix64(spec.seed ^ (core as u64 + 1));
            SharedProgram {
                program: Program::new(p),
                core: core as u64,
                line_shift,
                shared_lines,
                share_threshold,
                hash_seed: splitmix64(spec.seed ^ 0x5EA5_0A0D),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use std::collections::HashSet;

    fn spec(cores: usize, ratio: f64) -> SharingSpec {
        SharingSpec { sharing_ratio: ratio, seed: 7, ..SharingSpec::new(cores) }
    }

    fn data_addrs(p: &mut SharedProgram, n: usize) -> Vec<u64> {
        let mut out = Vec::new();
        while out.len() < n {
            let i = p.next().expect("programs are endless");
            if let Some(a) = i.data_addr() {
                out.push(a);
            }
        }
        out
    }

    #[test]
    fn streams_are_deterministic_and_distinct_per_core() {
        let prof = profiles::by_name("181.mcf").unwrap();
        let a = data_addrs(&mut sharded_programs(&prof, &spec(4, 0.3)).remove(1), 500);
        let b = data_addrs(&mut sharded_programs(&prof, &spec(4, 0.3)).remove(1), 500);
        assert_eq!(a, b, "same core of the same spec must replay identically");
        let c = data_addrs(&mut sharded_programs(&prof, &spec(4, 0.3)).remove(2), 500);
        assert_ne!(a, c, "different cores must produce different streams");
    }

    #[test]
    fn sharing_ratio_zero_keeps_cores_disjoint() {
        let prof = profiles::by_name("164.gzip").unwrap();
        let mut programs = sharded_programs(&prof, &spec(3, 0.0));
        let mut seen: Vec<HashSet<u64>> = Vec::new();
        for p in &mut programs {
            seen.push(data_addrs(p, 800).into_iter().map(|a| a >> 6).collect());
        }
        for i in 0..seen.len() {
            assert!(seen[i].iter().all(|&a| !SharedProgram::is_shared(a << 6)));
            for j in i + 1..seen.len() {
                assert!(seen[i].is_disjoint(&seen[j]), "cores {i} and {j} overlap at ratio 0");
            }
        }
    }

    #[test]
    fn sharing_ratio_one_puts_all_data_in_the_shared_arena() {
        let prof = profiles::by_name("164.gzip").unwrap();
        for p in &mut sharded_programs(&prof, &spec(2, 1.0)) {
            for a in data_addrs(p, 500) {
                assert!(SharedProgram::is_shared(a), "{a:#x} escaped the shared arena");
            }
        }
    }

    #[test]
    fn shared_lines_actually_collide_across_cores() {
        let prof = profiles::by_name("179.art").unwrap();
        let mut programs = sharded_programs(&prof, &spec(2, 0.5));
        let a: HashSet<u64> = data_addrs(&mut programs[0], 4000)
            .into_iter()
            .filter(|&a| SharedProgram::is_shared(a))
            .map(|a| a >> 6)
            .collect();
        let b: HashSet<u64> = data_addrs(&mut programs[1], 4000)
            .into_iter()
            .filter(|&a| SharedProgram::is_shared(a))
            .map(|a| a >> 6)
            .collect();
        assert!(!a.is_empty() && !b.is_empty());
        assert!(a.intersection(&b).count() > 0, "no cross-core line sharing at ratio 0.5");
    }
}
