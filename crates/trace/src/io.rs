//! Compact binary trace persistence.
//!
//! Traces are regenerable from their profile, but persisting them lets the
//! benchmark harness replay exactly the same stream across tool versions
//! (SimpleScalar's EIO-trace role). The format is a fixed-size little-
//! endian record per instruction behind a magic/version header.

use std::fmt;
use std::io::{Read, Write};

use crate::record::{Instr, InstrKind};

const MAGIC: &[u8; 4] = b"JSNT";
const VERSION: u16 = 1;

const TAG_OP: u8 = 0;
const TAG_LOAD: u8 = 1;
const TAG_STORE: u8 = 2;
const TAG_BRANCH: u8 = 3;

/// Errors produced when reading a persisted trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Missing/incorrect magic bytes or unsupported version.
    BadHeader,
    /// A record carried an unknown kind tag.
    BadRecord(u8),
    /// The payload ended mid-record.
    Truncated,
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failure: {e}"),
            TraceIoError::BadHeader => write!(f, "not a JSNT trace or unsupported version"),
            TraceIoError::BadRecord(tag) => write!(f, "unknown instruction tag {tag}"),
            TraceIoError::Truncated => write!(f, "trace payload ended mid-record"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Serialize `instrs` to `writer`.
///
/// # Errors
///
/// Propagates underlying I/O errors.
pub fn write_trace<W: Write, I: IntoIterator<Item = Instr>>(
    mut writer: W,
    instrs: I,
) -> Result<u64, TraceIoError> {
    let mut buf = Vec::with_capacity(64 * 1024);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    let mut count = 0u64;
    for i in instrs {
        buf.extend_from_slice(&i.pc.to_le_bytes());
        buf.push(i.src1);
        buf.push(i.src2);
        let (tag, aux, addr) = match i.kind {
            InstrKind::Op { latency } => (TAG_OP, latency, 0),
            InstrKind::Load { addr } => (TAG_LOAD, 0, addr),
            InstrKind::Store { addr } => (TAG_STORE, 0, addr),
            InstrKind::Branch { mispredicted } => (TAG_BRANCH, u8::from(mispredicted), 0),
        };
        buf.push(tag);
        buf.push(aux);
        buf.extend_from_slice(&addr.to_le_bytes());
        count += 1;
        if buf.len() >= 60 * 1024 {
            writer.write_all(&buf)?;
            buf.clear();
        }
    }
    writer.write_all(&buf)?;
    writer.flush()?;
    Ok(count)
}

/// Deserialize a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O failure, a bad header, an unknown
/// record tag, or a truncated payload.
pub fn read_trace<R: Read>(mut reader: R) -> Result<Vec<Instr>, TraceIoError> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    if raw.len() < 6 {
        return Err(TraceIoError::BadHeader);
    }
    if &raw[..4] != MAGIC || u16::from_le_bytes([raw[4], raw[5]]) != VERSION {
        return Err(TraceIoError::BadHeader);
    }
    let payload = &raw[6..];

    const RECORD: usize = 8 + 1 + 1 + 1 + 1 + 8;
    if payload.len() % RECORD != 0 {
        return Err(TraceIoError::Truncated);
    }
    let mut out = Vec::with_capacity(payload.len() / RECORD);
    for rec in payload.chunks_exact(RECORD) {
        let pc = u64::from_le_bytes(rec[0..8].try_into().unwrap());
        let src1 = rec[8];
        let src2 = rec[9];
        let tag = rec[10];
        let aux = rec[11];
        let addr = u64::from_le_bytes(rec[12..20].try_into().unwrap());
        let kind = match tag {
            TAG_OP => InstrKind::Op { latency: aux },
            TAG_LOAD => InstrKind::Load { addr },
            TAG_STORE => InstrKind::Store { addr },
            TAG_BRANCH => InstrKind::Branch { mispredicted: aux != 0 },
            other => return Err(TraceIoError::BadRecord(other)),
        };
        out.push(Instr { pc, kind, src1, src2 });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use crate::program::Program;

    #[test]
    fn round_trip_preserves_trace() {
        let original: Vec<Instr> =
            Program::new(profiles::by_name("164.gzip").unwrap()).take(10_000).collect();
        let mut bytes = Vec::new();
        let n = write_trace(&mut bytes, original.iter().copied()).unwrap();
        assert_eq!(n, 10_000);
        let restored = read_trace(bytes.as_slice()).unwrap();
        assert_eq!(original, restored);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"NOPE\x01\x00"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadHeader));
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let mut bytes = Vec::new();
        let one = Instr { pc: 4, kind: InstrKind::Op { latency: 1 }, src1: 0, src2: 0 };
        write_trace(&mut bytes, [one]).unwrap();
        bytes.pop();
        let err = read_trace(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::Truncated));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut bytes = Vec::new();
        let one = Instr { pc: 4, kind: InstrKind::Op { latency: 1 }, src1: 0, src2: 0 };
        write_trace(&mut bytes, [one]).unwrap();
        bytes[6 + 10] = 9; // corrupt the kind tag of the first record
        let err = read_trace(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::BadRecord(9)));
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, std::iter::empty()).unwrap();
        assert!(read_trace(bytes.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn display_messages_are_informative() {
        assert!(TraceIoError::BadHeader.to_string().contains("JSNT"));
        assert!(TraceIoError::BadRecord(7).to_string().contains('7'));
    }
}
