//! Compact binary trace persistence.
//!
//! Traces are regenerable from their profile, but persisting them lets the
//! benchmark harness replay exactly the same stream across tool versions
//! (SimpleScalar's EIO-trace role). The format is a fixed-size little-
//! endian record per instruction behind a magic/version header.

use std::fmt;
use std::io::{Read, Write};

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::record::{Instr, InstrKind};

const MAGIC: &[u8; 4] = b"JSNT";
const VERSION: u16 = 1;

const TAG_OP: u8 = 0;
const TAG_LOAD: u8 = 1;
const TAG_STORE: u8 = 2;
const TAG_BRANCH: u8 = 3;

/// Errors produced when reading a persisted trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Missing/incorrect magic bytes or unsupported version.
    BadHeader,
    /// A record carried an unknown kind tag.
    BadRecord(u8),
    /// The payload ended mid-record.
    Truncated,
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failure: {e}"),
            TraceIoError::BadHeader => write!(f, "not a JSNT trace or unsupported version"),
            TraceIoError::BadRecord(tag) => write!(f, "unknown instruction tag {tag}"),
            TraceIoError::Truncated => write!(f, "trace payload ended mid-record"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Serialize `instrs` to `writer`.
///
/// # Errors
///
/// Propagates underlying I/O errors.
pub fn write_trace<W: Write, I: IntoIterator<Item = Instr>>(
    mut writer: W,
    instrs: I,
) -> Result<u64, TraceIoError> {
    let mut buf = BytesMut::with_capacity(64 * 1024);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    let mut count = 0u64;
    for i in instrs {
        buf.put_u64_le(i.pc);
        buf.put_u8(i.src1);
        buf.put_u8(i.src2);
        match i.kind {
            InstrKind::Op { latency } => {
                buf.put_u8(TAG_OP);
                buf.put_u8(latency);
                buf.put_u64_le(0);
            }
            InstrKind::Load { addr } => {
                buf.put_u8(TAG_LOAD);
                buf.put_u8(0);
                buf.put_u64_le(addr);
            }
            InstrKind::Store { addr } => {
                buf.put_u8(TAG_STORE);
                buf.put_u8(0);
                buf.put_u64_le(addr);
            }
            InstrKind::Branch { mispredicted } => {
                buf.put_u8(TAG_BRANCH);
                buf.put_u8(u8::from(mispredicted));
                buf.put_u64_le(0);
            }
        }
        count += 1;
        if buf.len() >= 60 * 1024 {
            writer.write_all(&buf)?;
            buf.clear();
        }
    }
    writer.write_all(&buf)?;
    writer.flush()?;
    Ok(count)
}

/// Deserialize a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O failure, a bad header, an unknown
/// record tag, or a truncated payload.
pub fn read_trace<R: Read>(mut reader: R) -> Result<Vec<Instr>, TraceIoError> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);
    if buf.remaining() < 6 {
        return Err(TraceIoError::BadHeader);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC || buf.get_u16_le() != VERSION {
        return Err(TraceIoError::BadHeader);
    }

    const RECORD: usize = 8 + 1 + 1 + 1 + 1 + 8;
    let mut out = Vec::with_capacity(buf.remaining() / RECORD);
    while buf.has_remaining() {
        if buf.remaining() < RECORD {
            return Err(TraceIoError::Truncated);
        }
        let pc = buf.get_u64_le();
        let src1 = buf.get_u8();
        let src2 = buf.get_u8();
        let tag = buf.get_u8();
        let aux = buf.get_u8();
        let addr = buf.get_u64_le();
        let kind = match tag {
            TAG_OP => InstrKind::Op { latency: aux },
            TAG_LOAD => InstrKind::Load { addr },
            TAG_STORE => InstrKind::Store { addr },
            TAG_BRANCH => InstrKind::Branch { mispredicted: aux != 0 },
            other => return Err(TraceIoError::BadRecord(other)),
        };
        out.push(Instr { pc, kind, src1, src2 });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use crate::program::Program;

    #[test]
    fn round_trip_preserves_trace() {
        let original: Vec<Instr> =
            Program::new(profiles::by_name("164.gzip").unwrap()).take(10_000).collect();
        let mut bytes = Vec::new();
        let n = write_trace(&mut bytes, original.iter().copied()).unwrap();
        assert_eq!(n, 10_000);
        let restored = read_trace(bytes.as_slice()).unwrap();
        assert_eq!(original, restored);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"NOPE\x01\x00"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadHeader));
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let mut bytes = Vec::new();
        let one = Instr { pc: 4, kind: InstrKind::Op { latency: 1 }, src1: 0, src2: 0 };
        write_trace(&mut bytes, [one]).unwrap();
        bytes.pop();
        let err = read_trace(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::Truncated));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut bytes = Vec::new();
        let one = Instr { pc: 4, kind: InstrKind::Op { latency: 1 }, src1: 0, src2: 0 };
        write_trace(&mut bytes, [one]).unwrap();
        bytes[6 + 10] = 9; // corrupt the kind tag of the first record
        let err = read_trace(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::BadRecord(9)));
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, std::iter::empty()).unwrap();
        assert!(read_trace(bytes.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn display_messages_are_informative() {
        assert!(TraceIoError::BadHeader.to_string().contains("JSNT"));
        assert!(TraceIoError::BadRecord(7).to_string().contains('7'));
    }
}
