//! Compact binary trace persistence.
//!
//! Traces are regenerable from their profile, but persisting them lets the
//! benchmark harness replay exactly the same stream across tool versions
//! (SimpleScalar's EIO-trace role). The format is a fixed-size little-
//! endian record per instruction behind a magic/version header.

use std::fmt;
use std::io::{Read, Write};

use crate::record::{Instr, InstrKind};

const MAGIC: &[u8; 4] = b"JSNT";
const VERSION: u16 = 1;

const TAG_OP: u8 = 0;
const TAG_LOAD: u8 = 1;
const TAG_STORE: u8 = 2;
const TAG_BRANCH: u8 = 3;

/// Size of one encoded instruction record in bytes. The same fixed-width
/// little-endian encoding is used by trace files (behind the `JSNT`
/// header) and by the `jsn serve` wire protocol's RECORDS frames.
pub const RECORD_BYTES: usize = 8 + 1 + 1 + 1 + 1 + 8;

/// Append the [`RECORD_BYTES`]-byte encoding of `instr` to `out`.
pub fn encode_record(instr: Instr, out: &mut Vec<u8>) {
    out.extend_from_slice(&instr.pc.to_le_bytes());
    out.push(instr.src1);
    out.push(instr.src2);
    let (tag, aux, addr) = match instr.kind {
        InstrKind::Op { latency } => (TAG_OP, latency, 0),
        InstrKind::Load { addr } => (TAG_LOAD, 0, addr),
        InstrKind::Store { addr } => (TAG_STORE, 0, addr),
        InstrKind::Branch { mispredicted } => (TAG_BRANCH, u8::from(mispredicted), 0),
    };
    out.push(tag);
    out.push(aux);
    out.extend_from_slice(&addr.to_le_bytes());
}

/// Decode one [`RECORD_BYTES`]-byte record produced by [`encode_record`].
///
/// # Errors
///
/// [`TraceIoError::Truncated`] when `rec` is not exactly [`RECORD_BYTES`]
/// long; [`TraceIoError::BadRecord`] on an unknown kind tag.
pub fn decode_record(rec: &[u8]) -> Result<Instr, TraceIoError> {
    if rec.len() != RECORD_BYTES {
        return Err(TraceIoError::Truncated);
    }
    let pc = u64::from_le_bytes(rec[0..8].try_into().unwrap());
    let src1 = rec[8];
    let src2 = rec[9];
    let tag = rec[10];
    let aux = rec[11];
    let addr = u64::from_le_bytes(rec[12..20].try_into().unwrap());
    let kind = match tag {
        TAG_OP => InstrKind::Op { latency: aux },
        TAG_LOAD => InstrKind::Load { addr },
        TAG_STORE => InstrKind::Store { addr },
        TAG_BRANCH => InstrKind::Branch { mispredicted: aux != 0 },
        other => return Err(TraceIoError::BadRecord(other)),
    };
    Ok(Instr { pc, kind, src1, src2 })
}

/// Errors produced when reading a persisted trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Missing/incorrect magic bytes or unsupported version.
    BadHeader,
    /// A record carried an unknown kind tag.
    BadRecord(u8),
    /// The payload ended mid-record.
    Truncated,
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o failure: {e}"),
            TraceIoError::BadHeader => write!(f, "not a JSNT trace or unsupported version"),
            TraceIoError::BadRecord(tag) => write!(f, "unknown instruction tag {tag}"),
            TraceIoError::Truncated => write!(f, "trace payload ended mid-record"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Serialize `instrs` to `writer`.
///
/// # Errors
///
/// Propagates underlying I/O errors.
pub fn write_trace<W: Write, I: IntoIterator<Item = Instr>>(
    mut writer: W,
    instrs: I,
) -> Result<u64, TraceIoError> {
    let mut buf = Vec::with_capacity(64 * 1024);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    let mut count = 0u64;
    for i in instrs {
        encode_record(i, &mut buf);
        count += 1;
        if buf.len() >= 60 * 1024 {
            writer.write_all(&buf)?;
            buf.clear();
        }
    }
    writer.write_all(&buf)?;
    writer.flush()?;
    Ok(count)
}

/// Deserialize a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O failure, a bad header, an unknown
/// record tag, or a truncated payload.
pub fn read_trace<R: Read>(mut reader: R) -> Result<Vec<Instr>, TraceIoError> {
    let mut raw = Vec::new();
    reader.read_to_end(&mut raw)?;
    if raw.len() < 6 {
        return Err(TraceIoError::BadHeader);
    }
    if &raw[..4] != MAGIC || u16::from_le_bytes([raw[4], raw[5]]) != VERSION {
        return Err(TraceIoError::BadHeader);
    }
    let payload = &raw[6..];

    if payload.len() % RECORD_BYTES != 0 {
        return Err(TraceIoError::Truncated);
    }
    let mut out = Vec::with_capacity(payload.len() / RECORD_BYTES);
    for rec in payload.chunks_exact(RECORD_BYTES) {
        out.push(decode_record(rec)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use crate::program::Program;

    #[test]
    fn round_trip_preserves_trace() {
        let original: Vec<Instr> =
            Program::new(profiles::by_name("164.gzip").unwrap()).take(10_000).collect();
        let mut bytes = Vec::new();
        let n = write_trace(&mut bytes, original.iter().copied()).unwrap();
        assert_eq!(n, 10_000);
        let restored = read_trace(bytes.as_slice()).unwrap();
        assert_eq!(original, restored);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"NOPE\x01\x00"[..]).unwrap_err();
        assert!(matches!(err, TraceIoError::BadHeader));
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let mut bytes = Vec::new();
        let one = Instr { pc: 4, kind: InstrKind::Op { latency: 1 }, src1: 0, src2: 0 };
        write_trace(&mut bytes, [one]).unwrap();
        bytes.pop();
        let err = read_trace(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::Truncated));
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut bytes = Vec::new();
        let one = Instr { pc: 4, kind: InstrKind::Op { latency: 1 }, src1: 0, src2: 0 };
        write_trace(&mut bytes, [one]).unwrap();
        bytes[6 + 10] = 9; // corrupt the kind tag of the first record
        let err = read_trace(bytes.as_slice()).unwrap_err();
        assert!(matches!(err, TraceIoError::BadRecord(9)));
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, std::iter::empty()).unwrap();
        assert!(read_trace(bytes.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn single_record_round_trips_all_kinds() {
        let instrs = [
            Instr { pc: 0x4000_0000, kind: InstrKind::Op { latency: 12 }, src1: 3, src2: 0 },
            Instr {
                pc: 0x4000_0004,
                kind: InstrKind::Load { addr: 0xdead_beef },
                src1: 0,
                src2: 1,
            },
            Instr { pc: 0x4000_0008, kind: InstrKind::Store { addr: u64::MAX }, src1: 2, src2: 2 },
            Instr {
                pc: 0x4000_000c,
                kind: InstrKind::Branch { mispredicted: true },
                src1: 0,
                src2: 0,
            },
        ];
        for i in instrs {
            let mut bytes = Vec::new();
            encode_record(i, &mut bytes);
            assert_eq!(bytes.len(), RECORD_BYTES);
            assert_eq!(decode_record(&bytes).unwrap(), i);
        }
        assert!(matches!(decode_record(&[0u8; 7]).unwrap_err(), TraceIoError::Truncated));
    }

    #[test]
    fn display_messages_are_informative() {
        assert!(TraceIoError::BadHeader.to_string().contains("JSNT"));
        assert!(TraceIoError::BadRecord(7).to_string().contains('7'));
    }
}
