//! Trace characterization: footprints, reuse distances, and mix
//! measurement.
//!
//! These metrics are what cache behaviour is made of; the experiment
//! harness uses them to document the synthetic suite (and the tests use
//! them to pin the locality contrasts the profiles promise).

use std::collections::HashMap;

use crate::record::{Instr, InstrKind};

/// Summary statistics of a trace window.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Instructions examined.
    pub instructions: u64,
    /// Loads seen.
    pub loads: u64,
    /// Stores seen.
    pub stores: u64,
    /// Branches seen.
    pub branches: u64,
    /// Mispredicted branches seen.
    pub mispredicts: u64,
    /// Distinct 32-byte data blocks touched.
    pub data_blocks: u64,
    /// Distinct 32-byte code blocks touched.
    pub code_blocks: u64,
    /// Histogram of data-block reuse distances (distinct blocks between
    /// consecutive uses of the same block), bucketed by powers of two:
    /// `reuse_histogram[i]` counts reuses with distance in
    /// `[2^i, 2^(i+1))`; index 0 also holds distance 0.
    pub reuse_histogram: Vec<u64>,
    /// References to never-before-seen data blocks (cold references).
    pub cold_references: u64,
}

impl TraceStats {
    /// Data footprint in bytes (32-byte blocks).
    pub fn data_footprint_bytes(&self) -> u64 {
        self.data_blocks * 32
    }

    /// Code footprint in bytes (32-byte blocks).
    pub fn code_footprint_bytes(&self) -> u64 {
        self.code_blocks * 32
    }

    /// Fraction of data references whose reuse distance fits `blocks`
    /// distinct blocks — an idealized (fully-associative LRU) hit rate for
    /// a cache of that many lines.
    pub fn ideal_hit_rate(&self, blocks: u64) -> f64 {
        let total: u64 = self.reuse_histogram.iter().sum::<u64>() + self.cold_references;
        if total == 0 {
            return 0.0;
        }
        let cutoff = 64 - blocks.max(1).leading_zeros() as usize; // log2 ceil-ish
        let hits: u64 = self
            .reuse_histogram
            .iter()
            .enumerate()
            .filter(|(i, _)| *i < cutoff)
            .map(|(_, c)| c)
            .sum();
        hits as f64 / total as f64
    }
}

/// An exact (hash-map + epoch counting) reuse-distance profiler.
///
/// Uses the classic two-level scheme: per-block last-use timestamps plus a
/// sorted list compaction every epoch. For the trace sizes this crate
/// handles (a few million instructions) an `O(n log n)` approach via a
/// balanced sequence of timestamps is sufficient; we use a simple
/// timestamp-ordered vector with binary search on compaction.
#[derive(Debug, Default)]
struct ReuseProfiler {
    last_use: HashMap<u64, u64>,
    /// Sorted list of live timestamps (one per distinct block).
    timestamps: Vec<u64>,
    clock: u64,
}

impl ReuseProfiler {
    /// Record a use of `block`; returns `None` for a cold reference or the
    /// number of *distinct* blocks touched since the previous use.
    fn touch(&mut self, block: u64) -> Option<u64> {
        self.clock += 1;
        let now = self.clock;
        match self.last_use.insert(block, now) {
            None => {
                self.timestamps.push(now);
                None
            }
            Some(prev) => {
                // Distance = number of live timestamps greater than prev.
                let idx = self.timestamps.partition_point(|&t| t <= prev);
                let distance = (self.timestamps.len() - idx) as u64;
                // Replace prev with now (remove + append keeps sortedness
                // since now is maximal).
                let pos = self.timestamps.partition_point(|&t| t < prev);
                debug_assert_eq!(self.timestamps[pos], prev);
                self.timestamps.remove(pos);
                self.timestamps.push(now);
                Some(distance)
            }
        }
    }
}

/// Characterize a trace window.
pub fn characterize<I: IntoIterator<Item = Instr>>(trace: I) -> TraceStats {
    let mut stats = TraceStats {
        instructions: 0,
        loads: 0,
        stores: 0,
        branches: 0,
        mispredicts: 0,
        data_blocks: 0,
        code_blocks: 0,
        reuse_histogram: vec![0; 33],
        cold_references: 0,
    };
    let mut profiler = ReuseProfiler::default();
    let mut code_blocks: HashMap<u64, ()> = HashMap::new();

    for instr in trace {
        stats.instructions += 1;
        code_blocks.insert(instr.pc >> 5, ());
        match instr.kind {
            InstrKind::Load { .. } => stats.loads += 1,
            InstrKind::Store { .. } => stats.stores += 1,
            InstrKind::Branch { mispredicted } => {
                stats.branches += 1;
                stats.mispredicts += u64::from(mispredicted);
            }
            InstrKind::Op { .. } => {}
        }
        if let Some(addr) = instr.data_addr() {
            match profiler.touch(addr >> 5) {
                None => stats.cold_references += 1,
                Some(d) => {
                    let bucket = if d == 0 { 0 } else { (64 - d.leading_zeros()) as usize };
                    let bucket = bucket.min(stats.reuse_histogram.len() - 1);
                    stats.reuse_histogram[bucket] += 1;
                }
            }
        }
    }
    stats.data_blocks = profiler.last_use.len() as u64;
    stats.code_blocks = code_blocks.len() as u64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use crate::program::Program;

    fn load(addr: u64) -> Instr {
        Instr { pc: 0x40_0000, kind: InstrKind::Load { addr }, src1: 0, src2: 0 }
    }

    #[test]
    fn cold_and_reuse_are_separated() {
        // Blocks: A B A  => A cold, B cold, A reused at distance 1.
        let stats = characterize(vec![load(0), load(64), load(0)]);
        assert_eq!(stats.cold_references, 2);
        assert_eq!(stats.reuse_histogram.iter().sum::<u64>(), 1);
        assert_eq!(stats.reuse_histogram[1], 1, "distance 1 lands in bucket [1,2)");
        assert_eq!(stats.data_blocks, 2);
    }

    #[test]
    fn same_block_back_to_back_is_distance_zero() {
        let stats = characterize(vec![load(0), load(8)]); // same 32B block
        assert_eq!(stats.cold_references, 1);
        assert_eq!(stats.reuse_histogram[0], 1);
    }

    #[test]
    fn reuse_distance_counts_distinct_blocks() {
        // A B B B A: A's reuse distance is 1 (only B between), despite 3
        // intervening references.
        let stats = characterize(vec![load(0), load(64), load(64), load(64), load(0)]);
        let nonzero: Vec<(usize, u64)> =
            stats.reuse_histogram.iter().copied().enumerate().filter(|(_, c)| *c > 0).collect();
        // B→B→B are distance-0 reuses (bucket 0), A's reuse is distance 1.
        assert_eq!(nonzero, vec![(0, 2), (1, 1)]);
    }

    #[test]
    fn ideal_hit_rate_is_monotone_in_capacity() {
        let profile = profiles::by_name("300.twolf").unwrap();
        let stats = characterize(Program::new(profile).take(50_000));
        let small = stats.ideal_hit_rate(128);
        let large = stats.ideal_hit_rate(1 << 16);
        assert!(large >= small);
        assert!((0.0..=1.0).contains(&small));
        assert!((0.0..=1.0).contains(&large));
    }

    #[test]
    fn profiles_show_expected_locality_contrast() {
        let stat =
            |name: &str| characterize(Program::new(profiles::by_name(name).unwrap()).take(60_000));
        let gzip = stat("164.gzip");
        let mcf = stat("181.mcf");
        assert!(mcf.data_blocks > 3 * gzip.data_blocks, "mcf touches far more blocks");
        // gzip's idealized hit rate at 128 lines (a 4KB L1) beats mcf's.
        assert!(gzip.ideal_hit_rate(128) > mcf.ideal_hit_rate(128));
    }

    #[test]
    fn mix_counting_matches_kinds() {
        let profile = profiles::by_name("171.swim").unwrap();
        let n = 30_000;
        let stats = characterize(Program::new(profile).take(n));
        assert_eq!(stats.instructions, n as u64);
        assert!(stats.loads > 0 && stats.stores > 0);
        assert!(stats.mispredicts <= stats.branches);
    }
}
