//! # trace-synth
//!
//! Deterministic synthetic workload generation for the HPCA 2003
//! *"Just Say No"* reproduction.
//!
//! The paper evaluates on 10 integer + 10 floating-point SPEC CPU2000
//! applications simulated with SimpleScalar. Neither the binaries nor the
//! reference inputs are redistributable, so this crate substitutes
//! **synthetic application profiles**: each of the 20 profiles (named after
//! its SPEC counterpart) composes
//!
//! * a set of weighted **data regions** with distinct locality models
//!   (hot/stack reuse, strided streaming, pointer chasing, uniform random),
//! * a **code-footprint model** producing the instruction-fetch address
//!   stream (loops, function calls, footprint size),
//! * an **instruction mix** (loads/stores/branches/int/fp), register
//!   **dependency distances**, and a branch **misprediction rate**.
//!
//! What the MNM and the cache hierarchy observe is only the block-address
//! stream and its locality structure; the profiles are tuned so the
//! per-level hit rates span the same qualitative range as the paper's
//! Table 2 (from tight-loop codes to `mcf`/`art`-like chasers and an
//! `apsi`-like large-code application).
//!
//! Everything is deterministic given the profile's seed.
//!
//! ```
//! use trace_synth::{profiles, Program};
//!
//! let profile = profiles::by_name("181.mcf").unwrap();
//! let mut program = Program::new(profile.clone());
//! let instrs: Vec<_> = (&mut program).take(1000).collect();
//! assert_eq!(instrs.len(), 1000);
//! // Deterministic: a fresh program replays identically.
//! let replay: Vec<_> = Program::new(profile.clone()).take(1000).collect();
//! assert_eq!(instrs, replay);
//! ```

mod crc;
mod io;
mod program;
mod record;
mod regions;
mod rng;
mod stats;

pub mod profiles;
pub mod sharing;

pub use crc::{crc32, Crc32};
pub use io::{decode_record, encode_record, read_trace, write_trace, TraceIoError, RECORD_BYTES};
pub use program::{AppCategory, AppProfile, PhaseDrift, Program, RegionSpec};
pub use record::{Instr, InstrKind};
pub use regions::{Region, RegionKind};
pub use rng::Prng;
pub use sharing::{sharded_programs, SharedProgram, SharingSpec};
pub use stats::{characterize, TraceStats};
