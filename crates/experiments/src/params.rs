//! Shared run parameters.
//!
//! All `JSN_*` environment knobs are parsed here. Malformed values are
//! never silently ignored: the parser reports exactly what it rejected so
//! a typo (`JSN_MEASURE=2m`) cannot quietly run with defaults the user
//! did not ask for.

/// Instruction budgets for one application run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunParams {
    /// Instructions executed before statistics are reset (cache/MNM
    /// warmup, the reproduction's stand-in for the paper's SimPoint
    /// fast-forward).
    pub warmup: u64,
    /// Instructions measured after warmup.
    pub measure: u64,
}

impl RunParams {
    /// Default budgets: 300 k warmup + 2 M measured.
    pub fn standard() -> Self {
        RunParams { warmup: 300_000, measure: 2_000_000 }
    }

    /// Tiny budgets for smoke tests and benches.
    pub fn quick() -> Self {
        RunParams { warmup: 20_000, measure: 100_000 }
    }

    /// Standard budgets overridden by the `JSN_WARMUP` and `JSN_MEASURE`
    /// environment variables (instruction counts; `_` separators
    /// allowed). A malformed value is rejected with a message naming the
    /// variable and the offending text.
    pub fn try_from_env() -> Result<Self, String> {
        let mut p = Self::standard();
        if let Some(w) = parse_env_u64("JSN_WARMUP", read_env("JSN_WARMUP").as_deref())? {
            p.warmup = w;
        }
        if let Some(m) = parse_env_u64("JSN_MEASURE", read_env("JSN_MEASURE").as_deref())? {
            p.measure = m.max(1);
        }
        Ok(p)
    }

    /// [`RunParams::try_from_env`] for binaries: a malformed value prints
    /// the error to stderr and exits with failure rather than running an
    /// experiment the user did not configure.
    pub fn from_env() -> Self {
        Self::try_from_env().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    }

    /// Total instructions driven per run.
    pub fn total(&self) -> u64 {
        self.warmup + self.measure
    }
}

impl Default for RunParams {
    fn default() -> Self {
        Self::standard()
    }
}

fn read_env(name: &str) -> Option<String> {
    std::env::var(name).ok()
}

/// Parse one optional numeric knob. `None`/empty means "not set"; a set
/// but malformed value is an error naming the variable.
fn parse_env_u64(name: &str, value: Option<&str>) -> Result<Option<u64>, String> {
    let Some(raw) = value else { return Ok(None) };
    if raw.trim().is_empty() {
        return Ok(None);
    }
    raw.trim()
        .replace('_', "")
        .parse::<u64>()
        .map(Some)
        .map_err(|_| format!("{name}={raw}: expected an unsigned instruction count"))
}

/// Worker-thread count for the parallel runner: `JSN_THREADS` or the
/// machine's available parallelism. A malformed or zero `JSN_THREADS`
/// aborts like [`RunParams::from_env`].
pub fn worker_threads() -> usize {
    match try_worker_threads() {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

/// [`worker_threads`] with the error reported instead of exiting.
pub fn try_worker_threads() -> Result<usize, String> {
    worker_threads_from(read_env("JSN_THREADS").as_deref())
}

fn worker_threads_from(value: Option<&str>) -> Result<usize, String> {
    match parse_env_u64("JSN_THREADS", value)? {
        Some(0) => Err("JSN_THREADS=0: need at least one worker".to_owned()),
        Some(n) => Ok(usize::try_from(n).unwrap_or(usize::MAX)),
        None => Ok(std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_totals() {
        let p = RunParams::standard();
        assert_eq!(p.total(), 2_300_000);
        assert_eq!(RunParams::default(), p);
    }

    #[test]
    fn quick_is_smaller() {
        assert!(RunParams::quick().total() < RunParams::standard().total());
    }

    #[test]
    fn workers_are_positive() {
        assert!(worker_threads() >= 1);
    }

    #[test]
    fn unset_and_empty_knobs_mean_default() {
        assert_eq!(parse_env_u64("JSN_WARMUP", None), Ok(None));
        assert_eq!(parse_env_u64("JSN_WARMUP", Some("")), Ok(None));
        assert_eq!(parse_env_u64("JSN_WARMUP", Some("  ")), Ok(None));
    }

    #[test]
    fn well_formed_knobs_parse_with_separators() {
        assert_eq!(parse_env_u64("JSN_MEASURE", Some("2_000_000")), Ok(Some(2_000_000)));
        assert_eq!(parse_env_u64("JSN_MEASURE", Some(" 500000 ")), Ok(Some(500_000)));
    }

    #[test]
    fn malformed_knobs_are_rejected_loudly() {
        for bad in ["2m", "-5", "1e6", "lots", "3.5"] {
            let err = parse_env_u64("JSN_WARMUP", Some(bad)).unwrap_err();
            assert!(err.contains("JSN_WARMUP"), "error names the variable: {err}");
            assert!(err.contains(bad), "error shows the value: {err}");
        }
    }

    /// `try_from_env` surfaces malformed values instead of ignoring them
    /// (the pre-fix behaviour ran with defaults). The env mutation is
    /// confined to one test to avoid cross-test races.
    #[test]
    fn try_from_env_round_trips_the_process_environment() {
        std::env::set_var("JSN_WARMUP", "12_500");
        let p = RunParams::try_from_env().unwrap();
        assert_eq!(p.warmup, 12_500);
        std::env::set_var("JSN_WARMUP", "bogus");
        assert!(RunParams::try_from_env().is_err());
        std::env::remove_var("JSN_WARMUP");
        assert_eq!(RunParams::try_from_env().unwrap(), RunParams::standard());
    }

    #[test]
    fn thread_knob_rejects_zero_and_garbage() {
        assert!(worker_threads_from(Some("0")).unwrap_err().contains("at least one"));
        assert!(worker_threads_from(Some("two")).unwrap_err().contains("JSN_THREADS"));
        assert_eq!(worker_threads_from(Some("6")), Ok(6));
        assert!(worker_threads_from(None).unwrap() >= 1);
    }
}
