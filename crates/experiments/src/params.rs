//! Shared run parameters.

/// Instruction budgets for one application run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunParams {
    /// Instructions executed before statistics are reset (cache/MNM
    /// warmup, the reproduction's stand-in for the paper's SimPoint
    /// fast-forward).
    pub warmup: u64,
    /// Instructions measured after warmup.
    pub measure: u64,
}

impl RunParams {
    /// Default budgets: 300 k warmup + 2 M measured.
    pub fn standard() -> Self {
        RunParams { warmup: 300_000, measure: 2_000_000 }
    }

    /// Tiny budgets for smoke tests and benches.
    pub fn quick() -> Self {
        RunParams { warmup: 20_000, measure: 100_000 }
    }

    /// Standard budgets overridden by the `JSN_WARMUP` and `JSN_MEASURE`
    /// environment variables (instruction counts).
    pub fn from_env() -> Self {
        let mut p = Self::standard();
        if let Some(w) = read_env("JSN_WARMUP") {
            p.warmup = w;
        }
        if let Some(m) = read_env("JSN_MEASURE") {
            p.measure = m.max(1);
        }
        p
    }

    /// Total instructions driven per run.
    pub fn total(&self) -> u64 {
        self.warmup + self.measure
    }
}

impl Default for RunParams {
    fn default() -> Self {
        Self::standard()
    }
}

fn read_env(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.replace('_', "").parse().ok()
}

/// Worker-thread count for the parallel runner: `JSN_THREADS` or the
/// machine's available parallelism.
pub fn worker_threads() -> usize {
    if let Ok(v) = std::env::var("JSN_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_totals() {
        let p = RunParams::standard();
        assert_eq!(p.total(), 2_300_000);
        assert_eq!(RunParams::default(), p);
    }

    #[test]
    fn quick_is_smaller() {
        assert!(RunParams::quick().total() < RunParams::standard().total());
    }

    #[test]
    fn workers_are_positive() {
        assert!(worker_threads() >= 1);
    }
}
