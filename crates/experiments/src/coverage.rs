//! Coverage experiments (paper §4.2, Figures 10–14).
//!
//! Coverage is the fraction of bypassable misses (misses at levels beyond
//! L1 occurring before the supplying level) that a technique identifies.
//! It is a property of the technique and the reference stream, independent
//! of the MNM's placement.

use cache_sim::HierarchyConfig;
use trace_synth::profiles;

use crate::params::RunParams;
use crate::report::Table;
use crate::runner::{parallel_run, run_app_functional, ConfigKind};

/// Run the coverage experiment for a set of configuration labels over all
/// 20 applications on the paper's 5-level hierarchy. Returns coverage in
/// percent, one row per app plus the arithmetic mean.
pub fn coverage_table(title: &str, config_labels: &[&str], params: RunParams) -> Table {
    let hier_cfg = HierarchyConfig::paper_five_level();
    let apps = profiles::all();

    let jobs: Vec<(usize, usize)> =
        (0..apps.len()).flat_map(|a| (0..config_labels.len()).map(move |c| (a, c))).collect();
    let results = parallel_run(jobs, |&(a, c)| {
        let run =
            run_app_functional(&apps[a], &hier_cfg, &ConfigKind::parse(config_labels[c]), params);
        run.mnm.map(|m| m.coverage() * 100.0).unwrap_or(0.0)
    });

    let columns: Vec<String> = config_labels.iter().map(|s| (*s).to_owned()).collect();
    let mut table = Table::new(title, "app", &columns);
    for (a, app) in apps.iter().enumerate() {
        let row: Vec<f64> =
            (0..config_labels.len()).map(|c| results[a * config_labels.len() + c]).collect();
        table.push_row(&app.name, row);
    }
    table.push_mean_row();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down end-to-end coverage run checking the paper's
    /// qualitative ordering between techniques.
    #[test]
    fn technique_ordering_matches_paper() {
        let params = RunParams { warmup: 5_000, measure: 40_000 };
        // One representative config per technique, plus the largest hybrid.
        let t = coverage_table(
            "smoke",
            &["RMNM_512_2", "SMNM_13x2", "TMNM_12x3", "CMNM_8_12", "HMNM4"],
            params,
        );
        let mean = |c: &str| t.value("Arith. Mean", c).unwrap();
        // Paper §4.2: CMNM has the best single-technique coverage
        // (Figure 13) and the hybrid is at the top (Figure 14). HMNM4 is
        // not a strict superset of the standalone configs (it uses smaller
        // components at levels 2-3), so allow a small tolerance.
        assert!(mean("CMNM_8_12") > mean("SMNM_13x2"));
        let best_single =
            [mean("RMNM_512_2"), mean("SMNM_13x2"), mean("TMNM_12x3"), mean("CMNM_8_12")]
                .into_iter()
                .fold(0.0f64, f64::max);
        // At tiny instruction budgets CMNM has not yet saturated, so it can
        // outscore the hybrid (whose levels 2-3 use smaller components);
        // require the hybrid to stay in the same league only.
        assert!(
            mean("HMNM4") >= 0.5 * best_single,
            "HMNM4 {} vs best single {}",
            mean("HMNM4"),
            best_single
        );
        // Everything is a valid percentage.
        for (_, row) in &t.rows {
            for v in row {
                assert!((0.0..=100.0).contains(v), "coverage {v} out of range");
            }
        }
    }
}
