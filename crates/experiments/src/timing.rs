//! Execution-time experiments (paper §4.3, Figure 15) and the application
//! characterization (Table 2).

use cache_sim::HierarchyConfig;
use ooo_model::CpuConfig;
use trace_synth::profiles;

use crate::params::RunParams;
use crate::report::Table;
use crate::runner::{parallel_run, run_app_timed, AppRun, ConfigKind};
use crate::FIG15_CONFIGS;

/// Figure 15: percentage reduction in execution cycles of the parallel MNM
/// configurations (and the perfect MNM) relative to the no-MNM baseline.
pub fn execution_reduction_table(params: RunParams) -> Table {
    let hier_cfg = HierarchyConfig::paper_five_level();
    let cpu_cfg = CpuConfig::paper_eight_way();
    let apps = profiles::all();

    let mut labels: Vec<String> = vec!["Baseline".to_owned()];
    labels.extend(FIG15_CONFIGS.iter().map(|s| (*s).to_owned()));
    labels.push("Perfect".to_owned());

    let jobs: Vec<(usize, usize)> =
        (0..apps.len()).flat_map(|a| (0..labels.len()).map(move |c| (a, c))).collect();
    let cycles = parallel_run(jobs, |&(a, c)| {
        let run =
            run_app_timed(&apps[a], &hier_cfg, &cpu_cfg, &ConfigKind::parse(&labels[c]), params);
        run.cpu.cycles as f64
    });

    let columns: Vec<String> = labels[1..].to_vec();
    let mut table = Table::new("Figure 15: reduction in execution cycles [%]", "app", &columns);
    let w = labels.len();
    for (a, app) in apps.iter().enumerate() {
        let base = cycles[a * w];
        let row: Vec<f64> = (1..w).map(|c| 100.0 * (base - cycles[a * w + c]) / base).collect();
        table.push_row(&app.name, row);
    }
    table.push_mean_row();
    table
}

/// Table 2: per-application characteristics on the paper's 5-level
/// configuration — cycles, L1 access counts (millions), and per-structure
/// reference hit rates (percent).
pub fn characteristics_table(params: RunParams) -> Table {
    let hier_cfg = HierarchyConfig::paper_five_level();
    let cpu_cfg = CpuConfig::paper_eight_way();
    let apps = profiles::all();

    let runs: Vec<AppRun> = parallel_run(apps.clone(), |app| {
        run_app_timed(app, &hier_cfg, &cpu_cfg, &ConfigKind::Baseline, params)
    });

    let columns: Vec<String> = [
        "cycles[M]",
        "dl1 acc[M]",
        "il1 acc[M]",
        "dl1 hit%",
        "dl2 hit%",
        "il1 hit%",
        "il2 hit%",
        "ul3 hit%",
        "ul4 hit%",
        "ul5 hit%",
        "IPC",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();

    let mut table = Table::new("Table 2: application characteristics", "app", &columns);
    for run in &runs {
        // Structure order in the paper config: il1 dl1 il2 dl2 ul3 ul4 ul5.
        let s = &run.hierarchy.structures;
        let hit = |i: usize| s[i].reference_hit_rate() * 100.0;
        table.push_row(
            &run.app,
            vec![
                run.cpu.cycles as f64 / 1e6,
                (s[1].probes + s[1].bypasses) as f64 / 1e6,
                (s[0].probes + s[0].bypasses) as f64 / 1e6,
                hit(1),
                hit(3),
                hit(0),
                hit(2),
                hit(4),
                hit(5),
                hit(6),
                run.cpu.ipc(),
            ],
        );
    }
    table.push_mean_row();
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_app_timed;

    #[test]
    fn perfect_reduction_bounds_real_mnm() {
        // One app, small budget: perfect >= HMNM4 >= 0 reduction.
        let params = RunParams { warmup: 3_000, measure: 25_000 };
        let hier_cfg = HierarchyConfig::paper_five_level();
        let cpu_cfg = CpuConfig::paper_eight_way();
        let app = profiles::by_name("181.mcf").unwrap();
        let base =
            run_app_timed(&app, &hier_cfg, &cpu_cfg, &ConfigKind::Baseline, params).cpu.cycles;
        let hmnm = run_app_timed(&app, &hier_cfg, &cpu_cfg, &ConfigKind::parse("HMNM4"), params)
            .cpu
            .cycles;
        let perfect =
            run_app_timed(&app, &hier_cfg, &cpu_cfg, &ConfigKind::Perfect, params).cpu.cycles;
        assert!(hmnm <= base, "parallel MNM can only help: {hmnm} vs {base}");
        assert!(perfect <= hmnm, "perfect bounds the real technique: {perfect} vs {hmnm}");
    }

    #[test]
    fn characteristics_hit_rates_are_sane() {
        let params = RunParams { warmup: 2_000, measure: 20_000 };
        let hier_cfg = HierarchyConfig::paper_five_level();
        let cpu_cfg = CpuConfig::paper_eight_way();
        let app = profiles::by_name("164.gzip").unwrap();
        let run = run_app_timed(&app, &hier_cfg, &cpu_cfg, &ConfigKind::Baseline, params);
        for st in &run.hierarchy.structures {
            let h = st.reference_hit_rate();
            assert!((0.0..=1.0).contains(&h));
        }
        // gzip's hot set gives L1-D a decent hit rate even at 4 KB.
        assert!(run.hierarchy.structures[1].reference_hit_rate() > 0.5);
    }
}
