//! Crash-safe artifact writes.
//!
//! Every JSON/markdown artifact the workspace emits goes through
//! [`write_atomic`]: the bytes land in a temp file in the same directory,
//! are fsynced, and are renamed over the destination. A crash (or an
//! injected torn write) at any point leaves either the old file or the new
//! file — never a half-written one. [`write_artifact`] adds the retry
//! policy for injected faults: a torn write is retried (the fault layer
//! fires once per site), a real I/O error surfaces immediately.

use std::io::Write as _;
use std::path::Path;

use crate::faults;

/// Write `bytes` to `path` atomically: temp file + fsync + rename.
///
/// Consults the fault layer — an injected torn write aborts halfway
/// through the temp file and reports an error, leaving `path` untouched.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| std::io::Error::other(format!("no file name in {}", path.display())))?;
    let tmp = path.with_file_name(format!("{file_name}.tmp"));

    let mut f = std::fs::File::create(&tmp)?;
    if faults::torn_write(file_name) {
        // Emulate a crash mid-write: half the payload, no fsync, no rename.
        // The temp file is removed so the fault leaves no debris either.
        let _ = f.write_all(&bytes[..bytes.len() / 2]);
        drop(f);
        let _ = std::fs::remove_file(&tmp);
        return Err(std::io::Error::other(format!("injected fault: torn write of `{file_name}`")));
    }
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(&tmp, path)?;

    // Make the rename itself durable. Best-effort: directory fsync is a
    // Unix-ism and failure here cannot un-write the data.
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        if let Ok(dir) =
            std::fs::File::open(if parent.as_os_str().is_empty() { Path::new(".") } else { parent })
        {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// [`write_atomic`] with recovery for injected faults: retries torn writes
/// (up to 3 attempts), surfaces real I/O errors immediately.
pub fn write_artifact(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut last = None;
    for _attempt in 0..3 {
        match write_atomic(path, bytes) {
            Ok(()) => return Ok(()),
            Err(e) if e.to_string().contains("injected fault") => {
                eprintln!("recovering: {e}; retrying write of {}", path.display());
                last = Some(e);
            }
            Err(e) => return Err(e),
        }
    }
    Err(last.unwrap_or_else(|| std::io::Error::other("write_artifact: no attempts ran")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{self, FaultPlan};

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("jsn-fsio-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_and_replaces_atomically() {
        let dir = tmp_dir("basic");
        let path = dir.join("out.json");
        write_atomic(&path, b"{\"v\":1}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":1}");
        write_atomic(&path, b"{\"v\":2}").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"v\":2}");
        // No temp debris.
        assert!(!dir.join("out.json.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_leaves_old_contents_and_retry_recovers() {
        let _guard = faults::TEST_LOCK.lock().unwrap();
        let dir = tmp_dir("torn");
        let path = dir.join("results.json");
        write_atomic(&path, b"old-contents").unwrap();

        faults::install(Some(FaultPlan::parse("torn=results.json").unwrap()));
        let err = write_atomic(&path, b"new-contents-new-contents").unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        // The destination is untouched and no torn temp file survives.
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "old-contents");
        assert!(!dir.join("results.json.tmp").exists());

        // write_artifact retries past the one-shot fault.
        let path2 = dir.join("other.json");
        faults::install(Some(FaultPlan::parse("torn=other.json").unwrap()));
        write_artifact(&path2, b"payload").unwrap();
        assert_eq!(std::fs::read_to_string(&path2).unwrap(), "payload");
        assert_eq!(faults::injected().len(), 1, "exactly one torn fault fired");

        faults::install(None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn real_io_errors_surface_without_retry() {
        let dir = tmp_dir("ioerr");
        let missing = dir.join("no-such-subdir").join("x.json");
        let err = write_artifact(&missing, b"x").unwrap_err();
        assert!(!err.to_string().contains("injected fault"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
