//! # mnm-experiments
//!
//! The experiment harness: one runnable target per table and figure of the
//! HPCA 2003 *"Just Say No"* paper, plus the ablation studies listed in
//! `DESIGN.md`.
//!
//! Every binary prints the same rows/series the paper reports (apps on the
//! x-axis, one series per configuration, plus the arithmetic mean) and
//! exits. See `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results.
//!
//! Instruction budgets default to 300 k warmup + 2 M measured per app and
//! can be overridden with the `JSN_WARMUP` / `JSN_MEASURE` environment
//! variables (`JSN_THREADS` bounds worker parallelism); malformed values
//! are rejected, not ignored. Set `JSN_JSON=1` to mirror every table as
//! `<out>/<slug>.json` (`JSN_OUT` picks the directory), and see
//! [`metrics`] for the run-manifest schema behind
//! `results/all_experiments.json` and `jsn diff`.

pub mod ablation;
pub mod analytic;
pub mod coverage;
pub mod depth;
pub mod extensions;
pub mod faults;
pub mod fsio;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod params;
pub mod power;
pub mod related_work;
pub mod report;
pub mod runner;
pub mod supervisor;
pub mod sweep;
pub mod timing;

pub use json::Json;
pub use metrics::{emit, RunManifest};
pub use params::RunParams;
pub use report::Table;

/// The four RMNM configurations of Figure 10.
pub const FIG10_CONFIGS: [&str; 4] = ["RMNM_128_1", "RMNM_512_2", "RMNM_2048_4", "RMNM_4096_8"];
/// The four SMNM configurations of Figure 11.
pub const FIG11_CONFIGS: [&str; 4] = ["SMNM_10x2", "SMNM_13x2", "SMNM_15x2", "SMNM_20x3"];
/// The four TMNM configurations of Figure 12.
pub const FIG12_CONFIGS: [&str; 4] = ["TMNM_10x1", "TMNM_11x2", "TMNM_10x3", "TMNM_12x3"];
/// The four CMNM configurations of Figure 13.
pub const FIG13_CONFIGS: [&str; 4] = ["CMNM_2_9", "CMNM_4_10", "CMNM_8_10", "CMNM_8_12"];
/// The four hybrid configurations of Figure 14 (paper Table 3).
pub const FIG14_CONFIGS: [&str; 4] = ["HMNM1", "HMNM2", "HMNM3", "HMNM4"];
/// The realizable configurations compared in Figures 15 and 16
/// (a perfect-MNM series is appended by those experiments).
pub const FIG15_CONFIGS: [&str; 4] = ["TMNM_12x3", "CMNM_8_10", "HMNM2", "HMNM4"];
