//! Motivation experiments (paper §1.1, Figures 2–3): how much of the data
//! access time and of the cache energy is spent on misses, as the number of
//! cache levels grows.

use cache_sim::HierarchyConfig;
use power_model::EnergyModel;
use trace_synth::profiles;

use crate::params::RunParams;
use crate::report::Table;
use crate::runner::{parallel_run, run_app_functional, ConfigKind};

/// The hierarchy depths compared in Figures 2 and 3.
pub const DEPTHS: [usize; 4] = [2, 3, 5, 7];

/// One functional baseline run per (app, depth); returns the miss fraction
/// of data-access time (Figure 2) and of cache energy (Figure 3), both in
/// percent.
pub fn depth_fractions(params: RunParams) -> (Table, Table) {
    let apps = profiles::all();
    let model = EnergyModel::default();

    let jobs: Vec<(usize, usize)> =
        (0..apps.len()).flat_map(|a| DEPTHS.iter().map(move |&d| (a, d))).collect();
    let results = parallel_run(jobs, |&(a, depth)| {
        // Rebuild the hierarchy per job; depths use the motivation configs.
        let hier_cfg = HierarchyConfig::motivation_levels(depth);
        let run = run_app_functional(&apps[a], &hier_cfg, &ConfigKind::Baseline, params);
        let time_fraction = run.hierarchy.miss_time_fraction() * 100.0;
        let energy_fraction = energy_fraction_from_run(&run, depth, &model) * 100.0;
        (time_fraction, energy_fraction)
    });

    let columns: Vec<String> = DEPTHS.iter().map(|d| format!("{d}-level")).collect();
    let mut time_table =
        Table::new("Figure 2: fraction of misses in data access time [%]", "app", &columns);
    let mut power_table =
        Table::new("Figure 3: fraction of misses in cache power consumption [%]", "app", &columns);
    for (a, app) in apps.iter().enumerate() {
        let mut trow = Vec::new();
        let mut prow = Vec::new();
        for d in 0..DEPTHS.len() {
            let (t, p) = results[a * DEPTHS.len() + d];
            trow.push(t);
            prow.push(p);
        }
        time_table.push_row(&app.name, trow);
        power_table.push_row(&app.name, prow);
    }
    time_table.push_mean_row();
    power_table.push_mean_row();
    (time_table, power_table)
}

/// Energy miss-fraction recomputed from a finished run's counters: probe
/// energy of missing probes over total (probe + fill) energy.
fn energy_fraction_from_run(run: &crate::runner::AppRun, depth: usize, model: &EnergyModel) -> f64 {
    let cfg = HierarchyConfig::motivation_levels(depth);
    let mut configs = Vec::new();
    for level in &cfg.levels {
        for c in level.configs() {
            configs.push(c.clone());
        }
    }
    debug_assert_eq!(configs.len(), run.hierarchy.structures.len());
    let mut total = 0.0;
    let mut miss = 0.0;
    for (st, c) in run.hierarchy.structures.iter().zip(&configs) {
        let read = model.cache_read_energy(c);
        let write = model.cache_write_energy(c);
        total += st.probes as f64 * read + st.fills as f64 * write;
        miss += st.misses as f64 * read;
    }
    if total == 0.0 {
        0.0
    } else {
        miss / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{Access, BypassSet, Hierarchy};
    use power_model::account_hierarchy as account;

    #[test]
    fn energy_fraction_matches_direct_accounting() {
        // Drive a hierarchy directly and compare the two accounting paths.
        let mut h = Hierarchy::new(HierarchyConfig::motivation_levels(3));
        for i in 0..500u64 {
            h.access(Access::load((i % 40) * 128), &BypassSet::none());
        }
        let model = EnergyModel::default();
        let direct = account(&h, &model).miss_fraction();
        let run = crate::runner::AppRun {
            app: "x".into(),
            config: "Baseline".into(),
            hierarchy: h.stats().clone(),
            mnm: None,
            mnm_storage: Vec::new(),
            mnm_placement: None,
            cpu: Default::default(),
            level_of_structure: h.structures().iter().map(|s| s.level).collect(),
            structure_names: h.structures().iter().map(|s| s.name.clone()).collect(),
        };
        let via_run = energy_fraction_from_run(&run, 3, &model);
        assert!((direct - via_run).abs() < 1e-12, "{direct} vs {via_run}");
    }

    #[test]
    fn miss_fractions_grow_with_depth_for_a_chaser() {
        // A pointer-chasing app wastes more time on misses the deeper the
        // hierarchy — the paper's motivating observation.
        let params = RunParams { warmup: 5_000, measure: 40_000 };
        let apps = profiles::all();
        let mcf = apps.iter().position(|p| p.name == "181.mcf").unwrap();
        let shallow = run_app_functional(
            &apps[mcf],
            &HierarchyConfig::motivation_levels(2),
            &ConfigKind::Baseline,
            params,
        );
        let deep = run_app_functional(
            &apps[mcf],
            &HierarchyConfig::motivation_levels(7),
            &ConfigKind::Baseline,
            params,
        );
        assert!(
            deep.hierarchy.miss_time_fraction() > shallow.hierarchy.miss_time_fraction(),
            "deep {} vs shallow {}",
            deep.hierarchy.miss_time_fraction(),
            shallow.hierarchy.miss_time_fraction()
        );
    }

    #[test]
    fn account_is_consistent_with_power_model_export() {
        // Guard against the two accounting paths diverging silently.
        let mut h = Hierarchy::new(HierarchyConfig::paper_five_level());
        h.access(Access::load(0), &BypassSet::none());
        let b = account(&h, &EnergyModel::default());
        assert!(b.total_nj() > 0.0);
    }
}
