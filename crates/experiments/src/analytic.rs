//! The paper's analytic data-access-time model (Equations 1 and 2, §2).
//!
//! Equation 1 gives the expected access time of a multi-level hierarchy
//! from per-level (conditional) miss rates:
//!
//! ```text
//! Σ_i  (Π_{n<i} miss_rate_n) · (hit_time_i·(1-miss_rate_i) + miss_time_i·miss_rate_i)
//! ```
//!
//! Equation 2 extends it with the MNM: an identified miss skips the level's
//! miss-detect time, so only the *unidentified* fraction of misses pays it.
//! (The paper writes the surviving fraction as `MNM_aborted_i`; for the
//! access time to shrink it must denote the misses that still probe.)

/// Per-level inputs to the analytic model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelModel {
    /// Cycles to return data on a hit.
    pub hit_time: f64,
    /// Cycles to determine a miss.
    pub miss_time: f64,
    /// Conditional miss rate: misses over references that reach this level.
    pub miss_rate: f64,
    /// Fraction of this level's misses that still pay `miss_time`
    /// (1.0 without an MNM; `1 - coverage_i` with one).
    pub unidentified: f64,
}

/// Expected data-access time without an MNM (Equation 1).
pub fn eq1_access_time(levels: &[LevelModel], memory_latency: f64) -> f64 {
    let stripped: Vec<LevelModel> =
        levels.iter().map(|l| LevelModel { unidentified: 1.0, ..*l }).collect();
    eq2_access_time(&stripped, memory_latency)
}

/// Expected data-access time with an MNM (Equation 2).
pub fn eq2_access_time(levels: &[LevelModel], memory_latency: f64) -> f64 {
    let mut reach = 1.0; // Π of miss rates of closer levels
    let mut total = 0.0;
    for l in levels {
        total +=
            reach * (l.hit_time * (1.0 - l.miss_rate) + l.miss_time * l.unidentified * l.miss_rate);
        reach *= l.miss_rate;
    }
    total + reach * memory_latency
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{Access, AccessKind, BypassSet, Hierarchy, HierarchyConfig};
    use mnm_core::{Mnm, MnmConfig};
    use trace_synth::Prng;

    fn level(hit: f64, rate: f64) -> LevelModel {
        LevelModel { hit_time: hit, miss_time: hit, miss_rate: rate, unidentified: 1.0 }
    }

    #[test]
    fn all_hits_cost_one_l1_access() {
        let t = eq1_access_time(&[level(2.0, 0.0), level(8.0, 0.5)], 320.0);
        assert!((t - 2.0).abs() < 1e-12);
    }

    #[test]
    fn all_misses_cost_the_full_walk() {
        let t = eq1_access_time(&[level(2.0, 1.0), level(8.0, 1.0)], 320.0);
        assert!((t - (2.0 + 8.0 + 320.0)).abs() < 1e-12);
    }

    #[test]
    fn full_coverage_removes_miss_detect_time() {
        let mut l2 = level(8.0, 1.0);
        l2.unidentified = 0.0;
        let t = eq2_access_time(&[level(2.0, 1.0), l2], 320.0);
        assert!((t - (2.0 + 0.0 + 320.0)).abs() < 1e-12);
    }

    /// Equation 1 must match the simulator exactly when fed the measured
    /// conditional miss rates (data path only).
    #[test]
    fn eq1_matches_simulated_mean_access_time() {
        let mut h = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut rng = Prng::seed_from_u64(9);
        for _ in 0..200_000 {
            let addr: u64 = rng.gen_range(0..(1u64 << 22)) & !7;
            h.access(Access::load(addr), &BypassSet::none());
        }
        let levels: Vec<LevelModel> = h
            .path(AccessKind::Load)
            .iter()
            .map(|sid| {
                let st = h.stats().structures[sid.index()];
                let cfg = h.cache(*sid).config();
                LevelModel {
                    hit_time: cfg.hit_latency as f64,
                    miss_time: cfg.miss_latency as f64,
                    miss_rate: st.miss_rate(),
                    unidentified: 1.0,
                }
            })
            .collect();
        let predicted = eq1_access_time(&levels, h.config().memory_latency as f64);
        let measured = h.stats().mean_access_time();
        assert!(
            (predicted - measured).abs() < 1e-6,
            "Equation 1 {predicted} vs simulator {measured}"
        );
    }

    /// Equation 2 must match the simulator when an MNM bypasses probes,
    /// using measured per-level coverage.
    #[test]
    fn eq2_matches_simulated_mean_access_time_with_mnm() {
        let mut h = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut mnm = Mnm::new(&h, MnmConfig::hmnm(4));
        let mut rng = Prng::seed_from_u64(11);
        for _ in 0..150_000 {
            let addr: u64 = rng.gen_range(0..(1u64 << 21)) & !7;
            mnm.run_access(&mut h, Access::load(addr));
        }
        // Build per-level inputs from measured reference rates. A bypassed
        // probe is a correctly-predicted miss: reference miss rate =
        // (misses + bypasses) / (probes + bypasses); unidentified =
        // misses / (misses + bypasses).
        let levels: Vec<LevelModel> = h
            .path(AccessKind::Load)
            .iter()
            .map(|sid| {
                let st = h.stats().structures[sid.index()];
                let cfg = h.cache(*sid).config();
                let refs = (st.probes + st.bypasses) as f64;
                let misses = (st.misses + st.bypasses) as f64;
                LevelModel {
                    hit_time: cfg.hit_latency as f64,
                    miss_time: cfg.miss_latency as f64,
                    miss_rate: if refs == 0.0 { 0.0 } else { misses / refs },
                    unidentified: if misses == 0.0 { 1.0 } else { st.misses as f64 / misses },
                }
            })
            .collect();
        let predicted = eq2_access_time(&levels, h.config().memory_latency as f64);
        let measured = h.stats().mean_access_time();
        assert!(
            (predicted - measured).abs() < 1e-6,
            "Equation 2 {predicted} vs simulator {measured}"
        );
    }
}
