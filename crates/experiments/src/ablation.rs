//! Ablation studies (DESIGN.md abl01–abl05): design choices the paper
//! leaves open, quantified.

use cache_sim::HierarchyConfig;
use mnm_core::{Assignment, MnmConfig, MnmPlacement, TechniqueConfig, TmnmConfig};
use ooo_model::CpuConfig;
use power_model::EnergyModel;
use trace_synth::{profiles, PhaseDrift};

use crate::params::RunParams;
use crate::power::run_energy_nj;
use crate::report::Table;
use crate::runner::{parallel_run, run_app_functional, run_app_timed, ConfigKind};

/// Representative applications for the (more expensive) ablation sweeps:
/// a tight-loop integer code, a pointer chaser, a streaming FP code and the
/// large-code FP application.
pub fn ablation_apps() -> Vec<&'static str> {
    vec!["164.gzip", "181.mcf", "171.swim", "301.apsi"]
}

/// abl01 — parallel vs. serial placement of HMNM4: execution-cycle
/// reduction (parallel's win) vs. total energy including the MNM
/// (serial's win).
pub fn placement_table(params: RunParams) -> Table {
    let hier_cfg = HierarchyConfig::paper_five_level();
    let cpu_cfg = CpuConfig::paper_eight_way();
    let model = EnergyModel::default();
    let apps: Vec<_> =
        ablation_apps().into_iter().map(|n| profiles::by_name(n).expect("known app")).collect();

    let rows = parallel_run(apps, |app| {
        let base_t = run_app_timed(app, &hier_cfg, &cpu_cfg, &ConfigKind::Baseline, params);
        let base_e = run_app_functional(app, &hier_cfg, &ConfigKind::Baseline, params);
        let e_base = run_energy_nj(&base_e, &hier_cfg, &model);

        let mut out = vec![0.0; 4];
        for (i, placement) in [MnmPlacement::Parallel, MnmPlacement::Serial].iter().enumerate() {
            let cfg = ConfigKind::Mnm(MnmConfig::hmnm(4).with_placement(*placement));
            let t = run_app_timed(app, &hier_cfg, &cpu_cfg, &cfg, params);
            let e_run = run_app_functional(app, &hier_cfg, &cfg, params);
            let e = run_energy_nj(&e_run, &hier_cfg, &model);
            out[i] =
                100.0 * (base_t.cpu.cycles as f64 - t.cpu.cycles as f64) / base_t.cpu.cycles as f64;
            out[2 + i] = 100.0 * (e_base - e) / e_base;
        }
        (app.name.clone(), out)
    });

    let columns =
        ["cycles red% (par)", "cycles red% (ser)", "energy red% (par)", "energy red% (ser)"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect::<Vec<_>>();
    let mut table = Table::new("Ablation 1: HMNM4 placement (parallel vs serial)", "app", &columns);
    for (name, row) in rows {
        table.push_row(&name, row);
    }
    table.push_mean_row();
    table
}

/// abl02 — TMNM counter width 1..=4 bits: coverage of `TMNM_12x3` with
/// narrower/wider saturating counters (the paper fixes 3 bits).
pub fn counter_width_table(params: RunParams) -> Table {
    let hier_cfg = HierarchyConfig::paper_five_level();
    let apps: Vec<_> =
        ablation_apps().into_iter().map(|n| profiles::by_name(n).expect("known app")).collect();
    let widths = [1u32, 2, 3, 4];

    let jobs: Vec<(usize, usize)> =
        (0..apps.len()).flat_map(|a| (0..widths.len()).map(move |w| (a, w))).collect();
    let results = parallel_run(jobs, |&(a, w)| {
        let technique = TechniqueConfig::Tmnm(TmnmConfig::with_counter_bits(12, 3, widths[w]));
        let cfg = MnmConfig {
            name: format!("TMNM_12x3c{}", widths[w]),
            assignments: vec![Assignment { levels: 2..=u8::MAX, techniques: vec![technique] }],
            rmnm: None,
            delay: 2,
            placement: MnmPlacement::Parallel,
        };
        let run = run_app_functional(&apps[a], &hier_cfg, &ConfigKind::Mnm(cfg), params);
        run.mnm.map(|m| m.coverage() * 100.0).unwrap_or(0.0)
    });

    let columns: Vec<String> = widths.iter().map(|w| format!("{w}-bit")).collect();
    let mut table =
        Table::new("Ablation 2: TMNM_12x3 coverage [%] vs counter width", "app", &columns);
    for (a, app) in apps.iter().enumerate() {
        let row: Vec<f64> = (0..widths.len()).map(|w| results[a * widths.len() + w]).collect();
        table.push_row(&app.name, row);
    }
    table.push_mean_row();
    table
}

/// abl03 — RMNM size/assoc sweep beyond the paper's largest configuration.
pub fn rmnm_sweep_table(params: RunParams) -> Table {
    let labels =
        ["RMNM_128_1", "RMNM_512_2", "RMNM_2048_4", "RMNM_4096_8", "RMNM_16384_8", "RMNM_65536_16"];
    // The two extra points parse through the same grammar.
    crate::coverage::coverage_table("Ablation 3: RMNM coverage sweep [%]", &labels, params)
}

/// abl04 — MNM delay sensitivity: serial-HMNM4 execution-cycle reduction as
/// the MNM delay grows from 1 to 8 cycles.
pub fn delay_table(params: RunParams) -> Table {
    let hier_cfg = HierarchyConfig::paper_five_level();
    let cpu_cfg = CpuConfig::paper_eight_way();
    let apps: Vec<_> =
        ablation_apps().into_iter().map(|n| profiles::by_name(n).expect("known app")).collect();
    let delays = [1u64, 2, 4, 8];

    let jobs: Vec<(usize, usize)> =
        (0..apps.len()).flat_map(|a| (0..=delays.len()).map(move |d| (a, d))).collect();
    let cycles = parallel_run(jobs, |&(a, d)| {
        let kind = if d == 0 {
            ConfigKind::Baseline
        } else {
            ConfigKind::Mnm(
                MnmConfig::hmnm(4).with_placement(MnmPlacement::Serial).with_delay(delays[d - 1]),
            )
        };
        run_app_timed(&apps[a], &hier_cfg, &cpu_cfg, &kind, params).cpu.cycles as f64
    });

    let columns: Vec<String> = delays.iter().map(|d| format!("delay {d}")).collect();
    let mut table =
        Table::new("Ablation 4: serial HMNM4 cycle reduction [%] vs MNM delay", "app", &columns);
    let w = delays.len() + 1;
    for (a, app) in apps.iter().enumerate() {
        let base = cycles[a * w];
        let row: Vec<f64> = (1..w).map(|d| 100.0 * (base - cycles[a * w + d]) / base).collect();
        table.push_row(&app.name, row);
    }
    table.push_mean_row();
    table
}

/// abl05 — inclusive vs. non-inclusive hierarchy: HMNM4 coverage under
/// both fill policies (the paper assumes non-inclusion).
pub fn inclusion_table(params: RunParams) -> Table {
    let apps: Vec<_> =
        ablation_apps().into_iter().map(|n| profiles::by_name(n).expect("known app")).collect();

    let jobs: Vec<(usize, bool)> =
        (0..apps.len()).flat_map(|a| [false, true].map(move |inc| (a, inc))).collect();
    let results = parallel_run(jobs, |&(a, inclusive)| {
        let mut hier_cfg = HierarchyConfig::paper_five_level();
        hier_cfg.inclusive = inclusive;
        let run = run_app_functional(&apps[a], &hier_cfg, &ConfigKind::parse("HMNM4"), params);
        run.mnm.map(|m| m.coverage() * 100.0).unwrap_or(0.0)
    });

    let columns = vec!["non-inclusive".to_owned(), "inclusive".to_owned()];
    let mut table =
        Table::new("Ablation 5: HMNM4 coverage [%] vs inclusion policy", "app", &columns);
    for (a, app) in apps.iter().enumerate() {
        table.push_row(&app.name, vec![results[a * 2], results[a * 2 + 1]]);
    }
    table.push_mean_row();
    table
}

/// abl07 — phase drift vs. technique coverage: SPEC workloads have phase
/// behaviour that a stationary synthetic generator lacks; this ablation
/// adds allocation-driven drift and measures which techniques benefit.
/// SMNM (set-only, useful only for never-seen address regions) is the
/// paper result this recovers: its coverage is ~0 on stationary streams
/// and becomes visible under drift.
pub fn phase_drift_table(params: RunParams) -> Table {
    let hier_cfg = HierarchyConfig::paper_five_level();
    let techniques = ["SMNM_20x3", "RMNM_4096_8", "TMNM_12x3", "CMNM_8_12"];
    let apps: Vec<_> =
        ablation_apps().into_iter().map(|n| profiles::by_name(n).expect("known app")).collect();

    let jobs: Vec<(usize, usize, bool)> = (0..apps.len())
        .flat_map(|a| {
            (0..techniques.len()).flat_map(move |t| [false, true].map(move |d| (a, t, d)))
        })
        .collect();
    let results = parallel_run(jobs, |&(a, t, drift)| {
        let mut app = apps[a].clone();
        if drift {
            app.phase_drift = Some(PhaseDrift { period: 200_000, drift_bytes: 1 << 24 });
        }
        let run = run_app_functional(&app, &hier_cfg, &ConfigKind::parse(techniques[t]), params);
        run.mnm.map(|m| m.coverage() * 100.0).unwrap_or(0.0)
    });

    let mut columns = Vec::new();
    for t in techniques {
        columns.push(format!("{t} (stat)"));
        columns.push(format!("{t} (drift)"));
    }
    let mut table =
        Table::new("Ablation 7: coverage [%] with allocation-phase drift", "app", &columns);
    let per_app = techniques.len() * 2;
    for (a, app) in apps.iter().enumerate() {
        let row: Vec<f64> = (0..per_app).map(|i| results[a * per_app + i]).collect();
        table.push_row(&app.name, row);
    }
    table.push_mean_row();
    table
}

/// abl08 — L1-size sensitivity: the paper's motivation leans on small,
/// fast L1s (4 KB); this sweep grows the split L1s and measures how the
/// parallel HMNM4's cycle benefit changes. (Measured: the *relative*
/// benefit is stable or even grows — fewer L2+ walks remain, but the MNM
/// removes a similar share of each one, while total cycles shrink.)
pub fn l1_size_table(params: RunParams) -> Table {
    let cpu_cfg = CpuConfig::paper_eight_way();
    let apps: Vec<_> =
        ablation_apps().into_iter().map(|n| profiles::by_name(n).expect("known app")).collect();
    let sizes_kb = [4u64, 8, 16, 32];

    let jobs: Vec<(usize, usize, bool)> = (0..apps.len())
        .flat_map(|a| (0..sizes_kb.len()).flat_map(move |s| [false, true].map(move |m| (a, s, m))))
        .collect();
    let cycles = parallel_run(jobs, |&(a, s, with_mnm)| {
        let mut hier_cfg = HierarchyConfig::paper_five_level();
        hier_cfg.levels[0] = cache_sim::LevelConfig::Split {
            instr: cache_sim::CacheConfig::new("il1", sizes_kb[s] * 1024, 1, 32, 2),
            data: cache_sim::CacheConfig::new("dl1", sizes_kb[s] * 1024, 1, 32, 2),
        };
        let kind =
            if with_mnm { ConfigKind::Mnm(MnmConfig::hmnm(4)) } else { ConfigKind::Baseline };
        run_app_timed(&apps[a], &hier_cfg, &cpu_cfg, &kind, params).cpu.cycles as f64
    });

    let columns: Vec<String> = sizes_kb.iter().map(|s| format!("L1 {s}KB")).collect();
    let mut table =
        Table::new("Ablation 8: parallel HMNM4 cycle reduction [%] vs L1 size", "app", &columns);
    let w = sizes_kb.len() * 2;
    for (a, app) in apps.iter().enumerate() {
        let row: Vec<f64> = (0..sizes_kb.len())
            .map(|s| {
                let base = cycles[a * w + s * 2];
                let mnm = cycles[a * w + s * 2 + 1];
                100.0 * (base - mnm) / base
            })
            .collect();
        table.push_row(&app.name, row);
    }
    table.push_mean_row();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_width_monotone_in_coverage_risk() {
        // Wider counters saturate later, so coverage can only stay equal or
        // improve app-by-app (sticky saturation disables slots forever).
        let params = RunParams { warmup: 3_000, measure: 25_000 };
        let t = counter_width_table(params);
        for (app, row) in &t.rows {
            for pair in row.windows(2) {
                assert!(
                    pair[1] >= pair[0] - 3.0,
                    "{app}: wider counters lost too much coverage: {row:?}"
                );
            }
        }
    }

    #[test]
    fn ablation_apps_exist() {
        for name in ablation_apps() {
            assert!(trace_synth::profiles::by_name(name).is_some(), "{name}");
        }
    }
}
