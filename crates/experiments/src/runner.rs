//! Per-application simulation drivers and the parallel job runner.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use cache_sim::{
    Access, AccessFilter, BypassSet, CacheEvent, Hierarchy, HierarchyConfig, HierarchyStats,
    ProbeRecord, ReplaySession,
};
use mnm_core::{perfect_bypass, Mnm, MnmConfig, MnmStats};
use ooo_model::{simulate, CpuConfig, CpuStats, MemPolicy};
use trace_synth::{AppProfile, InstrKind, Program};

use crate::params::{worker_threads, RunParams};

/// Which memory-filtering configuration a run uses.
#[derive(Debug, Clone)]
pub enum ConfigKind {
    /// Plain hierarchy, no filtering.
    Baseline,
    /// A real MNM built from the given configuration.
    Mnm(MnmConfig),
    /// The perfect oracle (paper §4.3).
    Perfect,
}

impl ConfigKind {
    /// Display label for tables.
    pub fn label(&self) -> String {
        match self {
            ConfigKind::Baseline => "Baseline".to_owned(),
            ConfigKind::Mnm(c) => c.name.clone(),
            ConfigKind::Perfect => "Perfect".to_owned(),
        }
    }

    /// Parse a table label: `"Baseline"`, `"Perfect"`, or any
    /// [`MnmConfig::parse`] label.
    ///
    /// # Panics
    ///
    /// Panics on an unknown label (experiment configuration is static).
    pub fn parse(label: &str) -> Self {
        match label {
            "Baseline" => ConfigKind::Baseline,
            "Perfect" => ConfigKind::Perfect,
            other => ConfigKind::Mnm(
                MnmConfig::parse(other).unwrap_or_else(|e| panic!("bad experiment config: {e}")),
            ),
        }
    }
}

/// Everything measured in one application run.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Application name.
    pub app: String,
    /// Configuration label.
    pub config: String,
    /// Hierarchy counters over the measured phase.
    pub hierarchy: HierarchyStats,
    /// MNM counters over the measured phase (None for baseline/perfect).
    pub mnm: Option<MnmStats>,
    /// Per-MNM-query energy inputs: component storage, for the power model.
    pub mnm_storage: Vec<mnm_core::ComponentStorage>,
    /// MNM placement (copied from the config; None for baseline/perfect).
    pub mnm_placement: Option<mnm_core::MnmPlacement>,
    /// Core timing results (zeroed for functional runs).
    pub cpu: CpuStats,
    /// 1-based level of each structure (parallel to `hierarchy.structures`).
    pub level_of_structure: Vec<u8>,
    /// Structure names (parallel to `hierarchy.structures`).
    pub structure_names: Vec<String>,
}

impl AppRun {
    /// Accesses that missed in L1 (serial-MNM query count).
    pub fn l1_miss_accesses(&self) -> u64 {
        // Every L1 miss probes a level-2 structure (or memory); count the
        // references arriving at level-2 structures.
        self.hierarchy
            .structures
            .iter()
            .zip(&self.level_of_structure)
            .filter(|(_, &lvl)| lvl == 2)
            .map(|(s, _)| s.probes + s.bypasses)
            .sum()
    }
}

/// Drive one application through the full OoO timing model.
pub fn run_app_timed(
    profile: &AppProfile,
    hier_cfg: &HierarchyConfig,
    cpu_cfg: &CpuConfig,
    kind: &ConfigKind,
    params: RunParams,
) -> AppRun {
    let mut hierarchy = Hierarchy::new(hier_cfg.clone());
    let mut mnm = match kind {
        ConfigKind::Mnm(cfg) => Some(Mnm::new(&hierarchy, cfg.clone())),
        _ => None,
    };
    let mut program = Program::new(profile.clone());

    // Warmup.
    {
        let policy = match (&mut mnm, kind) {
            (Some(m), _) => MemPolicy::Mnm(m),
            (None, ConfigKind::Perfect) => MemPolicy::Perfect,
            (None, _) => MemPolicy::Baseline,
        };
        simulate(cpu_cfg, &mut hierarchy, policy, &mut program, params.warmup);
    }
    hierarchy.reset_stats();
    if let Some(m) = &mut mnm {
        m.reset_stats();
    }

    // Measured phase.
    let cpu = {
        let policy = match (&mut mnm, kind) {
            (Some(m), _) => MemPolicy::Mnm(m),
            (None, ConfigKind::Perfect) => MemPolicy::Perfect,
            (None, _) => MemPolicy::Baseline,
        };
        simulate(cpu_cfg, &mut hierarchy, policy, &mut program, params.measure)
    };

    finish(profile, kind, hierarchy, mnm, cpu)
}

/// Drive one application through the hierarchy only (no core timing):
/// instruction fetches at fetch-block granularity plus every load/store.
/// Much faster than [`run_app_timed`]; used for the coverage and power
/// experiments, which do not need cycles.
pub fn run_app_functional(
    profile: &AppProfile,
    hier_cfg: &HierarchyConfig,
    kind: &ConfigKind,
    params: RunParams,
) -> AppRun {
    let mut hierarchy = Hierarchy::new(hier_cfg.clone());
    let mut mnm = match kind {
        ConfigKind::Mnm(cfg) => Some(Mnm::new(&hierarchy, cfg.clone())),
        _ => None,
    };
    let fetch_shift = hierarchy
        .structures()
        .iter()
        .find(|s| s.level == 1 && !s.data_only)
        .map(|s| s.block_bytes.trailing_zeros())
        .expect("L1 instruction structure");

    let mut program = Program::new(profile.clone());
    // Mirrors the timed model's fetch behaviour exactly (including the
    // refetch after a mispredict and the fresh fetch block per phase) so
    // functional and timed runs see identical reference streams. The whole
    // phase streams through one ReplaySession: scratch buffers are reused
    // across every access, so the loop never allocates.
    let mut drive = |hierarchy: &mut Hierarchy, mnm: &mut Option<Mnm>, n: u64| {
        let filter = match (mnm, kind) {
            (Some(m), _) => RunFilter::Mnm(m),
            (None, ConfigKind::Perfect) => RunFilter::Perfect,
            (None, _) => RunFilter::Baseline,
        };
        let mut session = ReplaySession::new(hierarchy, filter);
        let mut cur_block = u64::MAX;
        let mut done = 0;
        for instr in &mut program {
            let block = instr.pc >> fetch_shift;
            if block != cur_block {
                cur_block = block;
                session.step(Access::fetch(instr.pc));
            }
            match instr.kind {
                InstrKind::Load { addr } => {
                    session.step(Access::load(addr));
                }
                InstrKind::Store { addr } => {
                    session.step(Access::store(addr));
                }
                InstrKind::Branch { mispredicted } => {
                    if mispredicted {
                        cur_block = u64::MAX;
                    }
                }
                InstrKind::Op { .. } => {}
            }
            done += 1;
            if done >= n {
                break;
            }
        }
    };

    drive(&mut hierarchy, &mut mnm, params.warmup);
    hierarchy.reset_stats();
    if let Some(m) = &mut mnm {
        m.reset_stats();
    }
    drive(&mut hierarchy, &mut mnm, params.measure);

    finish(profile, kind, hierarchy, mnm, CpuStats::default())
}

/// The three experiment configurations as one [`AccessFilter`], so every
/// functional run drives the same [`ReplaySession`] loop.
enum RunFilter<'a> {
    Baseline,
    Perfect,
    Mnm(&'a mut Mnm),
}

impl AccessFilter for RunFilter<'_> {
    fn query(&mut self, hierarchy: &Hierarchy, access: Access) -> BypassSet {
        match self {
            RunFilter::Baseline => BypassSet::none(),
            RunFilter::Perfect => perfect_bypass(hierarchy, access),
            RunFilter::Mnm(m) => Mnm::query(m, access),
        }
    }

    fn observe_events(&mut self, _hierarchy: &Hierarchy, events: &[CacheEvent]) {
        if let RunFilter::Mnm(m) = self {
            Mnm::observe_events(m, events);
        }
    }

    fn note_probes(&mut self, _access: Access, probes: &[ProbeRecord]) {
        if let RunFilter::Mnm(m) = self {
            Mnm::note_probes(m, probes);
        }
    }
}

fn finish(
    profile: &AppProfile,
    kind: &ConfigKind,
    hierarchy: Hierarchy,
    mnm: Option<Mnm>,
    cpu: CpuStats,
) -> AppRun {
    let run = AppRun {
        app: profile.name.clone(),
        config: kind.label(),
        level_of_structure: hierarchy.structures().iter().map(|s| s.level).collect(),
        structure_names: hierarchy.structures().iter().map(|s| s.name.clone()).collect(),
        hierarchy: hierarchy.stats().clone(),
        mnm_storage: mnm.as_ref().map(|m| m.storage()).unwrap_or_default(),
        mnm_placement: mnm.as_ref().map(|m| m.config().placement),
        mnm: mnm.map(|m| m.stats().clone()),
        cpu,
    };
    crate::metrics::record_app_run(&run);
    run
}

/// Run `jobs` on a bounded worker pool, preserving order.
///
/// Each job writes its result (and duration) into its own slot, so
/// completed workers never contend on a shared lock. A panicking job is
/// reported by index and payload instead of surfacing as an opaque
/// scoped-thread panic. Pool and per-job timings feed the telemetry recorder
/// when [`crate::metrics::enable_telemetry`] is active.
///
/// # Panics
///
/// Panics if any job panics, naming the failing job.
pub fn parallel_run<J, T, F>(jobs: Vec<J>, f: F) -> Vec<T>
where
    J: Sync,
    T: Send,
    F: Fn(&J) -> T + Sync,
{
    let n = jobs.len();
    // One mutex per slot: each is locked exactly once by the worker that
    // ran the job, so there is no cross-worker contention on completion.
    let slots: Vec<Mutex<Option<(T, Duration)>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let panicked: Mutex<Option<(usize, String)>> = Mutex::new(None);
    let next = AtomicUsize::new(0);
    let jobs_ref = &jobs;
    let f_ref = &f;
    let slots_ref = &slots;
    let panicked_ref = &panicked;
    let workers = worker_threads().min(n.max(1));

    let pool_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let job_start = Instant::now();
                let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    f_ref(&jobs_ref[idx])
                }));
                match out {
                    Ok(value) => {
                        *slots_ref[idx].lock().expect("slot lock poisoned") =
                            Some((value, job_start.elapsed()));
                    }
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| payload.downcast_ref::<&str>().copied())
                            .unwrap_or("non-string panic payload")
                            .to_owned();
                        let mut guard = panicked_ref.lock().expect("panic slot poisoned");
                        if guard.is_none() {
                            *guard = Some((idx, msg));
                        }
                        // Stop claiming work; other workers drain and exit.
                        next.store(n, Ordering::Relaxed);
                        break;
                    }
                }
            });
        }
    });

    if let Some((idx, msg)) = panicked.into_inner().expect("panic slot poisoned") {
        panic!("parallel job {idx} of {n} panicked: {msg}");
    }

    let mut durations = Vec::with_capacity(n);
    let results = slots
        .into_iter()
        .map(|slot| {
            let (value, took) =
                slot.into_inner().expect("slot lock poisoned").expect("job completed");
            durations.push(took);
            value
        })
        .collect();
    crate::metrics::record_pool(n, workers, pool_start.elapsed(), &durations);
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_synth::profiles;

    #[test]
    fn functional_and_timed_agree_on_cache_contents() {
        let profile = profiles::by_name("164.gzip").unwrap();
        let params = RunParams { warmup: 2_000, measure: 20_000 };
        let cfg = HierarchyConfig::paper_five_level();
        let f = run_app_functional(&profile, &cfg, &ConfigKind::Baseline, params);
        let t = run_app_timed(
            &profile,
            &cfg,
            &CpuConfig::paper_eight_way(),
            &ConfigKind::Baseline,
            params,
        );
        // The same reference stream hits the same levels.
        assert_eq!(f.hierarchy.data_accesses, t.hierarchy.data_accesses);
        assert_eq!(f.hierarchy.supplies_by_level, t.hierarchy.supplies_by_level);
        assert_eq!(t.cpu.instructions, 20_000);
        assert_eq!(f.cpu.instructions, 0);
    }

    #[test]
    fn mnm_runs_collect_coverage() {
        let profile = profiles::by_name("181.mcf").unwrap();
        let params = RunParams { warmup: 5_000, measure: 30_000 };
        let cfg = HierarchyConfig::paper_five_level();
        let run = run_app_functional(&profile, &cfg, &ConfigKind::parse("HMNM4"), params);
        let st = run.mnm.expect("mnm stats");
        assert!(st.bypassable_misses() > 0);
        assert!(st.coverage() > 0.0);
        assert!(!run.mnm_storage.is_empty());
    }

    #[test]
    fn perfect_covers_everything() {
        let profile = profiles::by_name("181.mcf").unwrap();
        let params = RunParams { warmup: 2_000, measure: 20_000 };
        let cfg = HierarchyConfig::paper_five_level();
        let run = run_app_functional(&profile, &cfg, &ConfigKind::Perfect, params);
        // Every probed non-L1 structure miss should have been bypassed:
        // only L1 misses remain.
        for (st, lvl) in run.hierarchy.structures.iter().zip(&run.level_of_structure) {
            if *lvl >= 2 {
                assert_eq!(st.misses, 0, "perfect MNM leaves no probed miss at level {lvl}");
            }
        }
    }

    #[test]
    fn parallel_run_preserves_order() {
        let jobs: Vec<u64> = (0..100).collect();
        let out = parallel_run(jobs, |&j| j * j);
        assert_eq!(out[7], 49);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn parallel_run_names_the_panicking_job() {
        let payload = std::panic::catch_unwind(|| {
            parallel_run((0..16).collect::<Vec<u64>>(), |&j| {
                if j == 11 {
                    panic!("job eleven exploded");
                }
                j
            })
        })
        .expect_err("must propagate the panic");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("parallel job 11 of 16"), "got: {msg}");
        assert!(msg.contains("job eleven exploded"), "got: {msg}");
    }

    #[test]
    fn parallel_run_handles_empty_and_single_job_lists() {
        let empty: Vec<u64> = Vec::new();
        assert!(parallel_run(empty, |&j: &u64| j).is_empty());
        assert_eq!(parallel_run(vec![5u64], |&j| j + 1), vec![6]);
    }

    #[test]
    fn config_kind_labels_round_trip() {
        for label in ["Baseline", "Perfect", "HMNM3", "TMNM_12x3"] {
            assert_eq!(ConfigKind::parse(label).label(), label);
        }
    }
}
