//! Machine-readable results and run telemetry.
//!
//! Every human-readable artifact the harness prints has a JSON twin so
//! regression checks and dashboards can consume the numbers:
//!
//! * [`Table::to_json`] (in `report`) — one table as a JSON object.
//! * [`emit`] — the shared figure-binary helper: print the table, chart it
//!   under `JSN_CHART`, and write `<out>/<slug>.json` under `JSN_JSON`.
//! * [`RunManifest`] — everything one `run_all` invocation measured:
//!   per-experiment wall time, per-app/per-config simulation counters,
//!   worker-pool telemetry, and the run parameters/environment knobs.
//! * [`diff_documents`] — per-cell comparison of two JSON artifacts with a
//!   tolerance; the engine behind `jsn diff` and the CI regression gate.
//!
//! Counter and pool telemetry is collected through a process-global
//! recorder that the runner feeds; it is disabled (and free) unless a
//! harness opts in with [`enable_telemetry`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::json::Json;
use crate::params::RunParams;
use crate::report::Table;
use crate::runner::AppRun;

/// Environment variable naming the output directory (default `results`).
pub const ENV_OUT: &str = "JSN_OUT";
/// Environment variable enabling per-figure JSON emission in [`emit`].
pub const ENV_JSON: &str = "JSN_JSON";

/// All `JSN_*` knobs the workspace reads, with one-line meanings. The
/// manifest records the set ones; docs render this same list.
pub const ENV_KNOBS: [(&str, &str); 7] = [
    ("JSN_WARMUP", "warmup instructions per app (default 300000)"),
    ("JSN_MEASURE", "measured instructions per app (default 2000000)"),
    ("JSN_THREADS", "worker threads for the parallel runner"),
    ("JSN_CHART", "also print figures as ASCII bar charts"),
    ("JSN_OUT", "output directory for results artifacts (default `results`)"),
    ("JSN_JSON", "figure binaries also write <out>/<slug>.json"),
    ("JSN_FAULT", "deterministic fault-injection plan (see EXPERIMENTS.md)"),
];

/// Output directory for results artifacts: `JSN_OUT` or `results`.
pub fn out_dir() -> std::path::PathBuf {
    std::env::var_os(ENV_OUT).map(Into::into).unwrap_or_else(|| "results".into())
}

// ---------------------------------------------------------------------------
// Global telemetry recorder.
// ---------------------------------------------------------------------------

/// Counters of one `(app, config)` simulation, flattened for the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct AppRunRecord {
    /// Application name.
    pub app: String,
    /// Configuration label.
    pub config: String,
    /// True for timed (OoO-model) runs, false for functional runs.
    pub timed: bool,
    /// How many times this `(app, config, timed)` key was simulated.
    pub runs: u64,
    /// Hierarchy accesses in the latest run.
    pub accesses: u64,
    /// Data-side accesses.
    pub data_accesses: u64,
    /// Accesses supplied by main memory.
    pub memory_supplies: u64,
    /// Total access latency (cycles).
    pub total_latency: u64,
    /// Latency spent probing missing structures (cycles).
    pub miss_latency: u64,
    /// Per-level supply counts (last entry: main memory).
    pub supplies_by_level: Vec<u64>,
    /// MNM coverage numerator/denominator, when an MNM ran.
    pub mnm: Option<(u64, u64)>,
    /// `(instructions, cycles)` for timed runs.
    pub cpu: Option<(u64, u64)>,
}

/// Telemetry of one `parallel_run` invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolRecord {
    /// Jobs executed.
    pub jobs: u64,
    /// Worker threads used.
    pub threads: u64,
    /// Wall time of the whole pool (ms).
    pub wall_ms: f64,
    /// Sum of per-job durations (ms).
    pub job_ms_total: f64,
    /// Slowest single job (ms).
    pub job_ms_max: f64,
}

#[derive(Default)]
struct Recorder {
    app_runs: Vec<AppRunRecord>,
    pools: Vec<PoolRecord>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: Mutex<Option<Recorder>> = Mutex::new(None);

/// Lock the global recorder, recovering from a poisoned mutex.
///
/// The supervisor runs jobs under `catch_unwind`; a job that panics while
/// its runner holds this lock poisons it, and propagating that poison
/// would turn every *later* telemetry call — including the supervisor's
/// own outcome recording — into a panic cascade. The recorder holds plain
/// counters with no invariants that a mid-update panic could break beyond
/// one lost record, so recovering the guard is always safe.
fn lock_recorder() -> std::sync::MutexGuard<'static, Option<Recorder>> {
    RECORDER.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Start collecting runner telemetry in this process. Harnesses that
/// build a [`RunManifest`] call this first; everything else pays only an
/// atomic load per record.
pub fn enable_telemetry() {
    *lock_recorder() = Some(Recorder::default());
    ENABLED.store(true, Ordering::Release);
}

/// Whether [`enable_telemetry`] is active.
pub fn telemetry_enabled() -> bool {
    ENABLED.load(Ordering::Acquire)
}

/// Record one completed application run (called by the runner).
pub fn record_app_run(run: &AppRun) {
    if !telemetry_enabled() {
        return;
    }
    let timed = run.cpu.instructions > 0;
    let mut guard = lock_recorder();
    let Some(rec) = guard.as_mut() else { return };
    let record = AppRunRecord {
        app: run.app.clone(),
        config: run.config.clone(),
        timed,
        runs: 1,
        accesses: run.hierarchy.accesses,
        data_accesses: run.hierarchy.data_accesses,
        memory_supplies: run.hierarchy.memory_supplies,
        total_latency: run.hierarchy.total_latency,
        miss_latency: run.hierarchy.miss_latency,
        supplies_by_level: run.hierarchy.supplies_by_level.clone(),
        mnm: run.mnm.as_ref().map(|m| (m.identified_misses(), m.bypassable_misses())),
        cpu: timed.then_some((run.cpu.instructions, run.cpu.cycles)),
    };
    match rec
        .app_runs
        .iter_mut()
        .find(|r| r.app == record.app && r.config == record.config && r.timed == timed)
    {
        Some(existing) => {
            let runs = existing.runs + 1;
            *existing = record;
            existing.runs = runs;
        }
        None => rec.app_runs.push(record),
    }
}

/// Record one worker-pool invocation (called by `parallel_run`).
pub fn record_pool(jobs: usize, threads: usize, wall: Duration, job_durations: &[Duration]) {
    if !telemetry_enabled() {
        return;
    }
    let ms = |d: &Duration| d.as_secs_f64() * 1e3;
    let record = PoolRecord {
        jobs: jobs as u64,
        threads: threads as u64,
        wall_ms: ms(&wall),
        job_ms_total: job_durations.iter().map(ms).sum(),
        job_ms_max: job_durations.iter().map(ms).fold(0.0, f64::max),
    };
    if let Some(rec) = lock_recorder().as_mut() {
        rec.pools.push(record);
    }
}

/// Take everything recorded so far, leaving the recorder empty (still
/// enabled).
pub fn drain_telemetry() -> (Vec<AppRunRecord>, Vec<PoolRecord>) {
    let mut guard = lock_recorder();
    match guard.as_mut() {
        Some(rec) => (std::mem::take(&mut rec.app_runs), std::mem::take(&mut rec.pools)),
        None => (Vec::new(), Vec::new()),
    }
}

// ---------------------------------------------------------------------------
// The run manifest.
// ---------------------------------------------------------------------------

/// One experiment inside a [`RunManifest`].
#[derive(Debug, Clone)]
pub struct ExperimentRecord {
    /// Slug-style name (`fig12_tmnm_coverage`).
    pub name: String,
    /// Wall time spent producing the table (ms).
    pub wall_ms: f64,
    /// The rendered results.
    pub table: Table,
}

/// Everything one harness invocation measured, ready for JSON export.
#[derive(Debug, Clone, Default)]
pub struct RunManifest {
    /// Per-experiment tables and wall times, in execution order.
    pub experiments: Vec<ExperimentRecord>,
    /// Per-`(app, config)` simulation counters.
    pub app_runs: Vec<AppRunRecord>,
    /// Per-`parallel_run` pool telemetry.
    pub pools: Vec<PoolRecord>,
    /// Run parameters in force.
    pub params: Option<RunParams>,
    /// Worker-thread count in force.
    pub threads: u64,
    /// Total harness wall time (ms).
    pub total_wall_ms: f64,
    /// Supervisor job reports (attempts, outcomes) for supervised sweeps.
    pub jobs: Vec<crate::supervisor::JobReport>,
    /// Faults the fault-injection layer actually fired during the run.
    pub injected: Vec<crate::faults::InjectedFault>,
}

impl RunManifest {
    /// Schema identifier written into every manifest.
    pub const SCHEMA: &'static str = "jsn-run-manifest/v1";

    /// Append one timed experiment.
    pub fn push(&mut self, name: &str, wall: Duration, table: Table) {
        self.experiments.push(ExperimentRecord {
            name: name.to_owned(),
            wall_ms: wall.as_secs_f64() * 1e3,
            table,
        });
    }

    /// Absorb everything the global recorder collected so far.
    pub fn absorb_telemetry(&mut self) {
        let (apps, pools) = drain_telemetry();
        self.app_runs.extend(apps);
        self.pools.extend(pools);
    }

    /// Render the manifest as a JSON document.
    pub fn to_json(&self) -> Json {
        let env = Json::Obj(
            ENV_KNOBS
                .iter()
                .filter_map(|(name, _)| {
                    std::env::var(name).ok().map(|v| ((*name).to_owned(), Json::Str(v)))
                })
                .collect(),
        );
        let params = match &self.params {
            Some(p) => Json::obj(vec![
                ("warmup", Json::num(p.warmup as f64)),
                ("measure", Json::num(p.measure as f64)),
            ]),
            None => Json::Null,
        };
        let experiments = Json::Arr(
            self.experiments
                .iter()
                .map(|e| {
                    Json::obj(vec![
                        ("name", Json::str(&e.name)),
                        ("wall_ms", Json::num(round3(e.wall_ms))),
                        ("table", e.table.to_json()),
                    ])
                })
                .collect(),
        );
        let app_runs = Json::Arr(self.app_runs.iter().map(app_run_json).collect());
        let pools = Json::Arr(
            self.pools
                .iter()
                .map(|p| {
                    Json::obj(vec![
                        ("jobs", Json::num(p.jobs as f64)),
                        ("threads", Json::num(p.threads as f64)),
                        ("wall_ms", Json::num(round3(p.wall_ms))),
                        ("job_ms_total", Json::num(round3(p.job_ms_total))),
                        ("job_ms_max", Json::num(round3(p.job_ms_max))),
                    ])
                })
                .collect(),
        );
        let mut pairs = vec![
            ("schema", Json::str(Self::SCHEMA)),
            ("params", params),
            ("env", env),
            ("threads", Json::num(self.threads as f64)),
            ("total_wall_ms", Json::num(round3(self.total_wall_ms))),
            ("experiments", experiments),
            ("app_runs", app_runs),
            ("worker_pools", pools),
        ];
        // Supervision records ride along only for supervised runs so plain
        // harness manifests (and the golden diff, which reads tables only)
        // are unchanged.
        if !self.jobs.is_empty() {
            pairs.push((
                "supervisor",
                Json::Arr(self.jobs.iter().map(crate::supervisor::JobReport::to_json).collect()),
            ));
        }
        if !self.injected.is_empty() {
            pairs.push((
                "injected_faults",
                Json::Arr(
                    self.injected.iter().map(crate::faults::InjectedFault::to_json).collect(),
                ),
            ));
        }
        Json::obj(pairs)
    }
}

fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

fn app_run_json(r: &AppRunRecord) -> Json {
    let mut pairs = vec![
        ("app", Json::str(&r.app)),
        ("config", Json::str(&r.config)),
        ("timed", Json::Bool(r.timed)),
        ("runs", Json::num(r.runs as f64)),
        ("accesses", Json::num(r.accesses as f64)),
        ("data_accesses", Json::num(r.data_accesses as f64)),
        ("memory_supplies", Json::num(r.memory_supplies as f64)),
        ("total_latency", Json::num(r.total_latency as f64)),
        ("miss_latency", Json::num(r.miss_latency as f64)),
        (
            "supplies_by_level",
            Json::Arr(r.supplies_by_level.iter().map(|&s| Json::num(s as f64)).collect()),
        ),
    ];
    if let Some((identified, bypassable)) = r.mnm {
        pairs.push((
            "mnm",
            Json::obj(vec![
                ("identified_misses", Json::num(identified as f64)),
                ("bypassable_misses", Json::num(bypassable as f64)),
            ]),
        ));
    }
    if let Some((instructions, cycles)) = r.cpu {
        pairs.push((
            "cpu",
            Json::obj(vec![
                ("instructions", Json::num(instructions as f64)),
                ("cycles", Json::num(cycles as f64)),
            ]),
        ));
    }
    Json::obj(pairs)
}

// ---------------------------------------------------------------------------
// Figure-binary emission.
// ---------------------------------------------------------------------------

/// Slug for file names: lowercase alphanumerics with `_` separators.
pub fn slug(title: &str) -> String {
    let mut out = String::with_capacity(title.len());
    let mut gap = false;
    for c in title.chars() {
        if c.is_ascii_alphanumeric() {
            if gap && !out.is_empty() {
                out.push('_');
            }
            gap = false;
            out.push(c.to_ascii_lowercase());
        } else {
            gap = true;
        }
    }
    out
}

/// The shared figure/ablation-binary output path: print the table, chart
/// it when `JSN_CHART` is set, and — when `JSN_JSON` is set — write
/// `<out>/<slug>.json` (schema `jsn-table/v1`).
pub fn emit(table: &Table) {
    print!("{}", table.render());
    crate::report::maybe_chart(table);
    if std::env::var_os(ENV_JSON).is_none() {
        return;
    }
    let doc = Json::obj(vec![("schema", Json::str("jsn-table/v1")), ("table", table.to_json())]);
    let dir = out_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{}.json", slug(&table.title)));
    match crate::fsio::write_artifact(&path, doc.render_pretty().as_bytes()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
}

// ---------------------------------------------------------------------------
// Diffing.
// ---------------------------------------------------------------------------

/// One divergence between two JSON results documents.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Where the divergence sits (`table / row / column`).
    pub location: String,
    /// Human-readable description with both values.
    pub detail: String,
}

impl std::fmt::Display for DiffEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.location, self.detail)
    }
}

/// Extract `(name, table-json)` pairs from any artifact this workspace
/// writes: a run manifest, a single-table document, or a bare table.
fn tables_of(doc: &Json) -> Vec<(String, &Json)> {
    if let Some(experiments) = doc.get("experiments").and_then(Json::as_arr) {
        return experiments
            .iter()
            .filter_map(|e| {
                let name = e.get("name").and_then(Json::as_str)?.to_owned();
                Some((name, e.get("table")?))
            })
            .collect();
    }
    let table = doc.get("table").unwrap_or(doc);
    let name =
        table.get("title").and_then(Json::as_str).map(slug).unwrap_or_else(|| "table".to_owned());
    vec![(name, table)]
}

fn cell_rows(table: &Json) -> Vec<(String, Vec<f64>)> {
    table
        .get("rows")
        .and_then(Json::as_arr)
        .map(|rows| {
            rows.iter()
                .filter_map(|r| {
                    let label = r.get("label").and_then(Json::as_str)?.to_owned();
                    let values = r
                        .get("values")
                        .and_then(Json::as_arr)?
                        .iter()
                        .map(|v| v.as_f64().unwrap_or(f64::NAN))
                        .collect();
                    Some((label, values))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Compare two results documents cell-for-cell. Tables are matched by
/// name; rows by label; values beyond `tolerance` (absolute) diverge.
/// Structural mismatches (missing table/row/column) are divergences too.
pub fn diff_documents(a: &Json, b: &Json, tolerance: f64) -> Vec<DiffEntry> {
    let mut out = Vec::new();
    let ta = tables_of(a);
    let tb = tables_of(b);

    for (name, table_a) in &ta {
        let Some((_, table_b)) = tb.iter().find(|(n, _)| n == name) else {
            out.push(DiffEntry {
                location: name.clone(),
                detail: "table missing from second document".to_owned(),
            });
            continue;
        };
        let cols_a: Vec<&str> = columns_of(table_a);
        let cols_b: Vec<&str> = columns_of(table_b);
        if cols_a != cols_b {
            out.push(DiffEntry {
                location: name.clone(),
                detail: format!("columns differ: {cols_a:?} vs {cols_b:?}"),
            });
            continue;
        }
        let rows_b = cell_rows(table_b);
        for (label, values_a) in cell_rows(table_a) {
            let Some((_, values_b)) = rows_b.iter().find(|(l, _)| *l == label) else {
                out.push(DiffEntry {
                    location: format!("{name} / {label}"),
                    detail: "row missing from second document".to_owned(),
                });
                continue;
            };
            if values_a.len() != values_b.len() {
                out.push(DiffEntry {
                    location: format!("{name} / {label}"),
                    detail: format!("row width {} vs {}", values_a.len(), values_b.len()),
                });
                continue;
            }
            for (c, (va, vb)) in values_a.iter().zip(values_b).enumerate() {
                let delta = vb - va;
                if delta.abs() > tolerance || va.is_nan() != vb.is_nan() {
                    let column = cols_a.get(c).copied().unwrap_or("?");
                    out.push(DiffEntry {
                        location: format!("{name} / {label} / {column}"),
                        detail: format!("{va} -> {vb} (delta {delta:+.6})"),
                    });
                }
            }
        }
        for (label, _) in rows_b {
            if !cell_rows(table_a).iter().any(|(l, _)| *l == label) {
                out.push(DiffEntry {
                    location: format!("{name} / {label}"),
                    detail: "row only in second document".to_owned(),
                });
            }
        }
    }
    for (name, _) in &tb {
        if !ta.iter().any(|(n, _)| n == name) {
            out.push(DiffEntry {
                location: name.clone(),
                detail: "table only in second document".to_owned(),
            });
        }
    }
    out
}

fn columns_of(table: &Json) -> Vec<&str> {
    table
        .get("columns")
        .and_then(Json::as_arr)
        .map(|cols| cols.iter().filter_map(Json::as_str).collect())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let mut t = Table::new("Figure 12: TMNM coverage [%]", "app", &["A".into(), "B".into()]);
        t.push_row("gzip", vec![10.0, 20.0]);
        t.push_row("mcf", vec![30.5, 40.25]);
        t
    }

    #[test]
    fn slugs_are_filesystem_friendly() {
        assert_eq!(slug("Figure 12: TMNM coverage [%]"), "figure_12_tmnm_coverage");
        assert_eq!(slug("  weird  --  name "), "weird_name");
    }

    #[test]
    fn identical_documents_diff_clean() {
        let doc = table().to_json();
        assert!(diff_documents(&doc, &doc, 0.0).is_empty());
    }

    #[test]
    fn perturbed_cell_is_reported_with_location() {
        let a = table().to_json();
        let mut t = table();
        t.rows[1].1[1] += 0.5;
        let b = t.to_json();
        let diffs = diff_documents(&a, &b, 0.1);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].location.contains("mcf"));
        assert!(diffs[0].location.contains('B'));
        assert!(diffs[0].detail.contains("40.25 -> 40.75"));
        // Inside tolerance, the same perturbation passes.
        assert!(diff_documents(&a, &b, 0.6).is_empty());
    }

    #[test]
    fn structural_mismatches_are_divergences() {
        let a = table().to_json();
        let mut t = table();
        t.rows.remove(0);
        let diffs = diff_documents(&a, &t.to_json(), 1e9);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].detail.contains("row missing"));

        let empty = Json::obj(vec![("experiments", Json::Arr(vec![]))]);
        let manifest_like = Json::obj(vec![(
            "experiments",
            Json::Arr(vec![Json::obj(vec![
                ("name", Json::str("fig")),
                ("table", table().to_json()),
            ])]),
        )]);
        let diffs = diff_documents(&manifest_like, &empty, 0.0);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].detail.contains("table missing"));
    }

    #[test]
    fn manifest_serializes_with_schema_and_tables() {
        let mut m = RunManifest { threads: 4, ..Default::default() };
        m.params = Some(RunParams::quick());
        m.push("fig12", Duration::from_millis(12), table());
        let doc = m.to_json();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(RunManifest::SCHEMA));
        let exps = doc.get("experiments").and_then(Json::as_arr).unwrap();
        assert_eq!(exps.len(), 1);
        assert_eq!(exps[0].get("name").and_then(Json::as_str), Some("fig12"));
        // Round-trips through the parser.
        let round = Json::parse(&doc.render_pretty()).unwrap();
        assert!(diff_documents(&doc, &round, 0.0).is_empty());
    }

    /// A job that panics while holding the recorder lock (the supervisor
    /// isolates the panic with `catch_unwind`) must not convert every
    /// later telemetry call into a `PoisonError` panic cascade.
    #[test]
    fn poisoned_recorder_lock_recovers() {
        let poison = std::panic::catch_unwind(|| {
            let _guard = RECORDER.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            panic!("job panicked while recording telemetry");
        });
        assert!(poison.is_err());
        assert!(RECORDER.lock().is_err(), "lock is poisoned as the bug requires");

        // Every public entry point must keep working after the poison.
        enable_telemetry();
        record_pool(3, 1, Duration::from_millis(5), &[Duration::from_millis(5)]);
        let (_, pools) = drain_telemetry();
        assert!(pools.iter().any(|p| p.jobs == 3 && p.threads == 1));
    }

    #[test]
    fn telemetry_recorder_collects_pools() {
        enable_telemetry();
        record_pool(
            8,
            2,
            Duration::from_millis(40),
            &[Duration::from_millis(10), Duration::from_millis(30)],
        );
        let (_, pools) = drain_telemetry();
        // Other tests may run pools concurrently; find ours.
        let ours = pools.iter().find(|p| p.jobs == 8 && p.threads == 2).expect("recorded pool");
        assert!(ours.job_ms_max >= 29.0);
    }
}
