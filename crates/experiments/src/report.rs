//! Plain-text / markdown table rendering for experiment output.

use std::fmt::Write as _;

use crate::json::Json;

/// A simple numeric results table: one labelled row per application (plus
/// derived mean rows), one column per configuration/series.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table heading, e.g. `"Figure 12: TMNM coverage [%]"`.
    pub title: String,
    /// Label of the row-key column, e.g. `"app"`.
    pub key: String,
    /// Series names.
    pub columns: Vec<String>,
    /// `(row label, one value per column)`.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Fraction digits printed.
    pub precision: usize,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: &str, key: &str, columns: &[String]) -> Self {
        Table {
            title: title.to_owned(),
            key: key.to_owned(),
            columns: columns.to_vec(),
            rows: Vec::new(),
            precision: 1,
        }
    }

    /// Append one row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push_row(&mut self, label: &str, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch in `{}`", self.title);
        self.rows.push((label.to_owned(), values));
    }

    /// Append an arithmetic-mean row over the existing rows (the paper's
    /// "Arith. Mean" series).
    pub fn push_mean_row(&mut self) {
        if self.rows.is_empty() {
            return;
        }
        let n = self.rows.len() as f64;
        let means: Vec<f64> = (0..self.columns.len())
            .map(|c| self.rows.iter().map(|(_, v)| v[c]).sum::<f64>() / n)
            .collect();
        self.rows.push(("Arith. Mean".to_owned(), means));
    }

    /// Column index by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Value at `(row_label, column_name)`.
    pub fn value(&self, row: &str, column: &str) -> Option<f64> {
        let c = self.column(column)?;
        self.rows.iter().find(|(l, _)| l == row).map(|(_, v)| v[c])
    }

    /// Render as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = Vec::new();
        widths.push(
            self.rows.iter().map(|(l, _)| l.len()).chain([self.key.len()]).max().unwrap_or(4),
        );
        for (c, name) in self.columns.iter().enumerate() {
            let w = self
                .rows
                .iter()
                .map(|(_, v)| format!("{:.*}", self.precision, v[c]).len())
                .chain([name.len()])
                .max()
                .unwrap_or(4);
            widths.push(w);
        }

        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let _ = write!(out, "{:<w$}", self.key, w = widths[0]);
        for (c, name) in self.columns.iter().enumerate() {
            let _ = write!(out, "  {:>w$}", name, w = widths[c + 1]);
        }
        out.push('\n');
        for (label, values) in &self.rows {
            let _ = write!(out, "{:<w$}", label, w = widths[0]);
            for (c, v) in values.iter().enumerate() {
                let _ = write!(out, "  {:>w$.p$}", v, w = widths[c + 1], p = self.precision);
            }
            out.push('\n');
        }
        out
    }

    /// Render as a horizontal ASCII bar chart (one group per row, one bar
    /// per series), the closest text form of the paper's figures. Bars are
    /// scaled to the table's maximum value.
    pub fn render_chart(&self) -> String {
        const WIDTH: f64 = 48.0;
        let max = self
            .rows
            .iter()
            .flat_map(|(_, v)| v.iter().copied())
            .fold(0.0_f64, |m, v| m.max(v.abs()))
            .max(1e-9);
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(self.columns.iter().map(String::len))
            .max()
            .unwrap_or(4);

        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        for (label, values) in &self.rows {
            let _ = writeln!(out, "{label}");
            for (c, v) in values.iter().enumerate() {
                let len = ((v.abs() / max) * WIDTH).round() as usize;
                let bar = "#".repeat(len);
                let sign = if *v < 0.0 { "-" } else { "" };
                let _ = writeln!(
                    out,
                    "  {:<w$} |{sign}{bar} {:.*}",
                    self.columns[c],
                    self.precision,
                    v,
                    w = label_w
                );
            }
        }
        out
    }

    /// Export as a JSON object (`title`/`key`/`precision`/`columns`/
    /// `rows`), the machine-readable twin of [`Table::render`] and
    /// [`Table::to_markdown`]. Cell values are exported at full precision;
    /// `precision` records how the text renderings rounded them.
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|(label, values)| {
                Json::obj(vec![
                    ("label", Json::str(label)),
                    ("values", Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("title", Json::str(&self.title)),
            ("key", Json::str(&self.key)),
            ("precision", Json::num(self.precision as f64)),
            ("columns", Json::Arr(self.columns.iter().map(|c| Json::str(c)).collect())),
            ("rows", Json::Arr(rows)),
        ])
    }

    /// Parse the [`Table::to_json`] form back (journal resume). `null`
    /// cells — non-finite values demoted by the JSON writer — come back as
    /// NaN, exactly what `diff` arithmetic treats them as.
    pub fn from_json(v: &Json) -> Result<Table, String> {
        let title = v.get("title").and_then(Json::as_str).ok_or("table: missing `title`")?;
        let key = v.get("key").and_then(Json::as_str).ok_or("table: missing `key`")?;
        let precision =
            v.get("precision").and_then(Json::as_f64).ok_or("table: missing `precision`")? as usize;
        let columns: Vec<String> = v
            .get("columns")
            .and_then(Json::as_arr)
            .ok_or("table: missing `columns`")?
            .iter()
            .map(|c| c.as_str().map(str::to_owned).ok_or("table: non-string column".to_owned()))
            .collect::<Result<_, _>>()?;
        let mut rows = Vec::new();
        for row in v.get("rows").and_then(Json::as_arr).ok_or("table: missing `rows`")? {
            let label = row.get("label").and_then(Json::as_str).ok_or("table: row label")?;
            let values: Vec<f64> = row
                .get("values")
                .and_then(Json::as_arr)
                .ok_or("table: row values")?
                .iter()
                .map(|v| v.as_f64().unwrap_or(f64::NAN))
                .collect();
            if values.len() != columns.len() {
                return Err(format!("table `{title}`: row `{label}` width mismatch"));
            }
            rows.push((label.to_owned(), values));
        }
        Ok(Table { title: title.to_owned(), key: key.to_owned(), columns, rows, precision })
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = write!(out, "| {} |", self.key);
        for c in &self.columns {
            let _ = write!(out, " {c} |");
        }
        out.push('\n');
        let _ = write!(out, "|---|");
        for _ in &self.columns {
            let _ = write!(out, "---|");
        }
        out.push('\n');
        for (label, values) in &self.rows {
            let _ = write!(out, "| {label} |");
            for v in values {
                let _ = write!(out, " {:.*} |", self.precision, v);
            }
            out.push('\n');
        }
        out
    }
}

/// Print `table`'s ASCII chart when the `JSN_CHART` environment variable
/// is set (any value). Figure binaries call this after the table.
pub fn maybe_chart(table: &Table) {
    if std::env::var_os("JSN_CHART").is_some() {
        print!("{}", table.render_chart());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Coverage", "app", &["A".to_owned(), "B".to_owned()]);
        t.push_row("gzip", vec![10.0, 20.0]);
        t.push_row("mcf", vec![30.0, 40.0]);
        t
    }

    #[test]
    fn mean_row_averages_columns() {
        let mut t = sample();
        t.push_mean_row();
        assert_eq!(t.value("Arith. Mean", "A"), Some(20.0));
        assert_eq!(t.value("Arith. Mean", "B"), Some(30.0));
    }

    #[test]
    fn lookup_by_labels() {
        let t = sample();
        assert_eq!(t.value("mcf", "B"), Some(40.0));
        assert_eq!(t.value("nope", "B"), None);
        assert_eq!(t.value("mcf", "C"), None);
    }

    #[test]
    fn render_contains_all_cells() {
        let text = sample().render();
        for needle in ["Coverage", "gzip", "mcf", "10.0", "40.0"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn markdown_is_well_formed() {
        let md = sample().to_markdown();
        assert!(md.contains("| app | A | B |"));
        assert!(md.lines().filter(|l| l.starts_with('|')).count() >= 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        sample().push_row("bad", vec![1.0]);
    }

    #[test]
    fn chart_scales_bars_to_maximum() {
        let chart = sample().render_chart();
        // The maximum value (40) gets the longest bar; 10 gets a quarter.
        let bars: Vec<usize> = chart
            .lines()
            .filter(|l| l.contains('|'))
            .map(|l| l.chars().filter(|&c| c == '#').count())
            .collect();
        assert_eq!(bars.len(), 4);
        let max = *bars.iter().max().unwrap();
        let min = *bars.iter().min().unwrap();
        assert_eq!(max, 48);
        assert!((min as f64 - 12.0).abs() <= 1.0, "quarter-length bar, got {min}");
    }

    /// Every cell of the ASCII rendering, parsed back to `(label, column,
    /// value)` triples.
    fn ascii_cells(text: &str, t: &Table) -> Vec<(String, String, f64)> {
        let mut out = Vec::new();
        for line in text.lines().skip(2) {
            // Labels may contain spaces ("Arith. Mean"): the last
            // `columns` fields are the values, the rest is the label.
            let fields: Vec<&str> = line.split_whitespace().collect();
            let split = fields.len() - t.columns.len();
            let label = fields[..split].join(" ");
            for (c, field) in fields[split..].iter().enumerate() {
                out.push((label.clone(), t.columns[c].clone(), field.parse().unwrap()));
            }
        }
        out
    }

    /// Every cell of the markdown rendering, same shape.
    fn markdown_cells(md: &str, t: &Table) -> Vec<(String, String, f64)> {
        let mut out = Vec::new();
        for line in md.lines().filter(|l| l.starts_with('|')).skip(2) {
            let mut fields = line.trim_matches('|').split('|').map(str::trim);
            let label = fields.next().unwrap().to_owned();
            for (c, field) in fields.enumerate() {
                out.push((label.clone(), t.columns[c].clone(), field.parse().unwrap()));
            }
        }
        out
    }

    /// Golden agreement: the ASCII, markdown, and JSON renderings of one
    /// table expose the same cells (JSON at full precision, text at the
    /// table's printed precision).
    #[test]
    fn renderings_agree_cell_for_cell() {
        let mut t = sample();
        t.push_row("twolf", vec![33.333, 0.05]);
        t.push_mean_row();

        let json = t.to_json();
        let ascii = ascii_cells(&t.render(), &t);
        let md = markdown_cells(&t.to_markdown(), &t);
        assert_eq!(ascii.len(), t.rows.len() * t.columns.len());
        assert_eq!(ascii, md, "ASCII and markdown disagree");

        let rows = json.get("rows").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), t.rows.len());
        let mut i = 0;
        for row in rows {
            let label = row.get("label").and_then(Json::as_str).unwrap();
            for (c, v) in row.get("values").and_then(Json::as_arr).unwrap().iter().enumerate() {
                let (a_label, a_col, a_val) = &ascii[i];
                assert_eq!(label, a_label);
                assert_eq!(&t.columns[c], a_col);
                let exact = v.as_f64().unwrap();
                let printed = format!("{:.*}", t.precision, exact).parse::<f64>().unwrap();
                assert_eq!(printed, *a_val, "cell {label}/{a_col}");
                i += 1;
            }
        }
        // And the JSON cells are the exact table values.
        assert_eq!(json.get("title").and_then(Json::as_str), Some(t.title.as_str()));
        assert_eq!(rows[2].get("values").and_then(Json::as_arr).unwrap()[0].as_f64(), Some(33.333));
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut t = sample();
        t.push_row("twolf", vec![33.333, 0.05]);
        t.push_mean_row();
        t.precision = 3;
        let back = Table::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);
        // Malformed documents are rejected, not mis-parsed.
        assert!(Table::from_json(&Json::obj(vec![("title", Json::str("x"))])).is_err());
    }

    #[test]
    fn chart_marks_negative_values() {
        let mut t = Table::new("x", "app", &["a".to_owned()]);
        t.push_row("r", vec![-5.0]);
        assert!(t.render_chart().contains("|-"));
    }
}
