//! Minimal JSON document model: a writer and a recursive-descent parser.
//!
//! The workspace is intentionally dependency-free (no serde), but the
//! results/telemetry layer needs machine-readable output and `jsn diff`
//! needs to read it back. [`Json`] covers exactly the JSON the tooling
//! emits: objects keep insertion order so rendered documents diff cleanly
//! under version control.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced for non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers survive up to 2^53 exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered, keys are not deduplicated.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_owned())
    }

    /// Build a number from anything convertible to `f64`.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Member of an object by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Render with 2-space indentation and a trailing newline, the format
    /// of every artifact the workspace writes to disk.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, depth| {
                    items[i].write(out, indent, depth);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, depth| {
                    write_string(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, depth);
                });
            }
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity literal. Encode deterministically as
        // `null` — but loudly: a non-finite number in a results artifact
        // means some metric divided by zero upstream, and silently losing
        // it makes the regression gate compare nulls forever after.
        eprintln!("json: warning: non-finite number ({n}) encoded as null");
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        // Integral values print without a fractional part or exponent.
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{}` on f64 is the shortest representation that round-trips.
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_owned() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not combined; they are outside
                            // what this tooling ever writes.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                None => return Err(self.err("unterminated string")),
                _ => unreachable!(),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        let n = text.parse::<f64>().map_err(|_| JsonError {
            offset: start,
            message: format!("invalid number `{text}`"),
        })?;
        // `str::parse` accepts exponents like `1e999` by saturating to
        // infinity. The writer never emits such a number (non-finite values
        // render as `null`), so a document carrying one is corrupt — reject
        // it instead of letting an Infinity leak into diff arithmetic.
        if !n.is_finite() {
            return Err(JsonError {
                offset: start,
                message: format!("number `{text}` overflows f64"),
            });
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::num(42).render(), "42");
        assert_eq!(Json::num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn integral_floats_render_without_fraction() {
        assert_eq!(Json::num(500_000.0).render(), "500000");
        assert_eq!(Json::num(-3.0).render(), "-3");
        assert_eq!(Json::num(0.25).render(), "0.25");
    }

    #[test]
    fn round_trips_a_nested_document() {
        let doc = Json::obj(vec![
            ("name", Json::str("run")),
            ("count", Json::num(3)),
            ("ok", Json::Bool(true)),
            ("items", Json::Arr(vec![Json::num(1.25), Json::Null, Json::str("x")])),
            ("nested", Json::obj(vec![("k", Json::Arr(vec![]))])),
        ]);
        for rendered in [doc.render(), doc.render_pretty()] {
            assert_eq!(Json::parse(&rendered).unwrap(), doc);
        }
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""tab\tnl\nuA déjà""#.trim()).unwrap();
        assert_eq!(v, Json::Str("tab\tnl\nuA déjà".to_owned()));
    }

    #[test]
    fn object_order_is_preserved() {
        let doc = Json::parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        match &doc {
            Json::Obj(pairs) => {
                let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
                assert_eq!(keys, ["z", "a", "m"]);
            }
            _ => panic!("not an object"),
        }
        assert_eq!(doc.get("a").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated", "{\"a\":}"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn non_finite_numbers_encode_as_null_deterministically() {
        for n in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Json::Num(n).render(), "null");
            assert_eq!(Json::Num(n).render_pretty(), "null\n");
        }
        // In context: the document stays valid JSON and round-trips with
        // the non-finite value demoted to Null.
        let doc = Json::obj(vec![("ok", Json::num(1)), ("bad", Json::Num(f64::NAN))]);
        let rendered = doc.render();
        let back = Json::parse(&rendered).unwrap();
        assert_eq!(back.get("ok").and_then(Json::as_f64), Some(1.0));
        assert_eq!(back.get("bad"), Some(&Json::Null));
    }

    #[test]
    fn parser_rejects_numbers_overflowing_to_infinity() {
        for bad in ["1e999", "-1e999", "[1, 2e400]", "{\"x\": 1e309}"] {
            let e = Json::parse(bad).unwrap_err();
            assert!(e.message.contains("overflows"), "{bad}: {e}");
        }
        // Large-but-finite values still parse.
        assert_eq!(Json::parse("1e308").unwrap().as_f64(), Some(1e308));
    }

    #[test]
    fn error_carries_offset() {
        let e = Json::parse("[1, &]").unwrap_err();
        assert_eq!(e.offset, 4);
        assert!(e.to_string().contains("byte 4"));
    }

    #[test]
    fn pretty_rendering_is_indented() {
        let doc = Json::obj(vec![("a", Json::Arr(vec![Json::num(1)]))]);
        assert_eq!(doc.render_pretty(), "{\n  \"a\": [\n    1\n  ]\n}\n");
    }
}
