//! Related-work comparison (paper §5): MRU **way prediction**
//! (Powell et al., MICRO 2001 — cited by the paper) as an alternative
//! cache-energy-saving technique, against and combined with the serial
//! MNM.
//!
//! Way prediction probes the predicted way first and falls back to the
//! remaining ways on a way-mispredict or a miss:
//!
//! * correct prediction (hit in the MRU way): `1/assoc` of the probe
//!   energy;
//! * anything else: the remaining ways are probed too — one full probe's
//!   energy in total, paid sequentially (the latency cost is why way
//!   prediction is an L1 technique; here we only account energy).
//!
//! The two techniques attack *different* energy: way prediction cheapens
//! **hits**, the MNM eliminates **miss probes** — so their savings should
//! compose almost additively, which this experiment verifies.

use cache_sim::{CacheConfig, HierarchyConfig};
use mnm_core::MnmPlacement;
use power_model::EnergyModel;
use trace_synth::profiles;

use crate::params::RunParams;
use crate::power::run_energy_nj;
use crate::report::Table;
use crate::runner::{parallel_run, run_app_functional, AppRun, ConfigKind};

/// Cache energy under MRU way prediction, recomputed from the per-probe
/// counters (`mru_hits` vs other probes).
pub fn way_predicted_cache_energy_nj(
    run: &AppRun,
    hier_cfg: &HierarchyConfig,
    model: &EnergyModel,
) -> f64 {
    let mut configs: Vec<CacheConfig> = Vec::new();
    for level in &hier_cfg.levels {
        for c in level.configs() {
            configs.push(c.clone());
        }
    }
    let mut total = 0.0;
    for (st, cfg) in run.hierarchy.structures.iter().zip(&configs) {
        let read = model.cache_read_energy(cfg);
        let write = model.cache_write_energy(cfg);
        let assoc = f64::from(cfg.assoc);
        // Direct-mapped caches have nothing to predict.
        let (cheap, expensive) =
            if cfg.assoc == 1 { (st.probes, 0) } else { (st.mru_hits, st.probes - st.mru_hits) };
        total += cheap as f64 * read / assoc;
        total += expensive as f64 * read;
        total += st.fills as f64 * write;
    }
    total
}

/// rw01 — energy reduction of way prediction, the serial MNM (HMNM4), and
/// both combined, relative to the plain baseline.
pub fn way_prediction_table(params: RunParams) -> Table {
    let hier_cfg = HierarchyConfig::paper_five_level();
    let model = EnergyModel::default();
    let apps = profiles::all();

    let rows = parallel_run(apps, |app| {
        let base = run_app_functional(app, &hier_cfg, &ConfigKind::Baseline, params);
        let e_base = run_energy_nj(&base, &hier_cfg, &model);
        let e_waypred = way_predicted_cache_energy_nj(&base, &hier_cfg, &model);

        let mnm_cfg = match ConfigKind::parse("HMNM4") {
            ConfigKind::Mnm(c) => ConfigKind::Mnm(c.with_placement(MnmPlacement::Serial)),
            _ => unreachable!(),
        };
        let mnm_run = run_app_functional(app, &hier_cfg, &mnm_cfg, params);
        let e_mnm = run_energy_nj(&mnm_run, &hier_cfg, &model);
        // Combined: the MNM removes miss probes, way prediction cheapens
        // the remaining (mostly hit) probes; recompute the way-predicted
        // energy over the MNM run's counters and add the MNM's own cost.
        let mnm_cost = e_mnm - {
            // Cache-only energy of the MNM run.
            let stripped = AppRun { mnm: None, mnm_storage: Vec::new(), ..mnm_run.clone() };
            run_energy_nj(&stripped, &hier_cfg, &model)
        };
        let e_combined = way_predicted_cache_energy_nj(&mnm_run, &hier_cfg, &model) + mnm_cost;

        let red = |e: f64| 100.0 * (e_base - e) / e_base;
        (app.name.clone(), vec![red(e_waypred), red(e_mnm), red(e_combined)])
    });

    let columns = ["way-pred red %", "serial HMNM4 red %", "combined red %"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect::<Vec<_>>();
    let mut table = Table::new(
        "Related work: MRU way prediction vs serial MNM (cache energy)",
        "app",
        &columns,
    );
    for (name, row) in rows {
        table.push_row(&name, row);
    }
    table.push_mean_row();
    table
}

/// rw02 — counting Bloom filters (Peir et al.) vs the paper's bit-slice
/// tables at comparable storage:
///
/// | config | bits |
/// |---|---|
/// | TMNM_10x1 | 3 072 |
/// | BLOOM_10x2 | 3 072 |
/// | TMNM_12x3 | 36 864 |
/// | BLOOM_13x4 | 24 576 |
/// | BLOOM_14x4 | 49 152 |
pub fn bloom_table(params: RunParams) -> Table {
    crate::coverage::coverage_table(
        "Related work: counting Bloom filter vs TMNM coverage [%]",
        &["TMNM_10x1", "BLOOM_10x2", "TMNM_12x3", "BLOOM_13x4", "BLOOM_14x4"],
        params,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bloom_configs_run_end_to_end() {
        let params = RunParams { warmup: 1_000, measure: 10_000 };
        let hier_cfg = HierarchyConfig::paper_five_level();
        let app = profiles::by_name("181.mcf").unwrap();
        let run = run_app_functional(&app, &hier_cfg, &ConfigKind::parse("BLOOM_12x2"), params);
        let cov = run.mnm.unwrap().coverage();
        assert!((0.0..=1.0).contains(&cov));
        assert!(cov > 0.0, "Bloom filter must catch some cold misses on mcf");
    }

    #[test]
    fn way_prediction_saves_on_hit_heavy_apps() {
        let params = RunParams { warmup: 2_000, measure: 20_000 };
        let hier_cfg = HierarchyConfig::paper_five_level();
        let model = EnergyModel::default();
        let app = profiles::by_name("164.gzip").unwrap();
        let run = run_app_functional(&app, &hier_cfg, &ConfigKind::Baseline, params);
        let plain = run_energy_nj(&run, &hier_cfg, &model);
        let predicted = way_predicted_cache_energy_nj(&run, &hier_cfg, &model);
        assert!(predicted < plain, "way prediction must save energy: {predicted} vs {plain}");
    }

    #[test]
    fn mru_hits_never_exceed_hits() {
        let params = RunParams { warmup: 1_000, measure: 15_000 };
        let hier_cfg = HierarchyConfig::paper_five_level();
        let app = profiles::by_name("175.vpr").unwrap();
        let run = run_app_functional(&app, &hier_cfg, &ConfigKind::Baseline, params);
        for st in &run.hierarchy.structures {
            assert!(st.mru_hits <= st.hits);
        }
        // The set-associative levels see real MRU locality.
        let ul5 = run.hierarchy.structures.last().unwrap();
        if ul5.hits > 100 {
            assert!(ul5.mru_hits > 0, "some hits land in the MRU way");
        }
    }

    #[test]
    fn combined_beats_either_alone_on_a_mixed_app() {
        let params = RunParams { warmup: 3_000, measure: 30_000 };
        let t = {
            // Single-app variant of the table for speed.
            let hier_cfg = HierarchyConfig::paper_five_level();
            let model = EnergyModel::default();
            let app = profiles::by_name("300.twolf").unwrap();
            let base = run_app_functional(&app, &hier_cfg, &ConfigKind::Baseline, params);
            let e_base = run_energy_nj(&base, &hier_cfg, &model);
            let e_way = way_predicted_cache_energy_nj(&base, &hier_cfg, &model);
            let mnm_cfg = match ConfigKind::parse("HMNM4") {
                ConfigKind::Mnm(c) => ConfigKind::Mnm(c.with_placement(MnmPlacement::Serial)),
                _ => unreachable!(),
            };
            let mnm_run = run_app_functional(&app, &hier_cfg, &mnm_cfg, params);
            let stripped = AppRun { mnm: None, mnm_storage: Vec::new(), ..mnm_run.clone() };
            let mnm_cost = run_energy_nj(&mnm_run, &hier_cfg, &model)
                - run_energy_nj(&stripped, &hier_cfg, &model);
            let e_combined = way_predicted_cache_energy_nj(&mnm_run, &hier_cfg, &model) + mnm_cost;
            (e_base, e_way, e_combined)
        };
        let (e_base, e_way, e_combined) = t;
        assert!(e_combined < e_way, "combining must add the MNM's miss savings");
        assert!(e_combined < e_base);
    }
}
