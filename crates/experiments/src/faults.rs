//! Deterministic fault injection for supervised experiment runs.
//!
//! A [`FaultPlan`] — parsed from the `JSN_FAULT` environment variable —
//! decides, purely as a function of `(seed, fault kind, site)`, whether a
//! fault fires at a given site. Sites are stable string identities: job
//! names for panics and stalls, artifact file names for torn writes, and
//! `{filter}:{generator}:{seed}` scenario labels for filter-state bit
//! flips. Re-running with the same plan injects exactly the same faults,
//! which is what makes the recovery tests and the CI fault-smoke job
//! reproducible.
//!
//! Faults are deliberately *one-shot* per site: panics and stalls fire only
//! on a job's first attempt, and a torn write fires only on the first write
//! of a given file. One retry therefore deterministically recovers, letting
//! the tests assert "every injected fault recovered" rather than "the run
//! eventually gave up".
//!
//! The plan lives in process-global state (`install`) because the injection
//! points are buried under the supervisor's job closures and the atomic
//! write helper, far from anywhere a handle could be threaded through.
//! Everything injected is logged so the run manifest can report it.

use std::sync::Mutex;

use crate::json::Json;

/// Environment variable holding the fault plan.
pub const ENV_FAULT: &str = "JSN_FAULT";

/// Default stall duration when a `stall` clause gives no `:ms` suffix —
/// comfortably past any reasonable `--deadline`.
const DEFAULT_STALL_MS: u64 = 30_000;

/// The kinds of fault the plan can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the job closure (supervisor must isolate + retry).
    Panic,
    /// Sleep past the job deadline (watchdog must time the attempt out).
    Stall,
    /// Abort an artifact write halfway (atomic writer must leave no trace).
    Torn,
    /// Flip a bit of MNM filter state (soundness checker must catch it).
    Flip,
}

impl FaultKind {
    /// Stable name, used both for selection hashing and reporting.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Stall => "stall",
            FaultKind::Torn => "torn",
            FaultKind::Flip => "flip",
        }
    }
}

/// How a fault kind chooses its victim sites.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Select {
    /// Never fires (kind absent from the plan).
    Never,
    /// Fires at roughly `m` out of `n` sites, chosen by seeded hash.
    Ratio(u64, u64),
    /// Fires at exactly one named site.
    Site(String),
}

impl Select {
    fn selects(&self, seed: u64, kind: FaultKind, site: &str) -> bool {
        match self {
            Select::Never => false,
            Select::Site(s) => s == site,
            Select::Ratio(m, n) => {
                let h = splitmix64(seed ^ fnv1a(kind.name()) ^ fnv1a(site));
                h % n < *m
            }
        }
    }

    fn describe(&self) -> String {
        match self {
            Select::Never => "off".to_owned(),
            Select::Ratio(m, n) => format!("{m}/{n}"),
            Select::Site(s) => format!("@{s}"),
        }
    }
}

/// A parsed `JSN_FAULT` plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    panic: Select,
    stall: Select,
    stall_ms: u64,
    torn: Select,
    flip: Select,
}

/// FNV-1a over a string, for site/kind hashing.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The splitmix64 finalizer: one well-mixed value per input.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Parse a plan like `seed=42,panic=1/8,stall=1/6:250,torn=1/2,flip=1/4`.
    ///
    /// Each fault clause takes either an `m/n` ratio (fire at ~m of n
    /// sites) or a literal site name (fire exactly there). `stall` accepts
    /// a trailing `:ms` duration. `seed` defaults to 0.
    ///
    /// Parsing is strict: unknown or duplicate clauses, selectors that
    /// look like ratios but are not, and malformed stall durations are all
    /// hard errors. A long-running process armed with a subtly-wrong plan
    /// would otherwise run for hours with faults that silently never fire.
    pub fn parse(input: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan {
            seed: 0,
            panic: Select::Never,
            stall: Select::Never,
            stall_ms: DEFAULT_STALL_MS,
            torn: Select::Never,
            flip: Select::Never,
        };
        let mut seen: Vec<&str> = Vec::new();
        for clause in input.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("{ENV_FAULT}: clause `{clause}` is not `key=value`"))?;
            let key = key.trim();
            if seen.contains(&key) {
                return Err(format!(
                    "{ENV_FAULT}: duplicate `{key}` clause (the first would be silently ignored)"
                ));
            }
            match key {
                "seed" => {
                    plan.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("{ENV_FAULT}: bad seed `{value}`"))?;
                }
                "panic" => plan.panic = parse_select(value)?,
                "torn" => plan.torn = parse_select(value)?,
                "flip" => plan.flip = parse_select(value)?,
                "stall" => {
                    // `sel:ms` — the duration is the numeric tail after the
                    // LAST colon; stall sites are job names, which never
                    // contain one, so a colon whose tail is not a number is
                    // a typo (`stall=1/6:25x`), not a site name.
                    let (sel, ms) = match value.rsplit_once(':') {
                        Some((head, tail)) => {
                            let ms = tail.trim().parse::<u64>().map_err(|_| {
                                format!(
                                    "{ENV_FAULT}: stall duration `{tail}` is not a \
                                     millisecond count"
                                )
                            })?;
                            (head, ms)
                        }
                        None => (value, DEFAULT_STALL_MS),
                    };
                    plan.stall = parse_select(sel)?;
                    plan.stall_ms = ms;
                }
                other => return Err(format!("{ENV_FAULT}: unknown clause `{other}`")),
            }
            seen.push(key);
        }
        Ok(plan)
    }

    /// Read the plan from `JSN_FAULT`; `Ok(None)` when unset or empty.
    /// A value that is set but unreadable (non-unicode) or malformed is an
    /// error — never silently ignored.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        match std::env::var(ENV_FAULT) {
            Ok(v) if !v.trim().is_empty() => FaultPlan::parse(&v).map(Some),
            Ok(_) => Ok(None),
            Err(std::env::VarError::NotPresent) => Ok(None),
            Err(std::env::VarError::NotUnicode(_)) => {
                Err(format!("{ENV_FAULT}: value is not valid unicode"))
            }
        }
    }

    /// Whether `kind` fires at `site` under this plan.
    pub fn selects(&self, kind: FaultKind, site: &str) -> bool {
        let sel = match kind {
            FaultKind::Panic => &self.panic,
            FaultKind::Stall => &self.stall,
            FaultKind::Torn => &self.torn,
            FaultKind::Flip => &self.flip,
        };
        sel.selects(self.seed, kind, site)
    }

    /// One-line human description for run banners.
    pub fn summary(&self) -> String {
        format!(
            "fault plan: seed={} panic={} stall={} ({}ms) torn={} flip={}",
            self.seed,
            self.panic.describe(),
            self.stall.describe(),
            self.stall_ms,
            self.torn.describe(),
            self.flip.describe(),
        )
    }
}

fn parse_select(value: &str) -> Result<Select, String> {
    let value = value.trim();
    if value.is_empty() {
        return Err(format!("{ENV_FAULT}: empty fault selector"));
    }
    // Site names (job names, artifact file names, scenario labels) never
    // contain `/`, so a slash means the user meant a ratio; a malformed
    // one (`1/2x`, `a/b`) must not silently become a never-matching site.
    if let Some((m, n)) = value.split_once('/') {
        let m = m
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("{ENV_FAULT}: ratio `{value}` has a bad numerator"))?;
        let n = n
            .trim()
            .parse::<u64>()
            .map_err(|_| format!("{ENV_FAULT}: ratio `{value}` has a bad denominator"))?;
        if n == 0 {
            return Err(format!("{ENV_FAULT}: ratio `{value}` has zero denominator"));
        }
        return Ok(Select::Ratio(m, n));
    }
    Ok(Select::Site(value.to_owned()))
}

/// One fault the plan actually fired, for the run manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// Fault kind name (`panic` / `stall` / `torn` / `flip`).
    pub kind: &'static str,
    /// The site it fired at.
    pub site: String,
}

impl InjectedFault {
    /// JSON form for the manifest's `injected_faults` array.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![("kind", Json::str(self.kind)), ("site", Json::str(&self.site))])
    }
}

static ACTIVE: Mutex<Option<FaultPlan>> = Mutex::new(None);
static INJECTED: Mutex<Vec<InjectedFault>> = Mutex::new(Vec::new());
static TORN_FIRED: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Install (or with `None`, clear) the process-wide plan. Resets the
/// injected-fault log and the torn-write once-per-site registry.
pub fn install(plan: Option<FaultPlan>) {
    *ACTIVE.lock().unwrap() = plan;
    INJECTED.lock().unwrap().clear();
    TORN_FIRED.lock().unwrap().clear();
}

/// The currently installed plan, if any.
pub fn active() -> Option<FaultPlan> {
    ACTIVE.lock().unwrap().clone()
}

/// Everything injected since the last `install`.
pub fn injected() -> Vec<InjectedFault> {
    INJECTED.lock().unwrap().clone()
}

fn record(kind: FaultKind, site: &str) {
    INJECTED.lock().unwrap().push(InjectedFault { kind: kind.name(), site: site.to_owned() });
}

/// Hook run at the top of every supervised job attempt. Fires stalls and
/// panics — on the first attempt only, so a single retry recovers.
pub fn before_job(site: &str, attempt: u32) {
    if attempt != 0 {
        return;
    }
    let Some(plan) = active() else { return };
    if plan.selects(FaultKind::Stall, site) {
        record(FaultKind::Stall, site);
        eprintln!("fault: stalling job `{site}` for {}ms", plan.stall_ms);
        std::thread::sleep(std::time::Duration::from_millis(plan.stall_ms));
    }
    if plan.selects(FaultKind::Panic, site) {
        record(FaultKind::Panic, site);
        eprintln!("fault: panicking job `{site}`");
        panic!("injected fault: panic at `{site}`");
    }
}

/// Whether the atomic writer should tear THIS write of `site` (a file
/// name). Fires at most once per site, so the retry succeeds.
pub fn torn_write(site: &str) -> bool {
    let Some(plan) = active() else { return false };
    if !plan.selects(FaultKind::Torn, site) {
        return false;
    }
    let mut fired = TORN_FIRED.lock().unwrap();
    if fired.iter().any(|s| s == site) {
        return false;
    }
    fired.push(site.to_owned());
    drop(fired);
    record(FaultKind::Torn, site);
    true
}

/// If the plan flips filter state for this scenario site, the deterministic
/// seed driving the corruption search; `None` otherwise.
pub fn flip_seed(site: &str) -> Option<u64> {
    let plan = active()?;
    if !plan.selects(FaultKind::Flip, site) {
        return None;
    }
    record(FaultKind::Flip, site);
    Some(splitmix64(plan.seed ^ fnv1a("flip-seed") ^ fnv1a(site)))
}

/// Serializes tests (across this crate) that mutate the process-global
/// plan — `cargo test` runs unit tests of one binary concurrently.
#[cfg(test)]
pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let p = FaultPlan::parse("seed=42, panic=1/8, stall=1/6:250, torn=1/2, flip=1/4").unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.panic, Select::Ratio(1, 8));
        assert_eq!(p.stall, Select::Ratio(1, 6));
        assert_eq!(p.stall_ms, 250);
        assert_eq!(p.torn, Select::Ratio(1, 2));
        assert_eq!(p.flip, Select::Ratio(1, 4));
        assert!(p.summary().contains("panic=1/8"));
    }

    #[test]
    fn site_selectors_hit_exactly_one_site() {
        let p = FaultPlan::parse("panic=fig15_execution_reduction,stall=table2:90").unwrap();
        assert!(p.selects(FaultKind::Panic, "fig15_execution_reduction"));
        assert!(!p.selects(FaultKind::Panic, "fig16_power_reduction"));
        assert!(p.selects(FaultKind::Stall, "table2"));
        assert_eq!(p.stall_ms, 90);
    }

    #[test]
    fn selection_is_deterministic_and_kind_separated() {
        let p = FaultPlan::parse("seed=7,panic=1/2,torn=1/2").unwrap();
        let sites = ["a", "b", "c", "d", "e", "f", "g", "h"];
        let panics: Vec<bool> = sites.iter().map(|s| p.selects(FaultKind::Panic, s)).collect();
        let torns: Vec<bool> = sites.iter().map(|s| p.selects(FaultKind::Torn, s)).collect();
        // Same plan, same answers.
        let again: Vec<bool> = sites.iter().map(|s| p.selects(FaultKind::Panic, s)).collect();
        assert_eq!(panics, again);
        // Different kinds hash differently (overwhelmingly likely to differ
        // across 8 sites at ratio 1/2).
        assert_ne!(panics, torns);
        // A 1/2 ratio hits a nontrivial subset.
        assert!(panics.iter().any(|&b| b) && panics.iter().any(|&b| !b));
    }

    #[test]
    fn seed_changes_the_selection() {
        let a = FaultPlan::parse("seed=1,panic=1/2").unwrap();
        let b = FaultPlan::parse("seed=2,panic=1/2").unwrap();
        let sites: Vec<String> = (0..64).map(|i| format!("job{i}")).collect();
        let pick = |p: &FaultPlan| -> Vec<bool> {
            sites.iter().map(|s| p.selects(FaultKind::Panic, s)).collect()
        };
        assert_ne!(pick(&a), pick(&b));
    }

    #[test]
    fn rejects_malformed_plans() {
        for bad in ["panic", "wat=1/2", "seed=x", "panic=1/0", "torn="] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    /// Misconfigurations that used to silently degrade into selectors
    /// that never fire must now be hard parse errors (a long-running
    /// server would otherwise discover the typo hours in, as a no-op).
    #[test]
    fn rejects_silently_inert_plans() {
        for bad in [
            "panic=1/2x",          // almost-ratio became Site("1/2x")
            "torn=a/b",            // slash always means ratio
            "stall=1/6:25x",       // malformed ms tail became a site name
            "stall=1/6:",          // empty ms tail likewise
            "panic=1/4,panic=1/2", // duplicate clause: first one ignored
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
        // The well-formed shapes all still parse.
        assert!(FaultPlan::parse("stall=fig12_tmnm_coverage").is_ok());
        assert!(FaultPlan::parse("stall=fig12_tmnm_coverage:90").is_ok());
        assert!(FaultPlan::parse("stall=1/6:250,panic=1/8").is_ok());
    }

    #[test]
    fn empty_plan_never_fires() {
        let p = FaultPlan::parse("").unwrap();
        for kind in [FaultKind::Panic, FaultKind::Stall, FaultKind::Torn, FaultKind::Flip] {
            assert!(!p.selects(kind, "anything"));
        }
    }

    #[test]
    fn torn_write_fires_once_per_site() {
        let _guard = TEST_LOCK.lock().unwrap();
        install(Some(FaultPlan::parse("torn=1/1").unwrap()));
        assert!(torn_write("all_experiments.json"));
        assert!(!torn_write("all_experiments.json"), "second write must succeed");
        assert!(torn_write("other.json"), "distinct site fires independently");
        let log = injected();
        assert_eq!(log.len(), 2);
        assert!(log.iter().all(|f| f.kind == "torn"));
        install(None);
        assert!(!torn_write("all_experiments.json"));
        assert!(injected().is_empty(), "install clears the log");
    }

    #[test]
    fn before_job_only_fires_on_first_attempt() {
        let _guard = TEST_LOCK.lock().unwrap();
        install(Some(FaultPlan::parse("panic=boom").unwrap()));
        // Attempt 1+ is exempt: must not panic.
        before_job("boom", 1);
        let caught = std::panic::catch_unwind(|| before_job("boom", 0));
        assert!(caught.is_err(), "attempt 0 must panic");
        assert_eq!(injected().len(), 1);
        install(None);
    }

    #[test]
    fn flip_seed_is_stable_per_site() {
        let _guard = TEST_LOCK.lock().unwrap();
        install(Some(FaultPlan::parse("seed=3,flip=1/1").unwrap()));
        let a = flip_seed("TMNM_12x1:aliasing:0x10");
        let b = flip_seed("TMNM_12x1:aliasing:0x10");
        let c = flip_seed("SMNM_13x2:aliasing:0x10");
        assert!(a.is_some());
        assert_eq!(a, b, "same site, same seed");
        assert_ne!(a, c, "different site, different seed");
        install(None);
        assert_eq!(flip_seed("TMNM_12x1:aliasing:0x10"), None);
    }
}
