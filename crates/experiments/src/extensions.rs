//! Extension experiments for the paper's §4.5 future-work directions:
//! TLB filtering and scheduler use of early miss information — plus the §2
//! distributed-MNM placement.

use cache_sim::{HierarchyConfig, TlbEvent, TwoLevelTlb};
use mnm_core::{MissFilter, MnmConfig, MnmPlacement, TmnmConfig, TmnmFilter};
use ooo_model::{CpuConfig, LoadSpeculation};
use power_model::EnergyModel;
use trace_synth::{profiles, Program};

use crate::params::RunParams;
use crate::report::Table;
use crate::runner::{parallel_run, run_app_timed, ConfigKind};

/// ext01 — TLB filtering (paper §4.5: "reduce the power consumption of
/// other caching structures such as the TLBs").
///
/// A TMNM-style counter filter, keyed on page numbers and fed by the L2
/// TLB's placement/replacement events, skips L2 TLB lookups that are sure
/// to miss. Reports the fraction of L2 lookups eliminated, the change in
/// mean translation latency, and the net TLB energy reduction.
pub fn tlb_filter_table(params: RunParams) -> Table {
    let apps = profiles::all();
    let model = EnergyModel::default();

    let rows = parallel_run(apps, |app| {
        // Filter: one 4096-counter table over the low page-number bits —
        // large enough to track multi-MB page working sets, ~60% of an L2
        // TLB probe's energy per query.
        let run = |filtered: bool| -> (f64, f64, f64) {
            let mut tlb = TwoLevelTlb::typical();
            let mut filter = TmnmFilter::new(TmnmConfig::new(12, 1));
            let mut events: Vec<TlbEvent> = Vec::new();
            let mut done = 0u64;
            for instr in Program::new(app.clone()) {
                let Some(addr) = instr.data_addr() else {
                    continue;
                };
                let page = tlb.page_of(addr);
                let bypass = filtered && filter.is_definite_miss(page);
                events.clear();
                tlb.translate(addr, bypass, &mut events);
                for ev in &events {
                    match *ev {
                        TlbEvent::L2Placed(p) => filter.on_place(p),
                        TlbEvent::L2Replaced(p) => filter.on_replace(p),
                    }
                }
                done += 1;
                if done >= params.measure {
                    break;
                }
            }
            let (_, l2, _) = tlb.stats();
            // Energy: L2 TLB entry ≈ 64 bits (tag + frame + perms);
            // 512 entries. The filter is a small counter array.
            let l2_probe_nj = model.small_array_energy(512 * 64);
            let filter_nj = model.small_array_energy(filter.storage_bits());
            let energy = l2.probes as f64 * l2_probe_nj
                + if filtered { (l2.probes + l2.bypasses) as f64 * filter_nj } else { 0.0 };
            (
                l2.bypasses as f64 / (l2.probes + l2.bypasses).max(1) as f64,
                tlb.mean_latency(),
                energy,
            )
        };
        let (_, base_lat, base_energy) = run(false);
        let (bypassed_frac, filt_lat, filt_energy) = run(true);
        (
            app.name.clone(),
            vec![
                bypassed_frac * 100.0,
                base_lat,
                filt_lat,
                100.0 * (base_energy - filt_energy) / base_energy,
            ],
        )
    });

    let columns =
        ["L2 lookups skipped %", "base lat [cyc]", "filtered lat [cyc]", "TLB energy red %"]
            .iter()
            .map(|s| (*s).to_owned())
            .collect::<Vec<_>>();
    let mut table = Table::new("Extension 1 (§4.5): TLB miss filtering", "app", &columns);
    for (name, row) in rows {
        table.push_row(&name, row);
    }
    table.push_mean_row();
    table
}

/// ext02 — scheduler use of miss information (paper §4.5: hold dependents
/// of loads known to miss instead of speculatively waking and replaying
/// them).
///
/// All configurations run under the replay scheduler; the reductions are
/// relative to the unfiltered baseline *with* replays, so they include
/// both the Figure 15 latency effect and the avoided replays.
pub fn scheduler_replay_table(params: RunParams) -> Table {
    let hier_cfg = HierarchyConfig::paper_five_level();
    let cpu_cfg =
        CpuConfig::paper_eight_way().with_load_speculation(LoadSpeculation::Replay { penalty: 6 });
    let apps = profiles::all();

    let labels = ["Baseline", "HMNM4", "Perfect"];
    let jobs: Vec<(usize, usize)> =
        (0..apps.len()).flat_map(|a| (0..labels.len()).map(move |c| (a, c))).collect();
    let outcomes = parallel_run(jobs, |&(a, c)| {
        let run =
            run_app_timed(&apps[a], &hier_cfg, &cpu_cfg, &ConfigKind::parse(labels[c]), params);
        (run.cpu.cycles as f64, run.cpu.replays as f64)
    });

    let columns = ["HMNM4 red %", "Perfect red %", "replays/1k base", "replays/1k HMNM4"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect::<Vec<_>>();
    let mut table = Table::new("Extension 2 (§4.5): scheduler replay avoidance", "app", &columns);
    let w = labels.len();
    for (a, app) in apps.iter().enumerate() {
        let (base_cycles, base_replays) = outcomes[a * w];
        let (hmnm_cycles, hmnm_replays) = outcomes[a * w + 1];
        let (perfect_cycles, _) = outcomes[a * w + 2];
        let per_k = 1000.0 / params.measure as f64;
        table.push_row(
            &app.name,
            vec![
                100.0 * (base_cycles - hmnm_cycles) / base_cycles,
                100.0 * (base_cycles - perfect_cycles) / base_cycles,
                base_replays * per_k,
                hmnm_replays * per_k,
            ],
        );
    }
    table.push_mean_row();
    table
}

/// abl06 — distributed MNM placement (paper §2's third configuration):
/// per-level consultation. Compares cycle reduction and MNM query energy
/// of HMNM4 under the three placements on the full suite.
pub fn distributed_table(params: RunParams) -> Table {
    let hier_cfg = HierarchyConfig::paper_five_level();
    let cpu_cfg = CpuConfig::paper_eight_way();
    let apps = profiles::all();
    let placements = [MnmPlacement::Parallel, MnmPlacement::Serial, MnmPlacement::Distributed];

    let jobs: Vec<(usize, usize)> =
        (0..apps.len()).flat_map(|a| (0..=placements.len()).map(move |p| (a, p))).collect();
    let cycles = parallel_run(jobs, |&(a, p)| {
        let kind = if p == 0 {
            ConfigKind::Baseline
        } else {
            ConfigKind::Mnm(MnmConfig::hmnm(4).with_placement(placements[p - 1]))
        };
        run_app_timed(&apps[a], &hier_cfg, &cpu_cfg, &kind, params).cpu.cycles as f64
    });

    let columns = ["parallel red %", "serial red %", "distributed red %"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect::<Vec<_>>();
    let mut table = Table::new("Ablation 6: HMNM4 cycle reduction by placement", "app", &columns);
    let w = placements.len() + 1;
    for (a, app) in apps.iter().enumerate() {
        let base = cycles[a * w];
        let row: Vec<f64> = (1..w).map(|p| 100.0 * (base - cycles[a * w + p]) / base).collect();
        table.push_row(&app.name, row);
    }
    table.push_mean_row();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tlb_filter_is_sound_and_saves_lookups() {
        // One app, inline: the run itself debug-asserts bypass soundness.
        let params = RunParams { warmup: 0, measure: 30_000 };
        let t = tlb_filter_table_single("181.mcf", params);
        assert!(t.0 > 0.0, "some L2 TLB lookups must be skipped on mcf");
    }

    /// Helper exposing the single-app inner loop for tests.
    fn tlb_filter_table_single(app: &str, params: RunParams) -> (f64,) {
        let profile = profiles::by_name(app).unwrap();
        let mut tlb = TwoLevelTlb::typical();
        let mut filter = TmnmFilter::new(TmnmConfig::new(10, 3));
        let mut events: Vec<TlbEvent> = Vec::new();
        let mut done = 0u64;
        for instr in Program::new(profile) {
            let Some(addr) = instr.data_addr() else { continue };
            let page = tlb.page_of(addr);
            let bypass = filter.is_definite_miss(page);
            events.clear();
            tlb.translate(addr, bypass, &mut events);
            for ev in &events {
                match *ev {
                    TlbEvent::L2Placed(p) => filter.on_place(p),
                    TlbEvent::L2Replaced(p) => filter.on_replace(p),
                }
            }
            done += 1;
            if done >= params.measure {
                break;
            }
        }
        let (_, l2, _) = tlb.stats();
        (l2.bypasses as f64,)
    }

    #[test]
    fn replay_scheduler_rewards_mnm_knowledge() {
        let params = RunParams { warmup: 2_000, measure: 25_000 };
        let hier_cfg = HierarchyConfig::paper_five_level();
        let cpu = CpuConfig::paper_eight_way()
            .with_load_speculation(LoadSpeculation::Replay { penalty: 6 });
        let app = profiles::by_name("181.mcf").unwrap();
        let base = run_app_timed(&app, &hier_cfg, &cpu, &ConfigKind::Baseline, params);
        let hmnm = run_app_timed(&app, &hier_cfg, &cpu, &ConfigKind::parse("HMNM4"), params);
        let perfect = run_app_timed(&app, &hier_cfg, &cpu, &ConfigKind::Perfect, params);
        assert!(base.cpu.replays > 0, "mcf must replay under speculation");
        assert!(hmnm.cpu.replays < base.cpu.replays, "MNM knowledge avoids replays");
        assert_eq!(perfect.cpu.replays, 0, "the oracle never replays");
        assert!(hmnm.cpu.cycles <= base.cpu.cycles);
        assert!(perfect.cpu.cycles <= hmnm.cpu.cycles);
    }

    #[test]
    fn distributed_placement_pays_per_level_delay() {
        use cache_sim::{Access, Hierarchy};
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut mnm = mnm_core::Mnm::new(
            &hier,
            MnmConfig::parse("TMNM_10x1").unwrap().with_placement(MnmPlacement::Distributed),
        );
        // Cold access: everything flagged, 4 levels consulted.
        let r = mnm.run_access(&mut hier, Access::load(0x9000));
        assert_eq!(mnm.adjusted_latency(&r), r.latency + 2 * 4);
        // Warm access: L1 hit, no consultation beyond L1.
        let r = mnm.run_access(&mut hier, Access::load(0x9000));
        assert_eq!(mnm.adjusted_latency(&r), r.latency);
    }
}
