//! Cache power-reduction experiment (paper §4.4, Figure 16).
//!
//! The MNM structures are placed **serially** (accessed only after an L1
//! miss). The reduction compares, per application:
//!
//! * baseline: cache probe + fill energy with no filtering;
//! * with MNM: the same workload with flagged probes bypassed (their probe
//!   energy saved) plus the MNM's own query/update energy;
//! * perfect: all bypassable miss probes saved, zero MNM energy.

use cache_sim::HierarchyConfig;
use mnm_core::MnmPlacement;
use power_model::EnergyModel;
use trace_synth::profiles;

use crate::params::RunParams;
use crate::report::Table;
use crate::runner::{parallel_run, run_app_functional, AppRun, ConfigKind};
use crate::FIG15_CONFIGS;

/// Total cache-system energy of a run, including MNM energy when present.
pub fn run_energy_nj(run: &AppRun, depth_cfg: &HierarchyConfig, model: &EnergyModel) -> f64 {
    // Cache probe + fill energy from recorded counters.
    let mut configs = Vec::new();
    for level in &depth_cfg.levels {
        for c in level.configs() {
            configs.push(c.clone());
        }
    }
    let mut cache_nj = 0.0;
    for (st, c) in run.hierarchy.structures.iter().zip(&configs) {
        cache_nj += st.probes as f64 * model.cache_read_energy(c)
            + st.fills as f64 * model.cache_write_energy(c);
    }

    // MNM energy (serial: queried once per L1-missing access).
    let mnm_nj = match (&run.mnm, run.mnm_placement) {
        (Some(stats), Some(placement)) => {
            let per_query: f64 = run
                .mnm_storage
                .iter()
                .map(|c| {
                    if let Some(rest) = c.label.strip_prefix("SMNM_") {
                        let width: u32 =
                            rest.split('x').next().and_then(|w| w.parse().ok()).unwrap_or(10);
                        model.smnm_checker_energy(c.bits, width)
                    } else {
                        model.small_array_energy(c.bits)
                    }
                })
                .sum();
            let updates: u64 = stats.slots.iter().map(|s| s.updates).sum();
            let per_update = per_query / run.mnm_storage.len().max(1) as f64;
            let query_nj = match placement {
                MnmPlacement::Parallel => stats.accesses as f64 * per_query,
                MnmPlacement::Serial => run.l1_miss_accesses() as f64 * per_query,
                MnmPlacement::Distributed => {
                    // Exact per-level accounting: each guarded structure's
                    // filters are consulted once per reference arriving at
                    // that structure; the shared RMNM is consulted at the
                    // first guarded level (i.e. once per L1 miss).
                    let refs_of = |name: &str| -> f64 {
                        run.structure_names
                            .iter()
                            .position(|n| n == name)
                            .map(|i| {
                                let st = run.hierarchy.structures[i];
                                (st.probes + st.bypasses) as f64
                            })
                            .unwrap_or(0.0)
                    };
                    run.mnm_storage
                        .iter()
                        .map(|c| {
                            let e = if let Some(rest) = c.label.strip_prefix("SMNM_") {
                                let width: u32 = rest
                                    .split('x')
                                    .next()
                                    .and_then(|w| w.parse().ok())
                                    .unwrap_or(10);
                                model.smnm_checker_energy(c.bits, width)
                            } else {
                                model.small_array_energy(c.bits)
                            };
                            let consultations = if c.structure == "shared" {
                                run.l1_miss_accesses() as f64
                            } else {
                                refs_of(&c.structure)
                            };
                            e * consultations
                        })
                        .sum()
                }
            };
            query_nj + updates as f64 * per_update
        }
        _ => 0.0,
    };

    cache_nj + mnm_nj
}

/// Figure 16: percentage reduction in cache power of the serial MNM
/// configurations (and the perfect MNM) relative to the baseline.
pub fn power_reduction_table(params: RunParams) -> Table {
    let hier_cfg = HierarchyConfig::paper_five_level();
    let apps = profiles::all();
    let model = EnergyModel::default();

    let mut labels: Vec<String> = vec!["Baseline".to_owned()];
    labels.extend(FIG15_CONFIGS.iter().map(|s| (*s).to_owned()));
    labels.push("Perfect".to_owned());

    let jobs: Vec<(usize, usize)> =
        (0..apps.len()).flat_map(|a| (0..labels.len()).map(move |c| (a, c))).collect();
    let energies = parallel_run(jobs, |&(a, c)| {
        let kind = match ConfigKind::parse(&labels[c]) {
            ConfigKind::Mnm(cfg) => ConfigKind::Mnm(cfg.with_placement(MnmPlacement::Serial)),
            other => other,
        };
        let run = run_app_functional(&apps[a], &hier_cfg, &kind, params);
        run_energy_nj(&run, &hier_cfg, &model)
    });

    let columns: Vec<String> = labels[1..].to_vec();
    let mut table =
        Table::new("Figure 16: reduction in cache power consumption [%]", "app", &columns);
    let w = labels.len();
    for (a, app) in apps.iter().enumerate() {
        let base = energies[a * w];
        let row: Vec<f64> = (1..w).map(|c| 100.0 * (base - energies[a * w + c]) / base).collect();
        table.push_row(&app.name, row);
    }
    table.push_mean_row();
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_saves_the_most_energy() {
        let params = RunParams { warmup: 3_000, measure: 25_000 };
        let hier_cfg = HierarchyConfig::paper_five_level();
        let model = EnergyModel::default();
        let app = profiles::by_name("181.mcf").unwrap();

        let base = run_app_functional(&app, &hier_cfg, &ConfigKind::Baseline, params);
        let e_base = run_energy_nj(&base, &hier_cfg, &model);

        let hmnm_cfg = match ConfigKind::parse("HMNM4") {
            ConfigKind::Mnm(c) => ConfigKind::Mnm(c.with_placement(MnmPlacement::Serial)),
            _ => unreachable!(),
        };
        let hmnm = run_app_functional(&app, &hier_cfg, &hmnm_cfg, params);
        let e_hmnm = run_energy_nj(&hmnm, &hier_cfg, &model);

        let perfect = run_app_functional(&app, &hier_cfg, &ConfigKind::Perfect, params);
        let e_perfect = run_energy_nj(&perfect, &hier_cfg, &model);

        assert!(e_perfect < e_base, "perfect must save energy: {e_perfect} vs {e_base}");
        assert!(e_perfect <= e_hmnm, "perfect bounds the hybrid: {e_perfect} vs {e_hmnm}");
    }

    #[test]
    fn mnm_energy_is_charged() {
        // Same cache savings, but the real machine must pay its own way:
        // energy(with mnm counters) > energy(same counters, mnm stripped).
        let params = RunParams { warmup: 2_000, measure: 15_000 };
        let hier_cfg = HierarchyConfig::paper_five_level();
        let model = EnergyModel::default();
        let app = profiles::by_name("164.gzip").unwrap();
        let cfg = match ConfigKind::parse("HMNM2") {
            ConfigKind::Mnm(c) => ConfigKind::Mnm(c.with_placement(MnmPlacement::Serial)),
            _ => unreachable!(),
        };
        let run = run_app_functional(&app, &hier_cfg, &cfg, params);
        let with_mnm = run_energy_nj(&run, &hier_cfg, &model);
        let mut stripped = run.clone();
        stripped.mnm = None;
        stripped.mnm_storage.clear();
        let without = run_energy_nj(&stripped, &hier_cfg, &model);
        assert!(with_mnm > without);
    }
}
