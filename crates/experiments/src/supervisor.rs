//! Job supervision: panic isolation, wall-clock deadlines, bounded retries.
//!
//! [`supervise`] runs one experiment job on a dedicated thread under
//! `catch_unwind`. A panicking job is caught and retried; a job that blows
//! its deadline is abandoned (Rust offers no way to kill a thread, so the
//! stalled thread is leaked — detached — and a fresh attempt starts) and
//! retried. Every attempt is recorded in a [`JobReport`] that flows into
//! the run manifest and the checkpoint journal, so a post-mortem can see
//! exactly what happened to every job of a sweep.
//!
//! Leaked stalled threads may still be running while their retry executes;
//! that is deliberate. Experiment jobs are pure functions of their
//! parameters plus append-only telemetry, and result equality is judged on
//! the (deterministic) tables alone, so a zombie's late writes are
//! harmless noise at worst.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::faults;
use crate::json::Json;

/// Supervision policy for a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Wall-clock budget per attempt; `None` waits forever.
    pub deadline: Option<Duration>,
    /// Retries after the first attempt (so `retries = 2` allows 3 attempts).
    pub retries: u32,
    /// Base backoff before a retry; doubles per subsequent retry.
    pub backoff: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig { deadline: None, retries: 2, backoff: Duration::from_millis(50) }
    }
}

/// How one attempt of a job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The job returned a value.
    Ok,
    /// The job panicked; the payload message is kept for the report.
    Panicked(String),
    /// The job exceeded the deadline and was abandoned.
    TimedOut,
}

impl AttemptOutcome {
    /// Stable label used in journals and manifests.
    pub fn label(&self) -> &'static str {
        match self {
            AttemptOutcome::Ok => "ok",
            AttemptOutcome::Panicked(_) => "panicked",
            AttemptOutcome::TimedOut => "timed-out",
        }
    }
}

/// One attempt: outcome plus wall time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptRecord {
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
    /// Wall time of the attempt in milliseconds.
    pub wall_ms: u64,
}

/// The supervisor's record of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// Job name (also the fault-injection site).
    pub name: String,
    /// Every attempt, in order.
    pub attempts: Vec<AttemptRecord>,
}

impl JobReport {
    /// Whether the job eventually succeeded.
    pub fn ok(&self) -> bool {
        matches!(self.attempts.last(), Some(a) if a.outcome == AttemptOutcome::Ok)
    }

    /// `"ok"` or `"exhausted-retries"`.
    pub fn verdict(&self) -> &'static str {
        if self.ok() {
            "ok"
        } else {
            "exhausted-retries"
        }
    }

    /// JSON form for journals and manifests.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("job", Json::str(&self.name)),
            ("verdict", Json::str(self.verdict())),
            (
                "attempts",
                Json::Arr(
                    self.attempts
                        .iter()
                        .map(|a| {
                            let mut pairs = vec![
                                ("outcome", Json::str(a.outcome.label())),
                                ("wall_ms", Json::num(a.wall_ms as f64)),
                            ];
                            if let AttemptOutcome::Panicked(msg) = &a.outcome {
                                pairs.push(("message", Json::str(msg)));
                            }
                            Json::obj(pairs)
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse the JSON form back (journal resume).
    pub fn from_json(v: &Json) -> Result<JobReport, String> {
        let name =
            v.get("job").and_then(Json::as_str).ok_or("job report: missing `job`")?.to_owned();
        let mut attempts = Vec::new();
        for a in v.get("attempts").and_then(Json::as_arr).ok_or("job report: missing `attempts`")? {
            let outcome = match a.get("outcome").and_then(Json::as_str) {
                Some("ok") => AttemptOutcome::Ok,
                Some("timed-out") => AttemptOutcome::TimedOut,
                Some("panicked") => AttemptOutcome::Panicked(
                    a.get("message").and_then(Json::as_str).unwrap_or("").to_owned(),
                ),
                other => return Err(format!("job report: bad outcome {other:?}")),
            };
            let wall_ms =
                a.get("wall_ms").and_then(Json::as_f64).ok_or("job report: missing `wall_ms`")?
                    as u64;
            attempts.push(AttemptRecord { outcome, wall_ms });
        }
        Ok(JobReport { name, attempts })
    }
}

/// Extract a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Run `job` under supervision. Returns the job's value (if any attempt
/// succeeded) plus the full attempt record.
///
/// The job runs on its own thread so a deadline can abandon it; it is
/// `Fn` (not `FnOnce`) because retries re-invoke it.
pub fn supervise<T, F>(name: &str, cfg: SupervisorConfig, job: F) -> (Option<T>, JobReport)
where
    T: Send + 'static,
    F: Fn() -> T + Send + Sync + 'static,
{
    let job = Arc::new(job);
    let mut report = JobReport { name: name.to_owned(), attempts: Vec::new() };

    for attempt in 0..=cfg.retries {
        if attempt > 0 {
            // Deterministic exponential backoff: base * 2^(attempt-1).
            std::thread::sleep(cfg.backoff * (1u32 << (attempt - 1).min(16)));
        }
        let start = Instant::now();
        let (tx, rx) = mpsc::channel();
        let job = Arc::clone(&job);
        let site = name.to_owned();
        let handle = std::thread::Builder::new()
            .name(format!("job-{name}-a{attempt}"))
            .spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    faults::before_job(&site, attempt);
                    job()
                }));
                // The receiver may be gone if the watchdog timed us out.
                let _ = tx.send(result);
            })
            .expect("spawn job thread");

        // A disconnected channel (thread died without sending) is treated
        // like a panic; the join below harvests the thread either way.
        let vanished =
            || Err(Box::new("job thread vanished".to_owned()) as Box<dyn std::any::Any + Send>);
        let received = match cfg.deadline {
            Some(deadline) => match rx.recv_timeout(deadline) {
                Ok(r) => Some(r),
                Err(mpsc::RecvTimeoutError::Timeout) => None,
                Err(mpsc::RecvTimeoutError::Disconnected) => Some(vanished()),
            },
            None => Some(rx.recv().unwrap_or_else(|_| vanished())),
        };
        let wall_ms = start.elapsed().as_millis() as u64;

        match received {
            Some(Ok(value)) => {
                let _ = handle.join();
                report.attempts.push(AttemptRecord { outcome: AttemptOutcome::Ok, wall_ms });
                return (Some(value), report);
            }
            Some(Err(payload)) => {
                let _ = handle.join();
                let msg = panic_message(payload.as_ref());
                eprintln!("supervisor: job `{name}` attempt {attempt} panicked: {msg}");
                report
                    .attempts
                    .push(AttemptRecord { outcome: AttemptOutcome::Panicked(msg), wall_ms });
            }
            None => {
                // Deadline blown: abandon (leak) the stalled thread.
                eprintln!(
                    "supervisor: job `{name}` attempt {attempt} exceeded its deadline ({:?}); abandoning the attempt",
                    cfg.deadline.unwrap()
                );
                report.attempts.push(AttemptRecord { outcome: AttemptOutcome::TimedOut, wall_ms });
            }
        }
    }
    (None, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn cfg(deadline_ms: Option<u64>, retries: u32) -> SupervisorConfig {
        SupervisorConfig {
            deadline: deadline_ms.map(Duration::from_millis),
            retries,
            backoff: Duration::from_millis(1),
        }
    }

    #[test]
    fn healthy_job_runs_once() {
        let (value, report) = supervise("ok-job", cfg(None, 2), || 41 + 1);
        assert_eq!(value, Some(42));
        assert_eq!(report.attempts.len(), 1);
        assert!(report.ok());
        assert_eq!(report.verdict(), "ok");
    }

    #[test]
    fn panicking_job_is_retried_and_recovers() {
        let tries = Arc::new(AtomicU32::new(0));
        let t = Arc::clone(&tries);
        let (value, report) = supervise("flaky", cfg(None, 2), move || {
            if t.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("first attempt explodes");
            }
            7
        });
        assert_eq!(value, Some(7));
        assert_eq!(report.attempts.len(), 2);
        assert_eq!(report.attempts[0].outcome.label(), "panicked");
        assert!(report.ok());
    }

    #[test]
    fn deadline_times_out_then_retry_succeeds() {
        let tries = Arc::new(AtomicU32::new(0));
        let t = Arc::clone(&tries);
        let (value, report) = supervise("slow-once", cfg(Some(80), 1), move || {
            if t.fetch_add(1, Ordering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_millis(5_000));
            }
            "done"
        });
        assert_eq!(value, Some("done"));
        assert_eq!(report.attempts.len(), 2);
        assert_eq!(report.attempts[0].outcome, AttemptOutcome::TimedOut);
        assert!(report.attempts[0].wall_ms >= 80);
    }

    #[test]
    fn exhausted_retries_reports_every_attempt() {
        let (value, report) = supervise("doomed", cfg(None, 2), || -> u32 {
            panic!("always fails");
        });
        assert_eq!(value, None);
        assert_eq!(report.attempts.len(), 3);
        assert_eq!(report.verdict(), "exhausted-retries");
        for a in &report.attempts {
            match &a.outcome {
                AttemptOutcome::Panicked(msg) => assert!(msg.contains("always fails")),
                other => panic!("expected panic, got {other:?}"),
            }
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = JobReport {
            name: "fig15".to_owned(),
            attempts: vec![
                AttemptRecord { outcome: AttemptOutcome::Panicked("boom".to_owned()), wall_ms: 3 },
                AttemptRecord { outcome: AttemptOutcome::TimedOut, wall_ms: 100 },
                AttemptRecord { outcome: AttemptOutcome::Ok, wall_ms: 17 },
            ],
        };
        let back = JobReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        assert!(back.ok());
    }

    #[test]
    fn injected_panic_fires_only_on_first_attempt() {
        let _guard = crate::faults::TEST_LOCK.lock().unwrap();
        crate::faults::install(Some(crate::faults::FaultPlan::parse("panic=victim").unwrap()));
        let (value, report) = supervise("victim", cfg(None, 1), || 5);
        assert_eq!(value, Some(5));
        assert_eq!(report.attempts.len(), 2, "fault on attempt 0, clean on attempt 1");
        assert_eq!(report.attempts[0].outcome.label(), "panicked");
        assert_eq!(crate::faults::injected().len(), 1);
        crate::faults::install(None);
    }
}
