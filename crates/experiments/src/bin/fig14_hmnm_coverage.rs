//! Figure 14: hybrid (HMNM) miss coverage over all 20 applications, plus
//! the Table 3 composition of each hybrid.

use mnm_experiments::coverage::coverage_table;
use mnm_experiments::{RunParams, FIG14_CONFIGS};

fn main() {
    println!("Table 3: HMNM compositions");
    for n in 1..=4u8 {
        let cfg = mnm_core::MnmConfig::hmnm(n);
        let parts: Vec<String> = cfg
            .assignments
            .iter()
            .map(|a| {
                let labels: Vec<String> = a.techniques.iter().map(|t| t.label()).collect();
                format!("L{}-{}: {}", a.levels.start(), a.levels.end().min(&5), labels.join("+"))
            })
            .collect();
        println!(
            "  HMNM{n}: {} + {}",
            parts.join("; "),
            cfg.rmnm.map(|r| r.label()).unwrap_or_default()
        );
    }
    println!();

    let params = RunParams::from_env();
    let t = coverage_table("Figure 14: HMNM coverage [%]", &FIG14_CONFIGS, params);
    mnm_experiments::emit(&t);
}
