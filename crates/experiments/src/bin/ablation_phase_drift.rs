//! Ablation 7: allocation-phase drift vs technique coverage (recovers the
//! paper's SMNM niche, which stationary synthetic streams hide).

use mnm_experiments::ablation::phase_drift_table;
use mnm_experiments::RunParams;

fn main() {
    mnm_experiments::emit(&phase_drift_table(RunParams::from_env()));
}
