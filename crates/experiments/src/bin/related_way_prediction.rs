//! Related-work comparison: MRU way prediction (Powell et al.) vs the
//! serial MNM, and both combined.

use mnm_experiments::related_work::way_prediction_table;
use mnm_experiments::RunParams;

fn main() {
    mnm_experiments::emit(&way_prediction_table(RunParams::from_env()));
}
