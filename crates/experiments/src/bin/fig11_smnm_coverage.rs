//! Figure 11: SMNM miss coverage over all 20 applications.

use mnm_experiments::coverage::coverage_table;
use mnm_experiments::{RunParams, FIG11_CONFIGS};

fn main() {
    let params = RunParams::from_env();
    let t = coverage_table("Figure 11: SMNM coverage [%]", &FIG11_CONFIGS, params);
    mnm_experiments::emit(&t);
}
