//! Table 1: the paper's worked RMNM example — a two-level hierarchy where
//! a block replaced from L2 is caught by the RMNM on its next access.

use cache_sim::{Access, CacheConfig, Hierarchy, HierarchyConfig, LevelConfig};
use mnm_core::{Mnm, MnmConfig};

fn main() {
    // A deliberately tiny two-level hierarchy so a handful of accesses
    // forces the L2 replacement the example revolves around.
    let mut hier = Hierarchy::new(HierarchyConfig {
        levels: vec![
            LevelConfig::Split {
                instr: CacheConfig::new("il1", 64, 1, 32, 1),
                data: CacheConfig::new("dl1", 64, 1, 32, 1),
            },
            LevelConfig::Unified(CacheConfig::new("ul2", 128, 1, 32, 4)),
        ],
        memory_latency: 50,
        inclusive: false,
    });
    let mut mnm = Mnm::new(&hier, MnmConfig::parse("RMNM_128_1").unwrap());
    let ul2 = hier.structures().iter().find(|s| s.name == "ul2").unwrap().id;

    println!("event                                   ul2 holds 0x2fc0?  RMNM flags ul2 miss?");
    let report = |hier: &Hierarchy, mnm: &mut Mnm, what: &str| {
        let flagged = mnm.query(Access::load(0x2fc0)).contains(ul2);
        println!("{:<40}{:<19}{}", what, hier.contains(ul2, 0x2fc0), flagged);
    };

    report(&hier, &mut mnm, "start");
    mnm.run_access(&mut hier, Access::load(0x2fc0));
    report(&hier, &mut mnm, "access 0x2fc0 (placed into L1+L2)");
    // 0x2fc0 maps to ul2 set (0x2fc0>>5)&3 = 2; 0x2f40 shares it.
    mnm.run_access(&mut hier, Access::load(0x2f40));
    report(&hier, &mut mnm, "access 0x2f40 (replaces 0x2fc0 in ul2)");
    let r = mnm.run_access(&mut hier, Access::load(0x2fc0));
    println!(
        "access 0x2fc0 again: ul2 bypassed = {} (the RMNM captured the miss)",
        r.bypassed >= 1
    );
    report(&hier, &mut mnm, "after the refill (placed back into L2)");
}
