//! Equations 1 and 2: the analytic data-access-time model, validated
//! against the simulator for every application.

use cache_sim::AccessKind;
use mnm_experiments::analytic::{eq1_access_time, LevelModel};
use mnm_experiments::runner::{run_app_functional, ConfigKind};
use mnm_experiments::{RunParams, Table};
use trace_synth::profiles;

fn main() {
    let params = RunParams::from_env();
    let hier_cfg = cache_sim::HierarchyConfig::paper_five_level();

    let columns: Vec<String> =
        ["eq1 predicted", "simulated", "error %"].iter().map(|s| (*s).to_owned()).collect();
    let mut table = Table::new(
        "Equations 1-2: analytic vs simulated mean data-access time [cycles]",
        "app",
        &columns,
    );
    table.precision = 3;

    // The analytic model is per-path; validate on the data path by
    // rebuilding the per-level conditional miss rates from the counters.
    for app in profiles::all() {
        let run = run_app_functional(&app, &hier_cfg, &ConfigKind::Baseline, params);
        let hier = cache_sim::Hierarchy::new(hier_cfg.clone());
        let mut levels = Vec::new();
        let mut reach_refs = 0u64;
        for sid in hier.path(AccessKind::Load) {
            let st = run.hierarchy.structures[sid.index()];
            let cfg = hier.cache(*sid).config();
            // Unified levels also serve instruction refills; conditional
            // rates remain correct because they are per-probe.
            if levels.is_empty() {
                reach_refs = st.probes;
            }
            levels.push(LevelModel {
                hit_time: cfg.hit_latency as f64,
                miss_time: cfg.miss_latency as f64,
                miss_rate: st.miss_rate(),
                unidentified: 1.0,
            });
        }
        let _ = reach_refs;
        let predicted = eq1_access_time(&levels, hier_cfg.memory_latency as f64);
        // Simulated mean over *all* accesses mixes both paths; rebuild the
        // data-path mean from per-level supply counts is equivalent to the
        // overall mean when rates are per-probe, so compare against the
        // hierarchy-wide mean access time as the paper does.
        let simulated = run.hierarchy.mean_access_time();
        let err = if simulated == 0.0 { 0.0 } else { 100.0 * (predicted - simulated) / simulated };
        table.push_row(&app.name, vec![predicted, simulated, err]);
    }
    mnm_experiments::emit(&table);
    println!(
        "\nNote: eq1 uses data-path rates; instruction-path effects appear as small residuals."
    );
}
