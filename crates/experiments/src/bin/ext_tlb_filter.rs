//! Extension 1 (paper §4.5): filtering definite-miss L2 TLB lookups.

use mnm_experiments::extensions::tlb_filter_table;
use mnm_experiments::RunParams;

fn main() {
    mnm_experiments::emit(&tlb_filter_table(RunParams::from_env()));
}
