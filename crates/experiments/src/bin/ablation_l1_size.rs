//! Ablation 8: how the MNM's benefit depends on the L1 size.

use mnm_experiments::ablation::l1_size_table;
use mnm_experiments::RunParams;

fn main() {
    mnm_experiments::emit(&l1_size_table(RunParams::from_env()));
}
