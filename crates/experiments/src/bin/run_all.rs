//! Regenerate every table and figure under supervision, printing each and
//! writing markdown plus a machine-readable run manifest into the output
//! directory (`JSN_OUT`, default `results/`).
//!
//! Thin wrapper over the library's supervised sweep — `jsn run-all` is the
//! same code with the same flags (`-o`, `--resume`, `--deadline`,
//! `--retries`, `--only`, `--quiet`). See `EXPERIMENTS.md` for the
//! journal/resume walkthrough and the `JSN_FAULT` fault-injection syntax.
//!
//! Artifacts:
//!
//! * `all_experiments.md` — every table as GitHub markdown.
//! * `all_experiments.json` — a `jsn-run-manifest/v1` document: every
//!   table's cells, per-experiment wall time, per-app/per-config
//!   simulation counters, worker-pool telemetry, supervisor job reports,
//!   and the run parameters/`JSN_*` knobs in force. `jsn diff` compares
//!   two of these.
//! * `journal.jsonl` — while running (and after an interrupted or failed
//!   run): the checkpoint journal `--resume` continues from. Removed on a
//!   fully successful sweep.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match mnm_experiments::sweep::cli_main(&args) {
        Ok(true) => {}
        Ok(false) => std::process::exit(1),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
