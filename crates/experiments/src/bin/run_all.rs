//! Regenerate every table and figure, printing each and writing markdown
//! into `results/`.

use std::fs;
use std::time::Instant;

use mnm_experiments::ablation;
use mnm_experiments::coverage::coverage_table;
use mnm_experiments::depth::depth_fractions;
use mnm_experiments::extensions;
use mnm_experiments::power::power_reduction_table;
use mnm_experiments::timing::{characteristics_table, execution_reduction_table};
use mnm_experiments::{
    RunParams, Table, FIG10_CONFIGS, FIG11_CONFIGS, FIG12_CONFIGS, FIG13_CONFIGS, FIG14_CONFIGS,
};

fn emit(md: &mut String, table: &Table) {
    print!("{}", table.render());
    println!();
    md.push_str(&table.to_markdown());
    md.push('\n');
}

fn main() {
    let params = RunParams::from_env();
    let started = Instant::now();
    let mut md = String::from("# Generated experiment results\n\n");
    md.push_str(&format!(
        "Parameters: warmup {} + measured {} instructions per app.\n\n",
        params.warmup, params.measure
    ));

    let (fig2, fig3) = depth_fractions(params);
    emit(&mut md, &fig2);
    emit(&mut md, &fig3);
    emit(&mut md, &characteristics_table(params));
    emit(&mut md, &coverage_table("Figure 10: RMNM coverage [%]", &FIG10_CONFIGS, params));
    emit(&mut md, &coverage_table("Figure 11: SMNM coverage [%]", &FIG11_CONFIGS, params));
    emit(&mut md, &coverage_table("Figure 12: TMNM coverage [%]", &FIG12_CONFIGS, params));
    emit(&mut md, &coverage_table("Figure 13: CMNM coverage [%]", &FIG13_CONFIGS, params));
    emit(&mut md, &coverage_table("Figure 14: HMNM coverage [%]", &FIG14_CONFIGS, params));
    emit(&mut md, &execution_reduction_table(params));
    emit(&mut md, &power_reduction_table(params));

    emit(&mut md, &ablation::placement_table(params));
    emit(&mut md, &ablation::counter_width_table(params));
    emit(&mut md, &ablation::rmnm_sweep_table(params));
    emit(&mut md, &ablation::delay_table(params));
    emit(&mut md, &ablation::inclusion_table(params));
    emit(&mut md, &ablation::phase_drift_table(params));
    emit(&mut md, &ablation::l1_size_table(params));
    emit(&mut md, &extensions::distributed_table(params));
    emit(&mut md, &extensions::tlb_filter_table(params));
    emit(&mut md, &extensions::scheduler_replay_table(params));
    emit(&mut md, &mnm_experiments::related_work::way_prediction_table(params));
    emit(&mut md, &mnm_experiments::related_work::bloom_table(params));

    let _ = fs::create_dir_all("results");
    match fs::write("results/all_experiments.md", &md) {
        Ok(()) => println!("wrote results/all_experiments.md"),
        Err(e) => eprintln!("could not write results/all_experiments.md: {e}"),
    }
    println!("total wall time: {:.1}s", started.elapsed().as_secs_f64());
}
