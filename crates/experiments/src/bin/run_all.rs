//! Regenerate every table and figure, printing each and writing markdown
//! plus a machine-readable run manifest into the output directory
//! (`JSN_OUT`, default `results/`).
//!
//! Artifacts:
//!
//! * `all_experiments.md` — every table as GitHub markdown.
//! * `all_experiments.json` — a `jsn-run-manifest/v1` document: every
//!   table's cells, per-experiment wall time, per-app/per-config
//!   simulation counters, worker-pool telemetry, and the run
//!   parameters/`JSN_*` knobs in force. `jsn diff` compares two of these.

use std::fs;
use std::time::Instant;

use mnm_experiments::ablation;
use mnm_experiments::coverage::coverage_table;
use mnm_experiments::depth::depth_fractions;
use mnm_experiments::extensions;
use mnm_experiments::metrics::{self, RunManifest};
use mnm_experiments::power::power_reduction_table;
use mnm_experiments::timing::{characteristics_table, execution_reduction_table};
use mnm_experiments::{
    params, RunParams, Table, FIG10_CONFIGS, FIG11_CONFIGS, FIG12_CONFIGS, FIG13_CONFIGS,
    FIG14_CONFIGS,
};

fn emit(md: &mut String, table: &Table) {
    print!("{}", table.render());
    println!();
    md.push_str(&table.to_markdown());
    md.push('\n');
}

fn main() {
    let params = RunParams::from_env();
    let threads = params::worker_threads();
    metrics::enable_telemetry();
    let started = Instant::now();

    let mut md = String::from("# Generated experiment results\n\n");
    md.push_str(&format!(
        "Parameters: warmup {} + measured {} instructions per app ({} worker threads).\n\n",
        params.warmup, params.measure, threads
    ));
    let mut manifest =
        RunManifest { params: Some(params), threads: threads as u64, ..Default::default() };

    // Figures 2 and 3 come from one simulation pass; time them together
    // and split the wall time evenly between the two records.
    {
        let t0 = Instant::now();
        let (fig2, fig3) = depth_fractions(params);
        let half = t0.elapsed() / 2;
        emit(&mut md, &fig2);
        emit(&mut md, &fig3);
        manifest.push("fig02_miss_time_fraction", half, fig2);
        manifest.push("fig03_miss_power_fraction", half, fig3);
    }

    // Each remaining experiment is (slug, generator); generators run one
    // at a time so per-experiment wall time is attributable.
    type Gen = Box<dyn FnOnce() -> Table>;
    let experiments: Vec<(&str, Gen)> = {
        vec![
            ("table2_characteristics", Box::new(move || characteristics_table(params))),
            (
                "fig10_rmnm_coverage",
                Box::new(move || {
                    coverage_table("Figure 10: RMNM coverage [%]", &FIG10_CONFIGS, params)
                }),
            ),
            (
                "fig11_smnm_coverage",
                Box::new(move || {
                    coverage_table("Figure 11: SMNM coverage [%]", &FIG11_CONFIGS, params)
                }),
            ),
            (
                "fig12_tmnm_coverage",
                Box::new(move || {
                    coverage_table("Figure 12: TMNM coverage [%]", &FIG12_CONFIGS, params)
                }),
            ),
            (
                "fig13_cmnm_coverage",
                Box::new(move || {
                    coverage_table("Figure 13: CMNM coverage [%]", &FIG13_CONFIGS, params)
                }),
            ),
            (
                "fig14_hmnm_coverage",
                Box::new(move || {
                    coverage_table("Figure 14: HMNM coverage [%]", &FIG14_CONFIGS, params)
                }),
            ),
            ("fig15_execution_reduction", Box::new(move || execution_reduction_table(params))),
            ("fig16_power_reduction", Box::new(move || power_reduction_table(params))),
            ("ablation_placement", Box::new(move || ablation::placement_table(params))),
            ("ablation_counter_width", Box::new(move || ablation::counter_width_table(params))),
            ("ablation_rmnm_sweep", Box::new(move || ablation::rmnm_sweep_table(params))),
            ("ablation_delay", Box::new(move || ablation::delay_table(params))),
            ("ablation_inclusion", Box::new(move || ablation::inclusion_table(params))),
            ("ablation_phase_drift", Box::new(move || ablation::phase_drift_table(params))),
            ("ablation_l1_size", Box::new(move || ablation::l1_size_table(params))),
            ("ext_distributed", Box::new(move || extensions::distributed_table(params))),
            ("ext_tlb_filter", Box::new(move || extensions::tlb_filter_table(params))),
            ("ext_scheduler_replay", Box::new(move || extensions::scheduler_replay_table(params))),
            (
                "related_way_prediction",
                Box::new(move || mnm_experiments::related_work::way_prediction_table(params)),
            ),
            ("related_bloom", Box::new(move || mnm_experiments::related_work::bloom_table(params))),
        ]
    };

    for (name, generate) in experiments {
        let t0 = Instant::now();
        let table = generate();
        let wall = t0.elapsed();
        emit(&mut md, &table);
        manifest.push(name, wall, table);
    }

    manifest.absorb_telemetry();
    manifest.total_wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let out = metrics::out_dir();
    if let Err(e) = fs::create_dir_all(&out) {
        eprintln!("error: cannot create output directory {}: {e}", out.display());
        std::process::exit(1);
    }
    let md_path = out.join("all_experiments.md");
    match fs::write(&md_path, &md) {
        Ok(()) => println!("wrote {}", md_path.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", md_path.display());
            std::process::exit(1);
        }
    }
    let json_path = out.join("all_experiments.json");
    match fs::write(&json_path, manifest.to_json().render_pretty()) {
        Ok(()) => println!("wrote {}", json_path.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", json_path.display());
            std::process::exit(1);
        }
    }
    println!("total wall time: {:.1}s", started.elapsed().as_secs_f64());
}
