//! Ablation 5: inclusive vs non-inclusive hierarchies under HMNM4.

use mnm_experiments::ablation::inclusion_table;
use mnm_experiments::RunParams;

fn main() {
    mnm_experiments::emit(&inclusion_table(RunParams::from_env()));
}
