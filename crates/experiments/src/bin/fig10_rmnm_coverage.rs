//! Figure 10: RMNM miss coverage over all 20 applications.

use mnm_experiments::coverage::coverage_table;
use mnm_experiments::{RunParams, FIG10_CONFIGS};

fn main() {
    let params = RunParams::from_env();
    let t = coverage_table("Figure 10: RMNM coverage [%]", &FIG10_CONFIGS, params);
    mnm_experiments::emit(&t);
}
