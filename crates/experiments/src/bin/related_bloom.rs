//! Related-work comparison: counting Bloom filters (Peir et al., ICS 2002)
//! vs the paper's bit-slice counter tables at comparable storage.

use mnm_experiments::related_work::bloom_table;
use mnm_experiments::RunParams;

fn main() {
    mnm_experiments::emit(&bloom_table(RunParams::from_env()));
}
