//! Characterize the 20 synthetic applications: mixes, footprints,
//! idealized hit rates from reuse distances. Documents what the workload
//! substitution actually produces (DESIGN.md's Table-2 anchor points).

use mnm_experiments::{RunParams, Table};
use trace_synth::{characterize, profiles, Program};

fn main() {
    let params = RunParams::from_env();
    let columns: Vec<String> = [
        "load %",
        "store %",
        "branch %",
        "mispred %",
        "data KB",
        "code KB",
        "cold %",
        "ideal hit% @128",
        "ideal hit% @4096",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();

    let mut table = Table::new("Suite characterization (reuse-distance based)", "app", &columns);
    for profile in profiles::all() {
        let stats = characterize(Program::new(profile.clone()).take(params.measure as usize));
        let n = stats.instructions as f64;
        let mem = (stats.loads + stats.stores) as f64;
        table.push_row(
            &profile.name,
            vec![
                100.0 * stats.loads as f64 / n,
                100.0 * stats.stores as f64 / n,
                100.0 * stats.branches as f64 / n,
                if stats.branches == 0 {
                    0.0
                } else {
                    100.0 * stats.mispredicts as f64 / stats.branches as f64
                },
                stats.data_footprint_bytes() as f64 / 1024.0,
                stats.code_footprint_bytes() as f64 / 1024.0,
                100.0 * stats.cold_references as f64 / mem.max(1.0),
                100.0 * stats.ideal_hit_rate(128),
                100.0 * stats.ideal_hit_rate(4096),
            ],
        );
    }
    table.push_mean_row();
    mnm_experiments::emit(&table);
}
