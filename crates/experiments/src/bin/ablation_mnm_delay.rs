//! Ablation 4: sensitivity of the serial MNM's benefit to its delay.

use mnm_experiments::ablation::delay_table;
use mnm_experiments::RunParams;

fn main() {
    mnm_experiments::emit(&delay_table(RunParams::from_env()));
}
