//! Ablation 3: RMNM geometry sweep beyond the paper's largest config.

use mnm_experiments::ablation::rmnm_sweep_table;
use mnm_experiments::RunParams;

fn main() {
    mnm_experiments::emit(&rmnm_sweep_table(RunParams::from_env()));
}
