//! Figure 16: reduction in cache power consumption with a serial MNM, over
//! all 20 applications (TMNM_12x3, CMNM_8_10, HMNM2, HMNM4, perfect).

use mnm_experiments::power::power_reduction_table;
use mnm_experiments::RunParams;

fn main() {
    let params = RunParams::from_env();
    let t = power_reduction_table(params);
    mnm_experiments::emit(&t);
}
