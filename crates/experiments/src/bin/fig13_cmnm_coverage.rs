//! Figure 13: CMNM miss coverage over all 20 applications.

use mnm_experiments::coverage::coverage_table;
use mnm_experiments::{RunParams, FIG13_CONFIGS};

fn main() {
    let params = RunParams::from_env();
    let t = coverage_table("Figure 13: CMNM coverage [%]", &FIG13_CONFIGS, params);
    mnm_experiments::emit(&t);
}
