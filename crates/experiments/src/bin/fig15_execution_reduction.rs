//! Figure 15: reduction in execution cycles with a parallel MNM, over all
//! 20 applications (TMNM_12x3, CMNM_8_10, HMNM2, HMNM4, perfect).

use mnm_experiments::timing::execution_reduction_table;
use mnm_experiments::RunParams;

fn main() {
    let params = RunParams::from_env();
    let t = execution_reduction_table(params);
    mnm_experiments::emit(&t);
}
