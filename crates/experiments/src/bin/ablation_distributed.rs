//! Ablation 6: the distributed MNM placement of paper §2.

use mnm_experiments::extensions::distributed_table;
use mnm_experiments::RunParams;

fn main() {
    mnm_experiments::emit(&distributed_table(RunParams::from_env()));
}
