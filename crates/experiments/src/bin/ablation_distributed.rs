//! Ablation 6: the distributed MNM placement of paper §2.

use mnm_experiments::extensions::distributed_table;
use mnm_experiments::RunParams;

fn main() {
    print!("{}", distributed_table(RunParams::from_env()).render());
}
