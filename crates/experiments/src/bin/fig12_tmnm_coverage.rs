//! Figure 12: TMNM miss coverage over all 20 applications.

use mnm_experiments::coverage::coverage_table;
use mnm_experiments::{RunParams, FIG12_CONFIGS};

fn main() {
    let params = RunParams::from_env();
    let t = coverage_table("Figure 12: TMNM coverage [%]", &FIG12_CONFIGS, params);
    mnm_experiments::emit(&t);
}
