//! Figure 3: fraction of the cache power consumption spent on cache
//! misses, for 2/3/5/7-level hierarchies, over all 20 applications.

use mnm_experiments::depth::depth_fractions;
use mnm_experiments::RunParams;

fn main() {
    let params = RunParams::from_env();
    let (_, power_table) = depth_fractions(params);
    mnm_experiments::emit(&power_table);
}
