//! Ablation 1: parallel vs serial MNM placement (latency vs energy).

use mnm_experiments::ablation::placement_table;
use mnm_experiments::RunParams;

fn main() {
    mnm_experiments::emit(&placement_table(RunParams::from_env()));
}
