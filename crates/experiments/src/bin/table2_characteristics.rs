//! Table 2: per-application characteristics (cycles, L1 accesses,
//! per-structure hit rates) on the paper's 5-level configuration.

use mnm_experiments::timing::characteristics_table;
use mnm_experiments::RunParams;

fn main() {
    let params = RunParams::from_env();
    let t = characteristics_table(params);
    mnm_experiments::emit(&t);
}
