//! Extension 2 (paper §4.5): the scheduler holds dependents of loads the
//! MNM flags, avoiding speculative-wakeup replays.

use mnm_experiments::extensions::scheduler_replay_table;
use mnm_experiments::RunParams;

fn main() {
    mnm_experiments::emit(&scheduler_replay_table(RunParams::from_env()));
}
