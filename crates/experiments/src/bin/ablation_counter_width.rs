//! Ablation 2: TMNM saturating-counter width (the paper fixes 3 bits).

use mnm_experiments::ablation::counter_width_table;
use mnm_experiments::RunParams;

fn main() {
    mnm_experiments::emit(&counter_width_table(RunParams::from_env()));
}
