//! Figure 2: fraction of the data access time spent on cache misses, for
//! 2/3/5/7-level hierarchies, over all 20 applications.

use mnm_experiments::depth::depth_fractions;
use mnm_experiments::RunParams;

fn main() {
    let params = RunParams::from_env();
    let (time_table, _) = depth_fractions(params);
    mnm_experiments::emit(&time_table);
}
