//! The supervised `run-all` sweep: every experiment job under the
//! supervisor, checkpointed in a journal, resumable after a kill.
//!
//! The sweep is the composition of the crate's robustness layers:
//!
//! * each job runs via [`supervisor::supervise`] — panics are isolated,
//!   deadlines enforced, retries bounded;
//! * every completed job is appended (fsynced) to the [`journal`] before
//!   the sweep moves on, so `--resume` replays completed work instead of
//!   recomputing it;
//! * final artifacts go through [`fsio::write_artifact`] — a kill leaves
//!   either the old artifact or the new one, never a torn file;
//! * a journal found in a fresh run's output directory is an interrupted
//!   run's marker: the sweep refuses to clobber it and points at
//!   `--resume`.
//!
//! Because journaled tables are replayed verbatim, an interrupted sweep
//! resumed to completion produces `all_experiments.json` tables identical
//! (tolerance 0) to an uninterrupted run's.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use crate::ablation;
use crate::coverage::coverage_table;
use crate::depth::depth_fractions;
use crate::extensions;
use crate::faults;
use crate::fsio;
use crate::journal::{self, JobEntry, JournalWriter};
use crate::metrics::{self, RunManifest};
use crate::params::{self, RunParams};
use crate::power::power_reduction_table;
use crate::related_work;
use crate::report::Table;
use crate::supervisor::{supervise, SupervisorConfig};
use crate::timing::{characteristics_table, execution_reduction_table};
use crate::{FIG10_CONFIGS, FIG11_CONFIGS, FIG12_CONFIGS, FIG13_CONFIGS, FIG14_CONFIGS};

/// One sweep job: a name (also its fault-injection site) and a generator
/// producing one or more named tables.
#[derive(Clone, Copy)]
pub struct JobSpec {
    /// Stable job name; journal entries and fault sites key on it.
    pub name: &'static str,
    /// The generator. Multi-table jobs (fig02+fig03 share one simulation
    /// pass) return several `(experiment name, table)` pairs.
    pub run: fn(RunParams) -> Vec<(String, Table)>,
}

fn one(name: &str, table: Table) -> Vec<(String, Table)> {
    vec![(name.to_owned(), table)]
}

fn job_depth(params: RunParams) -> Vec<(String, Table)> {
    let (fig2, fig3) = depth_fractions(params);
    vec![
        ("fig02_miss_time_fraction".to_owned(), fig2),
        ("fig03_miss_power_fraction".to_owned(), fig3),
    ]
}

/// Every experiment of the full sweep, in output order.
pub const JOBS: &[JobSpec] = &[
    JobSpec { name: "fig02_fig03_depth", run: job_depth },
    JobSpec {
        name: "table2_characteristics",
        run: |p| one("table2_characteristics", characteristics_table(p)),
    },
    JobSpec {
        name: "fig10_rmnm_coverage",
        run: |p| {
            one(
                "fig10_rmnm_coverage",
                coverage_table("Figure 10: RMNM coverage [%]", &FIG10_CONFIGS, p),
            )
        },
    },
    JobSpec {
        name: "fig11_smnm_coverage",
        run: |p| {
            one(
                "fig11_smnm_coverage",
                coverage_table("Figure 11: SMNM coverage [%]", &FIG11_CONFIGS, p),
            )
        },
    },
    JobSpec {
        name: "fig12_tmnm_coverage",
        run: |p| {
            one(
                "fig12_tmnm_coverage",
                coverage_table("Figure 12: TMNM coverage [%]", &FIG12_CONFIGS, p),
            )
        },
    },
    JobSpec {
        name: "fig13_cmnm_coverage",
        run: |p| {
            one(
                "fig13_cmnm_coverage",
                coverage_table("Figure 13: CMNM coverage [%]", &FIG13_CONFIGS, p),
            )
        },
    },
    JobSpec {
        name: "fig14_hmnm_coverage",
        run: |p| {
            one(
                "fig14_hmnm_coverage",
                coverage_table("Figure 14: HMNM coverage [%]", &FIG14_CONFIGS, p),
            )
        },
    },
    JobSpec {
        name: "fig15_execution_reduction",
        run: |p| one("fig15_execution_reduction", execution_reduction_table(p)),
    },
    JobSpec {
        name: "fig16_power_reduction",
        run: |p| one("fig16_power_reduction", power_reduction_table(p)),
    },
    JobSpec {
        name: "ablation_placement",
        run: |p| one("ablation_placement", ablation::placement_table(p)),
    },
    JobSpec {
        name: "ablation_counter_width",
        run: |p| one("ablation_counter_width", ablation::counter_width_table(p)),
    },
    JobSpec {
        name: "ablation_rmnm_sweep",
        run: |p| one("ablation_rmnm_sweep", ablation::rmnm_sweep_table(p)),
    },
    JobSpec { name: "ablation_delay", run: |p| one("ablation_delay", ablation::delay_table(p)) },
    JobSpec {
        name: "ablation_inclusion",
        run: |p| one("ablation_inclusion", ablation::inclusion_table(p)),
    },
    JobSpec {
        name: "ablation_phase_drift",
        run: |p| one("ablation_phase_drift", ablation::phase_drift_table(p)),
    },
    JobSpec {
        name: "ablation_l1_size",
        run: |p| one("ablation_l1_size", ablation::l1_size_table(p)),
    },
    JobSpec {
        name: "ext_distributed",
        run: |p| one("ext_distributed", extensions::distributed_table(p)),
    },
    JobSpec {
        name: "ext_tlb_filter",
        run: |p| one("ext_tlb_filter", extensions::tlb_filter_table(p)),
    },
    JobSpec {
        name: "ext_scheduler_replay",
        run: |p| one("ext_scheduler_replay", extensions::scheduler_replay_table(p)),
    },
    JobSpec {
        name: "related_way_prediction",
        run: |p| one("related_way_prediction", related_work::way_prediction_table(p)),
    },
    JobSpec { name: "related_bloom", run: |p| one("related_bloom", related_work::bloom_table(p)) },
];

/// Everything configuring one sweep invocation.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Output directory for the journal and final artifacts.
    pub out: PathBuf,
    /// Resume from the journal in `out` instead of starting fresh.
    pub resume: bool,
    /// Instruction budgets.
    pub params: RunParams,
    /// Worker threads (recorded in the manifest).
    pub threads: usize,
    /// Supervision policy.
    pub supervisor: SupervisorConfig,
    /// Restrict to these job names (testing / partial reruns).
    pub only: Option<Vec<String>>,
    /// Stop (as if killed) after this many jobs executed in THIS run —
    /// test hook for kill-and-resume; completed work stays journaled,
    /// no final artifacts are written.
    pub stop_after: Option<usize>,
    /// Suppress per-table stdout.
    pub quiet: bool,
}

impl SweepOptions {
    /// Defaults for `out`: full job list, no resume, default supervision.
    pub fn new(out: PathBuf, params: RunParams) -> Self {
        SweepOptions {
            out,
            resume: false,
            params,
            threads: 1,
            supervisor: SupervisorConfig::default(),
            only: None,
            stop_after: None,
            quiet: false,
        }
    }
}

/// What a sweep did, for callers and the CLI summary.
#[derive(Debug)]
pub struct SweepSummary {
    /// Output directory.
    pub out: PathBuf,
    /// Jobs actually executed in this invocation.
    pub executed: usize,
    /// Jobs replayed from the journal.
    pub resumed: usize,
    /// Jobs that exhausted their retries.
    pub failed: Vec<String>,
    /// Whether `stop_after` cut the sweep short.
    pub interrupted: bool,
    /// Faults the plan fired during this invocation.
    pub injected: Vec<faults::InjectedFault>,
}

/// Run (or resume) the supervised sweep.
pub fn run_sweep(opts: &SweepOptions) -> Result<SweepSummary, String> {
    let jobs: Vec<&JobSpec> = match &opts.only {
        None => JOBS.iter().collect(),
        Some(names) => {
            for n in names {
                if !JOBS.iter().any(|j| j.name == n) {
                    return Err(format!("run-all: unknown job `{n}` in --only"));
                }
            }
            JOBS.iter().filter(|j| names.iter().any(|n| n == j.name)).collect()
        }
    };

    std::fs::create_dir_all(&opts.out)
        .map_err(|e| format!("cannot create output directory {}: {e}", opts.out.display()))?;

    // Open (or refuse to clobber) the journal.
    let (mut writer, completed) = if opts.resume {
        let loaded = journal::load(&opts.out)?
            .ok_or_else(|| format!("nothing to resume: no journal in {}", opts.out.display()))?;
        if loaded.params != opts.params {
            return Err(format!(
                "cannot resume: journal in {} was written with warmup={} measure={}, \
                 current parameters are warmup={} measure={}",
                opts.out.display(),
                loaded.params.warmup,
                loaded.params.measure,
                opts.params.warmup,
                opts.params.measure
            ));
        }
        if loaded.truncated_tail {
            eprintln!(
                "resume: dropped a torn final journal line (previous run was killed mid-append)"
            );
        }
        let writer = JournalWriter::open_resume(&opts.out)
            .map_err(|e| format!("cannot reopen journal: {e}"))?;
        (writer, loaded.entries)
    } else {
        if journal::journal_path(&opts.out).exists() {
            return Err(format!(
                "{} contains the journal of an interrupted or failed run; \
                 pass `--resume {}` to continue it, or delete the directory to start over",
                opts.out.display(),
                opts.out.display()
            ));
        }
        let writer = JournalWriter::create(&opts.out, opts.params)
            .map_err(|e| format!("cannot create journal: {e}"))?;
        (writer, Vec::new())
    };

    metrics::enable_telemetry();
    let started = Instant::now();
    let params = opts.params;

    let mut md = String::from("# Generated experiment results\n\n");
    md.push_str(&format!(
        "Parameters: warmup {} + measured {} instructions per app ({} worker threads).\n\n",
        params.warmup, params.measure, opts.threads
    ));
    let mut manifest =
        RunManifest { params: Some(params), threads: opts.threads as u64, ..Default::default() };

    let mut executed = 0usize;
    let mut resumed = 0usize;
    let mut failed: Vec<String> = Vec::new();
    let mut interrupted = false;

    for spec in jobs {
        // Completed in a previous run: replay the journaled tables.
        if let Some(entry) = completed.iter().find(|e| e.job == spec.name) {
            resumed += 1;
            if !opts.quiet {
                println!("resume: `{}` replayed from journal", spec.name);
            }
            let per_table = Duration::from_millis(entry.wall_ms / entry.tables.len().max(1) as u64);
            for (name, table) in &entry.tables {
                if !opts.quiet {
                    print!("{}", table.render());
                    println!();
                }
                md.push_str(&table.to_markdown());
                md.push('\n');
                manifest.push(name, per_table, table.clone());
            }
            manifest.jobs.push(entry.report.clone());
            continue;
        }

        // Simulated kill point (tests only).
        if opts.stop_after == Some(executed) {
            interrupted = true;
            break;
        }

        let (result, report) = supervise(spec.name, opts.supervisor, move || (spec.run)(params));
        let wall_ms = report.attempts.last().map_or(0, |a| a.wall_ms);
        manifest.jobs.push(report.clone());

        match result {
            Some(tables) => {
                executed += 1;
                let entry = JobEntry { job: spec.name.to_owned(), wall_ms, report, tables };
                writer.append(&entry).map_err(|e| format!("journal append failed: {e}"))?;
                let per_table = Duration::from_millis(wall_ms / entry.tables.len().max(1) as u64);
                for (name, table) in entry.tables {
                    if !opts.quiet {
                        print!("{}", table.render());
                        println!();
                    }
                    md.push_str(&table.to_markdown());
                    md.push('\n');
                    manifest.push(&name, per_table, table);
                }
            }
            None => {
                // Isolation: a dead job does not abort the sweep.
                eprintln!(
                    "error: job `{}` failed after {} attempt(s); continuing with the rest",
                    spec.name,
                    report.attempts.len()
                );
                failed.push(spec.name.to_owned());
            }
        }
    }

    manifest.injected = faults::injected();

    if interrupted {
        // As if killed: journal persists, no artifacts are written.
        return Ok(SweepSummary {
            out: opts.out.clone(),
            executed,
            resumed,
            failed,
            interrupted,
            injected: manifest.injected,
        });
    }

    manifest.absorb_telemetry();
    manifest.total_wall_ms = started.elapsed().as_secs_f64() * 1e3;

    let md_path = opts.out.join("all_experiments.md");
    fsio::write_artifact(&md_path, md.as_bytes())
        .map_err(|e| format!("could not write {}: {e}", md_path.display()))?;
    let json_path = opts.out.join("all_experiments.json");
    fsio::write_artifact(&json_path, manifest.to_json().render_pretty().as_bytes())
        .map_err(|e| format!("could not write {}: {e}", json_path.display()))?;
    if !opts.quiet {
        println!("wrote {}", md_path.display());
        println!("wrote {}", json_path.display());
    }

    // Re-snapshot: the artifact writes above may themselves have drawn
    // (and recovered from) torn-write faults. Those can't appear inside
    // the manifest they interrupted, but the summary must report them.
    let injected = faults::injected();
    if failed.is_empty() {
        // A clean finish retires the journal; its presence is the durable
        // marker of an interrupted or failed run.
        writer.remove().map_err(|e| format!("could not remove journal: {e}"))?;
    } else {
        eprintln!(
            "journal kept at {} — `--resume` will retry the failed job(s)",
            journal::journal_path(&opts.out).display()
        );
    }

    Ok(SweepSummary { out: opts.out.clone(), executed, resumed, failed, interrupted, injected })
}

/// The `jsn run-all` / `run_all` command line. Returns `Ok(true)` when
/// every job succeeded, `Ok(false)` when some failed (artifacts still
/// written), `Err` on configuration/IO errors.
pub fn cli_main(args: &[String]) -> Result<bool, String> {
    let started = Instant::now();
    let mut out: Option<PathBuf> = None;
    let mut resume = false;
    let mut supervisor = SupervisorConfig::default();
    let mut only: Option<Vec<String>> = None;
    let mut quiet = false;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = |what: &str| -> Result<String, String> {
            i += 1;
            args.get(i).cloned().ok_or_else(|| format!("run-all: {flag} needs {what}"))
        };
        match flag {
            "-o" | "--out" => out = Some(PathBuf::from(value("a directory")?)),
            "--resume" => {
                out = Some(PathBuf::from(value("a directory")?));
                resume = true;
            }
            "--deadline" => {
                let secs: u64 = value("seconds")?
                    .parse()
                    .map_err(|_| "run-all: --deadline expects whole seconds".to_owned())?;
                supervisor.deadline = Some(Duration::from_secs(secs));
            }
            "--retries" => {
                supervisor.retries = value("a count")?
                    .parse()
                    .map_err(|_| "run-all: --retries expects an unsigned count".to_owned())?;
            }
            "--only" => {
                only = Some(
                    value("a comma-separated job list")?
                        .split(',')
                        .map(|s| s.trim().to_owned())
                        .filter(|s| !s.is_empty())
                        .collect(),
                );
            }
            "-q" | "--quiet" => quiet = true,
            other => return Err(format!("run-all: unknown argument `{other}`")),
        }
        i += 1;
    }

    let plan = faults::FaultPlan::from_env()?;
    if let Some(p) = &plan {
        eprintln!("{}", p.summary());
    }
    faults::install(plan);

    let opts = SweepOptions {
        out: out.unwrap_or_else(metrics::out_dir),
        resume,
        params: RunParams::try_from_env()?,
        threads: params::try_worker_threads()?,
        supervisor,
        only,
        stop_after: None,
        quiet,
    };

    let summary = run_sweep(&opts)?;
    println!(
        "jobs: {} executed, {} resumed, {} failed",
        summary.executed,
        summary.resumed,
        summary.failed.len()
    );
    if !summary.failed.is_empty() {
        for name in &summary.failed {
            eprintln!("failed: {name}");
        }
    }
    if !summary.injected.is_empty() {
        let count = |kind: &str| summary.injected.iter().filter(|f| f.kind == kind).count();
        println!(
            "injected faults: {} panic, {} stall, {} torn, {} flip",
            count("panic"),
            count("stall"),
            count("torn"),
            count("flip")
        );
        if summary.failed.is_empty() {
            println!("all injected faults recovered");
        }
    }
    println!("total wall time: {:.1}s", started.elapsed().as_secs_f64());
    Ok(summary.failed.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_names_are_unique_and_match_the_legacy_order() {
        let names: Vec<&str> = JOBS.iter().map(|j| j.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate job name");
        assert_eq!(names[0], "fig02_fig03_depth");
        assert_eq!(names.len(), 21);
        assert!(names.contains(&"related_bloom"));
    }

    #[test]
    fn unknown_only_job_is_rejected() {
        let opts = SweepOptions {
            only: Some(vec!["no_such_job".to_owned()]),
            ..SweepOptions::new(std::env::temp_dir().join("jsn-sweep-unused"), RunParams::quick())
        };
        assert!(run_sweep(&opts).unwrap_err().contains("no_such_job"));
    }

    #[test]
    fn cli_rejects_unknown_flags_and_bad_values() {
        assert!(cli_main(&["--frobnicate".to_owned()]).unwrap_err().contains("unknown"));
        assert!(cli_main(&["--deadline".to_owned(), "soon".to_owned()])
            .unwrap_err()
            .contains("seconds"));
        assert!(cli_main(&["--retries".to_owned()]).unwrap_err().contains("needs"));
    }
}
