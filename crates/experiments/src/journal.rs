//! Append-only checkpoint journal for `jsn run-all`.
//!
//! The sweep writes one JSONL line per *completed* job (tables included),
//! fsynced, so a killed run loses at most the job in flight. `run-all
//! --resume <dir>` replays completed entries from the journal instead of
//! re-running them; the resumed sweep converges to byte-for-byte the same
//! tables an uninterrupted run produces, because the tables themselves are
//! journaled, not recomputed.
//!
//! Crash tolerance is asymmetric by design: a torn FINAL line is the
//! expected signature of a kill mid-append and is dropped (with a
//! warning), but garbage in the middle of the file means something other
//! than a crash happened to it — that is a hard error, not a shrug.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::params::RunParams;
use crate::report::Table;
use crate::supervisor::JobReport;

/// Schema tag of the journal header line.
pub const SCHEMA: &str = "jsn-journal/v1";

/// File name inside the output directory.
pub const FILE_NAME: &str = "journal.jsonl";

/// One completed job: its report and every table it produced.
#[derive(Debug, Clone, PartialEq)]
pub struct JobEntry {
    /// Job name (matches the sweep's job list).
    pub job: String,
    /// Total wall time of the job in milliseconds.
    pub wall_ms: u64,
    /// The supervisor's attempt record.
    pub report: JobReport,
    /// `(experiment name, table)` pairs the job produced.
    pub tables: Vec<(String, Table)>,
}

impl JobEntry {
    /// One JSONL line (compact rendering, no interior newlines).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("job", Json::str(&self.job)),
            ("wall_ms", Json::num(self.wall_ms as f64)),
            ("report", self.report.to_json()),
            (
                "tables",
                Json::Arr(
                    self.tables
                        .iter()
                        .map(|(name, t)| {
                            Json::obj(vec![("name", Json::str(name)), ("table", t.to_json())])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse one journal line back.
    pub fn from_json(v: &Json) -> Result<JobEntry, String> {
        let job =
            v.get("job").and_then(Json::as_str).ok_or("journal entry: missing `job`")?.to_owned();
        let wall_ms =
            v.get("wall_ms").and_then(Json::as_f64).ok_or("journal entry: missing `wall_ms`")?
                as u64;
        let report =
            JobReport::from_json(v.get("report").ok_or("journal entry: missing `report`")?)?;
        let mut tables = Vec::new();
        for t in v.get("tables").and_then(Json::as_arr).ok_or("journal entry: missing `tables`")? {
            let name = t
                .get("name")
                .and_then(Json::as_str)
                .ok_or("journal entry: table missing `name`")?;
            let table = Table::from_json(t.get("table").ok_or("journal entry: missing `table`")?)?;
            tables.push((name.to_owned(), table));
        }
        Ok(JobEntry { job, wall_ms, report, tables })
    }
}

/// A journal read back from disk.
#[derive(Debug)]
pub struct LoadedJournal {
    /// Run parameters the journaled jobs were computed with.
    pub params: RunParams,
    /// Completed entries, in completion order.
    pub entries: Vec<JobEntry>,
    /// Whether a torn final line (kill mid-append) was dropped.
    pub truncated_tail: bool,
}

impl LoadedJournal {
    /// The entry for `job`, if it completed.
    pub fn entry(&self, job: &str) -> Option<&JobEntry> {
        self.entries.iter().find(|e| e.job == job)
    }
}

/// Appends fsynced JSONL lines to the journal file.
#[derive(Debug)]
pub struct JournalWriter {
    file: std::fs::File,
    path: PathBuf,
}

/// Path of the journal inside `dir`.
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join(FILE_NAME)
}

impl JournalWriter {
    /// Start a fresh journal (truncating any previous one) with a header
    /// line recording the run parameters.
    pub fn create(dir: &Path, params: RunParams) -> std::io::Result<JournalWriter> {
        let path = journal_path(dir);
        let mut file = std::fs::File::create(&path)?;
        let header = Json::obj(vec![
            ("schema", Json::str(SCHEMA)),
            ("warmup", Json::num(params.warmup as f64)),
            ("measure", Json::num(params.measure as f64)),
        ]);
        file.write_all(header.render().as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_data()?;
        Ok(JournalWriter { file, path })
    }

    /// Reopen an existing journal for appending (resume). If the previous
    /// run died mid-append, the torn tail is cut off first so the file
    /// stays line-clean.
    pub fn open_resume(dir: &Path) -> std::io::Result<JournalWriter> {
        let path = journal_path(dir);
        let text = std::fs::read_to_string(&path)?;
        // Keep everything up to (and including) the last newline; a torn
        // tail has none.
        let keep = text.rfind('\n').map_or(0, |i| i + 1);
        if keep < text.len() {
            let file = std::fs::OpenOptions::new().write(true).open(&path)?;
            file.set_len(keep as u64)?;
        }
        let file = std::fs::OpenOptions::new().append(true).open(&path)?;
        Ok(JournalWriter { file, path })
    }

    /// Append one completed job, fsynced before returning — once this
    /// returns, a kill cannot lose the entry.
    pub fn append(&mut self, entry: &JobEntry) -> std::io::Result<()> {
        self.file.write_all(entry.to_json().render().as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file.sync_data()
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Delete the journal (called when the sweep completes cleanly; a
    /// surviving journal is the marker of an interrupted or failed run).
    pub fn remove(self) -> std::io::Result<()> {
        drop(self.file);
        std::fs::remove_file(&self.path)
    }
}

/// Load the journal in `dir`. `Ok(None)` when there is none; a torn final
/// line is dropped (flagged in `truncated_tail`); anything else malformed
/// is a hard error.
pub fn load(dir: &Path) -> Result<Option<LoadedJournal>, String> {
    let path = journal_path(dir);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };

    let mut lines: Vec<&str> = text.split('\n').collect();
    // A well-formed file ends with '\n', leaving one empty trailing piece.
    let ends_clean = lines.last() == Some(&"");
    if ends_clean {
        lines.pop();
    }

    let mut truncated_tail = false;
    let mut parsed: Vec<Json> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        match Json::parse(line) {
            Ok(v) => parsed.push(v),
            Err(e) => {
                let is_last = i + 1 == lines.len();
                if is_last && !ends_clean {
                    truncated_tail = true;
                } else {
                    return Err(format!(
                        "{}: line {} is corrupt (not a torn tail): {e}",
                        path.display(),
                        i + 1
                    ));
                }
            }
        }
    }

    let Some(header) = parsed.first() else {
        return Err(format!("{}: empty journal", path.display()));
    };
    match header.get("schema").and_then(Json::as_str) {
        Some(SCHEMA) => {}
        other => {
            return Err(format!("{}: unsupported journal schema {other:?}", path.display()));
        }
    }
    let warmup = header.get("warmup").and_then(Json::as_f64).ok_or("journal header: warmup")?;
    let measure = header.get("measure").and_then(Json::as_f64).ok_or("journal header: measure")?;
    let params = RunParams { warmup: warmup as u64, measure: measure as u64 };

    let mut entries = Vec::new();
    for (i, v) in parsed.iter().enumerate().skip(1) {
        entries.push(
            JobEntry::from_json(v)
                .map_err(|e| format!("{}: line {}: {e}", path.display(), i + 1))?,
        );
    }
    Ok(Some(LoadedJournal { params, entries, truncated_tail }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::{AttemptOutcome, AttemptRecord};

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("jsn-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn entry(job: &str) -> JobEntry {
        let mut t = Table::new("T", "app", &["a".to_owned()]);
        t.push_row("gzip", vec![1.25]);
        JobEntry {
            job: job.to_owned(),
            wall_ms: 12,
            report: JobReport {
                name: job.to_owned(),
                attempts: vec![AttemptRecord { outcome: AttemptOutcome::Ok, wall_ms: 12 }],
            },
            tables: vec![(job.to_owned(), t)],
        }
    }

    #[test]
    fn write_then_load_round_trips() {
        let dir = tmp_dir("rt");
        let params = RunParams { warmup: 100, measure: 500 };
        let mut w = JournalWriter::create(&dir, params).unwrap();
        w.append(&entry("job_a")).unwrap();
        w.append(&entry("job_b")).unwrap();

        let loaded = load(&dir).unwrap().unwrap();
        assert_eq!(loaded.params, params);
        assert_eq!(loaded.entries.len(), 2);
        assert!(!loaded.truncated_tail);
        assert_eq!(loaded.entry("job_b").unwrap(), &entry("job_b"));
        assert!(loaded.entry("job_c").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_is_none() {
        let dir = tmp_dir("none");
        assert!(load(&dir).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_with_flag() {
        let dir = tmp_dir("torn");
        let mut w = JournalWriter::create(&dir, RunParams { warmup: 1, measure: 2 }).unwrap();
        w.append(&entry("done")).unwrap();
        // Simulate a kill mid-append: garbage with no trailing newline.
        let path = journal_path(&dir);
        let mut f = std::fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"job\":\"half-writ").unwrap();
        drop(f);

        let loaded = load(&dir).unwrap().unwrap();
        assert!(loaded.truncated_tail);
        assert_eq!(loaded.entries.len(), 1);

        // Resume truncates the torn tail and appends cleanly after it.
        let mut w = JournalWriter::open_resume(&dir).unwrap();
        w.append(&entry("next")).unwrap();
        let loaded = load(&dir).unwrap().unwrap();
        assert!(!loaded.truncated_tail);
        assert_eq!(loaded.entries.len(), 2);
        assert_eq!(loaded.entries[1].job, "next");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error() {
        let dir = tmp_dir("midcorrupt");
        let mut w = JournalWriter::create(&dir, RunParams { warmup: 1, measure: 2 }).unwrap();
        w.append(&entry("a")).unwrap();
        w.append(&entry("b")).unwrap();
        let path = journal_path(&dir);
        let text = std::fs::read_to_string(&path).unwrap();
        // Clobber the middle line, keep the file newline-terminated.
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        lines[1] = "NOT JSON".to_owned();
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();

        let err = load(&dir).unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("not a torn tail"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let dir = tmp_dir("schema");
        std::fs::write(journal_path(&dir), "{\"schema\":\"jsn-journal/v9\"}\n").unwrap();
        assert!(load(&dir).unwrap_err().contains("unsupported"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_deletes_the_file() {
        let dir = tmp_dir("rm");
        let w = JournalWriter::create(&dir, RunParams { warmup: 1, measure: 2 }).unwrap();
        assert!(journal_path(&dir).exists());
        w.remove().unwrap();
        assert!(!journal_path(&dir).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
