//! Fault-injection drills for the supervised sweep: injected panics,
//! stalls, and torn writes must be isolated and retried — the sweep
//! completes, the artifacts are intact, and every fired fault is recorded.
//!
//! The fault plan is process-global, so every test serializes on one lock
//! and uninstalls the plan before releasing it.

use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use mnm_experiments::faults::{self, FaultPlan};
use mnm_experiments::metrics::diff_documents;
use mnm_experiments::supervisor::SupervisorConfig;
use mnm_experiments::sweep::{run_sweep, SweepOptions};
use mnm_experiments::{Json, RunParams};

static FAULT_STATE: Mutex<()> = Mutex::new(());

fn lock_faults() -> MutexGuard<'static, ()> {
    FAULT_STATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny() -> RunParams {
    RunParams { warmup: 500, measure: 2_000 }
}

const JOBS: [&str; 2] = ["table2_characteristics", "fig12_tmnm_coverage"];

fn opts(dir: &Path) -> SweepOptions {
    let mut o = SweepOptions::new(dir.to_path_buf(), tiny());
    o.only = Some(JOBS.iter().map(|s| s.to_string()).collect());
    o.quiet = true;
    o.supervisor =
        SupervisorConfig { deadline: None, retries: 2, backoff: Duration::from_millis(1) };
    o
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("jsn-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn manifest(dir: &Path) -> Json {
    let text = std::fs::read_to_string(dir.join("all_experiments.json")).unwrap();
    Json::parse(&text).expect("manifest parses")
}

/// The supervisor job reports recorded in a manifest, as (name, attempts).
fn job_attempts(doc: &Json) -> Vec<(String, usize)> {
    doc.get("supervisor")
        .and_then(Json::as_arr)
        .map(|jobs| {
            jobs.iter()
                .map(|j| {
                    (
                        j.get("job").and_then(Json::as_str).unwrap_or("?").to_owned(),
                        j.get("attempts").and_then(Json::as_arr).map_or(0, |a| a.len()),
                    )
                })
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn injected_panic_is_isolated_and_retried() {
    let _guard = lock_faults();
    faults::install(Some(FaultPlan::parse("seed=1,panic=table2_characteristics").unwrap()));

    let dir = fresh_dir("panic");
    let summary = run_sweep(&opts(&dir)).unwrap();
    assert!(summary.failed.is_empty(), "panic must be absorbed by a retry");
    assert_eq!(summary.executed, 2);
    assert_eq!(summary.injected.len(), 1);
    assert_eq!(summary.injected[0].kind, "panic");

    let doc = manifest(&dir);
    let attempts = job_attempts(&doc);
    assert!(
        attempts.contains(&("table2_characteristics".to_owned(), 2)),
        "victim job shows panicked-then-ok attempts: {attempts:?}"
    );
    assert!(
        doc.get("injected_faults").and_then(Json::as_arr).is_some_and(|a| a.len() == 1),
        "fired fault is recorded in the manifest"
    );

    faults::install(None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_stall_blows_the_deadline_then_recovers() {
    let _guard = lock_faults();
    faults::install(Some(FaultPlan::parse("seed=2,stall=table2_characteristics:5000").unwrap()));

    let dir = fresh_dir("stall");
    let mut o = opts(&dir);
    o.supervisor.deadline = Some(Duration::from_millis(200));
    let summary = run_sweep(&o).unwrap();
    assert!(summary.failed.is_empty(), "stalled attempt abandoned, retry succeeds");
    assert_eq!(summary.injected.len(), 1);
    assert_eq!(summary.injected[0].kind, "stall");

    let attempts = job_attempts(&manifest(&dir));
    assert!(
        attempts.contains(&("table2_characteristics".to_owned(), 2)),
        "victim job shows timed-out-then-ok attempts: {attempts:?}"
    );

    faults::install(None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_manifest_write_is_retried_to_an_intact_artifact() {
    let _guard = lock_faults();
    faults::install(Some(FaultPlan::parse("seed=3,torn=all_experiments.json").unwrap()));

    let dir = fresh_dir("torn");
    let summary = run_sweep(&opts(&dir)).unwrap();
    assert!(summary.failed.is_empty());
    assert!(summary.injected.iter().any(|f| f.kind == "torn"));

    // The artifact exists, parses, and carries both experiments — the torn
    // first attempt left nothing behind.
    let doc = manifest(&dir);
    let experiments = doc.get("experiments").and_then(Json::as_arr).unwrap();
    assert!(experiments.len() >= 2);
    assert!(!dir.join("all_experiments.json.tmp").exists(), "no torn temp debris");

    faults::install(None);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exhausted_retries_fail_the_job_but_not_the_sweep() {
    let _guard = lock_faults();
    faults::install(Some(FaultPlan::parse("seed=4,panic=table2_characteristics").unwrap()));

    let dir = fresh_dir("exhausted");
    let mut o = opts(&dir);
    o.supervisor.retries = 0; // the one-shot fault panics the only attempt
    let summary = run_sweep(&o).unwrap();
    assert_eq!(summary.failed, vec!["table2_characteristics".to_owned()]);
    assert_eq!(summary.executed, 1, "the healthy job still ran");
    assert!(
        dir.join("journal.jsonl").exists(),
        "journal survives a failed sweep for later --resume"
    );

    // A later resume without the fault plan finishes the failed job and
    // converges to the uninterrupted result.
    faults::install(None);
    let clean = fresh_dir("exhausted-clean");
    run_sweep(&opts(&clean)).unwrap();

    let mut retry = opts(&dir);
    retry.resume = true;
    let summary = run_sweep(&retry).unwrap();
    assert!(summary.failed.is_empty());
    assert_eq!(summary.resumed, 1);
    assert_eq!(summary.executed, 1);
    let diffs = diff_documents(&manifest(&clean), &manifest(&dir), 0.0);
    assert!(diffs.is_empty(), "{diffs:?}");

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&clean);
}
