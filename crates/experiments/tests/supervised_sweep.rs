//! Kill-and-resume drills for the supervised sweep: an interrupted run
//! continued with `--resume` must converge to a manifest that is
//! cell-for-cell identical (tolerance 0) to an uninterrupted run.

use std::path::{Path, PathBuf};

use mnm_experiments::metrics::diff_documents;
use mnm_experiments::sweep::{run_sweep, SweepOptions};
use mnm_experiments::{Json, RunParams};

/// Tiny budgets: enough to exercise every code path, fast enough for CI.
fn tiny() -> RunParams {
    RunParams { warmup: 500, measure: 2_000 }
}

/// The two cheapest jobs of the sweep, in sweep order.
const JOBS: [&str; 2] = ["table2_characteristics", "fig12_tmnm_coverage"];

fn opts(dir: &Path) -> SweepOptions {
    let mut o = SweepOptions::new(dir.to_path_buf(), tiny());
    o.only = Some(JOBS.iter().map(|s| s.to_string()).collect());
    o.quiet = true;
    o
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("jsn-sweep-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn manifest(dir: &Path) -> Json {
    let text = std::fs::read_to_string(dir.join("all_experiments.json"))
        .unwrap_or_else(|e| panic!("manifest missing in {}: {e}", dir.display()));
    Json::parse(&text).expect("manifest parses")
}

#[test]
fn interrupted_then_resumed_matches_uninterrupted_exactly() {
    let clean = fresh_dir("clean");
    let summary = run_sweep(&opts(&clean)).unwrap();
    assert_eq!(summary.executed, 2);
    assert!(!summary.interrupted);
    assert!(summary.failed.is_empty());
    assert!(!clean.join("journal.jsonl").exists(), "a fully successful sweep removes its journal");

    // "Kill" the sweep after the first job...
    let killed = fresh_dir("killed");
    let mut first = opts(&killed);
    first.stop_after = Some(1);
    let summary = run_sweep(&first).unwrap();
    assert!(summary.interrupted);
    assert_eq!(summary.executed, 1);
    assert!(killed.join("journal.jsonl").exists(), "checkpoint journal survives the kill");
    assert!(
        !killed.join("all_experiments.json").exists(),
        "no final artifact from an interrupted run"
    );

    // ...then resume: only the remaining job executes.
    let mut second = opts(&killed);
    second.resume = true;
    let summary = run_sweep(&second).unwrap();
    assert!(!summary.interrupted);
    assert_eq!(summary.resumed, 1, "first job replayed from the journal");
    assert_eq!(summary.executed, 1, "second job executed live");

    let diffs = diff_documents(&manifest(&clean), &manifest(&killed), 0.0);
    assert!(
        diffs.is_empty(),
        "resumed manifest diverges from the uninterrupted one:\n{}",
        diffs.iter().map(|d| format!("  {d}\n")).collect::<String>()
    );

    let _ = std::fs::remove_dir_all(&clean);
    let _ = std::fs::remove_dir_all(&killed);
}

#[test]
fn a_torn_journal_tail_is_dropped_on_resume() {
    let clean = fresh_dir("torn-clean");
    run_sweep(&opts(&clean)).unwrap();

    let dir = fresh_dir("torn");
    let mut first = opts(&dir);
    first.stop_after = Some(1);
    run_sweep(&first).unwrap();

    // Simulate a kill mid-append: garbage with no terminating newline.
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new().append(true).open(dir.join("journal.jsonl")).unwrap();
    f.write_all(b"{\"job\":\"fig12_tmnm_cov").unwrap();
    drop(f);

    let mut second = opts(&dir);
    second.resume = true;
    let summary = run_sweep(&second).unwrap();
    assert_eq!(summary.resumed, 1, "intact first entry survives the torn tail");
    assert_eq!(summary.executed, 1);

    let diffs = diff_documents(&manifest(&clean), &manifest(&dir), 0.0);
    assert!(diffs.is_empty(), "{diffs:?}");

    let _ = std::fs::remove_dir_all(&clean);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn partial_output_dir_is_refused_without_resume() {
    let dir = fresh_dir("partial");
    let mut first = opts(&dir);
    first.stop_after = Some(1);
    run_sweep(&first).unwrap();

    let err = run_sweep(&opts(&dir)).unwrap_err();
    assert!(err.contains("--resume"), "refusal must point at --resume, got: {err}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_with_different_parameters_is_refused() {
    let dir = fresh_dir("params");
    let mut first = opts(&dir);
    first.stop_after = Some(1);
    run_sweep(&first).unwrap();

    let mut second = opts(&dir);
    second.resume = true;
    second.params = RunParams { warmup: 500, measure: 4_000 };
    let err = run_sweep(&second).unwrap_err();
    assert!(err.contains("cannot resume"), "{err}");
    assert!(err.contains("measure=2000") && err.contains("measure=4000"), "{err}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_without_a_journal_is_refused() {
    let dir = fresh_dir("nothing");
    std::fs::create_dir_all(&dir).unwrap();
    let mut o = opts(&dir);
    o.resume = true;
    let err = run_sweep(&o).unwrap_err();
    assert!(err.contains("nothing to resume"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_job_in_only_is_refused() {
    let dir = fresh_dir("unknown-job");
    let mut o = opts(&dir);
    o.only = Some(vec!["fig99_nonsense".to_owned()]);
    let err = run_sweep(&o).unwrap_err();
    assert!(err.contains("fig99_nonsense"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}
