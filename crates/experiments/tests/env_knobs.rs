//! The harness binaries reject malformed `JSN_*` knobs loudly instead of
//! silently running with defaults the user did not ask for (the pre-fix
//! behaviour of `RunParams::from_env`).

use std::process::Command;

fn fig02(envs: &[(&str, &str)]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fig02_miss_time_fraction"));
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("binary runs")
}

#[test]
fn malformed_warmup_aborts_before_simulating() {
    let out = fig02(&[("JSN_WARMUP", "three-hundred-thousand")]);
    assert!(!out.status.success(), "malformed JSN_WARMUP must not run");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("JSN_WARMUP"), "stderr names the knob: {err}");
    assert!(err.contains("three-hundred-thousand"), "stderr shows the value: {err}");
    assert!(out.stdout.is_empty(), "no results were produced");
}

#[test]
fn malformed_measure_and_threads_abort() {
    let out = fig02(&[("JSN_MEASURE", "2m")]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("JSN_MEASURE=2m"));

    // JSN_THREADS is validated when the worker pool spins up; a malformed
    // value must also abort rather than fall back to a default.
    let out = fig02(&[("JSN_THREADS", "0"), ("JSN_WARMUP", "100"), ("JSN_MEASURE", "200")]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("JSN_THREADS"));
}
