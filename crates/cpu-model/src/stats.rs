//! Timing-simulation results.

/// Results of one timing simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CpuStats {
    /// Total execution cycles (commit time of the last instruction).
    pub cycles: u64,
    /// Dynamic instructions simulated.
    pub instructions: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Branches executed.
    pub branches: u64,
    /// Mispredicted branches (redirects charged).
    pub mispredicts: u64,
    /// I-side fetch-block transitions (I-cache accesses performed).
    pub fetch_accesses: u64,
    /// Sum of data-access latencies observed by loads (cycles).
    pub load_latency_sum: u64,
    /// Sum of I-fetch latencies observed at block transitions (cycles).
    pub fetch_latency_sum: u64,
    /// Scheduler replays charged: loads that missed without early MNM
    /// knowledge, under the replay load-speculation model.
    pub replays: u64,
}

impl CpuStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Mean load data-access time in cycles (the paper's "data access
    /// time" metric restricted to loads).
    pub fn mean_load_latency(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.load_latency_sum as f64 / self.loads as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = CpuStats {
            cycles: 500,
            instructions: 1000,
            loads: 10,
            load_latency_sum: 40,
            ..Default::default()
        };
        assert!((s.ipc() - 2.0).abs() < 1e-12);
        assert!((s.mean_load_latency() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = CpuStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mean_load_latency(), 0.0);
    }
}
