//! # ooo-model
//!
//! A dataflow out-of-order superscalar timing model, the stand-in for
//! SimpleScalar's `sim-outorder` in the HPCA 2003 *"Just Say No"*
//! reproduction (paper §4.1 simulates an 8-way processor with 5 cache
//! levels).
//!
//! The model schedules every dynamic instruction through fetch → dispatch
//! → issue → complete → commit with explicit resource constraints:
//!
//! * **fetch**: `fetch_width` per cycle, charged the I-side cache latency
//!   on every fetch-block transition (through the full hierarchy and, when
//!   present, the MNM), stalled by branch-mispredict redirects;
//! * **window**: an instruction cannot be fetched until the instruction
//!   `window_size` older has committed (the RUU of SimpleScalar);
//! * **issue**: `issue_width` ports, dataflow-ready at the completion of
//!   both producers (dependency distances from the trace);
//! * **memory**: loads access the data-side hierarchy non-blocking, with at
//!   most `lsq_size` memory operations in flight (MLP limit); stores
//!   write-allocate but retire without stalling;
//! * **commit**: `commit_width` per cycle, in order.
//!
//! This is not a structural pipeline simulator; it is the standard
//! dataflow/resource approximation, which preserves exactly what Figure 15
//! measures — how much shorter memory latencies (from MNM bypassing)
//! shrink total execution cycles once filtered through ILP, MLP and
//! resource limits.

mod config;
mod pipeline;
mod stats;

pub use config::{CpuConfig, LoadSpeculation};
pub use pipeline::{simulate, MemPolicy};
pub use stats::CpuStats;
