//! Processor-core configuration.

/// How the scheduler wakes up dependents of loads (paper §4.5: "The
/// scheduler can use the miss information to prevent scheduling of the
/// memory instructions that will miss ... and other instructions dependent
/// on these memory instructions").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadSpeculation {
    /// Dependents wait for actual data return; no replay cost. This is
    /// the model used for the paper's main results (Figure 15).
    None,
    /// The scheduler speculatively wakes dependents assuming an L1 hit;
    /// when the load actually misses, the dependents are replayed, adding
    /// `penalty` cycles to their effective readiness — *unless* the MNM
    /// flagged the access in time, in which case the scheduler holds them
    /// (the paper's §4.5 extension).
    Replay {
        /// Extra cycles dependents of an unpredicted missing load pay.
        penalty: u64,
    },
}

/// Resource limits of the modelled out-of-order core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions issued per cycle (number of issue ports).
    pub issue_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Reorder window (SimpleScalar's RUU) size in instructions.
    pub window_size: u32,
    /// Maximum memory operations in flight (load/store queue).
    pub lsq_size: u32,
    /// Data-cache ports: memory operations that can begin per cycle
    /// (the paper's parallel MNM needs this many ports too, §2).
    pub dcache_ports: u32,
    /// Cycles from a mispredicted branch's resolution to the first
    /// corrected fetch.
    pub mispredict_penalty: u64,
    /// Scheduler wakeup model for load dependents.
    pub load_speculation: LoadSpeculation,
}

impl CpuConfig {
    /// The paper's 8-way processor (Section 4.1: an 8-way core with
    /// resources twice those of the 4-way configuration).
    pub fn paper_eight_way() -> Self {
        CpuConfig {
            fetch_width: 8,
            issue_width: 8,
            commit_width: 8,
            window_size: 128,
            lsq_size: 64,
            dcache_ports: 4,
            mispredict_penalty: 8,
            load_speculation: LoadSpeculation::None,
        }
    }

    /// The paper's 4-way processor used for the 2- and 3-level motivation
    /// runs (Figures 2–3).
    pub fn paper_four_way() -> Self {
        CpuConfig {
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            window_size: 64,
            lsq_size: 32,
            dcache_ports: 2,
            mispredict_penalty: 8,
            load_speculation: LoadSpeculation::None,
        }
    }

    /// Enable the §4.5 scheduler-replay model (builder style).
    pub fn with_load_speculation(mut self, model: LoadSpeculation) -> Self {
        self.load_speculation = model;
        self
    }

    /// Check resource limits for consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first zero-sized resource, or a window
    /// smaller than the LSQ.
    pub fn validate(&self) -> Result<(), String> {
        if self.fetch_width == 0 || self.issue_width == 0 || self.commit_width == 0 {
            return Err("pipeline widths must be positive".into());
        }
        if self.window_size == 0 || self.lsq_size == 0 {
            return Err("window and LSQ must be positive".into());
        }
        if self.dcache_ports == 0 {
            return Err("at least one data-cache port is required".into());
        }
        if self.lsq_size > self.window_size {
            return Err("LSQ cannot exceed the reorder window".into());
        }
        Ok(())
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::paper_eight_way()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_validate() {
        CpuConfig::paper_eight_way().validate().unwrap();
        CpuConfig::paper_four_way().validate().unwrap();
        assert_eq!(CpuConfig::default(), CpuConfig::paper_eight_way());
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut c = CpuConfig::paper_eight_way();
        c.issue_width = 0;
        assert!(c.validate().is_err());
        let mut c = CpuConfig::paper_eight_way();
        c.lsq_size = c.window_size + 1;
        assert!(c.validate().is_err());
    }
}
