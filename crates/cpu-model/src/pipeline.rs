//! The dataflow pipeline scheduler.

use cache_sim::{Access, BypassSet, Hierarchy};
use mnm_core::{perfect_bypass, Mnm};
use trace_synth::{Instr, InstrKind};

use crate::config::{CpuConfig, LoadSpeculation};
use crate::stats::CpuStats;

/// What the memory system reported for one access.
struct MemOutcome {
    latency: u64,
    /// Level that supplied the data (1 = L1).
    supply_level: u8,
    /// Whether the scheduler had early knowledge that this access was a
    /// long-latency one: the MNM flagged at least one level (its verdict
    /// arrives before L1 miss detection, paper §2), or the oracle is in
    /// use.
    known_long: bool,
}

/// How the core's memory accesses are filtered.
pub enum MemPolicy<'a> {
    /// No MNM: every level is probed normally.
    Baseline,
    /// A real MNM (parallel or serial per its configuration) filters every
    /// access; its coverage statistics accumulate as a side effect.
    Mnm(&'a mut Mnm),
    /// The perfect oracle of paper §4.3: every actual miss beyond L1 is
    /// bypassed, at zero delay and zero energy.
    Perfect,
}

impl MemPolicy<'_> {
    fn access(&mut self, hierarchy: &mut Hierarchy, access: Access) -> MemOutcome {
        match self {
            MemPolicy::Baseline => {
                let r = hierarchy.access(access, &BypassSet::none());
                MemOutcome { latency: r.latency, supply_level: r.supply_level, known_long: false }
            }
            MemPolicy::Mnm(mnm) => {
                let r = mnm.run_access(hierarchy, access);
                MemOutcome {
                    latency: mnm.adjusted_latency(&r),
                    supply_level: r.supply_level,
                    known_long: r.bypassed > 0,
                }
            }
            MemPolicy::Perfect => {
                let bypass = perfect_bypass(hierarchy, access);
                let r = hierarchy.access(access, &bypass);
                MemOutcome { latency: r.latency, supply_level: r.supply_level, known_long: true }
            }
        }
    }
}

/// Index of the earliest-free resource port.
fn cheapest(ports: &[u64]) -> usize {
    ports.iter().enumerate().min_by_key(|(_, &t)| t).map(|(i, _)| i).expect("at least one port")
}

/// Run `max_instrs` instructions of `trace` through the core.
///
/// Returns when the trace ends or `max_instrs` instructions have been
/// scheduled. The hierarchy (and MNM, if any) are left warm, so callers can
/// split warmup and measurement phases.
///
/// # Panics
///
/// Panics if `config` fails [`CpuConfig::validate`].
pub fn simulate(
    config: &CpuConfig,
    hierarchy: &mut Hierarchy,
    mut policy: MemPolicy<'_>,
    trace: impl Iterator<Item = Instr>,
    max_instrs: u64,
) -> CpuStats {
    config.validate().expect("invalid CPU configuration");
    let window = config.window_size as usize;
    let lsq = config.lsq_size as usize;

    // The L1-I line size defines fetch blocks; its hit latency is hidden by
    // fetch pipelining, so only the excess stalls the front end.
    let (l1i_block_shift, l1i_latency) = {
        let info = hierarchy
            .structures()
            .iter()
            .find(|s| s.level == 1 && !s.data_only)
            .expect("hierarchy has an L1 instruction path");
        let lat = hierarchy.cache(info.id).config().hit_latency;
        (info.block_bytes.trailing_zeros(), lat)
    };

    let mut complete = vec![0u64; window];
    let mut replay_pen = vec![0u64; window];
    let mut commit = vec![0u64; window];
    let mut issue_ports = vec![0u64; config.issue_width as usize];
    let mut dcache_ports = vec![0u64; config.dcache_ports as usize];
    let mut mem_ring = vec![0u64; lsq];
    let mut mem_count: usize = 0;

    let mut fetch_cycle: u64 = 0;
    let mut fetched: u32 = 0;
    let mut cur_block: Option<u64> = None;
    let mut redirect_ready: u64 = 0;
    let mut commit_cycle: u64 = 0;
    let mut committed: u32 = 0;
    let mut last_commit: u64 = 0;

    let mut stats = CpuStats::default();
    let mut i: usize = 0;

    for instr in trace.take(max_instrs as usize) {
        // ---- fetch ----
        let mut earliest = redirect_ready;
        if i >= window {
            earliest = earliest.max(commit[(i - window) % window]);
        }
        if earliest > fetch_cycle {
            fetch_cycle = earliest;
            fetched = 0;
        }
        let block = instr.pc >> l1i_block_shift;
        if cur_block != Some(block) {
            let lat = policy.access(hierarchy, Access::fetch(instr.pc)).latency;
            stats.fetch_accesses += 1;
            stats.fetch_latency_sum += lat;
            let bubble = lat.saturating_sub(l1i_latency);
            if bubble > 0 {
                fetch_cycle += bubble;
                fetched = 0;
            }
            cur_block = Some(block);
        }
        if fetched >= config.fetch_width {
            fetch_cycle += 1;
            fetched = 0;
        }
        fetched += 1;
        let fetch_time = fetch_cycle;

        // ---- dispatch + dataflow ready ----
        let dep_time = |d: u8| -> u64 {
            let d = d as usize;
            if d == 0 || d > i || d >= window {
                0
            } else {
                // A dependent of an unpredicted missing load is woken
                // speculatively and replayed: its effective readiness is
                // the producer's completion plus the replay penalty.
                complete[(i - d) % window] + replay_pen[(i - d) % window]
            }
        };
        let ready = (fetch_time + 1).max(dep_time(instr.src1)).max(dep_time(instr.src2));

        // ---- issue port ----
        let port = issue_ports
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(idx, _)| idx)
            .expect("at least one issue port");
        let issue = ready.max(issue_ports[port]);
        issue_ports[port] = issue + 1;

        // ---- execute ----
        let mut penalty = 0u64;
        let done = match instr.kind {
            InstrKind::Op { latency } => issue + u64::from(latency),
            InstrKind::Load { addr } => {
                let out = policy.access(hierarchy, Access::load(addr));
                let lat = out.latency;
                stats.loads += 1;
                stats.load_latency_sum += lat;
                if let LoadSpeculation::Replay { penalty: p } = config.load_speculation {
                    if out.supply_level > 1 && !out.known_long {
                        penalty = p;
                        stats.replays += 1;
                    }
                }
                // MLP limit: the LSQ admits a new memory op only when the
                // lsq-oldest one has completed; a D-cache port must also
                // be free in the start cycle.
                let port = cheapest(&dcache_ports);
                let start = issue.max(mem_ring[mem_count % lsq]).max(dcache_ports[port]);
                dcache_ports[port] = start + 1;
                let done = start + lat;
                mem_ring[mem_count % lsq] = done;
                mem_count += 1;
                done
            }
            InstrKind::Store { addr } => {
                // Write-allocate for cache contents/energy; retirement does
                // not wait for the write to drain.
                policy.access(hierarchy, Access::store(addr));
                stats.stores += 1;
                let port = cheapest(&dcache_ports);
                let start = issue.max(mem_ring[mem_count % lsq]).max(dcache_ports[port]);
                dcache_ports[port] = start + 1;
                let done = start + 1;
                mem_ring[mem_count % lsq] = done;
                mem_count += 1;
                done
            }
            InstrKind::Branch { mispredicted } => {
                stats.branches += 1;
                let done = issue + 1;
                if mispredicted {
                    stats.mispredicts += 1;
                    redirect_ready = redirect_ready.max(done + config.mispredict_penalty);
                    cur_block = None;
                }
                done
            }
        };
        complete[i % window] = done;
        replay_pen[i % window] = penalty;

        // ---- in-order commit ----
        let c = (done + 1).max(last_commit);
        if c > commit_cycle {
            commit_cycle = c;
            committed = 0;
        }
        if committed >= config.commit_width {
            commit_cycle += 1;
            committed = 0;
        }
        committed += 1;
        commit[i % window] = commit_cycle;
        last_commit = commit_cycle;

        i += 1;
    }

    stats.instructions = i as u64;
    stats.cycles = last_commit;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::HierarchyConfig;
    use mnm_core::MnmConfig;
    use trace_synth::{profiles, Program};

    fn hier() -> Hierarchy {
        Hierarchy::new(HierarchyConfig::paper_five_level())
    }

    fn ops(n: usize, src1: u8) -> Vec<Instr> {
        // PCs loop over a small footprint so the I-side stays warm and the
        // back end is what gets measured.
        (0..n)
            .map(|k| Instr {
                pc: 0x40_0000 + 4 * (k % 64) as u64,
                kind: InstrKind::Op { latency: 1 },
                src1,
                src2: 0,
            })
            .collect()
    }

    #[test]
    fn independent_ops_reach_issue_width_ipc() {
        let cfg = CpuConfig::paper_eight_way();
        let mut h = hier();
        let trace = ops(100_000, 0);
        let s = simulate(&cfg, &mut h, MemPolicy::Baseline, trace.into_iter(), u64::MAX);
        assert_eq!(s.instructions, 100_000);
        assert!(s.ipc() > 6.0, "independent ops should sustain near-width IPC, got {}", s.ipc());
    }

    #[test]
    fn serial_dependence_chains_limit_ipc_to_one() {
        let cfg = CpuConfig::paper_eight_way();
        let mut h = hier();
        let trace = ops(10_000, 1); // each op depends on its predecessor
        let s = simulate(&cfg, &mut h, MemPolicy::Baseline, trace.into_iter(), u64::MAX);
        assert!(s.ipc() < 1.2, "a serial chain cannot exceed IPC 1, got {}", s.ipc());
    }

    #[test]
    fn mispredicts_slow_execution() {
        let cfg = CpuConfig::paper_eight_way();
        let mk = |mispredict: bool| -> Vec<Instr> {
            (0..5000)
                .map(|k| Instr {
                    pc: 0x40_0000 + 4 * (k % 64) as u64,
                    kind: if k % 5 == 0 {
                        InstrKind::Branch { mispredicted: mispredict && k % 25 == 0 }
                    } else {
                        InstrKind::Op { latency: 1 }
                    },
                    src1: 0,
                    src2: 0,
                })
                .collect()
        };
        let mut h1 = hier();
        let clean = simulate(&cfg, &mut h1, MemPolicy::Baseline, mk(false).into_iter(), u64::MAX);
        let mut h2 = hier();
        let dirty = simulate(&cfg, &mut h2, MemPolicy::Baseline, mk(true).into_iter(), u64::MAX);
        assert!(dirty.cycles > clean.cycles);
        assert_eq!(dirty.mispredicts, 5000 / 25);
    }

    #[test]
    fn cold_loads_cost_more_than_warm_loads() {
        let cfg = CpuConfig::paper_eight_way();
        let mk = |stride: u64| -> Vec<Instr> {
            (0..2000u64)
                .map(|k| Instr {
                    pc: 0x40_0000 + 4 * (k % 16),
                    kind: InstrKind::Load { addr: 0x1000_0000 + (k * stride) % 0x10_0000 },
                    src1: 1, // serialize loads so latency shows
                    src2: 0,
                })
                .collect()
        };
        let mut h1 = hier();
        let warm = simulate(&cfg, &mut h1, MemPolicy::Baseline, mk(0).into_iter(), u64::MAX);
        let mut h2 = hier();
        let cold = simulate(&cfg, &mut h2, MemPolicy::Baseline, mk(4096).into_iter(), u64::MAX);
        assert!(cold.cycles > 2 * warm.cycles, "cold {} vs warm {}", cold.cycles, warm.cycles);
        assert!(cold.mean_load_latency() > warm.mean_load_latency());
    }

    #[test]
    fn window_size_gates_mlp() {
        // Independent long-latency loads: a bigger window exposes more MLP.
        let mk = || -> Vec<Instr> {
            (0..4000u64)
                .map(|k| Instr {
                    pc: 0x40_0000 + 4 * (k % 8),
                    kind: InstrKind::Load { addr: 0x1000_0000 + k * 4096 },
                    src1: 0,
                    src2: 0,
                })
                .collect()
        };
        let mut small_cfg = CpuConfig::paper_eight_way();
        small_cfg.window_size = 16;
        small_cfg.lsq_size = 8;
        let mut h1 = hier();
        let small = simulate(&small_cfg, &mut h1, MemPolicy::Baseline, mk().into_iter(), u64::MAX);
        let big_cfg = CpuConfig::paper_eight_way();
        let mut h2 = hier();
        let big = simulate(&big_cfg, &mut h2, MemPolicy::Baseline, mk().into_iter(), u64::MAX);
        assert!(big.cycles < small.cycles, "big window {} vs small {}", big.cycles, small.cycles);
    }

    #[test]
    fn mnm_never_slows_down_and_perfect_is_fastest() {
        let cfg = CpuConfig::paper_eight_way();
        let profile = profiles::by_name("181.mcf").unwrap();
        let n = 60_000u64;

        let mut h_base = hier();
        let base =
            simulate(&cfg, &mut h_base, MemPolicy::Baseline, Program::new(profile.clone()), n);

        let mut h_mnm = hier();
        let mut mnm = Mnm::new(&h_mnm, MnmConfig::hmnm(4));
        let with_mnm =
            simulate(&cfg, &mut h_mnm, MemPolicy::Mnm(&mut mnm), Program::new(profile.clone()), n);

        let mut h_perfect = hier();
        let perfect = simulate(&cfg, &mut h_perfect, MemPolicy::Perfect, Program::new(profile), n);

        assert!(with_mnm.cycles <= base.cycles, "MNM {} vs base {}", with_mnm.cycles, base.cycles);
        assert!(
            perfect.cycles <= with_mnm.cycles,
            "perfect {} vs MNM {}",
            perfect.cycles,
            with_mnm.cycles
        );
        assert!(mnm.stats().coverage() > 0.0, "the MNM must identify some misses on mcf");
        // Identical functional behaviour: same cache supply pattern.
        assert_eq!(base.loads, with_mnm.loads);
        assert_eq!(
            h_base.stats().memory_supplies,
            h_mnm.stats().memory_supplies,
            "bypassing must not change where data is found"
        );
    }

    #[test]
    fn replay_model_charges_unpredicted_misses_only() {
        use crate::config::LoadSpeculation;
        // One cold load followed by a dependent chain: under the replay
        // scheduler the dependent pays the penalty; with the perfect
        // policy (full knowledge) it does not.
        let mk = || {
            vec![
                Instr {
                    pc: 0x40_0000,
                    kind: InstrKind::Load { addr: 0x1000_0000 },
                    src1: 0,
                    src2: 0,
                },
                Instr { pc: 0x40_0004, kind: InstrKind::Op { latency: 1 }, src1: 1, src2: 0 },
                Instr { pc: 0x40_0008, kind: InstrKind::Op { latency: 1 }, src1: 1, src2: 0 },
            ]
        };
        let cfg = CpuConfig::paper_eight_way()
            .with_load_speculation(LoadSpeculation::Replay { penalty: 50 });
        let mut h1 = hier();
        let with_replay = simulate(&cfg, &mut h1, MemPolicy::Baseline, mk().into_iter(), u64::MAX);
        assert_eq!(with_replay.replays, 1, "the cold load replays its dependents");

        let mut h2 = hier();
        let oracle = simulate(&cfg, &mut h2, MemPolicy::Perfect, mk().into_iter(), u64::MAX);
        assert_eq!(oracle.replays, 0, "full knowledge avoids the replay");
        assert!(oracle.cycles + 50 <= with_replay.cycles, "the penalty is visible in cycles");

        // Without the replay model the baseline pays nothing either.
        let plain_cfg = CpuConfig::paper_eight_way();
        let mut h3 = hier();
        let plain = simulate(&plain_cfg, &mut h3, MemPolicy::Baseline, mk().into_iter(), u64::MAX);
        assert_eq!(plain.replays, 0);
        assert!(plain.cycles < with_replay.cycles);
    }

    #[test]
    fn dcache_ports_throttle_memory_bandwidth() {
        // Independent L1-hitting loads: with 1 port, at most 1 begins per
        // cycle; with 4 ports, 4 do.
        let mk = || -> Vec<Instr> {
            (0..4000u64)
                .map(|k| Instr {
                    pc: 0x40_0000 + 4 * (k % 8),
                    kind: InstrKind::Load { addr: 0x1000_0000 + (k % 8) * 32 },
                    src1: 0,
                    src2: 0,
                })
                .collect()
        };
        let mut narrow = CpuConfig::paper_eight_way();
        narrow.dcache_ports = 1;
        let mut h1 = hier();
        let one = simulate(&narrow, &mut h1, MemPolicy::Baseline, mk().into_iter(), u64::MAX);
        let wide = CpuConfig::paper_eight_way(); // 4 ports
        let mut h2 = hier();
        let four = simulate(&wide, &mut h2, MemPolicy::Baseline, mk().into_iter(), u64::MAX);
        assert!(one.cycles > four.cycles * 2, "1 port {} vs 4 ports {}", one.cycles, four.cycles);
    }

    #[test]
    fn trace_shorter_than_budget_ends_cleanly() {
        let cfg = CpuConfig::paper_eight_way();
        let mut h = hier();
        let s = simulate(&cfg, &mut h, MemPolicy::Baseline, ops(10, 0).into_iter(), 1000);
        assert_eq!(s.instructions, 10);
        assert!(s.cycles > 0);
    }
}
