//! Property-based tests of the timing model: monotonicity in resources
//! and latencies, bounds on cycle counts, and policy orderings.

use cache_sim::{Hierarchy, HierarchyConfig};
use ooo_model::{simulate, CpuConfig, LoadSpeculation, MemPolicy};
use proptest::prelude::*;
use trace_synth::{profiles, Instr, InstrKind, Program};

fn hier() -> Hierarchy {
    Hierarchy::new(HierarchyConfig::paper_five_level())
}

/// Random but structurally valid instruction traces.
fn traces() -> impl Strategy<Value = Vec<Instr>> {
    proptest::collection::vec((0u8..4, 0u32..0x20000, 0u8..4, any::<bool>()), 50..600).prop_map(
        |raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, (kind, addr, dep, flag))| {
                    let pc = 0x40_0000 + 4 * ((i as u64 * 7) % 512);
                    let kind = match kind {
                        0 => InstrKind::Op { latency: 1 + (addr % 4) as u8 },
                        1 => InstrKind::Load { addr: 0x1000_0000 + u64::from(addr) & !7 },
                        2 => InstrKind::Store { addr: 0x1000_0000 + u64::from(addr) & !7 },
                        _ => InstrKind::Branch { mispredicted: flag && i % 7 == 0 },
                    };
                    Instr { pc, kind, src1: dep, src2: 0 }
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cycle counts are bounded below by the bandwidth limit and above by
    /// fully-serial execution.
    #[test]
    fn cycles_within_structural_bounds(trace in traces()) {
        let cfg = CpuConfig::paper_eight_way();
        let n = trace.len() as u64;
        let mut h = hier();
        let s = simulate(&cfg, &mut h, MemPolicy::Baseline, trace.into_iter(), u64::MAX);
        prop_assert_eq!(s.instructions, n);
        prop_assert!(s.cycles >= n / u64::from(cfg.commit_width));
        // Generous serial upper bound: every instruction pays a full
        // memory round trip plus overheads.
        prop_assert!(s.cycles <= (n + 10) * 600, "cycles {} for {} instrs", s.cycles, n);
    }

    /// More resources never hurt: doubling widths/window/LSQ cannot
    /// increase the cycle count on the same trace.
    #[test]
    fn resources_are_monotone(trace in traces()) {
        let small = CpuConfig {
            fetch_width: 2,
            issue_width: 2,
            commit_width: 2,
            window_size: 16,
            lsq_size: 8,
            dcache_ports: 1,
            mispredict_penalty: 8,
            load_speculation: LoadSpeculation::None,
        };
        let big = CpuConfig {
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            window_size: 32,
            lsq_size: 16,
            dcache_ports: 2,
            mispredict_penalty: 8,
            load_speculation: LoadSpeculation::None,
        };
        let mut h1 = hier();
        let a = simulate(&small, &mut h1, MemPolicy::Baseline, trace.clone().into_iter(), u64::MAX);
        let mut h2 = hier();
        let b = simulate(&big, &mut h2, MemPolicy::Baseline, trace.into_iter(), u64::MAX);
        prop_assert!(b.cycles <= a.cycles, "big {} vs small {}", b.cycles, a.cycles);
    }

    /// Memory policies are ordered: perfect <= baseline on the same trace
    /// (the bypassed walk is never longer).
    #[test]
    fn perfect_policy_dominates_baseline(trace in traces()) {
        let cfg = CpuConfig::paper_eight_way();
        let mut h1 = hier();
        let base = simulate(&cfg, &mut h1, MemPolicy::Baseline, trace.clone().into_iter(), u64::MAX);
        let mut h2 = hier();
        let perfect = simulate(&cfg, &mut h2, MemPolicy::Perfect, trace.into_iter(), u64::MAX);
        prop_assert!(perfect.cycles <= base.cycles);
        prop_assert_eq!(perfect.instructions, base.instructions);
        // Functional equivalence: same supply distribution.
        prop_assert_eq!(
            h1.stats().supplies_by_level.clone(),
            h2.stats().supplies_by_level.clone()
        );
    }

    /// The instruction budget is respected exactly.
    #[test]
    fn budget_truncates_exactly(trace in traces(), budget in 1u64..200) {
        let cfg = CpuConfig::paper_eight_way();
        let mut h = hier();
        let n = trace.len() as u64;
        let s = simulate(&cfg, &mut h, MemPolicy::Baseline, trace.into_iter(), budget);
        prop_assert_eq!(s.instructions, budget.min(n));
    }
}

/// Warm loads on a real profile: splitting a run into two simulate calls
/// continues cleanly (stats accumulate per phase, caches stay warm).
#[test]
fn phased_simulation_keeps_caches_warm() {
    let cfg = CpuConfig::paper_eight_way();
    let profile = profiles::by_name("164.gzip").unwrap();
    let mut h = hier();
    let mut program = Program::new(profile);
    let first = simulate(&cfg, &mut h, MemPolicy::Baseline, &mut program, 30_000);
    let warm_misses = h.stats().structures[1].misses;
    let second = simulate(&cfg, &mut h, MemPolicy::Baseline, &mut program, 30_000);
    let total_misses = h.stats().structures[1].misses;
    // The second phase misses less than the first did (warm caches).
    assert!(total_misses - warm_misses <= warm_misses);
    assert_eq!(first.instructions, 30_000);
    assert_eq!(second.instructions, 30_000);
}
