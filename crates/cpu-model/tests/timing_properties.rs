//! Tests of the timing model: monotonicity in resources and latencies,
//! bounds on cycle counts, and policy orderings. Deterministic seeded
//! sweeps (formerly proptest).

use cache_sim::{Hierarchy, HierarchyConfig};
use ooo_model::{simulate, CpuConfig, LoadSpeculation, MemPolicy};
use trace_synth::{profiles, Instr, InstrKind, Program};

/// Minimal deterministic generator for test inputs (splitmix64).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn hier() -> Hierarchy {
    Hierarchy::new(HierarchyConfig::paper_five_level())
}

/// Random but structurally valid instruction traces.
fn trace(gen: &mut Gen) -> Vec<Instr> {
    let n = 50 + gen.next() % 550;
    (0..n)
        .map(|i| {
            let addr = (gen.next() % 0x20000) as u32;
            let dep = (gen.next() % 4) as u8;
            let flag = gen.next().is_multiple_of(2);
            let pc = 0x40_0000 + 4 * ((i * 7) % 512);
            let kind = match gen.next() % 4 {
                0 => InstrKind::Op { latency: 1 + (addr % 4) as u8 },
                1 => InstrKind::Load { addr: (0x1000_0000 + u64::from(addr)) & !7 },
                2 => InstrKind::Store { addr: (0x1000_0000 + u64::from(addr)) & !7 },
                _ => InstrKind::Branch { mispredicted: flag && i % 7 == 0 },
            };
            Instr { pc, kind, src1: dep, src2: 0 }
        })
        .collect()
}

/// Cycle counts are bounded below by the bandwidth limit and above by
/// fully-serial execution.
#[test]
fn cycles_within_structural_bounds() {
    let mut gen = Gen(0xB0714D5);
    for _ in 0..24 {
        let t = trace(&mut gen);
        let cfg = CpuConfig::paper_eight_way();
        let n = t.len() as u64;
        let mut h = hier();
        let s = simulate(&cfg, &mut h, MemPolicy::Baseline, t.into_iter(), u64::MAX);
        assert_eq!(s.instructions, n);
        assert!(s.cycles >= n / u64::from(cfg.commit_width));
        // Generous serial upper bound: every instruction pays a full
        // memory round trip plus overheads.
        assert!(s.cycles <= (n + 10) * 600, "cycles {} for {} instrs", s.cycles, n);
    }
}

/// More resources never hurt: doubling widths/window/LSQ cannot
/// increase the cycle count on the same trace.
#[test]
fn resources_are_monotone() {
    let mut gen = Gen(0x2E5);
    for _ in 0..24 {
        let t = trace(&mut gen);
        let small = CpuConfig {
            fetch_width: 2,
            issue_width: 2,
            commit_width: 2,
            window_size: 16,
            lsq_size: 8,
            dcache_ports: 1,
            mispredict_penalty: 8,
            load_speculation: LoadSpeculation::None,
        };
        let big = CpuConfig {
            fetch_width: 4,
            issue_width: 4,
            commit_width: 4,
            window_size: 32,
            lsq_size: 16,
            dcache_ports: 2,
            mispredict_penalty: 8,
            load_speculation: LoadSpeculation::None,
        };
        let mut h1 = hier();
        let a = simulate(&small, &mut h1, MemPolicy::Baseline, t.clone().into_iter(), u64::MAX);
        let mut h2 = hier();
        let b = simulate(&big, &mut h2, MemPolicy::Baseline, t.into_iter(), u64::MAX);
        assert!(b.cycles <= a.cycles, "big {} vs small {}", b.cycles, a.cycles);
    }
}

/// Memory policies are ordered: perfect <= baseline on the same trace
/// (the bypassed walk is never longer).
#[test]
fn perfect_policy_dominates_baseline() {
    let mut gen = Gen(0xD0);
    for _ in 0..24 {
        let t = trace(&mut gen);
        let cfg = CpuConfig::paper_eight_way();
        let mut h1 = hier();
        let base = simulate(&cfg, &mut h1, MemPolicy::Baseline, t.clone().into_iter(), u64::MAX);
        let mut h2 = hier();
        let perfect = simulate(&cfg, &mut h2, MemPolicy::Perfect, t.into_iter(), u64::MAX);
        assert!(perfect.cycles <= base.cycles);
        assert_eq!(perfect.instructions, base.instructions);
        // Functional equivalence: same supply distribution.
        assert_eq!(h1.stats().supplies_by_level, h2.stats().supplies_by_level);
    }
}

/// The instruction budget is respected exactly.
#[test]
fn budget_truncates_exactly() {
    let mut gen = Gen(0xB4D9E7);
    for _ in 0..24 {
        let t = trace(&mut gen);
        let budget = 1 + gen.next() % 199;
        let cfg = CpuConfig::paper_eight_way();
        let mut h = hier();
        let n = t.len() as u64;
        let s = simulate(&cfg, &mut h, MemPolicy::Baseline, t.into_iter(), budget);
        assert_eq!(s.instructions, budget.min(n));
    }
}

/// Warm loads on a real profile: splitting a run into two simulate calls
/// continues cleanly (stats accumulate per phase, caches stay warm).
#[test]
fn phased_simulation_keeps_caches_warm() {
    let cfg = CpuConfig::paper_eight_way();
    let profile = profiles::by_name("164.gzip").unwrap();
    let mut h = hier();
    let mut program = Program::new(profile);
    let first = simulate(&cfg, &mut h, MemPolicy::Baseline, &mut program, 30_000);
    let warm_misses = h.stats().structures[1].misses;
    let second = simulate(&cfg, &mut h, MemPolicy::Baseline, &mut program, 30_000);
    let total_misses = h.stats().structures[1].misses;
    // The second phase misses less than the first did (warm caches).
    assert!(total_misses - warm_misses <= warm_misses);
    assert_eq!(first.instructions, 30_000);
    assert_eq!(second.instructions, 30_000);
}
