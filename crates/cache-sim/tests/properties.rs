//! Property-style tests of the cache simulator's core invariants.
//!
//! Formerly proptest-based; rewritten as deterministic seeded sweeps (a
//! local splitmix64 drives the input generation) so the workspace builds
//! with no external crates. Each property runs over many seeds, covering
//! the same input distributions as before on every run.

use cache_sim::{
    Access, AccessKind, BypassSet, Cache, CacheConfig, EventKind, Hierarchy, HierarchyConfig,
    LevelConfig, ProbeOutcome, ReplacementPolicy, ReplayScratch,
};
use std::collections::HashSet;

/// Minimal deterministic generator for test inputs (splitmix64).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }

    fn addrs(&mut self, bound: u64, max_len: u64) -> Vec<u64> {
        let n = 1 + self.below(max_len);
        (0..n).map(|_| self.below(bound)).collect()
    }
}

fn small_config(assoc: u32, policy: ReplacementPolicy) -> CacheConfig {
    CacheConfig::new("t", 8 * u64::from(assoc) * 32, assoc, 32, 1).with_replacement(policy)
}

/// A reference model over a set-associative cache: occupancy never
/// exceeds capacity, a just-filled block is always resident, and
/// evictions report blocks that were genuinely resident.
#[test]
fn cache_matches_reference_semantics() {
    let policies = [ReplacementPolicy::Lru, ReplacementPolicy::Fifo, ReplacementPolicy::Random];
    let mut gen = Gen(0xCAC4E);
    for case in 0..64u64 {
        let assoc = 1 + (case % 4) as u32;
        let policy = policies[(case / 4) as usize % policies.len()];
        let addrs = gen.addrs(0x4000, 400);

        let cache = Cache::new(small_config(assoc, policy));
        let capacity = cache.config().num_blocks() as usize;
        let mut resident: HashSet<u64> = HashSet::new();
        let mut hier = Hierarchy::new(HierarchyConfig {
            levels: vec![LevelConfig::Unified(small_config(assoc, policy))],
            memory_latency: 10,
            inclusive: false,
        });
        let mut scratch = ReplayScratch::new();
        for &addr in &addrs {
            let base = cache.block_base(addr);
            hier.access_with_events(Access::load(addr), &BypassSet::none(), &mut scratch);
            for ev in scratch.events() {
                match ev.kind {
                    EventKind::Placed => {
                        assert_eq!(ev.block_base, base);
                        resident.insert(ev.block_base);
                    }
                    EventKind::Replaced | EventKind::Invalidated => {
                        assert!(
                            resident.remove(&ev.block_base),
                            "removed a block that was not resident: {:#x}",
                            ev.block_base
                        );
                    }
                }
            }
            assert!(resident.len() <= capacity);
            assert!(resident.contains(&base), "block must be resident after access");
            let sid = hier.structures()[0].id;
            assert!(hier.contains(sid, addr));
        }
        // The reference set and the cache agree exactly.
        let sid = hier.structures()[0].id;
        for &b in &resident {
            assert!(hier.contains(sid, b));
        }
        assert_eq!(hier.cache(sid).occupancy(), resident.len());
    }
}

/// Latency accounting: every access's latency equals the sum of its
/// probe latencies plus memory when it reached memory.
#[test]
fn latency_is_sum_of_probe_latencies() {
    let mut gen = Gen(0x1A7E);
    for _ in 0..64 {
        let addrs = gen.addrs(0x20000, 300);
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut scratch = ReplayScratch::new();
        for &addr in &addrs {
            let r = hier.access_with_events(Access::load(addr), &BypassSet::none(), &mut scratch);
            let probe_sum: u64 = scratch.probes().iter().map(|p| p.latency).sum();
            let mem = if r.supply_level == hier.memory_level() {
                hier.config().memory_latency
            } else {
                0
            };
            assert_eq!(r.latency, probe_sum + mem);
        }
        assert_eq!(hier.stats().accesses, addrs.len() as u64);
    }
}

/// Statistics are internally consistent after any access mix.
#[test]
fn stats_are_consistent() {
    let mut gen = Gen(0x57A75);
    for _ in 0..64 {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let n = 1 + gen.below(400);
        let mut instr = 0u64;
        for _ in 0..n {
            let addr = gen.below(0x10000);
            let access = match gen.below(3) {
                0 => Access::load(addr),
                1 => Access::store(addr),
                _ => {
                    instr += 1;
                    Access::fetch(addr)
                }
            };
            hier.access(access, &BypassSet::none());
        }
        let s = hier.stats();
        assert_eq!(s.accesses, s.instr_accesses + s.data_accesses);
        assert_eq!(s.instr_accesses, instr);
        assert_eq!(s.accesses, s.supplies_by_level.iter().sum::<u64>());
        for st in &s.structures {
            assert_eq!(st.probes, st.hits + st.misses);
            assert!(st.evictions <= st.fills);
        }
        // L1 structures are probed exactly once per access on their path.
        let il1 = &s.structures[0];
        let dl1 = &s.structures[1];
        assert_eq!(il1.probes, s.instr_accesses);
        assert_eq!(dl1.probes, s.data_accesses);
    }
}

/// Event stream exactness: every Placed block is findable afterwards;
/// sub-block expansion covers the full line.
#[test]
fn events_expand_consistently() {
    let mut gen = Gen(0xE7E27);
    for _ in 0..64 {
        let addrs = gen.addrs(0x40000, 200);
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut scratch = ReplayScratch::new();
        for &addr in &addrs {
            hier.access_with_events(Access::load(addr), &BypassSet::none(), &mut scratch);
            for ev in scratch.events() {
                let grain = 32; // the MNM granularity of this config
                let subs: Vec<u64> = ev.sub_blocks(grain).collect();
                assert_eq!(subs.len() as u64, (ev.block_bytes / grain).max(1));
                // Sub-blocks are contiguous and cover the line.
                for w in subs.windows(2) {
                    assert_eq!(w[1], w[0] + 1);
                }
                assert_eq!(subs[0] << 5, ev.block_base);
                if ev.kind == EventKind::Placed {
                    assert!(hier.contains(ev.structure, ev.block_base));
                }
            }
        }
    }
}

/// The instruction path never touches data-only structures and vice versa.
#[test]
fn paths_are_disjoint_at_split_levels() {
    let mut gen = Gen(0xD15701);
    for _ in 0..64 {
        let addrs = gen.addrs(0x8000, 200);
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        for &addr in &addrs {
            hier.access(Access::fetch(addr), &BypassSet::none());
        }
        let s = hier.stats();
        // dl1 (index 1) and dl2 (index 3) untouched by pure fetch streams.
        assert_eq!(s.structures[1].probes, 0);
        assert_eq!(s.structures[3].probes, 0);
        assert_eq!(s.structures[1].fills, 0);
    }
}

/// dry_run_misses agrees with what a subsequent access actually does,
/// and never mutates state.
#[test]
fn dry_run_predicts_the_walk() {
    let mut gen = Gen(0xD2112);
    for _ in 0..64 {
        let warm = gen.addrs(0x8000, 150);
        let probe = gen.below(0x8000);
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        for &addr in &warm {
            hier.access(Access::load(addr), &BypassSet::none());
        }
        let predicted: Vec<_> = hier.dry_run_misses(Access::load(probe));
        let again: Vec<_> = hier.dry_run_misses(Access::load(probe));
        assert_eq!(&predicted, &again, "dry run must be pure");
        let mut scratch = ReplayScratch::new();
        hier.access_with_events(Access::load(probe), &BypassSet::none(), &mut scratch);
        let actual: Vec<_> = scratch
            .probes()
            .iter()
            .filter(|p| p.level > 1 && p.outcome == ProbeOutcome::Miss)
            .map(|p| p.structure)
            .collect();
        assert_eq!(predicted, actual);
    }
}

/// The reusable-scratch hot path and a fresh-scratch-per-access replay
/// produce byte-identical statistics and results: buffer reuse is purely
/// an allocation optimisation, never a semantic change.
#[test]
fn scratch_reuse_matches_fresh_allocation_exactly() {
    let mut gen = Gen(0x5C2A7C4);
    for _ in 0..32 {
        let mut reused = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut fresh = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut scratch = ReplayScratch::new();
        let n = 1 + gen.below(500);
        for _ in 0..n {
            let addr = gen.below(0x20000);
            let access = match gen.below(3) {
                0 => Access::load(addr),
                1 => Access::store(addr),
                _ => Access::fetch(addr),
            };
            let a = reused.access_with_events(access, &BypassSet::none(), &mut scratch);
            let mut one_shot = ReplayScratch::new();
            let b = fresh.access_with_events(access, &BypassSet::none(), &mut one_shot);
            assert_eq!(a, b);
            assert_eq!(scratch.probes(), one_shot.probes());
            assert_eq!(scratch.events(), one_shot.events());
        }
        assert_eq!(reused.stats(), fresh.stats());
    }
}

#[test]
fn access_kind_paths_share_unified_levels() {
    let hier = Hierarchy::new(HierarchyConfig::paper_five_level());
    let i_path = hier.path(AccessKind::InstrFetch);
    let d_path = hier.path(AccessKind::Load);
    assert_eq!(i_path.len(), 5);
    assert_eq!(d_path.len(), 5);
    assert_ne!(i_path[0], d_path[0]);
    assert_ne!(i_path[1], d_path[1]);
    assert_eq!(&i_path[2..], &d_path[2..]);
}
