//! Property-based tests of the cache simulator's core invariants.

use cache_sim::{
    Access, AccessKind, BypassSet, Cache, CacheConfig, CacheEvent, EventKind, Hierarchy,
    HierarchyConfig, LevelConfig, ReplacementPolicy,
};
use proptest::prelude::*;
use std::collections::HashSet;

fn small_config(assoc: u32, policy: ReplacementPolicy) -> CacheConfig {
    CacheConfig::new("t", 8 * u64::from(assoc) * 32, assoc, 32, 1).with_replacement(policy)
}

fn policy_strategy() -> impl Strategy<Value = ReplacementPolicy> {
    prop_oneof![
        Just(ReplacementPolicy::Lru),
        Just(ReplacementPolicy::Fifo),
        Just(ReplacementPolicy::Random),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A reference model over a set-associative cache: occupancy never
    /// exceeds capacity, a just-filled block is always resident, and
    /// evictions report blocks that were genuinely resident.
    #[test]
    fn cache_matches_reference_semantics(
        addrs in proptest::collection::vec(0u64..0x4000, 1..400),
        assoc in 1u32..=4,
        policy in policy_strategy(),
    ) {
        let mut cache = Cache::new(small_config(assoc, policy));
        let capacity = cache.config().num_blocks() as usize;
        let mut resident: HashSet<u64> = HashSet::new();
        let mut hier = Hierarchy::new(HierarchyConfig {
            levels: vec![LevelConfig::Unified(small_config(assoc, policy))],
            memory_latency: 10,
            inclusive: false,
        });
        let mut events = Vec::new();
        for &addr in &addrs {
            let base = cache.block_base(addr);
            // Drive the same stream through a 1-level hierarchy, whose
            // fills exercise Cache::fill.
            events.clear();
            hier.access_with_events(Access::load(addr), &BypassSet::none(), &mut events);
            for ev in &events {
                match ev.kind {
                    EventKind::Placed => {
                        prop_assert_eq!(ev.block_base, base);
                        resident.insert(ev.block_base);
                    }
                    EventKind::Replaced => {
                        prop_assert!(
                            resident.remove(&ev.block_base),
                            "evicted a block that was not resident: {:#x}",
                            ev.block_base
                        );
                    }
                }
            }
            prop_assert!(resident.len() <= capacity);
            prop_assert!(resident.contains(&base), "block must be resident after access");
            let sid = hier.structures()[0].id;
            prop_assert!(hier.contains(sid, addr));
        }
        // The reference set and the cache agree exactly.
        let sid = hier.structures()[0].id;
        for &b in &resident {
            prop_assert!(hier.contains(sid, b));
        }
        prop_assert_eq!(hier.cache(sid).occupancy(), resident.len());
    }

    /// Latency accounting: every access's latency equals the sum of its
    /// probe latencies plus memory when it reached memory.
    #[test]
    fn latency_is_sum_of_probe_latencies(
        addrs in proptest::collection::vec(0u64..0x20000, 1..300),
    ) {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        for &addr in &addrs {
            let r = hier.access(Access::load(addr), &BypassSet::none());
            let probe_sum: u64 = r.probes.iter().map(|p| p.latency).sum();
            let mem = if r.supply_level == hier.memory_level() {
                hier.config().memory_latency
            } else {
                0
            };
            prop_assert_eq!(r.latency, probe_sum + mem);
        }
        // Aggregate check: total latency equals the sum of per-access ones.
        let s = hier.stats();
        prop_assert_eq!(s.accesses, addrs.len() as u64);
    }

    /// Statistics are internally consistent after any access mix.
    #[test]
    fn stats_are_consistent(
        accesses in proptest::collection::vec((0u64..0x10000, 0u8..3), 1..400),
    ) {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        for &(addr, kind) in &accesses {
            let access = match kind {
                0 => Access::load(addr),
                1 => Access::store(addr),
                _ => Access::fetch(addr),
            };
            hier.access(access, &BypassSet::none());
        }
        let s = hier.stats();
        prop_assert_eq!(s.accesses, s.instr_accesses + s.data_accesses);
        prop_assert_eq!(s.accesses, s.supplies_by_level.iter().sum::<u64>());
        for st in &s.structures {
            prop_assert_eq!(st.probes, st.hits + st.misses);
            prop_assert!(st.evictions <= st.fills);
        }
        // L1 structures are probed exactly once per access on their path.
        let il1 = &s.structures[0];
        let dl1 = &s.structures[1];
        prop_assert_eq!(il1.probes, s.instr_accesses);
        prop_assert_eq!(dl1.probes, s.data_accesses);
    }

    /// Event stream exactness: every Placed block is findable afterwards;
    /// sub-block expansion covers the full line.
    #[test]
    fn events_expand_consistently(
        addrs in proptest::collection::vec(0u64..0x40000, 1..200),
    ) {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut events: Vec<CacheEvent> = Vec::new();
        for &addr in &addrs {
            events.clear();
            hier.access_with_events(Access::load(addr), &BypassSet::none(), &mut events);
            for ev in &events {
                let grain = 32; // the MNM granularity of this config
                let subs: Vec<u64> = ev.sub_blocks(grain).collect();
                prop_assert_eq!(subs.len() as u64, (ev.block_bytes / grain).max(1));
                // Sub-blocks are contiguous and cover the line.
                for w in subs.windows(2) {
                    prop_assert_eq!(w[1], w[0] + 1);
                }
                prop_assert_eq!(subs[0] << 5, ev.block_base);
                if ev.kind == EventKind::Placed {
                    prop_assert!(hier.contains(ev.structure, ev.block_base));
                }
            }
        }
    }

    /// The instruction path never touches data-only structures and vice
    /// versa.
    #[test]
    fn paths_are_disjoint_at_split_levels(
        addrs in proptest::collection::vec(0u64..0x8000, 1..200),
    ) {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        for &addr in &addrs {
            hier.access(Access::fetch(addr), &BypassSet::none());
        }
        let s = hier.stats();
        // dl1 (index 1) and dl2 (index 3) untouched by pure fetch streams.
        prop_assert_eq!(s.structures[1].probes, 0);
        prop_assert_eq!(s.structures[3].probes, 0);
        prop_assert_eq!(s.structures[1].fills, 0);
    }

    /// dry_run_misses agrees with what a subsequent access actually does,
    /// and never mutates state.
    #[test]
    fn dry_run_predicts_the_walk(
        warm in proptest::collection::vec(0u64..0x8000, 0..150),
        probe in 0u64..0x8000,
    ) {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        for &addr in &warm {
            hier.access(Access::load(addr), &BypassSet::none());
        }
        let predicted: Vec<_> = hier.dry_run_misses(Access::load(probe));
        let again: Vec<_> = hier.dry_run_misses(Access::load(probe));
        prop_assert_eq!(&predicted, &again, "dry run must be pure");
        let r = hier.access(Access::load(probe), &BypassSet::none());
        let actual: Vec<_> = r
            .probes
            .iter()
            .filter(|p| p.level > 1 && p.outcome == cache_sim::ProbeOutcome::Miss)
            .map(|p| p.structure)
            .collect();
        prop_assert_eq!(predicted, actual);
    }
}

#[test]
fn access_kind_paths_share_unified_levels() {
    let hier = Hierarchy::new(HierarchyConfig::paper_five_level());
    let i_path = hier.path(AccessKind::InstrFetch);
    let d_path = hier.path(AccessKind::Load);
    assert_eq!(i_path.len(), 5);
    assert_eq!(d_path.len(), 5);
    assert_ne!(i_path[0], d_path[0]);
    assert_ne!(i_path[1], d_path[1]);
    assert_eq!(&i_path[2..], &d_path[2..]);
}
