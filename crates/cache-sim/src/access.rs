//! Access descriptors, bypass sets and per-access results.

use crate::hierarchy::StructureId;

/// The kind of memory reference entering the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch; routed through the instruction-side path
    /// (L1-I, L2-I, then the unified levels).
    InstrFetch,
    /// Data read; routed through the data-side path.
    Load,
    /// Data write; routed through the data-side path (write-allocate).
    Store,
}

impl AccessKind {
    /// Whether this access travels the instruction-side path.
    pub fn is_instruction(self) -> bool {
        matches!(self, AccessKind::InstrFetch)
    }
}

/// A single reference presented to the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Byte address of the reference.
    pub addr: u64,
    /// Reference kind (instruction fetch, load, store).
    pub kind: AccessKind,
}

impl Access {
    /// Convenience constructor for a load at `addr`.
    pub fn load(addr: u64) -> Self {
        Access { addr, kind: AccessKind::Load }
    }

    /// Convenience constructor for a store at `addr`.
    pub fn store(addr: u64) -> Self {
        Access { addr, kind: AccessKind::Store }
    }

    /// Convenience constructor for an instruction fetch at `addr`.
    pub fn fetch(addr: u64) -> Self {
        Access { addr, kind: AccessKind::InstrFetch }
    }
}

/// The set of cache structures an access must *not* probe.
///
/// This models the per-level miss bits the MNM tags onto a request
/// (paper §2: "The i-th miss bit dictates whether the access should be
/// performed at level i, or whether the address should be bypassed to the
/// next cache level"). A bypassed structure contributes no latency and no
/// probe energy; the block is still filled into it on the refill path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BypassSet(u64);

impl BypassSet {
    /// The empty set: probe every level normally.
    pub fn none() -> Self {
        BypassSet(0)
    }

    /// Mark `structure` as "definitely a miss — do not probe".
    pub fn insert(&mut self, structure: StructureId) {
        debug_assert!(structure.index() < 64, "more than 64 cache structures");
        self.0 |= 1 << structure.index();
    }

    /// Whether `structure` must be bypassed.
    pub fn contains(self, structure: StructureId) -> bool {
        self.0 & (1 << structure.index()) != 0
    }

    /// Whether no structure is bypassed.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of structures marked for bypass.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }
}

impl FromIterator<StructureId> for BypassSet {
    fn from_iter<I: IntoIterator<Item = StructureId>>(iter: I) -> Self {
        let mut set = BypassSet::none();
        for s in iter {
            set.insert(s);
        }
        set
    }
}

/// What happened at one structure during an access walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// The structure was probed and held the block.
    Hit,
    /// The structure was probed and did not hold the block.
    Miss,
    /// The structure was skipped because the caller's [`BypassSet`]
    /// declared it a definite miss.
    Bypassed,
}

/// One entry in the per-access probe trail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeRecord {
    /// Which structure this record describes.
    pub structure: StructureId,
    /// Hierarchy level (1-based) of the structure.
    pub level: u8,
    /// Probe result.
    pub outcome: ProbeOutcome,
    /// Cycles this structure contributed to the access latency.
    pub latency: u64,
}

/// The result of driving one access through the hierarchy.
///
/// Deliberately `Copy` and allocation-free: the per-probe trail lives in
/// the caller's reusable [`ReplayScratch`](crate::ReplayScratch) (or the
/// hierarchy's internal scratch for [`Hierarchy::access`]
/// (crate::Hierarchy::access)), not in the result, so the replay hot path
/// never allocates per access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// 1-based level that supplied the data. Equal to
    /// [`Hierarchy::memory_level`](crate::Hierarchy::memory_level) when main
    /// memory supplied it.
    pub supply_level: u8,
    /// Total data-access latency in cycles: miss-detect time of every level
    /// probed before the supplier, plus the supplier's hit time (paper
    /// Equation 1). Bypassed levels contribute zero.
    pub latency: u64,
    /// Number of structures that were probed and missed.
    pub misses: u32,
    /// Number of structures skipped via the bypass set.
    pub bypassed: u32,
    /// Number of structures beyond level 1 that were actually probed
    /// (hit or miss, not bypassed). Together with `bypassed` this gives the
    /// number of levels a distributed MNM is consulted at.
    pub probed_beyond_l1: u32,
}

impl AccessResult {
    /// Whether the access hit in the first-level cache.
    pub fn l1_hit(&self) -> bool {
        self.supply_level == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bypass_set_insert_contains() {
        let mut set = BypassSet::none();
        assert!(set.is_empty());
        set.insert(StructureId::new(3));
        assert!(set.contains(StructureId::new(3)));
        assert!(!set.contains(StructureId::new(2)));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn bypass_set_from_iterator() {
        let set: BypassSet = [StructureId::new(1), StructureId::new(4)].into_iter().collect();
        assert_eq!(set.len(), 2);
        assert!(set.contains(StructureId::new(1)));
        assert!(set.contains(StructureId::new(4)));
        assert!(!set.contains(StructureId::new(0)));
    }

    #[test]
    fn access_constructors_set_kind() {
        assert_eq!(Access::load(8).kind, AccessKind::Load);
        assert_eq!(Access::store(8).kind, AccessKind::Store);
        assert_eq!(Access::fetch(8).kind, AccessKind::InstrFetch);
        assert!(AccessKind::InstrFetch.is_instruction());
        assert!(!AccessKind::Load.is_instruction());
    }
}
