//! # cache-sim
//!
//! A trace-driven, multi-level cache hierarchy simulator.
//!
//! This crate is the simulation substrate for the reproduction of
//! *"Just Say No: Benefits of Early Cache Miss Determination"* (HPCA 2003).
//! It models the cache system of a processor with an arbitrary number of
//! cache levels — split instruction/data caches at the lower levels and
//! unified caches above — and exposes exactly the hooks the paper's
//! *Mostly No Machine* (MNM) needs:
//!
//! * a **placement/replacement event stream** ([`CacheEvent`]) emitted for
//!   every block that enters or leaves any cache structure, which the MNM
//!   uses for its bookkeeping (paper §2);
//! * **probe-level bypass**: the caller can declare, per access, a set of
//!   structures that must not be probed ([`BypassSet`]), modelling the miss
//!   tags the MNM attaches to requests (paper §2);
//! * per-access **latency accounting** following the paper's Equation 1
//!   (hit time of the supplying level plus miss-detect time of every level
//!   probed before it).
//!
//! The hierarchy is **non-inclusive** (paper §3: "The techniques do not
//! assume the inclusion property of caches"): on a fill, the block is
//! installed in every structure on the access path below the supplier, and
//! evictions at one level do not invalidate other levels. An optional
//! inclusive mode exists for ablation studies.
//!
//! ## Quick example
//!
//! ```
//! use cache_sim::{Hierarchy, HierarchyConfig, Access, AccessKind, BypassSet};
//!
//! // The paper's 5-level configuration (Section 4.1).
//! let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
//! let res = hier.access(Access::load(0x2ff4), &BypassSet::none());
//! assert_eq!(res.supply_level, hier.memory_level()); // cold miss: memory supplies
//! assert!(res.latency > 0);
//! ```

mod access;
mod cache;
mod config;
mod events;
mod hierarchy;
mod pad;
mod replacement;
mod replay;
mod stats;
mod tlb;

pub use access::{Access, AccessKind, AccessResult, BypassSet, ProbeOutcome, ProbeRecord};
pub use cache::{Cache, Eviction};
pub use config::{CacheConfig, ConfigError, HierarchyConfig, LevelConfig, WritePolicy};
pub use events::{CacheEvent, EventKind};
pub use hierarchy::{Hierarchy, StructureId, StructureInfo};
pub use pad::CachePadded;
pub use replacement::ReplacementPolicy;
pub use replay::{AccessFilter, BatchSummary, NoFilter, ReplayScratch, ReplaySession};
pub use stats::{HierarchyStats, StructureStats};
pub use tlb::{TlbAccessResult, TlbConfig, TlbEvent, TlbLevelStats, TwoLevelTlb};
