//! A single set-associative cache structure.

use crate::config::CacheConfig;

/// Outcome of a lookup in one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct LookupResult {
    pub hit: bool,
}

/// A block evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Byte address of the first byte of the evicted block.
    pub block_base: u64,
    /// Whether the block was dirty (needs a writeback under
    /// [`WritePolicy::WriteBack`](crate::config::WritePolicy)).
    pub dirty: bool,
}

/// What a [`Cache::fill`] did, resolved in a single set scan (callers
/// previously paired `contains` + `fill`, scanning the set twice per fill).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FillOutcome {
    /// The block was already resident; its replacement stamp was refreshed
    /// and nothing was evicted.
    Already,
    /// The block was installed, evicting the contained victim if the set
    /// was full.
    Filled(Option<Eviction>),
}

/// A set-associative cache holding block tags only (trace-driven simulation
/// carries no data payloads).
///
/// All addresses handed to the cache are byte addresses; the cache derives
/// its own block/set/tag decomposition from its [`CacheConfig`].
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// `tags[set * assoc + way]`; `TAG_INVALID` marks an empty way.
    tags: Vec<u64>,
    /// Policy stamps, same layout as `tags`.
    stamps: Vec<u64>,
    /// Dirty bits, same layout as `tags`.
    dirty: Vec<bool>,
    set_mask: u64,
    block_shift: u32,
    /// `set_mask.count_ones()`, cached so the per-access tag extraction
    /// does no popcount.
    tag_shift: u32,
    assoc: usize,
    clock: u64,
    rng_state: u64,
}

const TAG_INVALID: u64 = u64::MAX;

impl Cache {
    /// Build an empty cache from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: CacheConfig) -> Self {
        config.validate().expect("invalid cache configuration");
        let sets = config.num_sets() as usize;
        let assoc = config.assoc as usize;
        Cache {
            set_mask: config.num_sets() - 1,
            tag_shift: (config.num_sets() - 1).count_ones(),
            block_shift: config.block_shift(),
            tags: vec![TAG_INVALID; sets * assoc],
            stamps: vec![0; sets * assoc],
            dirty: vec![false; sets * assoc],
            assoc,
            clock: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
            config,
        }
    }

    /// This cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Block address (byte address shifted by the block size) of `addr`.
    pub fn block_addr(&self, addr: u64) -> u64 {
        addr >> self.block_shift
    }

    /// Byte address of the first byte of the block containing `addr`.
    pub fn block_base(&self, addr: u64) -> u64 {
        addr & !(self.config.block_bytes - 1)
    }

    fn set_of(&self, block: u64) -> usize {
        (block & self.set_mask) as usize
    }

    fn tag_of(&self, block: u64) -> u64 {
        block >> self.tag_shift
    }

    /// Probe for `addr`. On a hit, refreshes the LRU stamp. Does **not**
    /// allocate on a miss; call [`Cache::fill`] for that.
    pub(crate) fn lookup(&mut self, addr: u64) -> LookupResult {
        let block = self.block_addr(addr);
        let set = self.set_of(block);
        let tag = self.tag_of(block);
        self.clock += 1;
        let base = set * self.assoc;
        for way in 0..self.assoc {
            if self.tags[base + way] == tag {
                if self.config.replacement.touches_on_hit() {
                    self.stamps[base + way] = self.clock;
                }
                return LookupResult { hit: true };
            }
        }
        LookupResult { hit: false }
    }

    /// Whether the block containing `addr` is resident. Never perturbs
    /// replacement state — safe for shadow/soundness checks.
    pub fn contains(&self, addr: u64) -> bool {
        let block = self.block_addr(addr);
        let set = self.set_of(block);
        let tag = self.tag_of(block);
        let base = set * self.assoc;
        self.tags[base..base + self.assoc].contains(&tag)
    }

    /// Install the block containing `addr`, evicting a victim if the set is
    /// full. Resident blocks, empty ways and victims are resolved in one
    /// scan of the set.
    ///
    /// Filling a block that is already resident refreshes its stamp and
    /// evicts nothing ([`FillOutcome::Already`]).
    pub(crate) fn fill(&mut self, addr: u64) -> FillOutcome {
        let block = self.block_addr(addr);
        let set = self.set_of(block);
        let tag = self.tag_of(block);
        self.clock += 1;
        let base = set * self.assoc;

        let mut empty_way = None;
        for way in 0..self.assoc {
            match self.tags[base + way] {
                t if t == tag => {
                    // Already resident: refresh only.
                    self.stamps[base + way] = self.clock;
                    return FillOutcome::Already;
                }
                TAG_INVALID if empty_way.is_none() => empty_way = Some(way),
                _ => {}
            }
        }

        if let Some(way) = empty_way {
            self.tags[base + way] = tag;
            self.stamps[base + way] = self.clock;
            self.dirty[base + way] = false;
            return FillOutcome::Filled(None);
        }

        // Evict.
        let victim_way = self
            .config
            .replacement
            .choose_victim(&self.stamps[base..base + self.assoc], &mut self.rng_state);
        let victim_tag = self.tags[base + victim_way];
        let victim_dirty = self.dirty[base + victim_way];
        self.tags[base + victim_way] = tag;
        self.stamps[base + victim_way] = self.clock;
        self.dirty[base + victim_way] = false;
        let victim_block = (victim_tag << self.tag_shift) | set as u64;
        FillOutcome::Filled(Some(Eviction {
            block_base: victim_block << self.block_shift,
            dirty: victim_dirty,
        }))
    }

    /// Mark the block containing `addr` dirty, if resident. Returns whether
    /// a block was marked. Used for write-back accounting; a non-resident
    /// address is a no-op.
    pub(crate) fn mark_dirty(&mut self, addr: u64) -> bool {
        let block = self.block_addr(addr);
        let set = self.set_of(block);
        let tag = self.tag_of(block);
        let base = set * self.assoc;
        for way in 0..self.assoc {
            if self.tags[base + way] == tag {
                self.dirty[base + way] = true;
                return true;
            }
        }
        false
    }

    /// Whether the block containing `addr` sits in the most-recently-used
    /// way of its set — i.e. whether an MRU way-predictor (Powell et al.,
    /// cited in the paper's related work) would probe the right way first.
    pub fn mru_way_correct(&self, addr: u64) -> bool {
        let block = self.block_addr(addr);
        let set = self.set_of(block);
        let tag = self.tag_of(block);
        let base = set * self.assoc;
        let mut mru = base;
        for way in base..base + self.assoc {
            if self.tags[way] != TAG_INVALID && self.stamps[way] > self.stamps[mru] {
                mru = way;
            }
        }
        self.tags[mru] == tag
    }

    /// Whether the block containing `addr` is resident and dirty.
    pub fn is_dirty(&self, addr: u64) -> bool {
        let block = self.block_addr(addr);
        let set = self.set_of(block);
        let tag = self.tag_of(block);
        let base = set * self.assoc;
        (0..self.assoc).any(|w| self.tags[base + w] == tag && self.dirty[base + w])
    }

    /// Remove the block containing `addr` if resident. Returns the removed
    /// block (base address plus whether it was dirty and thus owes a
    /// writeback) or `None` if the address was not resident. Used by the
    /// inclusive-hierarchy back-invalidation path and by external coherence
    /// traffic ([`Hierarchy::invalidate_block`](crate::Hierarchy::invalidate_block)).
    pub(crate) fn invalidate(&mut self, addr: u64) -> Option<Eviction> {
        let block = self.block_addr(addr);
        let set = self.set_of(block);
        let tag = self.tag_of(block);
        let base = set * self.assoc;
        for way in 0..self.assoc {
            if self.tags[base + way] == tag {
                let was_dirty = self.dirty[base + way];
                self.tags[base + way] = TAG_INVALID;
                self.stamps[base + way] = 0;
                self.dirty[base + way] = false;
                return Some(Eviction { block_base: block << self.block_shift, dirty: was_dirty });
            }
        }
        None
    }

    /// Drop every block (cache flush). Replacement state is reset too.
    pub fn flush(&mut self) {
        self.tags.fill(TAG_INVALID);
        self.stamps.fill(0);
        self.dirty.fill(false);
        self.clock = 0;
    }

    /// Number of resident blocks.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != TAG_INVALID).count()
    }

    /// Iterate over the byte base addresses of all resident blocks.
    pub fn resident_blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.tags.iter().enumerate().filter_map(move |(i, &tag)| {
            if tag == TAG_INVALID {
                return None;
            }
            let set = (i / self.assoc) as u64;
            Some(((tag << self.tag_shift) | set) << self.block_shift)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::ReplacementPolicy;

    fn small_cache(assoc: u32, policy: ReplacementPolicy) -> Cache {
        // 4 sets x assoc ways x 32B blocks.
        let cfg =
            CacheConfig::new("t", 4 * u64::from(assoc) * 32, assoc, 32, 1).with_replacement(policy);
        Cache::new(cfg)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache(2, ReplacementPolicy::Lru);
        assert!(!c.lookup(0x1000).hit);
        assert_eq!(c.fill(0x1000), FillOutcome::Filled(None));
        assert!(c.lookup(0x1000).hit);
        assert!(c.contains(0x1000));
        assert!(c.contains(0x101F)); // same 32B block
        assert!(!c.contains(0x1020)); // next block
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_cache(2, ReplacementPolicy::Lru);
        // Set is selected by block bits; 4 sets of 32B blocks => stride 128
        // keeps us in the same set.
        c.fill(0x0000);
        c.fill(0x0080);
        // Touch 0x0000 so 0x0080 becomes LRU.
        assert!(c.lookup(0x0000).hit);
        let FillOutcome::Filled(victim) = c.fill(0x0100) else {
            panic!("0x0100 was not resident");
        };
        assert_eq!(victim.map(|v| v.block_base), Some(0x0080));
        assert!(c.contains(0x0000));
        assert!(!c.contains(0x0080));
        assert!(c.contains(0x0100));
    }

    #[test]
    fn fifo_evicts_first_filled_despite_touch() {
        let mut c = small_cache(2, ReplacementPolicy::Fifo);
        c.fill(0x0000);
        c.fill(0x0080);
        assert!(c.lookup(0x0000).hit); // does not refresh under FIFO
        let FillOutcome::Filled(victim) = c.fill(0x0100) else {
            panic!("0x0100 was not resident");
        };
        assert_eq!(victim.map(|v| v.block_base), Some(0x0000));
    }

    #[test]
    fn refill_of_resident_block_evicts_nothing() {
        let mut c = small_cache(2, ReplacementPolicy::Lru);
        c.fill(0x0000);
        c.fill(0x0080);
        assert_eq!(c.fill(0x0000), FillOutcome::Already);
        assert_eq!(c.occupancy(), 2);
    }

    #[test]
    fn victim_address_reconstruction_round_trips() {
        let mut c = small_cache(1, ReplacementPolicy::Lru);
        // Direct-mapped, 4 sets: 0x40 and 0x240 share set 2.
        c.fill(0x40);
        let FillOutcome::Filled(Some(victim)) = c.fill(0x240) else {
            panic!("expected a conflict eviction");
        };
        assert_eq!(victim.block_base, 0x40);
        assert!(!victim.dirty, "never-written blocks evict clean");
    }

    #[test]
    fn invalidate_removes_block() {
        let mut c = small_cache(2, ReplacementPolicy::Lru);
        c.fill(0x1000);
        assert_eq!(c.invalidate(0x1008), Some(Eviction { block_base: 0x1000, dirty: false }));
        assert!(!c.contains(0x1000));
        assert_eq!(c.invalidate(0x1000), None);
    }

    #[test]
    fn invalidate_reports_dirty_state() {
        let mut c = small_cache(2, ReplacementPolicy::Lru);
        c.fill(0x1000);
        assert!(c.mark_dirty(0x1000));
        assert_eq!(c.invalidate(0x1000), Some(Eviction { block_base: 0x1000, dirty: true }));
        // The dirty bit must not leak into the way's next occupant.
        c.fill(0x1000);
        assert!(!c.is_dirty(0x1000));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = small_cache(2, ReplacementPolicy::Lru);
        c.fill(0x0);
        c.fill(0x20);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.contains(0x0));
    }

    #[test]
    fn resident_blocks_reports_bases() {
        let mut c = small_cache(2, ReplacementPolicy::Lru);
        c.fill(0x1008); // block base 0x1000
        c.fill(0x2030); // block base 0x2020? no: base = 0x2020 & !31 = 0x2020
        let mut blocks: Vec<_> = c.resident_blocks().collect();
        blocks.sort_unstable();
        assert_eq!(blocks, vec![0x1000, 0x2020]);
    }
}
