//! Cache-line padding for cross-thread state.
//!
//! Atomics and handoff cells that different host threads hammer
//! concurrently must not share a cache line: two logically independent
//! counters on one line force every update through the coherence
//! protocol's ownership dance (false sharing), turning relaxed atomic
//! increments into cross-core stalls. [`CachePadded`] aligns its
//! contents to 64 bytes — the line size of every x86-64 and most AArch64
//! parts — so each padded value owns its line outright.
//!
//! Measured effect: on a single-core dev host the wrapper is free (same
//! shard-bench throughput within run-to-run noise, as expected — there
//! is no second core to contend with); the serve registry and the shard
//! SPSC handoff cells wear it for the multi-core CI and production
//! hosts, where adjacent-atomic contention is the classic multiprocessor
//! cache-efficiency failure mode (cf. Hamada & Abdallah in PAPERS.md).

use std::ops::{Deref, DerefMut};

/// Pads and aligns `T` to 64 bytes so it occupies its own cache line.
///
/// `Deref`s to `T`, so `CachePadded<AtomicU64>` drops into existing
/// call sites (`counter.fetch_add(1, Relaxed)`) unchanged.
#[derive(Debug, Default, Clone)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn padded_values_are_line_aligned_and_line_sized() {
        assert_eq!(std::mem::align_of::<CachePadded<AtomicU64>>(), 64);
        assert!(std::mem::size_of::<CachePadded<AtomicU64>>() >= 64);
        // An array of padded cells puts every element on its own line.
        let cells: [CachePadded<AtomicUsize>; 2] =
            [CachePadded::new(AtomicUsize::new(0)), CachePadded::new(AtomicUsize::new(0))];
        let a = &*cells[0] as *const AtomicUsize as usize;
        let b = &*cells[1] as *const AtomicUsize as usize;
        assert!(b - a >= 64);
    }

    #[test]
    fn deref_passes_through() {
        let c = CachePadded::new(AtomicU64::new(41));
        c.fetch_add(1, Ordering::Relaxed);
        assert_eq!(c.load(Ordering::Relaxed), 42);
        assert_eq!(c.into_inner().into_inner(), 42);
    }
}
