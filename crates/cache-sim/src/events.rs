//! Placement/replacement event stream.
//!
//! The MNM's bookkeeping (paper §2) requires knowing, for every cache
//! structure, which blocks are placed into it and which blocks are replaced
//! from it. The hierarchy reports both through [`CacheEvent`]s attached to
//! each access.

use crate::hierarchy::StructureId;

/// What happened to a block in one structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The block was installed into the structure.
    Placed,
    /// The block was evicted from the structure by a fill (capacity or
    /// conflict replacement chosen by the replacement policy).
    Replaced,
    /// The block was removed from the structure by an invalidation:
    /// an inclusive back-invalidation from an outer level, or external
    /// coherence traffic (a remote core's store or a shared-level
    /// replacement). Like `Replaced`, the block is guaranteed to have
    /// actually been resident — invalidation events are only emitted for
    /// blocks the cache really removed, which is what keeps count-based
    /// filter updates sound.
    Invalidated,
}

impl EventKind {
    /// Whether this event removes a block from the structure
    /// (`Replaced` or `Invalidated`).
    pub fn removes(self) -> bool {
        matches!(self, EventKind::Replaced | EventKind::Invalidated)
    }
}

/// A block entering or leaving a cache structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEvent {
    /// The structure affected.
    pub structure: StructureId,
    /// Placement or replacement.
    pub kind: EventKind,
    /// Byte address of the first byte of the affected block.
    pub block_base: u64,
    /// Size of the affected block in bytes (the structure's line size).
    ///
    /// The MNM keys its state on the L2 block size; blocks from caches with
    /// larger lines expand to `block_bytes / l2_block_bytes` MNM entries
    /// (paper §3.1).
    pub block_bytes: u64,
}

impl CacheEvent {
    /// Expand this event into block addresses of granularity `granularity`
    /// bytes (the MNM's working block size). Yields
    /// `max(1, block_bytes / granularity)` shifted block addresses.
    pub fn sub_blocks(&self, granularity: u64) -> impl Iterator<Item = u64> + '_ {
        debug_assert!(granularity.is_power_of_two());
        let shift = granularity.trailing_zeros();
        let count = (self.block_bytes / granularity).max(1);
        let first = self.block_base >> shift;
        (0..count).map(move |i| first + i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_blocks_expands_large_lines() {
        let ev = CacheEvent {
            structure: StructureId::new(4),
            kind: EventKind::Placed,
            block_base: 0x1000,
            block_bytes: 128,
        };
        let subs: Vec<_> = ev.sub_blocks(32).collect();
        assert_eq!(
            subs,
            vec![0x1000 >> 5, (0x1000 >> 5) + 1, (0x1000 >> 5) + 2, (0x1000 >> 5) + 3]
        );
    }

    #[test]
    fn sub_blocks_identity_at_same_granularity() {
        let ev = CacheEvent {
            structure: StructureId::new(1),
            kind: EventKind::Replaced,
            block_base: 0x2fc0,
            block_bytes: 32,
        };
        let subs: Vec<_> = ev.sub_blocks(32).collect();
        assert_eq!(subs, vec![0x2fc0 >> 5]);
    }

    #[test]
    fn sub_blocks_never_empty_for_small_lines() {
        // A hypothetical structure with lines smaller than the MNM grain
        // still produces one entry.
        let ev = CacheEvent {
            structure: StructureId::new(0),
            kind: EventKind::Placed,
            block_base: 0x40,
            block_bytes: 16,
        };
        assert_eq!(ev.sub_blocks(32).count(), 1);
    }
}
