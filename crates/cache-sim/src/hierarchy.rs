//! The multi-level cache hierarchy.

use crate::access::{Access, AccessResult, BypassSet, ProbeOutcome, ProbeRecord};
use crate::cache::{Cache, FillOutcome};
use crate::config::{HierarchyConfig, LevelConfig, WritePolicy};
use crate::events::{CacheEvent, EventKind};
use crate::replay::ReplayScratch;
use crate::stats::HierarchyStats;

/// Opaque index identifying one cache structure in a hierarchy
/// (e.g. in the paper's 5-level processor there are 7 structures:
/// il1, dl1, il2, dl2, ul3, ul4, ul5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructureId(usize);

impl StructureId {
    /// Build a structure id from a raw index.
    pub fn new(index: usize) -> Self {
        StructureId(index)
    }

    /// The raw index, usable into [`Hierarchy::structures`] and
    /// [`HierarchyStats::structures`].
    pub fn index(self) -> usize {
        self.0
    }
}

/// Static facts about one structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureInfo {
    /// The structure's id.
    pub id: StructureId,
    /// 1-based cache level.
    pub level: u8,
    /// Structure name from its configuration ("dl1", "ul3", ...).
    pub name: String,
    /// Line size in bytes.
    pub block_bytes: u64,
    /// Whether this structure serves only the instruction path
    /// (false for data-side and unified structures).
    pub instr_only: bool,
    /// Whether this structure serves only the data path.
    pub data_only: bool,
}

/// A multi-level cache hierarchy with split/unified levels, a
/// non-inclusive fill policy and probe-level bypass.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    config: HierarchyConfig,
    /// Level number of the first configured level (1 for a full system;
    /// higher when this hierarchy models only the outer levels).
    base_level: u8,
    caches: Vec<Cache>,
    infos: Vec<StructureInfo>,
    instr_path: Vec<StructureId>,
    data_path: Vec<StructureId>,
    stats: HierarchyStats,
    /// Reusable buffers backing the [`Hierarchy::access`] convenience
    /// wrapper, so casual callers get the same allocation-free steady
    /// state as [`Hierarchy::access_with_events`] users.
    scratch: ReplayScratch,
}

impl Hierarchy {
    /// Build an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`HierarchyConfig::validate`].
    pub fn new(config: HierarchyConfig) -> Self {
        Self::with_base_level(config, 1)
    }

    /// Build a hierarchy whose first configured level is numbered
    /// `base_level` instead of 1.
    ///
    /// This lets a standalone hierarchy stand in for the *outer* portion
    /// of a larger system — the sharded multi-core simulation models its
    /// shared L3 as a single-level hierarchy with `base_level = 3`, so
    /// probe records carry the true level and the bypass path treats the
    /// structure as a guarded outer level (level-1 structures are never
    /// bypassed).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`HierarchyConfig::validate`] or
    /// `base_level` is zero.
    pub fn with_base_level(config: HierarchyConfig, base_level: u8) -> Self {
        config.validate().expect("invalid hierarchy configuration");
        assert!(base_level >= 1, "cache levels are 1-based");
        let mut caches = Vec::new();
        let mut infos = Vec::new();
        let mut instr_path = Vec::new();
        let mut data_path = Vec::new();

        for (level_idx, level) in config.levels.iter().enumerate() {
            let level_no = base_level + level_idx as u8;
            match level {
                LevelConfig::Split { instr, data } => {
                    let iid = StructureId(caches.len());
                    infos.push(StructureInfo {
                        id: iid,
                        level: level_no,
                        name: instr.name.clone(),
                        block_bytes: instr.block_bytes,
                        instr_only: true,
                        data_only: false,
                    });
                    caches.push(Cache::new(instr.clone()));
                    instr_path.push(iid);

                    let did = StructureId(caches.len());
                    infos.push(StructureInfo {
                        id: did,
                        level: level_no,
                        name: data.name.clone(),
                        block_bytes: data.block_bytes,
                        instr_only: false,
                        data_only: true,
                    });
                    caches.push(Cache::new(data.clone()));
                    data_path.push(did);
                }
                LevelConfig::Unified(cfg) => {
                    let id = StructureId(caches.len());
                    infos.push(StructureInfo {
                        id,
                        level: level_no,
                        name: cfg.name.clone(),
                        block_bytes: cfg.block_bytes,
                        instr_only: false,
                        data_only: false,
                    });
                    caches.push(Cache::new(cfg.clone()));
                    instr_path.push(id);
                    data_path.push(id);
                }
            }
        }

        let stats = HierarchyStats::new(caches.len(), config.levels.len());
        Hierarchy {
            config,
            base_level,
            caches,
            infos,
            instr_path,
            data_path,
            stats,
            scratch: ReplayScratch::new(),
        }
    }

    /// The configuration this hierarchy was built from.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Static descriptions of every structure, indexed by
    /// [`StructureId::index`].
    pub fn structures(&self) -> &[StructureInfo] {
        &self.infos
    }

    /// The cache object behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this hierarchy.
    pub fn cache(&self, id: StructureId) -> &Cache {
        &self.caches[id.0]
    }

    /// Number of cache levels.
    pub fn num_levels(&self) -> usize {
        self.config.levels.len()
    }

    /// The pseudo-level representing main memory: one past the last
    /// configured cache level (`base_level + num_levels()`, 1-based).
    pub fn memory_level(&self) -> u8 {
        self.base_level + self.num_levels() as u8
    }

    /// Ordered structure path for instruction or data references.
    pub fn path(&self, kind: crate::AccessKind) -> &[StructureId] {
        if kind.is_instruction() {
            &self.instr_path
        } else {
            &self.data_path
        }
    }

    /// The line size of the level-2 structures, the MNM's working
    /// granularity (paper §3.1). Falls back to the L1 line size in
    /// single-level hierarchies.
    ///
    /// On a split L2 the data-side structure defines the granularity: the
    /// MNM filters the data reference stream (the dominant energy/latency
    /// consumer in the paper's accounting), and structure order within a
    /// level is an artifact of hierarchy construction, so picking whichever
    /// structure `find` hits first would silently bind the MNM to the
    /// instruction-side block size.
    pub fn mnm_granularity(&self) -> u64 {
        let level = if self.num_levels() >= 2 { self.base_level + 1 } else { self.base_level };
        self.infos
            .iter()
            .find(|i| i.level == level && !i.instr_only)
            .or_else(|| self.infos.iter().find(|i| i.level == level))
            .map(|i| i.block_bytes)
            .expect("hierarchy has at least one level")
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Reset statistics, keeping cache contents (used after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::new(self.caches.len(), self.num_levels());
    }

    /// Whether the block containing `addr` is resident in `id`. Never
    /// perturbs replacement state.
    pub fn contains(&self, id: StructureId, addr: u64) -> bool {
        self.caches[id.0].contains(addr)
    }

    /// Dry-run: which structures on the access path would be probed and
    /// miss before the supplying level, without touching any state.
    /// This is the oracle behind the *perfect MNM* (paper §4.3).
    ///
    /// The first level is never included: the paper does not predict L1
    /// misses.
    pub fn dry_run_misses(&self, access: Access) -> Vec<StructureId> {
        let path = self.path(access.kind);
        let mut missing = Vec::new();
        for &sid in path {
            if self.caches[sid.0].contains(access.addr) {
                return missing;
            }
            if self.infos[sid.0].level > 1 {
                missing.push(sid);
            }
        }
        missing
    }

    /// [`Hierarchy::dry_run_misses`] returned as a [`BypassSet`] instead of
    /// a freshly allocated vector — the allocation-free form the perfect
    /// MNM uses on the replay hot path.
    pub fn dry_run_bypass(&self, access: Access) -> BypassSet {
        let mut missing = BypassSet::none();
        for &sid in self.path(access.kind) {
            if self.caches[sid.0].contains(access.addr) {
                return missing;
            }
            if self.infos[sid.0].level > 1 {
                missing.insert(sid);
            }
        }
        missing
    }

    /// Drive one access through the hierarchy.
    ///
    /// Structures in `bypass` (other than level 1, which is always probed)
    /// are skipped: they contribute no latency and no probe count. The
    /// caller guarantees — and debug builds verify — that bypassed
    /// structures do not hold the block; this is the MNM's soundness
    /// contract (paper §3.6).
    ///
    /// On a miss, the block is filled into every structure on the path
    /// closer to the core than the supplier (non-inclusive refill), each at
    /// its own line size; fills and the evictions they cause are reported
    /// through `scratch.events()`, and the probe trail through
    /// `scratch.probes()`.
    ///
    /// The scratch buffer is cleared on entry and reused across calls:
    /// in steady state this path performs **zero heap allocations** per
    /// access (no path clone, no per-access probe or event vector).
    pub fn access_with_events(
        &mut self,
        access: Access,
        bypass: &BypassSet,
        scratch: &mut ReplayScratch,
    ) -> AccessResult {
        scratch.clear();
        let is_instr = access.kind.is_instruction();
        let path_len = if is_instr { self.instr_path.len() } else { self.data_path.len() };

        let mut latency = 0u64;
        let mut miss_latency = 0u64;
        let mut misses = 0u32;
        let mut bypassed = 0u32;
        let mut probed_beyond_l1 = 0u32;
        let mut supply_level = self.memory_level();

        // The paths are never mutated during an access, so indexing them
        // afresh each iteration (instead of cloning the path, as this
        // function once did) borrows cleanly against the cache mutations.
        for i in 0..path_len {
            let sid = if is_instr { self.instr_path[i] } else { self.data_path[i] };
            let level = self.infos[sid.0].level;
            if level > 1 && bypass.contains(sid) {
                debug_assert!(
                    !self.caches[sid.0].contains(access.addr),
                    "unsound bypass: {} holds {:#x}",
                    self.infos[sid.0].name,
                    access.addr
                );
                self.stats.structures[sid.0].bypasses += 1;
                bypassed += 1;
                scratch.probes.push(ProbeRecord {
                    structure: sid,
                    level,
                    outcome: ProbeOutcome::Bypassed,
                    latency: 0,
                });
                continue;
            }
            let was_mru = self.caches[sid.0].mru_way_correct(access.addr);
            let cache = &mut self.caches[sid.0];
            let hit = cache.lookup(access.addr).hit;
            let st = &mut self.stats.structures[sid.0];
            st.probes += 1;
            if level > 1 {
                probed_beyond_l1 += 1;
            }
            if hit {
                st.hits += 1;
                if was_mru {
                    st.mru_hits += 1;
                }
                let lat = cache.config().hit_latency;
                latency += lat;
                scratch.probes.push(ProbeRecord {
                    structure: sid,
                    level,
                    outcome: ProbeOutcome::Hit,
                    latency: lat,
                });
                supply_level = level;
                break;
            } else {
                st.misses += 1;
                misses += 1;
                let lat = cache.config().miss_latency;
                latency += lat;
                miss_latency += lat;
                scratch.probes.push(ProbeRecord {
                    structure: sid,
                    level,
                    outcome: ProbeOutcome::Miss,
                    latency: lat,
                });
            }
        }

        if supply_level == self.memory_level() {
            latency += self.config.memory_latency;
            self.stats.memory_supplies += 1;
        }

        // Refill: install the block into every structure on the path below
        // the supplier (missed or bypassed alike — the refill travels back
        // through them).
        for i in 0..path_len {
            let sid = if is_instr { self.instr_path[i] } else { self.data_path[i] };
            let level = self.infos[sid.0].level;
            if level >= supply_level {
                break;
            }
            self.fill_structure(sid, access.addr, &mut scratch.events);
        }

        // Write handling: a store dirties the first data-side structure
        // under write-back, or propagates level by level under
        // write-through — each write-through level forwards the write (one
        // write transaction of traffic) until a write-back level absorbs it
        // as a dirty mark, matching the paper's traffic accounting. A
        // non-resident block at the absorbing level is left alone
        // (write-no-allocate beyond L1; the traffic was already counted at
        // the forwarding level).
        if access.kind == crate::AccessKind::Store {
            for i in 0..self.data_path.len() {
                let sid = self.data_path[i];
                match self.caches[sid.0].config().write_policy {
                    WritePolicy::WriteBack => {
                        self.caches[sid.0].mark_dirty(access.addr);
                        break;
                    }
                    WritePolicy::WriteThrough => {
                        self.stats.structures[sid.0].writebacks += 1;
                        // The write continues to the next level (or memory,
                        // whose traffic is not per-structure).
                    }
                }
            }
        }

        // Bookkeeping.
        self.stats.accesses += 1;
        if is_instr {
            self.stats.instr_accesses += 1;
        } else {
            self.stats.data_accesses += 1;
        }
        self.stats.total_latency += latency;
        self.stats.miss_latency += miss_latency;
        self.stats.supplies_by_level[(supply_level - self.base_level) as usize] += 1;

        AccessResult { supply_level, latency, misses, bypassed, probed_beyond_l1 }
    }

    /// Drive a batch of requests through the hierarchy with a per-request
    /// bypass decision, reusing one scratch buffer for the whole walk.
    ///
    /// This is the batched entry point for epoch resolvers (the sharded
    /// simulation's shared-L3 drain): `decide` sees the hierarchy *before*
    /// the request runs — exactly the [`AccessFilter::query`] shape — so it
    /// can classify the request against current residency, and `observe`
    /// receives the request's result plus its probe trail and event stream
    /// before the next request mutates the scratch. Requests execute
    /// strictly in slice order; each observes every earlier request's
    /// fills, which is what makes a core-major resolver walk
    /// deterministic.
    ///
    /// [`AccessFilter::query`]: crate::AccessFilter::query
    pub fn run_requests<D, O>(
        &mut self,
        accesses: &[Access],
        scratch: &mut ReplayScratch,
        mut decide: D,
        mut observe: O,
    ) where
        D: FnMut(&Hierarchy, Access) -> BypassSet,
        O: FnMut(Access, AccessResult, &ReplayScratch),
    {
        for &access in accesses {
            let bypass = decide(self, access);
            let result = self.access_with_events(access, &bypass, scratch);
            observe(access, result, scratch);
        }
    }

    fn fill_structure(&mut self, sid: StructureId, addr: u64, events: &mut Vec<CacheEvent>) {
        let block_bytes = self.caches[sid.0].config().block_bytes;
        let block_base = addr & !(block_bytes - 1);
        let FillOutcome::Filled(victim) = self.caches[sid.0].fill(addr) else {
            return; // already resident: stamp refreshed, nothing to report
        };
        self.stats.structures[sid.0].fills += 1;
        if let Some(victim) = victim {
            self.stats.structures[sid.0].evictions += 1;
            if victim.dirty {
                // Write-back traffic: counted and charged by the power
                // model as a write at the next level; contents there are
                // not modelled (write-no-allocate for writebacks), so MNM
                // soundness is unaffected.
                self.stats.structures[sid.0].writebacks += 1;
            }
            events.push(CacheEvent {
                structure: sid,
                kind: EventKind::Replaced,
                block_base: victim.block_base,
                block_bytes,
            });
            if self.config.inclusive {
                self.back_invalidate(sid, victim.block_base, block_bytes, events);
            }
        }
        events.push(CacheEvent {
            structure: sid,
            kind: EventKind::Placed,
            block_base,
            block_bytes,
        });
    }

    /// Inclusive-mode ablation: evicting from an outer level invalidates
    /// the block in every structure at a strictly closer level.
    ///
    /// Each removal is reported as an [`EventKind::Invalidated`] event (so
    /// attached filters can retire the block) and counted in the inner
    /// structure's `invalidations` stat — not `evictions`, which is reserved
    /// for replacement-policy victims. A dirty inner copy owes a writeback,
    /// exactly as a dirty replacement victim would.
    fn back_invalidate(
        &mut self,
        from: StructureId,
        victim_base: u64,
        victim_bytes: u64,
        events: &mut Vec<CacheEvent>,
    ) {
        let from_level = self.infos[from.0].level;
        for idx in 0..self.caches.len() {
            if self.infos[idx].level >= from_level {
                continue;
            }
            let inner_bytes = self.caches[idx].config().block_bytes;
            // Invalidate every inner block covered by the victim line.
            let count = (victim_bytes / inner_bytes).max(1);
            for i in 0..count {
                let a = victim_base + i * inner_bytes;
                self.invalidate_in_structure(StructureId(idx), a, events);
            }
        }
    }

    /// Remove one inner block from one structure, with full accounting:
    /// bumps `invalidations` (plus `writebacks` if the copy was dirty) and
    /// emits an [`EventKind::Invalidated`] event. Emits nothing when the
    /// block is not resident — filter updates must only see blocks that
    /// were actually removed, or count-based filters go unsound.
    fn invalidate_in_structure(
        &mut self,
        sid: StructureId,
        addr: u64,
        events: &mut Vec<CacheEvent>,
    ) -> bool {
        let Some(removed) = self.caches[sid.0].invalidate(addr) else {
            return false;
        };
        let st = &mut self.stats.structures[sid.0];
        st.invalidations += 1;
        if removed.dirty {
            // The invalidated copy was the only dirty one we model; it is
            // written back toward the outer level / memory on removal.
            st.writebacks += 1;
        }
        events.push(CacheEvent {
            structure: sid,
            kind: EventKind::Invalidated,
            block_base: removed.block_base,
            block_bytes: self.caches[sid.0].config().block_bytes,
        });
        true
    }

    /// External coherence entry point: remove the block containing `addr`
    /// from **every** structure of this hierarchy (each at its own line
    /// granularity), as a remote core's store or a shared outer level's
    /// replacement would. Removals are appended to `events` as
    /// [`EventKind::Invalidated`] — feed them to the attached MNM so its
    /// filter state retires the block along with the cache. Returns the
    /// number of structures that actually held (and lost) a copy.
    ///
    /// Events are emitted only for blocks actually removed; broadcasting an
    /// invalidation for a block a cache never held must not reach the
    /// filters (a blind decrement would be unsound).
    pub fn invalidate_block(&mut self, addr: u64, events: &mut Vec<CacheEvent>) -> u32 {
        let mut removed = 0;
        for idx in 0..self.caches.len() {
            if self.invalidate_in_structure(StructureId(idx), addr, events) {
                removed += 1;
            }
        }
        removed
    }

    /// Convenience wrapper around [`Hierarchy::access_with_events`] for
    /// callers that do not consume the probe trail or event stream. Routes
    /// through an internal [`ReplayScratch`], so it is just as
    /// allocation-free in steady state as the explicit-scratch path.
    pub fn access(&mut self, access: Access, bypass: &BypassSet) -> AccessResult {
        let mut scratch = std::mem::take(&mut self.scratch);
        let result = self.access_with_events(access, bypass, &mut scratch);
        self.scratch = scratch;
        result
    }

    /// Flush every cache and reset statistics.
    pub fn flush(&mut self) {
        for c in &mut self.caches {
            c.flush();
        }
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, HierarchyConfig, LevelConfig};

    fn tiny_two_level() -> Hierarchy {
        // L1: 2 sets x 1 way x 32B (64B); L2: 4 sets x 2 ways x 32B (256B).
        Hierarchy::new(HierarchyConfig {
            levels: vec![
                LevelConfig::Split {
                    instr: CacheConfig::new("il1", 64, 1, 32, 2),
                    data: CacheConfig::new("dl1", 64, 1, 32, 2),
                },
                LevelConfig::Unified(CacheConfig::new("ul2", 256, 2, 32, 8)),
            ],
            memory_latency: 100,
            inclusive: false,
        })
    }

    #[test]
    fn cold_miss_goes_to_memory_and_fills_path() {
        let mut h = tiny_two_level();
        let mut scratch = ReplayScratch::new();
        let r = h.access_with_events(Access::load(0x1000), &BypassSet::none(), &mut scratch);
        assert_eq!(r.supply_level, 3); // memory
        assert_eq!(r.latency, 2 + 8 + 100);
        assert_eq!(r.misses, 2);
        assert_eq!(r.probed_beyond_l1, 1); // ul2 was probed
                                           // Filled into dl1 and ul2.
        assert_eq!(scratch.events().iter().filter(|e| e.kind == EventKind::Placed).count(), 2);
        assert_eq!(scratch.probes().len(), 2);
        let r2 = h.access(Access::load(0x1000), &BypassSet::none());
        assert_eq!(r2.supply_level, 1);
        assert_eq!(r2.latency, 2);
        assert_eq!(r2.probed_beyond_l1, 0);
    }

    #[test]
    fn l2_hit_after_l1_conflict() {
        let mut h = tiny_two_level();
        h.access(Access::load(0x0000), &BypassSet::none());
        // 0x0040 conflicts with 0x0000 in the 2-set L1 but not in the 4-set L2.
        h.access(Access::load(0x0040), &BypassSet::none());
        let r = h.access(Access::load(0x0000), &BypassSet::none());
        assert_eq!(r.supply_level, 2);
        assert_eq!(r.latency, 2 + 8);
    }

    #[test]
    fn bypass_skips_probe_and_latency() {
        let mut h = tiny_two_level();
        // Cold access with L2 flagged as a sure miss.
        let ul2 = h.structures().iter().find(|s| s.name == "ul2").unwrap().id;
        let mut bypass = BypassSet::none();
        bypass.insert(ul2);
        let r = h.access(Access::load(0x2000), &bypass);
        assert_eq!(r.supply_level, 3);
        assert_eq!(r.latency, 2 + 100); // no 8-cycle L2 miss-detect
        assert_eq!(r.bypassed, 1);
        assert_eq!(h.stats().structures[ul2.index()].bypasses, 1);
        // Refill still installed the block in the bypassed level.
        assert!(h.contains(ul2, 0x2000));
    }

    #[test]
    #[should_panic(expected = "unsound bypass")]
    #[cfg(debug_assertions)]
    fn unsound_bypass_is_caught() {
        let mut h = tiny_two_level();
        h.access(Access::load(0x3000), &BypassSet::none());
        // Evict from L1 (2 sets): 0x3040 maps to the other set; use 0x3080
        // which shares L1 set 0 with 0x3000 (64B L1, 32B lines => sets by
        // bit 5). 0x3000 set = (0x3000>>5)&1 = 0; 0x3080 set = 0.
        h.access(Access::load(0x3080), &BypassSet::none());
        // 0x3000 is now only in ul2; bypassing ul2 is unsound.
        let ul2 = h.structures().iter().find(|s| s.name == "ul2").unwrap().id;
        let mut bypass = BypassSet::none();
        bypass.insert(ul2);
        h.access(Access::load(0x3000), &bypass);
    }

    #[test]
    fn instruction_and_data_paths_are_disjoint_at_l1() {
        let mut h = tiny_two_level();
        h.access(Access::fetch(0x4000), &BypassSet::none());
        let il1 = h.structures().iter().find(|s| s.name == "il1").unwrap().id;
        let dl1 = h.structures().iter().find(|s| s.name == "dl1").unwrap().id;
        assert!(h.contains(il1, 0x4000));
        assert!(!h.contains(dl1, 0x4000));
        // Unified L2 serves both.
        let ul2 = h.structures().iter().find(|s| s.name == "ul2").unwrap().id;
        assert!(h.contains(ul2, 0x4000));
        let r = h.access(Access::load(0x4000), &BypassSet::none());
        assert_eq!(r.supply_level, 2);
    }

    #[test]
    fn dry_run_matches_actual_misses() {
        let mut h = tiny_two_level();
        h.access(Access::load(0x5000), &BypassSet::none());
        // A fresh address misses everywhere: dry run reports ul2 only
        // (L1 is excluded).
        let misses = h.dry_run_misses(Access::load(0x6000));
        assert_eq!(misses.len(), 1);
        assert_eq!(h.structures()[misses[0].index()].name, "ul2");
        // The resident address reports no predictable misses.
        assert!(h.dry_run_misses(Access::load(0x5000)).is_empty());
    }

    #[test]
    fn replacement_events_are_emitted() {
        let mut h = tiny_two_level();
        let mut scratch = ReplayScratch::new();
        // L1 has 2 sets; 0x0000 and 0x0080 share set 0 (stride 64 covers
        // both sets, stride 128 aliases).
        h.access_with_events(Access::load(0x0000), &BypassSet::none(), &mut scratch);
        h.access_with_events(Access::load(0x0080), &BypassSet::none(), &mut scratch);
        let dl1 = h.structures().iter().find(|s| s.name == "dl1").unwrap().id;
        let replaced: Vec<_> = scratch
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Replaced && e.structure == dl1)
            .collect();
        assert_eq!(replaced.len(), 1);
        assert_eq!(replaced[0].block_base, 0x0000);
    }

    #[test]
    fn paper_config_supplies_accumulate() {
        let mut h = Hierarchy::new(HierarchyConfig::paper_five_level());
        // Stride 128 = the largest line size, so every access is a fresh
        // block at every level (pure cold misses).
        for i in 0..100u64 {
            h.access(Access::load(i * 128), &BypassSet::none());
        }
        let s = h.stats();
        assert_eq!(s.accesses, 100);
        assert_eq!(s.supplies_by_level.iter().sum::<u64>(), 100);
        assert_eq!(s.memory_supplies, 100); // all cold
        assert_eq!(s.mean_access_time(), (2 + 8 + 18 + 34 + 70 + 320) as f64);
    }

    #[test]
    fn inclusive_mode_back_invalidates() {
        let mut h = Hierarchy::new(HierarchyConfig {
            levels: vec![
                LevelConfig::Split {
                    instr: CacheConfig::new("il1", 64, 1, 32, 1),
                    data: CacheConfig::new("dl1", 64, 1, 32, 1),
                },
                // Direct-mapped 2-set L2 to force quick evictions.
                LevelConfig::Unified(CacheConfig::new("ul2", 64, 1, 32, 2)),
            ],
            memory_latency: 10,
            inclusive: true,
        });
        let dl1 = h.structures().iter().find(|s| s.name == "dl1").unwrap().id;
        h.access(Access::load(0x0000), &BypassSet::none());
        assert!(h.contains(dl1, 0x0000));
        // 0x0040 evicts 0x0000 from the 2-set L2 (sets by bit 5: both map
        // to set 0? 0x0000>>5=0 set0; 0x0040>>5=2 set0). Yes: set 0.
        h.access(Access::load(0x0040), &BypassSet::none());
        assert!(!h.contains(dl1, 0x0000), "inclusive eviction must back-invalidate L1");
    }

    fn tiny_inclusive() -> Hierarchy {
        // dl1 is a single 2-way set (both test addresses fit), while the
        // direct-mapped 2-set ul2 with 64B lines conflicts on them — so an
        // ul2 eviction back-invalidates a block dl1 still holds, instead
        // of dl1 having already evicted it on its own.
        Hierarchy::new(HierarchyConfig {
            levels: vec![
                LevelConfig::Split {
                    instr: CacheConfig::new("il1", 64, 2, 32, 1),
                    data: CacheConfig::new("dl1", 64, 2, 32, 1),
                },
                LevelConfig::Unified(CacheConfig::new("ul2", 128, 1, 64, 2)),
            ],
            memory_latency: 10,
            inclusive: true,
        })
    }

    #[test]
    fn back_invalidation_emits_invalidated_events_with_accounting() {
        let mut h = tiny_inclusive();
        let dl1 = h.structures().iter().find(|s| s.name == "dl1").unwrap().id;
        let mut scratch = ReplayScratch::new();
        h.access_with_events(Access::load(0x0000), &BypassSet::none(), &mut scratch);
        // 0x0100 evicts line 0x0000 from ul2 (same set), back-invalidating
        // dl1's copy; dl1 itself still has a free way.
        h.access_with_events(Access::load(0x0100), &BypassSet::none(), &mut scratch);
        let inv: Vec<_> = scratch
            .events()
            .iter()
            .filter(|e| e.kind == EventKind::Invalidated && e.structure == dl1)
            .collect();
        assert_eq!(inv.len(), 1, "dl1 copy of 0x0000 must surface as an Invalidated event");
        assert_eq!(inv[0].block_base, 0x0000);
        let st = &h.stats().structures[dl1.index()];
        assert_eq!(st.invalidations, 1);
        assert_eq!(st.evictions, 0, "back-invalidations are not replacement victims");
    }

    #[test]
    fn dirty_back_invalidation_owes_a_writeback() {
        let mut h = tiny_inclusive();
        let dl1 = h.structures().iter().find(|s| s.name == "dl1").unwrap().id;
        h.access(Access::store(0x0000), &BypassSet::none());
        assert!(h.cache(dl1).is_dirty(0x0000));
        h.access(Access::load(0x0100), &BypassSet::none());
        let st = &h.stats().structures[dl1.index()];
        assert_eq!(st.invalidations, 1);
        assert_eq!(st.writebacks, 1, "dirty data lost to back-invalidation must write back");
    }

    #[test]
    fn invalidate_block_removes_from_every_level() {
        let mut h = tiny_two_level();
        h.access(Access::load(0x1000), &BypassSet::none());
        let dl1 = h.structures().iter().find(|s| s.name == "dl1").unwrap().id;
        let ul2 = h.structures().iter().find(|s| s.name == "ul2").unwrap().id;
        let mut events = Vec::new();
        assert_eq!(h.invalidate_block(0x1008, &mut events), 2);
        assert!(!h.contains(dl1, 0x1000));
        assert!(!h.contains(ul2, 0x1000));
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.kind == EventKind::Invalidated));
        assert_eq!(h.stats().structures[dl1.index()].invalidations, 1);
        assert_eq!(h.stats().structures[ul2.index()].invalidations, 1);
        // Re-invalidating emits nothing: filters must never be told about
        // removals that did not happen.
        events.clear();
        assert_eq!(h.invalidate_block(0x1000, &mut events), 0);
        assert!(events.is_empty());
    }

    #[test]
    fn dirty_evictions_count_as_writebacks() {
        let mut h = tiny_two_level();
        let dl1 = h.structures().iter().find(|s| s.name == "dl1").unwrap().id;
        // Write a block, then evict it from the 2-set dl1 with an alias.
        h.access(Access::store(0x0000), &BypassSet::none());
        assert!(h.cache(dl1).is_dirty(0x0000));
        h.access(Access::load(0x0080), &BypassSet::none()); // same dl1 set
        assert_eq!(h.stats().structures[dl1.index()].writebacks, 1);
        // Clean evictions don't count: read-only traffic.
        h.access(Access::load(0x0000), &BypassSet::none());
        assert_eq!(h.stats().structures[dl1.index()].writebacks, 1);
    }

    #[test]
    fn write_through_counts_stores_not_evictions() {
        let cfg = HierarchyConfig {
            levels: vec![
                LevelConfig::Split {
                    instr: CacheConfig::new("il1", 64, 1, 32, 2),
                    data: CacheConfig::new("dl1", 64, 1, 32, 2)
                        .with_write_policy(crate::WritePolicy::WriteThrough),
                },
                LevelConfig::Unified(CacheConfig::new("ul2", 256, 2, 32, 8)),
            ],
            memory_latency: 100,
            inclusive: false,
        };
        cfg.validate().unwrap();
        let mut h = Hierarchy::new(cfg);
        let dl1 = h.structures().iter().find(|s| s.name == "dl1").unwrap().id;
        for _ in 0..5 {
            h.access(Access::store(0x40), &BypassSet::none());
        }
        assert_eq!(h.stats().structures[dl1.index()].writebacks, 5);
        assert!(!h.cache(dl1).is_dirty(0x40), "write-through leaves blocks clean");
    }

    #[test]
    fn write_through_stores_propagate_to_next_level() {
        // Regression: stores through a write-through dl1 were counted there
        // but never reached ul2 — the next write-back level must absorb the
        // write as a dirty mark.
        let mut h = Hierarchy::new(HierarchyConfig {
            levels: vec![
                LevelConfig::Split {
                    instr: CacheConfig::new("il1", 64, 1, 32, 2),
                    data: CacheConfig::new("dl1", 64, 1, 32, 2)
                        .with_write_policy(WritePolicy::WriteThrough),
                },
                LevelConfig::Unified(CacheConfig::new("ul2", 256, 2, 32, 8)),
            ],
            memory_latency: 100,
            inclusive: false,
        });
        let dl1 = h.structures().iter().find(|s| s.name == "dl1").unwrap().id;
        let ul2 = h.structures().iter().find(|s| s.name == "ul2").unwrap().id;
        h.access(Access::store(0x40), &BypassSet::none());
        assert!(!h.cache(dl1).is_dirty(0x40));
        assert!(h.cache(ul2).is_dirty(0x40), "store must propagate through write-through dl1");
        // An ul2 eviction of that block now produces write-back traffic,
        // which the pre-fix accounting lost entirely.
        assert_eq!(h.stats().structures[dl1.index()].writebacks, 1);
        assert_eq!(h.stats().structures[ul2.index()].writebacks, 0);
    }

    #[test]
    fn write_through_chain_counts_traffic_at_every_forwarding_level() {
        // Two stacked write-through levels: the store is forwarded (and
        // counted) at both, then absorbed by the write-back ul3.
        let mut h = Hierarchy::new(HierarchyConfig {
            levels: vec![
                LevelConfig::Split {
                    instr: CacheConfig::new("il1", 64, 1, 32, 2),
                    data: CacheConfig::new("dl1", 64, 1, 32, 2)
                        .with_write_policy(WritePolicy::WriteThrough),
                },
                LevelConfig::Unified(
                    CacheConfig::new("ul2", 256, 2, 32, 8)
                        .with_write_policy(WritePolicy::WriteThrough),
                ),
                LevelConfig::Unified(CacheConfig::new("ul3", 1024, 4, 64, 16)),
            ],
            memory_latency: 100,
            inclusive: false,
        });
        let dl1 = h.structures().iter().find(|s| s.name == "dl1").unwrap().id;
        let ul2 = h.structures().iter().find(|s| s.name == "ul2").unwrap().id;
        let ul3 = h.structures().iter().find(|s| s.name == "ul3").unwrap().id;
        for _ in 0..3 {
            h.access(Access::store(0x80), &BypassSet::none());
        }
        assert_eq!(h.stats().structures[dl1.index()].writebacks, 3);
        assert_eq!(h.stats().structures[ul2.index()].writebacks, 3);
        assert!(h.cache(ul3).is_dirty(0x80));
        assert!(!h.cache(ul2).is_dirty(0x80));
    }

    #[test]
    fn mnm_granularity_is_l2_block() {
        let h = Hierarchy::new(HierarchyConfig::paper_five_level());
        assert_eq!(h.mnm_granularity(), 32);
    }

    #[test]
    fn mnm_granularity_prefers_data_side_on_split_l2() {
        // Regression: with a split L2 whose instruction side has a larger
        // line, `find` over construction order returned il2's block size.
        let h = Hierarchy::new(HierarchyConfig {
            levels: vec![
                LevelConfig::Split {
                    instr: CacheConfig::new("il1", 64, 1, 32, 2),
                    data: CacheConfig::new("dl1", 64, 1, 32, 2),
                },
                LevelConfig::Split {
                    instr: CacheConfig::new("il2", 512, 2, 128, 8),
                    data: CacheConfig::new("dl2", 512, 2, 64, 8),
                },
                LevelConfig::Unified(CacheConfig::new("ul3", 2048, 4, 128, 16)),
            ],
            memory_latency: 100,
            inclusive: false,
        });
        assert_eq!(h.mnm_granularity(), 64, "data-side L2 line defines MNM granularity");
    }
}
