//! A two-level TLB substrate.
//!
//! The paper's §4.5 suggests using early miss determination "to reduce the
//! power consumption of other caching structures such as the TLBs". This
//! module provides the substrate for that extension experiment: a
//! two-level TLB (small fully-pipelined L1 TLB backed by a larger L2 TLB
//! and a slow page-table walk), structurally a cache hierarchy over page
//! numbers, emitting the same placement/replacement events the MNM
//! consumes.

use crate::cache::Cache;
use crate::config::CacheConfig;
use crate::replacement::ReplacementPolicy;

/// Geometry and timing of one TLB level.
#[derive(Debug, Clone, PartialEq)]
pub struct TlbConfig {
    /// Display name ("dtlb1", ...).
    pub name: String,
    /// Number of entries.
    pub entries: u32,
    /// Associativity.
    pub assoc: u32,
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
    /// Cycles per lookup that hits.
    pub hit_latency: u64,
}

impl TlbConfig {
    /// Create a TLB level configuration.
    ///
    /// # Panics
    ///
    /// Panics on invalid geometry (zero/non-power-of-two entries or page
    /// size, associativity not dividing the entry count).
    pub fn new(name: &str, entries: u32, assoc: u32, page_bytes: u64, hit_latency: u64) -> Self {
        assert!(entries.is_power_of_two() && entries > 0, "entry count must be a power of two");
        assert!(assoc >= 1 && entries.is_multiple_of(assoc), "ways must divide entries");
        assert!(
            page_bytes.is_power_of_two() && page_bytes >= 512,
            "page size must be a power of two >= 512"
        );
        TlbConfig { name: name.to_owned(), entries, assoc, page_bytes, hit_latency }
    }

    fn as_cache_config(&self) -> CacheConfig {
        // A TLB is a cache whose "blocks" are pages: capacity =
        // entries * page_bytes, line = page.
        CacheConfig::new(
            &self.name,
            u64::from(self.entries) * self.page_bytes,
            self.assoc,
            self.page_bytes,
            self.hit_latency,
        )
        .with_replacement(ReplacementPolicy::Lru)
    }
}

/// Counters for one TLB level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbLevelStats {
    /// Lookups performed (bypassed lookups excluded).
    pub probes: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups skipped because a filter declared a sure miss.
    pub bypasses: u64,
}

/// What one translation cost and where it was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbAccessResult {
    /// 1 = L1 TLB, 2 = L2 TLB, 3 = page walk.
    pub supply_level: u8,
    /// Total translation latency in cycles.
    pub latency: u64,
    /// Whether the L2 lookup was skipped by the filter.
    pub l2_bypassed: bool,
}

/// An event visible to a TLB-guarding filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbEvent {
    /// A translation entered the L2 TLB (page number).
    L2Placed(u64),
    /// A translation left the L2 TLB (page number).
    L2Replaced(u64),
}

/// A two-level TLB with an optional miss filter in front of the L2.
#[derive(Debug, Clone)]
pub struct TwoLevelTlb {
    l1: Cache,
    l2: Cache,
    page_shift: u32,
    l1_latency: u64,
    l2_latency: u64,
    walk_latency: u64,
    l1_stats: TlbLevelStats,
    l2_stats: TlbLevelStats,
    walks: u64,
    latency_sum: u64,
    accesses: u64,
}

impl TwoLevelTlb {
    /// Build an empty two-level TLB. `walk_latency` is the page-table walk
    /// cost charged when both levels miss.
    pub fn new(l1: TlbConfig, l2: TlbConfig, walk_latency: u64) -> Self {
        assert_eq!(l1.page_bytes, l2.page_bytes, "both levels must share the page size");
        let page_shift = l1.page_bytes.trailing_zeros();
        TwoLevelTlb {
            l1_latency: l1.hit_latency,
            l2_latency: l2.hit_latency,
            l1: Cache::new(l1.as_cache_config()),
            l2: Cache::new(l2.as_cache_config()),
            page_shift,
            walk_latency,
            l1_stats: TlbLevelStats::default(),
            l2_stats: TlbLevelStats::default(),
            walks: 0,
            latency_sum: 0,
            accesses: 0,
        }
    }

    /// A typical 2003-era configuration: 64-entry fully-associative-ish L1
    /// (16-way here), 512-entry 4-way L2, 4 KB pages, 80-cycle walk.
    pub fn typical() -> Self {
        TwoLevelTlb::new(
            TlbConfig::new("tlb1", 64, 16, 4096, 1),
            TlbConfig::new("tlb2", 512, 4, 4096, 4),
            80,
        )
    }

    /// Page number of a byte address.
    pub fn page_of(&self, addr: u64) -> u64 {
        addr >> self.page_shift
    }

    /// Whether the L2 TLB currently holds the translation for `addr`.
    /// Never perturbs replacement state (shadow checks).
    pub fn l2_contains(&self, addr: u64) -> bool {
        self.l2.contains(addr)
    }

    /// Translate `addr`. When `bypass_l2` is set the L2 lookup is skipped
    /// (the caller's filter guarantees — and debug builds check — that it
    /// would miss).
    ///
    /// Refills install the translation into both levels and report L2
    /// placement/replacement events through `events`.
    pub fn translate(
        &mut self,
        addr: u64,
        bypass_l2: bool,
        events: &mut Vec<TlbEvent>,
    ) -> TlbAccessResult {
        self.accesses += 1;
        let mut latency = self.l1_latency;
        self.l1_stats.probes += 1;
        if self.l1.lookup(addr).hit {
            self.l1_stats.hits += 1;
            self.latency_sum += latency;
            return TlbAccessResult { supply_level: 1, latency, l2_bypassed: false };
        }

        let mut supply = 3;
        let mut l2_bypassed = false;
        if bypass_l2 {
            debug_assert!(!self.l2.contains(addr), "unsound TLB bypass for {addr:#x}");
            self.l2_stats.bypasses += 1;
            l2_bypassed = true;
        } else {
            self.l2_stats.probes += 1;
            latency += self.l2_latency;
            if self.l2.lookup(addr).hit {
                self.l2_stats.hits += 1;
                supply = 2;
            }
        }

        if supply == 3 {
            latency += self.walk_latency;
            self.walks += 1;
            if let crate::cache::FillOutcome::Filled(Some(victim)) = self.l2.fill(addr) {
                events.push(TlbEvent::L2Replaced(victim.block_base >> self.page_shift));
            }
            events.push(TlbEvent::L2Placed(self.page_of(addr)));
        }
        // L1 refill (its events are not needed: filters guard only L2).
        self.l1.fill(addr);

        self.latency_sum += latency;
        TlbAccessResult { supply_level: supply, latency, l2_bypassed }
    }

    /// Per-level counters: (L1, L2, page walks).
    pub fn stats(&self) -> (TlbLevelStats, TlbLevelStats, u64) {
        (self.l1_stats, self.l2_stats, self.walks)
    }

    /// Mean translation latency in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.accesses as f64
        }
    }

    /// Total translations performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TwoLevelTlb {
        TwoLevelTlb::new(
            TlbConfig::new("t1", 4, 2, 4096, 1),
            TlbConfig::new("t2", 16, 4, 4096, 3),
            50,
        )
    }

    #[test]
    fn cold_walk_then_l1_hit() {
        let mut tlb = tiny();
        let mut ev = Vec::new();
        let r = tlb.translate(0x1234_5678, false, &mut ev);
        assert_eq!(r.supply_level, 3);
        assert_eq!(r.latency, 1 + 3 + 50);
        assert!(matches!(ev.as_slice(), [TlbEvent::L2Placed(_)]));
        let r = tlb.translate(0x1234_5000, false, &mut ev);
        assert_eq!(r.supply_level, 1, "same page hits the L1 TLB");
        assert_eq!(r.latency, 1);
    }

    #[test]
    fn l2_catches_l1_capacity_victims() {
        let mut tlb = tiny();
        let mut ev = Vec::new();
        // Touch 5 distinct pages: the 4-entry L1 loses one, the 16-entry
        // L2 keeps all.
        for p in 0..5u64 {
            tlb.translate(p * 4096 * 5, false, &mut ev); // 5-page stride avoids L1 set bias? keep simple
        }
        // Re-touch the first page: at worst L2 supplies it.
        let r = tlb.translate(0, false, &mut ev);
        assert!(r.supply_level <= 2);
    }

    #[test]
    fn bypass_skips_l2_latency_and_probe() {
        let mut tlb = tiny();
        let mut ev = Vec::new();
        let r = tlb.translate(0xABC0_0000, true, &mut ev);
        assert_eq!(r.supply_level, 3);
        assert_eq!(r.latency, 1 + 50, "no L2 lookup latency");
        assert!(r.l2_bypassed);
        let (_, l2, walks) = tlb.stats();
        assert_eq!(l2.probes, 0);
        assert_eq!(l2.bypasses, 1);
        assert_eq!(walks, 1);
        // The refill still installed the translation in L2.
        assert!(tlb.l2_contains(0xABC0_0000));
    }

    #[test]
    #[should_panic(expected = "unsound TLB bypass")]
    #[cfg(debug_assertions)]
    fn unsound_tlb_bypass_is_caught() {
        let mut tlb = tiny();
        let mut ev = Vec::new();
        tlb.translate(0x5000_0000, false, &mut ev);
        // Flood the original page's L1 set (2 sets: even pages) with pages
        // that land in a *different* L2 set (4 sets: pages ≡ 2 mod 4), so
        // the translation leaves the L1 TLB but stays in the L2 TLB.
        for p in 0..4u64 {
            tlb.translate(0x5000_0000 + (p * 4 + 2) * 4096, false, &mut ev);
        }
        // 0x5000_0000 now misses L1 but lives in L2: bypassing is unsound.
        tlb.translate(0x5000_0000, true, &mut ev);
    }

    #[test]
    fn replacement_events_report_page_numbers() {
        let mut tlb = TwoLevelTlb::new(
            TlbConfig::new("t1", 2, 1, 4096, 1),
            TlbConfig::new("t2", 2, 1, 4096, 2),
            10,
        );
        let mut ev = Vec::new();
        tlb.translate(0, false, &mut ev);
        ev.clear();
        // Page 2 maps to the same direct-mapped L2 slot as page 0.
        tlb.translate(2 * 4096, false, &mut ev);
        assert!(ev.contains(&TlbEvent::L2Replaced(0)), "{ev:?}");
    }

    #[test]
    fn mean_latency_accumulates() {
        let mut tlb = tiny();
        let mut ev = Vec::new();
        tlb.translate(0, false, &mut ev);
        tlb.translate(0, false, &mut ev);
        assert!(tlb.mean_latency() > 1.0);
        assert_eq!(tlb.accesses(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        TlbConfig::new("x", 48, 4, 4096, 1);
    }
}
