//! Static configuration of individual caches and whole hierarchies.

use std::fmt;

use crate::replacement::ReplacementPolicy;

/// A violated configuration constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Block size is zero or not a power of two.
    BlockSize {
        /// Offending cache name.
        cache: String,
        /// The rejected block size.
        bytes: u64,
    },
    /// Associativity is zero.
    Associativity {
        /// Offending cache name.
        cache: String,
    },
    /// Capacity is zero or not a multiple of `assoc * block_bytes`.
    Capacity {
        /// Offending cache name.
        cache: String,
        /// The rejected capacity.
        size_bytes: u64,
    },
    /// The derived set count is not a power of two.
    SetCount {
        /// Offending cache name.
        cache: String,
        /// The rejected set count.
        sets: u64,
    },
    /// A hierarchy was declared with no levels.
    NoLevels,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BlockSize { cache, bytes } => {
                write!(f, "{cache}: block size {bytes} is not a power of two")
            }
            ConfigError::Associativity { cache } => {
                write!(f, "{cache}: associativity must be at least 1")
            }
            ConfigError::Capacity { cache, size_bytes } => {
                write!(f, "{cache}: size {size_bytes} is not a multiple of assoc*block")
            }
            ConfigError::SetCount { cache, sets } => {
                write!(f, "{cache}: set count {sets} is not a power of two")
            }
            ConfigError::NoLevels => write!(f, "hierarchy must have at least one level"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// How writes interact with the next memory level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// Dirty blocks are written back only on eviction (SimpleScalar's
    /// default and the assumption behind the paper's traffic).
    WriteBack,
    /// Every store is propagated immediately; evictions are always clean.
    WriteThrough,
}

/// Geometry and timing of a single cache structure.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Human-readable name ("dl1", "ul3", ...). Used in reports.
    pub name: String,
    /// Total capacity in bytes. Must be a multiple of `assoc * block_bytes`.
    pub size_bytes: u64,
    /// Associativity (1 = direct mapped).
    pub assoc: u32,
    /// Line size in bytes. Must be a power of two.
    pub block_bytes: u64,
    /// Cycles to return data on a hit.
    pub hit_latency: u64,
    /// Cycles to determine a miss. The paper's Equation 1 distinguishes
    /// `cache_hit_time` from `cache_miss_time`; with tag and data probed in
    /// parallel they coincide, which is the default ([`CacheConfig::new`]).
    pub miss_latency: u64,
    /// Replacement policy for the sets.
    pub replacement: ReplacementPolicy,
    /// Write handling (affects writeback traffic and energy only; block
    /// residency is identical under both policies with write-allocate).
    pub write_policy: WritePolicy,
}

impl CacheConfig {
    /// Create a cache configuration with LRU replacement and
    /// `miss_latency == hit_latency`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::validate`]).
    pub fn new(name: &str, size_bytes: u64, assoc: u32, block_bytes: u64, latency: u64) -> Self {
        let cfg = CacheConfig {
            name: name.to_owned(),
            size_bytes,
            assoc,
            block_bytes,
            hit_latency: latency,
            miss_latency: latency,
            replacement: ReplacementPolicy::Lru,
            write_policy: WritePolicy::WriteBack,
        };
        cfg.validate().expect("invalid cache configuration");
        cfg
    }

    /// Override the miss-detect latency.
    pub fn with_miss_latency(mut self, miss_latency: u64) -> Self {
        self.miss_latency = miss_latency;
        self
    }

    /// Override the replacement policy.
    pub fn with_replacement(mut self, replacement: ReplacementPolicy) -> Self {
        self.replacement = replacement;
        self
    }

    /// Override the write policy.
    pub fn with_write_policy(mut self, write_policy: WritePolicy) -> Self {
        self.write_policy = write_policy;
        self
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.block_bytes * u64::from(self.assoc))
    }

    /// Number of blocks (lines).
    pub fn num_blocks(&self) -> u64 {
        self.size_bytes / self.block_bytes
    }

    /// log2 of the block size: the shift that turns a byte address into a
    /// block address.
    pub fn block_shift(&self) -> u32 {
        self.block_bytes.trailing_zeros()
    }

    /// Check the geometry for consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: zero or non-power-of-two
    /// block size, zero associativity, capacity not a multiple of
    /// `assoc * block_bytes`, or a non-power-of-two set count.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.block_bytes == 0 || !self.block_bytes.is_power_of_two() {
            return Err(ConfigError::BlockSize {
                cache: self.name.clone(),
                bytes: self.block_bytes,
            });
        }
        if self.assoc == 0 {
            return Err(ConfigError::Associativity { cache: self.name.clone() });
        }
        let way_bytes = self.block_bytes * u64::from(self.assoc);
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(way_bytes) {
            return Err(ConfigError::Capacity {
                cache: self.name.clone(),
                size_bytes: self.size_bytes,
            });
        }
        if !self.num_sets().is_power_of_two() {
            return Err(ConfigError::SetCount { cache: self.name.clone(), sets: self.num_sets() });
        }
        Ok(())
    }
}

/// One level of the hierarchy: either split instruction/data structures or a
/// single unified structure.
#[derive(Debug, Clone, PartialEq)]
pub enum LevelConfig {
    /// Separate instruction and data caches (the paper's L1 and L2).
    Split {
        /// Instruction-side cache.
        instr: CacheConfig,
        /// Data-side cache.
        data: CacheConfig,
    },
    /// A single cache serving both paths (the paper's U3–U5).
    Unified(CacheConfig),
}

impl LevelConfig {
    /// Split level with identical instruction and data geometry.
    pub fn split_symmetric(base: &CacheConfig) -> Self {
        let mut instr = base.clone();
        instr.name = format!("i{}", base.name);
        let mut data = base.clone();
        data.name = format!("d{}", base.name);
        LevelConfig::Split { instr, data }
    }

    /// All cache configs in this level.
    pub fn configs(&self) -> Vec<&CacheConfig> {
        match self {
            LevelConfig::Split { instr, data } => vec![instr, data],
            LevelConfig::Unified(c) => vec![c],
        }
    }
}

/// Full hierarchy configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyConfig {
    /// Levels ordered from L1 outward.
    pub levels: Vec<LevelConfig>,
    /// Main-memory access latency in cycles.
    pub memory_latency: u64,
    /// When true, evicting a block from level *i* also invalidates it in all
    /// levels closer to the core (inclusive hierarchy). The paper assumes
    /// non-inclusive caches; this switch exists for the ablation study.
    pub inclusive: bool,
}

impl HierarchyConfig {
    /// Validate every level.
    ///
    /// # Errors
    ///
    /// Returns the first invalid cache configuration's [`ConfigError`], or
    /// [`ConfigError::NoLevels`] for an empty hierarchy.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.levels.is_empty() {
            return Err(ConfigError::NoLevels);
        }
        for level in &self.levels {
            for cfg in level.configs() {
                cfg.validate()?;
            }
        }
        Ok(())
    }

    /// Number of cache levels (memory not counted).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The paper's 5-level simulated processor (Section 4.1):
    /// 4 KB direct-mapped split L1 (32 B, 2 cycles), 16 KB 2-way split L2
    /// (32 B, 8 cycles), 128 KB 4-way U3 (64 B, 18 cycles), 512 KB 4-way U4
    /// (128 B, 34 cycles), 2 MB 8-way U5 (128 B, 70 cycles), 320-cycle
    /// memory.
    pub fn paper_five_level() -> Self {
        HierarchyConfig {
            levels: vec![
                LevelConfig::Split {
                    instr: CacheConfig::new("il1", 4 * 1024, 1, 32, 2),
                    data: CacheConfig::new("dl1", 4 * 1024, 1, 32, 2),
                },
                LevelConfig::Split {
                    instr: CacheConfig::new("il2", 16 * 1024, 2, 32, 8),
                    data: CacheConfig::new("dl2", 16 * 1024, 2, 32, 8),
                },
                LevelConfig::Unified(CacheConfig::new("ul3", 128 * 1024, 4, 64, 18)),
                LevelConfig::Unified(CacheConfig::new("ul4", 512 * 1024, 4, 128, 34)),
                LevelConfig::Unified(CacheConfig::new("ul5", 2 * 1024 * 1024, 8, 128, 70)),
            ],
            memory_latency: 320,
            inclusive: false,
        }
    }

    /// A 2-level hierarchy for the motivation experiments (Figures 2–3):
    /// the paper's L1 backed directly by the paper's outermost cache.
    pub fn two_level() -> Self {
        HierarchyConfig {
            levels: vec![
                LevelConfig::Split {
                    instr: CacheConfig::new("il1", 4 * 1024, 1, 32, 2),
                    data: CacheConfig::new("dl1", 4 * 1024, 1, 32, 2),
                },
                LevelConfig::Unified(CacheConfig::new("ul2", 2 * 1024 * 1024, 8, 128, 70)),
            ],
            memory_latency: 320,
            inclusive: false,
        }
    }

    /// A 3-level hierarchy for the motivation experiments (Figures 2–3).
    pub fn three_level() -> Self {
        HierarchyConfig {
            levels: vec![
                LevelConfig::Split {
                    instr: CacheConfig::new("il1", 4 * 1024, 1, 32, 2),
                    data: CacheConfig::new("dl1", 4 * 1024, 1, 32, 2),
                },
                LevelConfig::Split {
                    instr: CacheConfig::new("il2", 16 * 1024, 2, 32, 8),
                    data: CacheConfig::new("dl2", 16 * 1024, 2, 32, 8),
                },
                LevelConfig::Unified(CacheConfig::new("ul3", 2 * 1024 * 1024, 8, 128, 70)),
            ],
            memory_latency: 320,
            inclusive: false,
        }
    }

    /// A 7-level hierarchy for the motivation experiments (Figures 2–3):
    /// the 5-level configuration extended with an 8 MB L6 and a 32 MB L7.
    pub fn seven_level() -> Self {
        let mut cfg = Self::paper_five_level();
        cfg.levels.push(LevelConfig::Unified(CacheConfig::new(
            "ul6",
            8 * 1024 * 1024,
            8,
            128,
            110,
        )));
        cfg.levels.push(LevelConfig::Unified(CacheConfig::new(
            "ul7",
            32 * 1024 * 1024,
            16,
            128,
            160,
        )));
        cfg
    }

    /// The motivation-study hierarchy with `n` levels (2, 3, 5 or 7).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not one of 2, 3, 5, 7.
    pub fn motivation_levels(n: usize) -> Self {
        match n {
            2 => Self::two_level(),
            3 => Self::three_level(),
            5 => Self::paper_five_level(),
            7 => Self::seven_level(),
            other => panic!("motivation study only defines 2/3/5/7 levels, got {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        let cfg = HierarchyConfig::paper_five_level();
        cfg.validate().unwrap();
        assert_eq!(cfg.num_levels(), 5);
        assert_eq!(cfg.memory_latency, 320);
        assert!(!cfg.inclusive);
    }

    #[test]
    fn motivation_configs_are_valid() {
        for n in [2, 3, 5, 7] {
            let cfg = HierarchyConfig::motivation_levels(n);
            cfg.validate().unwrap();
            assert_eq!(cfg.num_levels(), n);
        }
    }

    #[test]
    #[should_panic(expected = "motivation study")]
    fn motivation_rejects_unknown_depth() {
        HierarchyConfig::motivation_levels(4);
    }

    #[test]
    fn cache_geometry_accessors() {
        let c = CacheConfig::new("dl1", 4096, 1, 32, 2);
        assert_eq!(c.num_sets(), 128);
        assert_eq!(c.num_blocks(), 128);
        assert_eq!(c.block_shift(), 5);
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        let mut c = CacheConfig::new("x", 4096, 2, 32, 1);
        c.block_bytes = 48;
        assert!(c.validate().is_err());
        let mut c = CacheConfig::new("x", 4096, 2, 32, 1);
        c.assoc = 0;
        assert!(c.validate().is_err());
        let mut c = CacheConfig::new("x", 4096, 2, 32, 1);
        c.size_bytes = 5000;
        assert!(c.validate().is_err());
        // 3 sets: not a power of two.
        let mut c = CacheConfig::new("x", 4096, 2, 32, 1);
        c.size_bytes = 3 * 2 * 32;
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid cache configuration")]
    fn new_panics_on_invalid() {
        CacheConfig::new("bad", 100, 3, 24, 1);
    }

    #[test]
    fn config_errors_display_the_cache_name() {
        let mut c = CacheConfig::new("dl1", 4096, 2, 32, 1);
        c.block_bytes = 48;
        let err = c.validate().unwrap_err();
        assert_eq!(err, ConfigError::BlockSize { cache: "dl1".into(), bytes: 48 });
        assert!(err.to_string().contains("dl1"));
        let empty = HierarchyConfig { levels: vec![], memory_latency: 1, inclusive: false };
        assert_eq!(empty.validate().unwrap_err(), ConfigError::NoLevels);
    }

    #[test]
    fn split_symmetric_names_sides() {
        let base = CacheConfig::new("l1", 4096, 1, 32, 2);
        let level = LevelConfig::split_symmetric(&base);
        let names: Vec<_> = level.configs().iter().map(|c| c.name.clone()).collect();
        assert_eq!(names, ["il1", "dl1"]);
    }
}
