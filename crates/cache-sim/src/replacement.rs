//! Replacement policies for set-associative caches.

/// Victim-selection policy applied within a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used way (the paper's policy).
    Lru,
    /// Evict the way that was filled earliest, ignoring reuse.
    Fifo,
    /// Evict a pseudo-random way (deterministic xorshift sequence).
    Random,
}

impl ReplacementPolicy {
    /// Pick the victim way given per-way metadata.
    ///
    /// `stamps[w]` is the policy-maintained timestamp of way `w` (last use
    /// for LRU, fill time for FIFO, unused for Random). `rng_state` is a
    /// per-cache xorshift state advanced only by Random.
    pub(crate) fn choose_victim(self, stamps: &[u64], rng_state: &mut u64) -> usize {
        match self {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                let mut victim = 0;
                let mut best = u64::MAX;
                for (w, &s) in stamps.iter().enumerate() {
                    if s < best {
                        best = s;
                        victim = w;
                    }
                }
                victim
            }
            ReplacementPolicy::Random => {
                // xorshift64*
                let mut x = *rng_state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                *rng_state = x;
                (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as usize % stamps.len()
            }
        }
    }

    /// Whether a hit refreshes the way's stamp (true only for LRU).
    pub(crate) fn touches_on_hit(self) -> bool {
        matches!(self, ReplacementPolicy::Lru)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_picks_oldest_stamp() {
        let mut rng = 1;
        let stamps = [5, 2, 9, 4];
        assert_eq!(ReplacementPolicy::Lru.choose_victim(&stamps, &mut rng), 1);
    }

    #[test]
    fn fifo_ignores_touch_semantics() {
        assert!(!ReplacementPolicy::Fifo.touches_on_hit());
        assert!(ReplacementPolicy::Lru.touches_on_hit());
        assert!(!ReplacementPolicy::Random.touches_on_hit());
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let mut rng1 = 42;
        let mut rng2 = 42;
        let stamps = [0u64; 8];
        let picks1: Vec<_> =
            (0..32).map(|_| ReplacementPolicy::Random.choose_victim(&stamps, &mut rng1)).collect();
        let picks2: Vec<_> =
            (0..32).map(|_| ReplacementPolicy::Random.choose_victim(&stamps, &mut rng2)).collect();
        assert_eq!(picks1, picks2);
        assert!(picks1.iter().all(|&w| w < 8));
        // Not all the same way.
        assert!(picks1.iter().any(|&w| w != picks1[0]));
    }
}
