//! Reusable per-access scratch buffers and the streaming replay session.
//!
//! The replay hot path is deliberately **zero-allocation in steady state**:
//! every access needs somewhere to record its probe trail and the cache
//! events (fills/evictions) it caused, and allocating a fresh `Vec` per
//! access dominated the profile of long trace replays. [`ReplayScratch`]
//! owns both buffers and is cleared — not reallocated — between accesses.
//!
//! [`ReplaySession`] packages the common replay loop: an access stream is
//! driven through a [`Hierarchy`] with a pluggable [`AccessFilter`]
//! (the MNM, a perfect oracle, or [`NoFilter`] for baselines) while the
//! scratch buffers are reused across the whole run.

use crate::access::{Access, AccessResult, BypassSet, ProbeOutcome, ProbeRecord};
use crate::events::CacheEvent;
use crate::hierarchy::{Hierarchy, StructureId};

/// Reusable per-access buffers for probes and cache events.
///
/// Construct one per replay loop (or use [`Hierarchy::access`], which keeps
/// one internally) and pass it to
/// [`Hierarchy::access_with_events`](crate::Hierarchy::access_with_events);
/// the buffers are cleared on entry and hold that access's probe trail and
/// event stream afterwards. Capacity is retained across accesses, so after
/// the first few accesses the hot path performs no heap allocation.
#[derive(Debug, Default, Clone)]
pub struct ReplayScratch {
    pub(crate) probes: Vec<ProbeRecord>,
    pub(crate) events: Vec<CacheEvent>,
}

impl ReplayScratch {
    /// A fresh, empty scratch buffer.
    pub fn new() -> Self {
        ReplayScratch::default()
    }

    /// Clear both buffers, retaining capacity.
    pub fn clear(&mut self) {
        self.probes.clear();
        self.events.clear();
    }

    /// The probe trail of the most recent access, ordered from L1 outward,
    /// ending at the supplier (memory does not appear as a probe record).
    pub fn probes(&self) -> &[ProbeRecord] {
        &self.probes
    }

    /// Cache events (fills and the evictions they caused) of the most
    /// recent access, in placement order.
    pub fn events(&self) -> &[CacheEvent] {
        &self.events
    }

    /// Structures the most recent access probed and missed in.
    pub fn missed_structures(&self) -> impl Iterator<Item = StructureId> + '_ {
        self.probes.iter().filter(|p| p.outcome == ProbeOutcome::Miss).map(|p| p.structure)
    }
}

/// A per-access bypass decision source driving a replay.
///
/// Implementations decide, before each access, which structures the access
/// may skip ([`BypassSet`]), and observe the outcome afterwards to update
/// their own state. The MNM in `mnm-core` implements this; [`NoFilter`]
/// is the baseline that never bypasses.
///
/// `query` receives the hierarchy immutably so oracle filters (the paper's
/// perfect MNM, §4.3) can inspect actual cache contents.
pub trait AccessFilter {
    /// Decide which structures `access` may bypass.
    fn query(&mut self, hierarchy: &Hierarchy, access: Access) -> BypassSet;

    /// Observe the placement/replacement events the access caused.
    fn observe_events(&mut self, _hierarchy: &Hierarchy, _events: &[CacheEvent]) {}

    /// Observe the probe trail of the completed access.
    fn note_probes(&mut self, _access: Access, _probes: &[ProbeRecord]) {}
}

/// The no-op filter: never bypasses, observes nothing. Baseline runs.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoFilter;

impl AccessFilter for NoFilter {
    fn query(&mut self, _hierarchy: &Hierarchy, _access: Access) -> BypassSet {
        BypassSet::none()
    }
}

impl<F: AccessFilter + ?Sized> AccessFilter for &mut F {
    fn query(&mut self, hierarchy: &Hierarchy, access: Access) -> BypassSet {
        (**self).query(hierarchy, access)
    }

    fn observe_events(&mut self, hierarchy: &Hierarchy, events: &[CacheEvent]) {
        (**self).observe_events(hierarchy, events);
    }

    fn note_probes(&mut self, access: Access, probes: &[ProbeRecord]) {
        (**self).note_probes(access, probes);
    }
}

/// Accumulated outcome of a batch of accesses driven through
/// [`ReplaySession::process_many`] (or `Mnm::run_many` in `mnm-core`).
///
/// The per-access [`AccessResult`]s fold into plain sums; batch drivers
/// that need the individual results should step the session instead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchSummary {
    /// Accesses driven.
    pub accesses: u64,
    /// Summed access latency in cycles.
    pub total_latency: u64,
    /// Accesses supplied by the first cache level.
    pub l1_hits: u64,
    /// Total probes that missed.
    pub misses: u64,
    /// Total probes skipped on a filter's definite-miss verdict.
    pub bypassed: u64,
}

impl BatchSummary {
    /// Fold one access outcome into the summary.
    #[inline]
    pub fn absorb(&mut self, result: AccessResult) {
        self.accesses += 1;
        self.total_latency += result.latency;
        self.l1_hits += u64::from(result.l1_hit());
        self.misses += u64::from(result.misses);
        self.bypassed += u64::from(result.bypassed);
    }

    /// Merge another summary (e.g. per-chunk summaries of one trace).
    pub fn merge(&mut self, other: BatchSummary) {
        self.accesses += other.accesses;
        self.total_latency += other.total_latency;
        self.l1_hits += other.l1_hits;
        self.misses += other.misses;
        self.bypassed += other.bypassed;
    }
}

/// A streaming replay of an access trace through a hierarchy and filter,
/// reusing one [`ReplayScratch`] for the whole run.
///
/// ```
/// use cache_sim::{Access, Hierarchy, HierarchyConfig, NoFilter, ReplaySession};
///
/// let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
/// let mut session = ReplaySession::new(&mut hier, NoFilter);
/// for addr in [0x1000u64, 0x1040, 0x1000] {
///     session.step(Access::load(addr));
/// }
/// assert_eq!(session.accesses(), 3);
/// ```
#[derive(Debug)]
pub struct ReplaySession<'h, F> {
    hierarchy: &'h mut Hierarchy,
    filter: F,
    scratch: ReplayScratch,
    accesses: u64,
}

impl<'h, F: AccessFilter> ReplaySession<'h, F> {
    /// Start a session over `hierarchy` driven by `filter`.
    pub fn new(hierarchy: &'h mut Hierarchy, filter: F) -> Self {
        ReplaySession { hierarchy, filter, scratch: ReplayScratch::new(), accesses: 0 }
    }

    /// Drive one access: query the filter, walk the hierarchy, feed the
    /// outcome back to the filter. No per-access heap allocation.
    pub fn step(&mut self, access: Access) -> AccessResult {
        let bypass = self.filter.query(self.hierarchy, access);
        let result = self.hierarchy.access_with_events(access, &bypass, &mut self.scratch);
        self.filter.observe_events(self.hierarchy, &self.scratch.events);
        self.filter.note_probes(access, &self.scratch.probes);
        self.accesses += 1;
        result
    }

    /// Drive a batch of accesses through the session, folding the
    /// outcomes into one [`BatchSummary`]. Identical protocol and state
    /// evolution as calling [`ReplaySession::step`] per access — the batch
    /// form exists so trace drivers can hand the replay loop a whole chunk
    /// at a time (one call per chunk instead of one per access) without
    /// touching per-access results they would only sum anyway.
    pub fn process_many(&mut self, accesses: &[Access]) -> BatchSummary {
        let mut summary = BatchSummary::default();
        for &access in accesses {
            let bypass = self.filter.query(self.hierarchy, access);
            let result = self.hierarchy.access_with_events(access, &bypass, &mut self.scratch);
            self.filter.observe_events(self.hierarchy, &self.scratch.events);
            self.filter.note_probes(access, &self.scratch.probes);
            summary.absorb(result);
        }
        self.accesses += summary.accesses;
        summary
    }

    /// Number of accesses driven so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Scratch state of the most recent access (probe trail and events).
    pub fn last(&self) -> &ReplayScratch {
        &self.scratch
    }

    /// The underlying hierarchy.
    pub fn hierarchy(&self) -> &Hierarchy {
        self.hierarchy
    }

    /// The filter.
    pub fn filter(&self) -> &F {
        &self.filter
    }

    /// The filter, mutably (e.g. to reset its statistics mid-run).
    pub fn filter_mut(&mut self) -> &mut F {
        &mut self.filter
    }

    /// End the session, returning the filter.
    pub fn into_filter(self) -> F {
        self.filter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;

    #[test]
    fn session_replays_and_reports_probes() {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut session = ReplaySession::new(&mut hier, NoFilter);
        let cold = session.step(Access::load(0x4000));
        assert_eq!(cold.supply_level, session.hierarchy().memory_level());
        assert!(!session.last().probes().is_empty());
        assert!(!session.last().events().is_empty());
        assert!(session.last().missed_structures().count() > 0);

        let warm = session.step(Access::load(0x4000));
        assert!(warm.l1_hit());
        assert_eq!(session.last().probes().len(), 1);
        assert!(session.last().events().is_empty());
        assert_eq!(session.accesses(), 2);
    }

    #[test]
    fn scratch_capacity_is_retained_across_accesses() {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut scratch = ReplayScratch::new();
        hier.access_with_events(Access::load(0x9000), &BypassSet::none(), &mut scratch);
        let probes_cap = scratch.probes.capacity();
        let events_cap = scratch.events.capacity();
        assert!(probes_cap > 0 && events_cap > 0);
        // A warm re-access clears but must not shrink the buffers.
        hier.access_with_events(Access::load(0x9000), &BypassSet::none(), &mut scratch);
        assert!(scratch.probes.capacity() >= probes_cap);
        assert!(scratch.events.capacity() >= events_cap);
    }

    #[test]
    fn filter_by_mut_ref_also_works() {
        let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
        let mut filter = NoFilter;
        let mut session = ReplaySession::new(&mut hier, &mut filter);
        session.step(Access::fetch(0x100));
        assert_eq!(session.accesses(), 1);
    }
}
