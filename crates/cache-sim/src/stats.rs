//! Aggregate statistics collected by the hierarchy.

/// Counters for one cache structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StructureStats {
    /// Probes that reached the structure (hits + misses; bypasses excluded).
    pub probes: u64,
    /// Probes that found the block.
    pub hits: u64,
    /// Probes that did not find the block.
    pub misses: u64,
    /// Probes skipped because the caller's bypass set flagged a sure miss.
    pub bypasses: u64,
    /// Blocks installed (refills of already-resident blocks not counted).
    pub fills: u64,
    /// Blocks evicted to make room for fills.
    pub evictions: u64,
    /// Blocks removed by invalidation rather than replacement: inclusive
    /// back-invalidations from an outer level, or external coherence
    /// traffic (remote stores, shared-level replacements). Disjoint from
    /// `evictions`; `fills == evictions + invalidations + resident`.
    pub invalidations: u64,
    /// Dirty evictions (write-back) or propagated stores (write-through):
    /// write transactions sent toward the next level.
    pub writebacks: u64,
    /// Hits whose block sat in the MRU way of its set (an MRU
    /// way-predictor's correct predictions; related-work comparison).
    pub mru_hits: u64,
}

impl StructureStats {
    /// Hit rate over performed probes, in [0, 1]. Zero when never probed.
    pub fn hit_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.hits as f64 / self.probes as f64
        }
    }

    /// Miss rate over performed probes, in [0, 1]. Zero when never probed.
    pub fn miss_rate(&self) -> f64 {
        if self.probes == 0 {
            0.0
        } else {
            self.misses as f64 / self.probes as f64
        }
    }

    /// Hit rate counting bypasses as (correctly predicted) misses: the
    /// fraction of *references* that found the block. This matches the
    /// paper's per-level hit-rate definition, which is a property of the
    /// reference stream, not of the MNM.
    pub fn reference_hit_rate(&self) -> f64 {
        let refs = self.probes + self.bypasses;
        if refs == 0 {
            0.0
        } else {
            self.hits as f64 / refs as f64
        }
    }
}

/// Counters for the whole hierarchy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HierarchyStats {
    /// Per-structure counters, indexed by `StructureId::index()`.
    pub structures: Vec<StructureStats>,
    /// Total accesses driven through the hierarchy.
    pub accesses: u64,
    /// Instruction-side accesses.
    pub instr_accesses: u64,
    /// Data-side accesses (loads + stores).
    pub data_accesses: u64,
    /// Accesses ultimately supplied by main memory.
    pub memory_supplies: u64,
    /// Sum of per-access latencies (cycles).
    pub total_latency: u64,
    /// Sum of latency cycles spent probing structures that missed
    /// (the numerator of the paper's Figure 2 fraction).
    pub miss_latency: u64,
    /// Per-level supply counts, indexed by `level - 1`; the final entry is
    /// main memory.
    pub supplies_by_level: Vec<u64>,
}

impl HierarchyStats {
    pub(crate) fn new(num_structures: usize, num_levels: usize) -> Self {
        HierarchyStats {
            structures: vec![StructureStats::default(); num_structures],
            supplies_by_level: vec![0; num_levels + 1],
            ..Default::default()
        }
    }

    /// Mean data-access time in cycles over all accesses.
    pub fn mean_access_time(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.accesses as f64
        }
    }

    /// Fraction of total access latency spent determining misses
    /// (paper Figure 2).
    pub fn miss_time_fraction(&self) -> f64 {
        if self.total_latency == 0 {
            0.0
        } else {
            self.miss_latency as f64 / self.total_latency as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_probes() {
        let s = StructureStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.reference_hit_rate(), 0.0);
    }

    #[test]
    fn reference_hit_rate_counts_bypasses() {
        let s =
            StructureStats { probes: 50, hits: 40, misses: 10, bypasses: 50, ..Default::default() };
        assert!((s.hit_rate() - 0.8).abs() < 1e-12);
        assert!((s.reference_hit_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn hierarchy_fractions() {
        let mut h = HierarchyStats::new(2, 2);
        h.accesses = 10;
        h.total_latency = 100;
        h.miss_latency = 25;
        assert!((h.mean_access_time() - 10.0).abs() < 1e-12);
        assert!((h.miss_time_fraction() - 0.25).abs() < 1e-12);
    }
}
