//! Differential specification tests for the bit-parallel probe paths.
//!
//! SMNM, TMNM and the counting Bloom filter answer queries from packed
//! bitsets (present/zero flags) maintained on the update path, and SMNM
//! evaluates the paper's sum-of-squares hash through byte lookup tables.
//! These tests replay randomized place/replace/fault-flip traces through
//! each filter and through a deliberately naive in-test model written
//! straight from the paper's prose — per-bit hash loop, plain counter
//! arrays, no bitsets — and require bit-identical verdicts after every
//! operation. Any divergence between the fast representation and the
//! specification is a bug in the fast one.

use std::collections::HashSet;

use mnm_core::{
    BloomConfig, BloomFilter, MissFilter, SmnmConfig, SmnmFilter, TmnmConfig, TmnmFilter,
};

/// The slice offsets of replicated SMNM checkers / TMNM tables (paper:
/// bits 0, 7th, 13th — i.e. offsets 0, 6, 12). Pinned here independently
/// of the implementation constant.
const OFFSETS: [u32; 3] = [0, 6, 12];

/// Minimal deterministic generator (xorshift).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// The paper's Figure 5 hash, as literally written: a per-bit loop.
fn spec_sum_hash(slice: u64, width: u32) -> u32 {
    let mut tag = slice;
    let mut sum = 0u32;
    for i in 1..=width {
        if tag & 1 != 0 {
            sum += i * i;
        }
        tag >>= 1;
    }
    sum
}

fn max_sum(width: u32) -> u32 {
    width * (width + 1) * (2 * width + 1) / 6
}

/// Spec SMNM: one admitted-sums set per checker, no packed words.
struct SpecSmnm {
    width: u32,
    admitted: Vec<HashSet<u32>>,
}

impl SpecSmnm {
    fn new(config: SmnmConfig) -> Self {
        SpecSmnm {
            width: config.sum_width,
            admitted: vec![HashSet::new(); config.replication as usize],
        }
    }

    fn sums(&self, block: u64) -> impl Iterator<Item = u32> + '_ {
        OFFSETS
            .iter()
            .take(self.admitted.len())
            .map(move |&off| spec_sum_hash(block >> off, self.width))
    }

    fn on_place(&mut self, block: u64) {
        let sums: Vec<u32> = self.sums(block).collect();
        for (set, sum) in self.admitted.iter_mut().zip(sums) {
            set.insert(sum);
        }
    }

    fn is_definite_miss(&self, block: u64) -> bool {
        self.admitted.iter().zip(self.sums(block)).any(|(set, sum)| !set.contains(&sum))
    }

    /// Mirror `MissFilter::flip_state_bit`: bit `i` of checker `c` guards
    /// sum value `i`, checkers concatenated in offset order.
    fn flip_bit(&mut self, mut bit: u64) {
        let flip_flops = u64::from(max_sum(self.width)) + 1;
        for set in &mut self.admitted {
            if bit < flip_flops {
                let sum = bit as u32;
                if !set.remove(&sum) {
                    set.insert(sum);
                }
                return;
            }
            bit -= flip_flops;
        }
    }
}

#[test]
fn smnm_lut_hash_and_present_bitset_match_the_paper_loop() {
    for (case, &(width, repl)) in
        [(4u32, 1u32), (7, 2), (13, 3), (20, 3), (32, 1)].iter().enumerate()
    {
        let config = SmnmConfig::new(width, repl);
        let mut real = SmnmFilter::new(config);
        let mut spec = SpecSmnm::new(config);
        let mut gen = Gen(0x51EC_0001 + case as u64);
        let mut recent = Vec::new();
        for step in 0..2_500u64 {
            let r = gen.next();
            let block = gen.next() % 0x2_0000;
            match r % 8 {
                0..=4 => {
                    real.on_place(block);
                    spec.on_place(block);
                    recent.push(block);
                }
                5 => {
                    // Replacements must be ignored by both (set-only).
                    real.on_replace(block);
                }
                6 => {
                    let bit = gen.next() % real.state_bits();
                    assert!(real.flip_state_bit(bit));
                    spec.flip_bit(bit);
                }
                _ => {
                    real.flush();
                    spec.admitted.iter_mut().for_each(HashSet::clear);
                    recent.clear();
                }
            }
            for probe in recent.iter().rev().take(4).chain(&[block, gen.next() % 0x2_0000]) {
                assert_eq!(
                    real.is_definite_miss(*probe),
                    spec.is_definite_miss(*probe),
                    "SMNM_{width}x{repl}: verdicts diverged for block {probe:#x} at step {step}"
                );
            }
        }
    }
}

/// Spec TMNM: plain `Vec<u8>` counter arrays scanned directly, sticky
/// saturation written out longhand.
struct SpecTmnm {
    bits: u32,
    max: u8,
    tables: Vec<Vec<u8>>,
}

impl SpecTmnm {
    fn new(config: TmnmConfig) -> Self {
        SpecTmnm {
            bits: config.bits,
            max: ((1u32 << config.counter_bits) - 1) as u8,
            tables: vec![vec![0; 1 << config.bits]; config.replication as usize],
        }
    }

    fn slot(&self, table: usize, block: u64) -> usize {
        ((block >> OFFSETS[table]) & ((1 << self.bits) - 1)) as usize
    }

    fn on_place(&mut self, block: u64) {
        for ti in 0..self.tables.len() {
            let s = self.slot(ti, block);
            let c = self.tables[ti][s];
            if c < self.max {
                self.tables[ti][s] = c + 1;
            }
        }
    }

    fn on_replace(&mut self, block: u64) {
        for ti in 0..self.tables.len() {
            let s = self.slot(ti, block);
            let c = self.tables[ti][s];
            if c > 0 && c < self.max {
                self.tables[ti][s] = c - 1;
            }
        }
    }

    fn is_definite_miss(&self, block: u64) -> bool {
        (0..self.tables.len()).any(|ti| self.tables[ti][self.slot(ti, block)] == 0)
    }

    fn flip_bit(&mut self, bit: u64, counter_bits: u32) {
        let per_table = (1u64 << self.bits) * u64::from(counter_bits);
        let table = (bit / per_table) as usize;
        let within = bit % per_table;
        let slot = (within / u64::from(counter_bits)) as usize;
        self.tables[table][slot] ^= 1 << (within % u64::from(counter_bits));
    }
}

#[test]
fn tmnm_zero_bitset_matches_a_naive_counter_scan() {
    for (case, &(bits, repl, cw)) in
        [(5u32, 1u32, 3u32), (8, 2, 2), (12, 3, 3), (6, 3, 1)].iter().enumerate()
    {
        let config = TmnmConfig::with_counter_bits(bits, repl, cw);
        let mut real = TmnmFilter::new(config);
        let mut spec = SpecTmnm::new(config);
        let mut gen = Gen(0x7AB1_0001 + case as u64);
        for step in 0..2_500u64 {
            let r = gen.next();
            let block = gen.next() % 0x2_0000;
            match r % 8 {
                0..=3 => {
                    real.on_place(block);
                    spec.on_place(block);
                }
                4..=5 => {
                    real.on_replace(block);
                    spec.on_replace(block);
                }
                6 => {
                    let bit = gen.next() % real.state_bits();
                    assert!(real.flip_state_bit(bit));
                    spec.flip_bit(bit, cw);
                }
                _ => {
                    real.flush();
                    spec.tables.iter_mut().for_each(|t| t.fill(0));
                }
            }
            for probe in [block, gen.next() % 0x2_0000, gen.next() % 0x40] {
                assert_eq!(
                    real.is_definite_miss(probe),
                    spec.is_definite_miss(probe),
                    "TMNM_{bits}x{repl}c{cw}: verdicts diverged for {probe:#x} at step {step}"
                );
            }
        }
    }
}

/// The Bloom filter's hash mixer, copied verbatim: the constants are part
/// of the on-disk verdict contract (golden experiment results depend on
/// them), so a change to the implementation's mixer must fail here.
fn spec_mix(block: u64, which: u32) -> u64 {
    let mut z = block.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(which) + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Spec Bloom: one flat counter array, k sequential updates per event
/// (same-slot collisions increment twice, exactly like the real filter).
struct SpecBloom {
    k: u32,
    mask: u64,
    max: u8,
    counters: Vec<u8>,
}

impl SpecBloom {
    fn new(config: BloomConfig) -> Self {
        SpecBloom {
            k: config.hashes,
            mask: (1u64 << config.bits) - 1,
            max: ((1u32 << config.counter_bits) - 1) as u8,
            counters: vec![0; 1 << config.bits],
        }
    }

    fn on_place(&mut self, block: u64) {
        for which in 0..self.k {
            let s = (spec_mix(block, which) & self.mask) as usize;
            if self.counters[s] < self.max {
                self.counters[s] += 1;
            }
        }
    }

    fn on_replace(&mut self, block: u64) {
        for which in 0..self.k {
            let s = (spec_mix(block, which) & self.mask) as usize;
            let c = self.counters[s];
            if c > 0 && c < self.max {
                self.counters[s] = c - 1;
            }
        }
    }

    fn is_definite_miss(&self, block: u64) -> bool {
        (0..self.k).any(|which| self.counters[(spec_mix(block, which) & self.mask) as usize] == 0)
    }
}

#[test]
fn bloom_zero_bitset_and_mixer_match_the_naive_model() {
    for (case, &(bits, k)) in [(5u32, 2u32), (10, 3), (12, 4), (3, 8)].iter().enumerate() {
        let config = BloomConfig::new(bits, k);
        let mut real = BloomFilter::new(config);
        let mut spec = SpecBloom::new(config);
        let mut gen = Gen(0xB100_0001 + case as u64);
        for step in 0..2_500u64 {
            let r = gen.next();
            let block = gen.next() % 0x2_0000;
            match r % 8 {
                0..=3 => {
                    real.on_place(block);
                    spec.on_place(block);
                }
                4..=5 => {
                    real.on_replace(block);
                    spec.on_replace(block);
                }
                6 => {
                    let bit = gen.next() % real.state_bits();
                    assert!(real.flip_state_bit(bit));
                    let slot = (bit / 3) as usize;
                    spec.counters[slot] ^= 1 << (bit % 3);
                }
                _ => {
                    real.flush();
                    spec.counters.fill(0);
                }
            }
            for probe in [block, gen.next() % 0x2_0000, gen.next() % 0x100] {
                assert_eq!(
                    real.is_definite_miss(probe),
                    spec.is_definite_miss(probe),
                    "BLOOM_{bits}x{k}: verdicts diverged for {probe:#x} at step {step}"
                );
            }
        }
    }
}
