//! Tests of each filter against an exact reference model of cache
//! contents: the one-sided soundness contract, flush semantics, and
//! technique-specific guarantees. Deterministic seeded sweeps (formerly
//! proptest).

use std::collections::HashMap;

use mnm_core::{
    Cmnm, CmnmConfig, MissFilter, Rmnm, RmnmConfig, SmnmConfig, SmnmFilter, TmnmConfig, TmnmFilter,
};

/// Minimal deterministic generator for test inputs (splitmix64).
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// An abstract cache trace: alternating place/replace operations that a
/// real cache could emit (a block is placed at most once before being
/// replaced, and only resident blocks are replaced).
#[derive(Debug, Clone)]
struct CacheTrace {
    ops: Vec<(bool, u64)>, // (is_place, block)
}

fn cache_trace(gen: &mut Gen, max_ops: u64, addr_space: u64) -> CacheTrace {
    let n = 1 + gen.next() % max_ops;
    // Repair the raw stream into a legal place/replace alternation.
    let mut live: HashMap<u64, u32> = HashMap::new();
    let mut ops = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let block = gen.next() % addr_space;
        let count = live.entry(block).or_insert(0);
        if *count == 0 {
            *count = 1;
            ops.push((true, block));
        } else {
            *count = 0;
            ops.push((false, block));
        }
    }
    CacheTrace { ops }
}

fn check_filter_soundness(filter: &mut dyn MissFilter, trace: &CacheTrace) {
    let mut live: HashMap<u64, bool> = HashMap::new();
    for &(is_place, block) in &trace.ops {
        if is_place {
            filter.on_place(block);
            live.insert(block, true);
        } else {
            filter.on_replace(block);
            live.insert(block, false);
        }
        // Soundness: every *live* block must be a maybe.
        for (&b, &alive) in &live {
            assert!(
                !(alive && filter.is_definite_miss(b)),
                "{} flagged live block {b:#x}",
                filter.label()
            );
        }
    }
}

#[test]
fn smnm_never_flags_live_blocks() {
    let mut gen = Gen(0x5111);
    for case in 0..40u64 {
        let w = 4 + (case % 12) as u32;
        let r = 1 + (case % 3) as u32;
        let trace = cache_trace(&mut gen, 200, 0x2000);
        let mut f = SmnmFilter::new(SmnmConfig::new(w, r));
        check_filter_soundness(&mut f, &trace);
    }
}

#[test]
fn tmnm_never_flags_live_blocks() {
    let mut gen = Gen(0x7111);
    for case in 0..40u64 {
        let bits = 2 + (case % 12) as u32;
        let r = 1 + (case % 3) as u32;
        let cw = 1 + (case % 4) as u32;
        let trace = cache_trace(&mut gen, 200, 0x2000);
        let mut f = TmnmFilter::new(TmnmConfig::with_counter_bits(bits, r, cw));
        check_filter_soundness(&mut f, &trace);
    }
}

#[test]
fn cmnm_never_flags_live_blocks() {
    let mut gen = Gen(0xC111);
    for case in 0..40u64 {
        let k = [1u32, 2, 4, 8][(case % 4) as usize];
        let m = 2 + (case % 12) as u32;
        let trace = cache_trace(&mut gen, 200, 0x80000);
        let mut f = Cmnm::new(CmnmConfig::new(k, m));
        check_filter_soundness(&mut f, &trace);
    }
}

#[test]
fn rmnm_never_flags_live_blocks() {
    let mut gen = Gen(0x2111);
    for case in 0..40u64 {
        let blocks = [16u32, 64, 256][(case % 3) as usize];
        let assoc = [1u32, 2, 4][(case / 3 % 3) as usize];
        let trace = cache_trace(&mut gen, 200, 0x2000);
        // The RMNM is shared; exercise one slot through the same trace.
        let mut r = Rmnm::new(RmnmConfig::new(blocks, assoc), 3);
        let mut live: HashMap<u64, bool> = HashMap::new();
        for &(is_place, block) in &trace.ops {
            if is_place {
                r.on_place(1, block);
                live.insert(block, true);
            } else {
                r.on_replace(1, block);
                live.insert(block, false);
            }
            for (&b, &alive) in &live {
                assert!(!(alive && r.is_definite_miss(1, b)), "RMNM flagged live block {b:#x}");
                // Other slots never saw events: they must stay silent.
                assert!(!r.is_definite_miss(0, b));
                assert!(!r.is_definite_miss(2, b));
            }
        }
    }
}

/// TMNM exactness: with wide-enough counters and a table large enough
/// to avoid aliasing, TMNM is a *perfect* filter (counter == live).
#[test]
fn tmnm_is_exact_without_aliasing() {
    let mut gen = Gen(0xE8AC7);
    for _ in 0..40 {
        let trace = cache_trace(&mut gen, 120, 64);
        let mut f = TmnmFilter::new(TmnmConfig::with_counter_bits(6, 1, 8));
        let mut live: HashMap<u64, bool> = HashMap::new();
        for &(is_place, block) in &trace.ops {
            if is_place {
                f.on_place(block);
                live.insert(block, true);
            } else {
                f.on_replace(block);
                live.insert(block, false);
            }
        }
        // 64 possible blocks, 64 slots, counters up to 255: no aliasing,
        // no saturation => definite-miss iff dead.
        for (&b, &alive) in &live {
            assert_eq!(f.is_definite_miss(b), !alive, "block {b:#x}");
        }
    }
}

/// Flush must restore the all-cold verdict for every technique.
#[test]
fn flush_makes_everything_a_definite_miss_again() {
    let mut gen = Gen(0xF1054);
    for _ in 0..40 {
        let trace = cache_trace(&mut gen, 100, 0x1000);
        let mut filters: Vec<Box<dyn MissFilter>> = vec![
            Box::new(SmnmFilter::new(SmnmConfig::new(10, 2))),
            Box::new(TmnmFilter::new(TmnmConfig::new(10, 1))),
            Box::new(Cmnm::new(CmnmConfig::new(4, 10))),
        ];
        for f in &mut filters {
            for &(is_place, block) in &trace.ops {
                if is_place {
                    f.on_place(block);
                } else {
                    f.on_replace(block);
                }
            }
            f.flush();
            for &(_, block) in &trace.ops {
                assert!(f.is_definite_miss(block), "{} kept state across flush", f.label());
            }
        }
    }
}

/// Storage accounting is stable: label and bit count do not depend on
/// the history of operations.
#[test]
fn storage_is_history_independent() {
    let mut gen = Gen(0x570124);
    for _ in 0..40 {
        let trace = cache_trace(&mut gen, 100, 0x1000);
        let mut f = TmnmFilter::new(TmnmConfig::new(12, 3));
        let before = (f.label().to_owned(), f.storage_bits());
        for &(is_place, block) in &trace.ops {
            if is_place {
                f.on_place(block)
            } else {
                f.on_replace(block)
            }
        }
        assert_eq!(before, (f.label().to_owned(), f.storage_bits()));
    }
}
