//! Property-based tests of each filter against an exact reference model
//! of cache contents: the one-sided soundness contract, flush semantics,
//! and technique-specific guarantees.

use std::collections::HashMap;

use mnm_core::{
    Cmnm, CmnmConfig, MissFilter, Rmnm, RmnmConfig, SmnmConfig, SmnmFilter, TmnmConfig, TmnmFilter,
};
use proptest::prelude::*;

/// An abstract cache trace: alternating place/replace operations that a
/// real cache could emit (a block is placed at most once before being
/// replaced, and only resident blocks are replaced).
#[derive(Debug, Clone)]
struct CacheTrace {
    ops: Vec<(bool, u64)>, // (is_place, block)
}

fn cache_trace(max_ops: usize, addr_space: u64) -> impl Strategy<Value = CacheTrace> {
    proptest::collection::vec((any::<bool>(), 0..addr_space), 1..max_ops).prop_map(move |raw| {
        // Repair the raw stream into a legal place/replace alternation.
        let mut live: HashMap<u64, u32> = HashMap::new();
        let mut ops = Vec::with_capacity(raw.len());
        for (want_place, block) in raw {
            let count = live.entry(block).or_insert(0);
            if want_place && *count == 0 {
                *count = 1;
                ops.push((true, block));
            } else if !want_place && *count == 1 {
                *count = 0;
                ops.push((false, block));
            } else if *count == 0 {
                *count = 1;
                ops.push((true, block));
            } else {
                *count = 0;
                ops.push((false, block));
            }
        }
        CacheTrace { ops }
    })
}

fn check_filter_soundness(filter: &mut dyn MissFilter, trace: &CacheTrace) -> Result<(), String> {
    let mut live: HashMap<u64, bool> = HashMap::new();
    for &(is_place, block) in &trace.ops {
        if is_place {
            filter.on_place(block);
            live.insert(block, true);
        } else {
            filter.on_replace(block);
            live.insert(block, false);
        }
        // Soundness: every *live* block must be a maybe.
        for (&b, &alive) in &live {
            if alive && filter.is_definite_miss(b) {
                return Err(format!("{} flagged live block {b:#x}", filter.label()));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn smnm_never_flags_live_blocks(trace in cache_trace(200, 0x2000), w in 4u32..16, r in 1u32..=3) {
        let mut f = SmnmFilter::new(SmnmConfig::new(w, r));
        check_filter_soundness(&mut f, &trace).map_err(|e| TestCaseError::fail(e))?;
    }

    #[test]
    fn tmnm_never_flags_live_blocks(
        trace in cache_trace(200, 0x2000),
        bits in 2u32..14,
        r in 1u32..=3,
        cw in 1u32..=4,
    ) {
        let mut f = TmnmFilter::new(TmnmConfig::with_counter_bits(bits, r, cw));
        check_filter_soundness(&mut f, &trace).map_err(|e| TestCaseError::fail(e))?;
    }

    #[test]
    fn cmnm_never_flags_live_blocks(
        trace in cache_trace(200, 0x80000),
        k in prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
        m in 2u32..14,
    ) {
        let mut f = Cmnm::new(CmnmConfig::new(k, m));
        check_filter_soundness(&mut f, &trace).map_err(|e| TestCaseError::fail(e))?;
    }

    #[test]
    fn rmnm_never_flags_live_blocks(
        trace in cache_trace(200, 0x2000),
        blocks in prop_oneof![Just(16u32), Just(64), Just(256)],
        assoc in prop_oneof![Just(1u32), Just(2), Just(4)],
    ) {
        // The RMNM is shared; exercise one slot through the same trace.
        let mut r = Rmnm::new(RmnmConfig::new(blocks, assoc), 3);
        let mut live: HashMap<u64, bool> = HashMap::new();
        for &(is_place, block) in &trace.ops {
            if is_place {
                r.on_place(1, block);
                live.insert(block, true);
            } else {
                r.on_replace(1, block);
                live.insert(block, false);
            }
            for (&b, &alive) in &live {
                prop_assert!(
                    !(alive && r.is_definite_miss(1, b)),
                    "RMNM flagged live block {b:#x}"
                );
                // Other slots never saw events: they must stay silent.
                prop_assert!(!r.is_definite_miss(0, b));
                prop_assert!(!r.is_definite_miss(2, b));
            }
        }
    }

    /// TMNM exactness: with wide-enough counters and a table large enough
    /// to avoid aliasing, TMNM is a *perfect* filter (counter == live).
    #[test]
    fn tmnm_is_exact_without_aliasing(trace in cache_trace(120, 64)) {
        let mut f = TmnmFilter::new(TmnmConfig::with_counter_bits(6, 1, 8));
        let mut live: HashMap<u64, bool> = HashMap::new();
        for &(is_place, block) in &trace.ops {
            if is_place {
                f.on_place(block);
                live.insert(block, true);
            } else {
                f.on_replace(block);
                live.insert(block, false);
            }
        }
        // 64 possible blocks, 64 slots, counters up to 255: no aliasing,
        // no saturation => definite-miss iff dead.
        for (&b, &alive) in &live {
            prop_assert_eq!(f.is_definite_miss(b), !alive, "block {:#x}", b);
        }
    }

    /// Flush must restore the all-cold verdict for every technique.
    #[test]
    fn flush_makes_everything_a_definite_miss_again(trace in cache_trace(100, 0x1000)) {
        let mut filters: Vec<Box<dyn MissFilter>> = vec![
            Box::new(SmnmFilter::new(SmnmConfig::new(10, 2))),
            Box::new(TmnmFilter::new(TmnmConfig::new(10, 1))),
            Box::new(Cmnm::new(CmnmConfig::new(4, 10))),
        ];
        for f in &mut filters {
            for &(is_place, block) in &trace.ops {
                if is_place {
                    f.on_place(block);
                } else {
                    f.on_replace(block);
                }
            }
            f.flush();
            for &(_, block) in &trace.ops {
                prop_assert!(f.is_definite_miss(block), "{} kept state across flush", f.label());
            }
        }
    }

    /// Storage accounting is stable: label and bit count do not depend on
    /// the history of operations.
    #[test]
    fn storage_is_history_independent(trace in cache_trace(100, 0x1000)) {
        let mut f = TmnmFilter::new(TmnmConfig::new(12, 3));
        let before = (f.label(), f.storage_bits());
        for &(is_place, block) in &trace.ops {
            if is_place { f.on_place(block) } else { f.on_replace(block) }
        }
        prop_assert_eq!(before, (f.label(), f.storage_bits()));
    }
}
