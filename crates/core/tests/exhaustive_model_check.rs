//! Exhaustive model checking of filter soundness on a tiny universe.
//!
//! Property tests sample the trace space; this test *enumerates* it: every
//! legal place/replace trace of depth ≤ 8 over a 4-block universe
//! (~87 000 prefixes), for every technique, checking the filter against
//! the exact resident set at every prefix. Any one-sidedness violation in
//! the update/query logic that a random sampler could miss is caught here
//! by construction.

use mnm_core::{
    BloomConfig, BloomFilter, Cmnm, CmnmConfig, MissFilter, SmnmConfig, SmnmFilter, TmnmConfig,
    TmnmFilter,
};

const BLOCKS: u64 = 4;
const DEPTH: usize = 8;

fn build(kind: &str, trace: &[(bool, u64)]) -> Box<dyn MissFilter> {
    let mut f: Box<dyn MissFilter> = match kind {
        "smnm" => Box::new(SmnmFilter::new(SmnmConfig::new(4, 1))),
        "tmnm" => Box::new(TmnmFilter::new(TmnmConfig::with_counter_bits(2, 1, 2))),
        "cmnm" => Box::new(Cmnm::new(CmnmConfig::new(2, 2))),
        "bloom" => Box::new(BloomFilter::new(BloomConfig::new(2, 2))),
        other => panic!("unknown filter kind {other}"),
    };
    for &(place, b) in trace {
        if place {
            f.on_place(b);
        } else {
            f.on_replace(b);
        }
    }
    f
}

fn check_exhaustively(kind: &str) -> u64 {
    let mut checked = 0u64;
    // DFS over trace prefixes; the filter is rebuilt by replay (O(DEPTH)
    // per node — cheap, and avoids requiring Clone on trait objects).
    let mut stack: Vec<Vec<(bool, u64)>> = vec![Vec::new()];
    while let Some(trace) = stack.pop() {
        let mut resident = [false; BLOCKS as usize];
        for &(place, b) in &trace {
            resident[b as usize] = place;
        }
        let f = build(kind, &trace);
        for (b, &alive) in resident.iter().enumerate() {
            if alive {
                assert!(
                    !f.is_definite_miss(b as u64),
                    "{kind} flagged live block {b} after {trace:?}"
                );
            }
        }
        checked += 1;
        if trace.len() < DEPTH {
            for b in 0..BLOCKS {
                let mut next = trace.clone();
                // The only legal next operation on block b: place if
                // absent, replace if resident.
                next.push((!resident[b as usize], b));
                stack.push(next);
            }
        }
    }
    checked
}

#[test]
fn smnm_is_sound_on_every_tiny_trace() {
    assert!(check_exhaustively("smnm") > 80_000);
}

#[test]
fn tmnm_is_sound_on_every_tiny_trace() {
    assert!(check_exhaustively("tmnm") > 80_000);
}

#[test]
fn cmnm_is_sound_on_every_tiny_trace() {
    assert!(check_exhaustively("cmnm") > 80_000);
}

#[test]
fn bloom_is_sound_on_every_tiny_trace() {
    assert!(check_exhaustively("bloom") > 80_000);
}
