//! Coverage and activity statistics for the MNM.

/// Counters for one guarded cache structure.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotStats {
    /// Filter queries issued for this structure.
    pub queries: u64,
    /// Queries answered "definite miss".
    pub flagged: u64,
    /// Misses that occurred at this structure before the supplying level
    /// (the coverage denominator contribution).
    pub bypassable_misses: u64,
    /// Of those, the ones the MNM identified.
    pub identified_misses: u64,
    /// Filter state updates (placements + replacements + invalidations
    /// observed, after sub-block expansion).
    pub updates: u64,
    /// Of the updates, blocks retired by invalidation (inclusive
    /// back-invalidations or external coherence traffic) rather than by
    /// the replacement policy.
    pub invalidations: u64,
}

impl SlotStats {
    /// Coverage at this structure, in [0, 1].
    pub fn coverage(&self) -> f64 {
        if self.bypassable_misses == 0 {
            0.0
        } else {
            self.identified_misses as f64 / self.bypassable_misses as f64
        }
    }
}

/// Aggregate counters for the whole machine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MnmStats {
    /// Accesses for which the machine was queried.
    pub accesses: u64,
    /// Accesses where at least one level was flagged.
    pub accesses_with_flags: u64,
    /// Lookups in the shared RMNM cache (one per queried access).
    pub rmnm_queries: u64,
    /// Updates to the shared RMNM cache (placements + replacements, after
    /// sub-block expansion).
    pub rmnm_updates: u64,
    /// Per-structure counters, indexed by MNM slot.
    pub slots: Vec<SlotStats>,
}

impl MnmStats {
    pub(crate) fn new(num_slots: usize) -> Self {
        MnmStats { slots: vec![SlotStats::default(); num_slots], ..Default::default() }
    }

    /// Total bypassable misses observed (coverage denominator; paper §4.2:
    /// misses at levels beyond L1 that occur before the supplying level).
    pub fn bypassable_misses(&self) -> u64 {
        self.slots.iter().map(|s| s.bypassable_misses).sum()
    }

    /// Total misses the MNM identified (coverage numerator).
    pub fn identified_misses(&self) -> u64 {
        self.slots.iter().map(|s| s.identified_misses).sum()
    }

    /// The paper's coverage metric: identified misses over all bypassable
    /// misses, in [0, 1].
    pub fn coverage(&self) -> f64 {
        let total = self.bypassable_misses();
        if total == 0 {
            0.0
        } else {
            self.identified_misses() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_is_ratio_of_sums() {
        let mut st = MnmStats::new(2);
        st.slots[0] =
            SlotStats { bypassable_misses: 30, identified_misses: 30, ..Default::default() };
        st.slots[1] =
            SlotStats { bypassable_misses: 70, identified_misses: 20, ..Default::default() };
        assert!((st.coverage() - 0.5).abs() < 1e-12);
        assert!((st.slots[0].coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_misses_means_zero_coverage() {
        let st = MnmStats::new(3);
        assert_eq!(st.coverage(), 0.0);
        assert_eq!(st.slots[0].coverage(), 0.0);
    }
}
