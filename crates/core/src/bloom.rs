//! A counting Bloom filter, the literature's main alternative to the
//! paper's techniques (Peir et al., ICS 2002 used Bloom filters for cache
//! miss determination; Moshovos et al.'s JETTY — co-authored by this
//! paper's first author — used a similar include-JETTY structure for snoop
//! filtering).
//!
//! `k` independent hash functions index a single array of saturating
//! counters; a block is *definitely absent* when **any** of its `k`
//! counters is zero. Placements increment all `k` counters, replacements
//! decrement them — with the same sticky-saturation conservatism as the
//! TMNM (a counter that ever saturates can no longer be trusted to reach
//! zero meaningfully, so it sticks).
//!
//! Structurally this generalizes the TMNM: TMNM's replicated tables are a
//! partitioned Bloom filter whose "hashes" are plain bit-field extractions.
//! The comparison experiment (`rw02`) quantifies what real hashing buys at
//! equal storage.
//!
//! Like the TMNM, queries read only a packed per-counter *zero bitset*
//! maintained on the update path, and the update path stages its `k` slot
//! indices in a fixed stack array (k ≤ 8) — no heap traffic per event.

use crate::filter::MissFilter;

/// `BLOOM_<bits>x<hashes>`: `2^bits` counters shared by `hashes` hash
/// functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BloomConfig {
    /// log2 of the counter count.
    pub bits: u32,
    /// Number of hash functions (k).
    pub hashes: u32,
    /// Width of each saturating counter (3, like the paper's tables).
    pub counter_bits: u32,
}

/// Upper bound on `BloomConfig::hashes`, sizing the update path's stack
/// buffer of slot indices.
const MAX_HASHES: usize = 8;

impl BloomConfig {
    /// Create a configuration with 3-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside 1..=24 or `hashes` outside 1..=8.
    pub fn new(bits: u32, hashes: u32) -> Self {
        assert!((1..=24).contains(&bits), "counter-array width must be 1..=24 bits");
        assert!((1..=MAX_HASHES as u32).contains(&hashes), "hash count must be 1..=8");
        BloomConfig { bits, hashes, counter_bits: 3 }
    }

    /// The label used in experiment tables.
    pub fn label(&self) -> String {
        format!("BLOOM_{}x{}", self.bits, self.hashes)
    }
}

/// A per-structure counting Bloom filter.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    config: BloomConfig,
    counters: Vec<u8>,
    /// Bit `s` set iff `counters[s] == 0` — the only state a probe reads.
    zero: Vec<u64>,
    max: u8,
    mask: u64,
    label: String,
}

/// One round of a splitmix64-style mixer, parameterized by the hash index.
fn mix(block: u64, which: u32) -> u64 {
    let mut z = block.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(which) + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn zero_words(slots: usize) -> Vec<u64> {
    let mut words = vec![u64::MAX; slots.div_ceil(64)];
    if !slots.is_multiple_of(64) {
        *words.last_mut().unwrap() = (1u64 << (slots % 64)) - 1;
    }
    words
}

impl BloomFilter {
    /// Build an empty filter.
    pub fn new(config: BloomConfig) -> Self {
        BloomFilter {
            counters: vec![0; 1 << config.bits],
            zero: zero_words(1 << config.bits),
            max: ((1u32 << config.counter_bits) - 1) as u8,
            mask: (1u64 << config.bits) - 1,
            label: config.label(),
            config,
        }
    }

    /// This filter's configuration.
    pub fn config(&self) -> &BloomConfig {
        &self.config
    }

    /// The `k` slot indices of `block`, staged on the stack so the update
    /// path can mutate `self` while iterating them.
    fn slot_array(&self, block: u64) -> ([usize; MAX_HASHES], usize) {
        let k = self.config.hashes as usize;
        let mut slots = [0usize; MAX_HASHES];
        for (which, slot) in slots[..k].iter_mut().enumerate() {
            *slot = (mix(block, which as u32) & self.mask) as usize;
        }
        (slots, k)
    }

    fn sync_zero_flag(&mut self, slot: usize) {
        let bit = 1u64 << (slot & 63);
        if self.counters[slot] == 0 {
            self.zero[slot >> 6] |= bit;
        } else {
            self.zero[slot >> 6] &= !bit;
        }
    }
}

impl MissFilter for BloomFilter {
    fn on_place(&mut self, block: u64) {
        let (slots, k) = self.slot_array(block);
        for &s in &slots[..k] {
            let c = self.counters[s];
            if c < self.max {
                self.counters[s] = c + 1;
                if c == 0 {
                    self.zero[s >> 6] &= !(1u64 << (s & 63));
                }
            }
        }
    }

    fn on_replace(&mut self, block: u64) {
        let (slots, k) = self.slot_array(block);
        for &s in &slots[..k] {
            let c = self.counters[s];
            if c > 0 && c < self.max {
                self.counters[s] = c - 1;
                if c == 1 {
                    self.zero[s >> 6] |= 1 << (s & 63);
                }
            }
        }
    }

    #[inline]
    fn is_definite_miss(&self, block: u64) -> bool {
        // OR the zero flags of all k counters: miss iff any is zero.
        let mut any_zero = 0u64;
        for which in 0..self.config.hashes {
            let s = (mix(block, which) & self.mask) as usize;
            any_zero |= self.zero[s >> 6] >> (s & 63) & 1;
        }
        any_zero != 0
    }

    fn flush(&mut self) {
        self.counters.fill(0);
        self.zero = zero_words(self.counters.len());
    }

    fn storage_bits(&self) -> u64 {
        (1u64 << self.config.bits) * u64::from(self.config.counter_bits)
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn state_bits(&self) -> u64 {
        self.storage_bits()
    }

    fn flip_state_bit(&mut self, bit: u64) -> bool {
        let width = u64::from(self.config.counter_bits);
        let slot = (bit / width) as usize;
        let Some(counter) = self.counters.get_mut(slot) else {
            return false;
        };
        *counter ^= 1 << (bit % width);
        self.sync_zero_flag(slot);
        true
    }

    fn state_bit_of(&self, block: u64) -> Option<u64> {
        // The low bit of the first hash's counter: one zero counter among
        // the k is enough to flag a definite miss.
        let slot = mix(block, 0) & self.mask;
        Some(slot * u64::from(self.config.counter_bits))
    }

    fn occupancy(&self) -> crate::filter::FilterOccupancy {
        let zeros: u64 = self.zero.iter().map(|w| u64::from(w.count_ones())).sum();
        crate::filter::FilterOccupancy {
            tracked: self.counters.len() as u64 - zeros,
            capacity: self.counters.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_replace_round_trip() {
        let mut f = BloomFilter::new(BloomConfig::new(10, 2));
        assert!(f.is_definite_miss(0xAB));
        f.on_place(0xAB);
        assert!(!f.is_definite_miss(0xAB));
        f.on_replace(0xAB);
        assert!(f.is_definite_miss(0xAB));
    }

    #[test]
    fn double_counting_hazard_is_handled() {
        // If two hash functions of the SAME block collide on one slot, the
        // slot is incremented twice; decrementing twice on replace keeps
        // the pairing exact, so soundness is preserved either way.
        let mut f = BloomFilter::new(BloomConfig::new(2, 4)); // tiny: collisions certain
        for b in 0..16u64 {
            f.on_place(b);
        }
        for b in 0..16u64 {
            // All other blocks still live — no flag may appear for them.
            f.on_replace(b);
            for live in (b + 1)..16 {
                assert!(!f.is_definite_miss(live), "unsound for {live:#x} after removing {b:#x}");
            }
        }
    }

    #[test]
    fn aliasing_blocks_keep_counters_positive() {
        let mut f = BloomFilter::new(BloomConfig::new(12, 3));
        f.on_place(1);
        f.on_place(2);
        f.on_replace(1);
        assert!(!f.is_definite_miss(2));
        f.on_replace(2);
        assert!(f.is_definite_miss(2));
    }

    #[test]
    fn saturation_is_sticky() {
        let mut f = BloomFilter::new(BloomConfig::new(1, 1)); // 2 counters
        for b in 0..32u64 {
            f.on_place(b);
        }
        for b in 0..32u64 {
            f.on_replace(b);
        }
        // Both counters saturated and stuck: nothing is ever flagged.
        for b in 0..32u64 {
            assert!(!f.is_definite_miss(b));
        }
    }

    #[test]
    fn zero_bitset_tracks_counters_exactly() {
        let mut f = BloomFilter::new(BloomConfig::new(5, 3)); // 32 counters: partial word
        let mut x: u64 = 0x1234_5678;
        for step in 0..3000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            match step % 4 {
                0 | 1 => f.on_place(x % 512),
                2 => f.on_replace(x % 512),
                _ => {
                    f.flip_state_bit(x % f.state_bits());
                }
            }
            for (s, &c) in f.counters.iter().enumerate() {
                assert_eq!(
                    f.zero[s >> 6] >> (s & 63) & 1 != 0,
                    c == 0,
                    "slot {s} after step {step}"
                );
            }
        }
        f.flush();
        assert!(f.counters.iter().all(|&c| c == 0));
        assert!(f.is_definite_miss(0));
    }

    #[test]
    fn hashing_spreads_better_than_bit_slicing_on_stride_patterns() {
        use crate::tmnm::{TmnmConfig, TmnmFilter};
        // Strided block addresses with zero low bits: TMNM's low-bit table
        // collapses to few slots; the Bloom filter spreads them.
        let mut bloom = BloomFilter::new(BloomConfig::new(10, 2));
        let mut tmnm = TmnmFilter::new(TmnmConfig::new(10, 1));
        for i in 0..256u64 {
            let block = i << 10; // all low 10 bits zero
            bloom.on_place(block);
            tmnm.on_place(block);
        }
        // A fresh strided block: TMNM cannot flag it (slot 0 is saturated),
        // the Bloom filter usually can.
        let fresh = 1000u64 << 10;
        assert!(!tmnm.is_definite_miss(fresh), "bit-slice table is blind here");
        assert!(bloom.is_definite_miss(fresh), "hashing separates strided blocks");
    }

    #[test]
    fn storage_accounting() {
        let f = BloomFilter::new(BloomConfig::new(12, 4));
        assert_eq!(f.storage_bits(), 4096 * 3);
        assert_eq!(f.label(), "BLOOM_12x4");
    }

    #[test]
    #[should_panic(expected = "hash count")]
    fn rejects_too_many_hashes() {
        BloomConfig::new(10, 9);
    }
}
