//! # mnm-core — the Mostly No Machine
//!
//! Reproduction of the primary contribution of *"Just Say No: Benefits of
//! Early Cache Miss Determination"* (Memik, Reinman, Mangione-Smith,
//! HPCA 2003).
//!
//! The **Mostly No Machine (MNM)** sits next to a multi-level cache
//! hierarchy and, for every reference, determines whether the access will
//! *definitely miss* at each cache level beyond L1. Accesses that are known
//! to miss bypass the corresponding cache probes: the request travels
//! straight to the next level, saving latency (parallel MNM, in front of
//! L1) or probe energy (serial MNM, after an L1 miss).
//!
//! Every technique is **one-sided** (paper §3.6): a *miss* verdict is
//! guaranteed correct, while a *maybe* verdict requires a normal probe.
//! Debug builds of the companion [`cache_sim`] crate assert this contract
//! on every bypass.
//!
//! ## Techniques
//!
//! | Type | Paper § | Idea |
//! |------|---------|------|
//! | [`Rmnm`] | 3.1 | cache of recently **replaced** block addresses, one presence bit per cache structure |
//! | [`SmnmFilter`] | 3.2 | sum-of-squares hash **checkers** over address slices; set-only between flushes |
//! | [`TmnmFilter`] | 3.3 | tables of saturating **counters** indexed by address slices |
//! | [`CmnmFilter`](Cmnm) | 3.4 | **virtual-tag finder** over the high address bits feeding a counter table |
//! | [`hybrid`] (HMNM) | 3.5 | combinations of the above, different mixes per level group |
//!
//! ## Quick example
//!
//! ```
//! use cache_sim::{Access, Hierarchy, HierarchyConfig};
//! use mnm_core::{Mnm, MnmConfig};
//!
//! let mut hier = Hierarchy::new(HierarchyConfig::paper_five_level());
//! let mut mnm = Mnm::new(&hier, MnmConfig::hmnm(4));
//! for i in 0..1000u64 {
//!     mnm.run_access(&mut hier, Access::load((i % 64) * 32));
//! }
//! let cov = mnm.stats().coverage();
//! assert!((0.0..=1.0).contains(&cov));
//! ```

mod block;
mod bloom;
mod cmnm;
mod config;
mod filter;
mod machine;
mod perfect;
mod rmnm;
mod smnm;
mod stats;
mod tmnm;

pub mod hybrid;

pub use block::Granularity;
pub use bloom::{BloomConfig, BloomFilter};
pub use cmnm::{Cmnm, CmnmConfig};
pub use config::{Assignment, MnmConfig, MnmPlacement, ParseConfigError, TechniqueConfig};
pub use filter::{FilterOccupancy, MissFilter};
pub use machine::{ComponentStorage, FilterKind, Mnm};
pub use perfect::{perfect_bypass, PerfectFilter};
pub use rmnm::{Rmnm, RmnmConfig};
pub use smnm::{SmnmChecker, SmnmConfig, SmnmFilter};
pub use stats::{MnmStats, SlotStats};
pub use tmnm::{TmnmConfig, TmnmFilter, TmnmTable};
