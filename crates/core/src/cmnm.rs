//! CMNM — the Common-Address MNM (paper §3.4).
//!
//! CMNM exploits the spatial locality of the *high* address bits. A
//! **virtual-tag finder** holds `k` registers, each storing a previously
//! encountered most-significant address portion together with a mask. An
//! incoming block address is split into its high `(addr_bits - m)` bits and
//! low `m` bits; the high bits are matched against the registers:
//!
//! * no register matches → the block can be in the cache only if it was
//!   placed through a register, so the access is a **definite miss**;
//! * register `r` matches → the index `r * 2^m + low_bits` selects a
//!   saturating counter in the CMNM table; a zero counter is a **definite
//!   miss**.
//!
//! When a *placement* matches no register, the registers' masks are widened
//! ("shifted left until a match is found"); the matching register keeps the
//! wider mask permanently. Masks only ever widen, so a block that matched a
//! register at placement time keeps matching it — the foundation of the
//! no-match-is-a-miss rule.
//!
//! One hardware subtlety the paper glosses over: after masks widen, a
//! *different* register may also start matching an old block, so pairing
//! each replacement with the counter its placement incremented needs the
//! register index to travel with the cache block. We model exactly that —
//! the register index is conceptually tagged onto the block when it is
//! filled (the paper already requires caches to report replaced block
//! addresses to the MNM, §2) — which keeps the counters exact and the
//! filter sound.

use std::collections::HashMap;

use crate::filter::MissFilter;

/// `CMNM_<registers>_<table_bits>` (e.g. `CMNM_8_12`): `registers` entries
/// in the virtual-tag finder, `2^table_bits` counters per register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmnmConfig {
    /// Number of virtual-tag registers (k). Must be a power of two.
    pub registers: u32,
    /// Low bits of the block address used to index the table (m).
    pub table_bits: u32,
    /// Width of the block-address space examined (paper: 32-bit addresses).
    pub addr_bits: u32,
    /// Width of each saturating counter (paper: 3).
    pub counter_bits: u32,
}

impl CmnmConfig {
    /// Create a configuration with the paper's 32-bit addresses and 3-bit
    /// counters.
    ///
    /// # Panics
    ///
    /// Panics if `registers` is not a power of two in 1..=256, or
    /// `table_bits` is 0 or ≥ 31.
    pub fn new(registers: u32, table_bits: u32) -> Self {
        assert!(
            registers.is_power_of_two() && (1..=256).contains(&registers),
            "register count must be a power of two in 1..=256"
        );
        assert!((1..31).contains(&table_bits), "table_bits must be 1..=30");
        CmnmConfig { registers, table_bits, addr_bits: 32, counter_bits: 3 }
    }

    /// The paper's label for this configuration.
    pub fn label(&self) -> String {
        format!("CMNM_{}_{}", self.registers, self.table_bits)
    }
}

#[derive(Debug, Clone, Copy)]
struct Register {
    /// High address portion captured at install time.
    value: u64,
    /// How many low bits of the high portion are currently ignored.
    /// Monotonically non-decreasing (masks only widen).
    shift: u32,
    valid: bool,
}

impl Register {
    fn matches(&self, high: u64) -> bool {
        self.valid && (high >> self.shift) == (self.value >> self.shift)
    }

    fn matches_at(&self, high: u64, shift: u32) -> bool {
        self.valid && (high >> shift) == (self.value >> shift)
    }
}

/// A per-structure Common-Address MNM filter.
#[derive(Debug, Clone)]
pub struct Cmnm {
    config: CmnmConfig,
    regs: Vec<Register>,
    counters: Vec<u8>,
    counter_max: u8,
    /// Register index each live block was counted under (the per-block tag
    /// described in the module docs). Keyed by MNM block address.
    live: HashMap<u64, u32>,
    high_bits: u32,
    label: String,
}

impl Cmnm {
    /// Build an empty filter.
    pub fn new(config: CmnmConfig) -> Self {
        let table_len = (config.registers as usize) << config.table_bits;
        Cmnm {
            regs: vec![Register { value: 0, shift: 0, valid: false }; config.registers as usize],
            counters: vec![0; table_len],
            counter_max: ((1u32 << config.counter_bits) - 1) as u8,
            live: HashMap::new(),
            high_bits: config.addr_bits - config.table_bits,
            label: config.label(),
            config,
        }
    }

    /// This filter's configuration.
    pub fn config(&self) -> &CmnmConfig {
        &self.config
    }

    fn split(&self, block: u64) -> (u64, u64) {
        let low = block & ((1u64 << self.config.table_bits) - 1);
        let high = (block >> self.config.table_bits) & ((1u64 << self.high_bits) - 1);
        (high, low)
    }

    fn table_index(&self, reg: u32, low: u64) -> usize {
        ((reg as usize) << self.config.table_bits) | low as usize
    }

    /// First register matching `high` under its current mask.
    fn find_register(&self, high: u64) -> Option<u32> {
        self.regs.iter().position(|r| r.matches(high)).map(|i| i as u32)
    }

    /// Install coverage for `high`: reuse a matching register, fill an
    /// invalid one, or widen masks until a register matches (paper §3.4).
    /// Returns the register index.
    fn cover(&mut self, high: u64) -> u32 {
        if let Some(r) = self.find_register(high) {
            return r;
        }
        if let Some(i) = self.regs.iter().position(|r| !r.valid) {
            self.regs[i] = Register { value: high, shift: 0, valid: true };
            return i as u32;
        }
        // "Mask values are shifted left until a match is found. Then the
        // mask values are reset to their original position except the
        // register that matched": widen a trial shift until some register
        // matches; only that register keeps the wider mask.
        for shift in 1..=self.high_bits {
            if let Some(i) = self.regs.iter().position(|r| r.matches_at(high, shift.max(r.shift))) {
                let s = shift.max(self.regs[i].shift);
                self.regs[i].shift = s;
                return i as u32;
            }
        }
        unreachable!("a full-width shift matches every valid register");
    }

    /// Counter value a block currently maps to, if any register matches
    /// (for tests/diagnostics).
    pub fn counter_for(&self, block: u64) -> Option<u8> {
        let (high, low) = self.split(block);
        self.find_register(high).map(|r| self.counters[self.table_index(r, low)])
    }
}

impl MissFilter for Cmnm {
    fn on_place(&mut self, block: u64) {
        let (high, low) = self.split(block);
        let reg = self.cover(high);
        let idx = self.table_index(reg, low);
        if self.counters[idx] < self.counter_max {
            self.counters[idx] += 1;
        }
        self.live.insert(block, reg);
    }

    fn on_replace(&mut self, block: u64) {
        // Pair the decrement with the exact counter the placement used.
        let Some(reg) = self.live.remove(&block) else {
            return; // replacement of a block placed before a flush
        };
        let (_, low) = self.split(block);
        let idx = self.table_index(reg, low);
        let c = self.counters[idx];
        if c > 0 && c < self.counter_max {
            self.counters[idx] = c - 1;
        }
    }

    fn is_definite_miss(&self, block: u64) -> bool {
        let (high, low) = self.split(block);
        // Sound under widening: a live block always still matches the
        // register it was counted under, whose counter is then positive.
        // So "every matching register's counter is zero" implies absent;
        // "no register matches" likewise.
        let mut any_match = false;
        for (i, r) in self.regs.iter().enumerate() {
            if r.matches(high) {
                any_match = true;
                if self.counters[self.table_index(i as u32, low)] > 0 {
                    return false;
                }
            }
        }
        // No match at all, or all matching counters are zero.
        let _ = any_match;
        true
    }

    fn flush(&mut self) {
        for r in &mut self.regs {
            r.valid = false;
            r.shift = 0;
        }
        self.counters.fill(0);
        self.live.clear();
    }

    fn storage_bits(&self) -> u64 {
        let reg_bits = u64::from(self.config.registers)
            * (u64::from(self.high_bits)
                + u64::from(self.high_bits.next_power_of_two().trailing_zeros())
                + 1);
        let table_bits = (u64::from(self.config.registers) << self.config.table_bits)
            * u64::from(self.config.counter_bits);
        reg_bits + table_bits
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn reserve(&mut self, max_live_blocks: usize) {
        // The live map holds at most one entry per resident block of the
        // guarded structure. Reserving twice that keeps on_place free of
        // rehash allocations permanently, not just until the first wrap:
        // insert/remove churn accumulates tombstones until the map's
        // growth budget empties, and a table occupied to at most half its
        // reserved capacity is then rehashed in place instead of being
        // reallocated. (Sizing to exactly max_live_blocks allocated once
        // per run when a near-full structure churned long enough.)
        let target = 2 * max_live_blocks + 1;
        self.live.reserve(target.saturating_sub(self.live.capacity()));
    }

    fn state_bits(&self) -> u64 {
        // Only the counter table is bit-addressable; the virtual-tag
        // registers and the per-block pairing map are modelled, not SRAM.
        self.counters.len() as u64 * u64::from(self.config.counter_bits)
    }

    fn flip_state_bit(&mut self, bit: u64) -> bool {
        let width = u64::from(self.config.counter_bits);
        let Some(counter) = self.counters.get_mut((bit / width) as usize) else {
            return false;
        };
        *counter ^= 1 << (bit % width);
        true
    }

    fn state_bit_of(&self, block: u64) -> Option<u64> {
        // The low bit of the counter the block maps to under the first
        // matching register (a resident block always still matches the
        // register it was counted under).
        let (high, low) = self.split(block);
        let reg = self.find_register(high)?;
        Some(self.table_index(reg, low) as u64 * u64::from(self.config.counter_bits))
    }

    fn occupancy(&self) -> crate::filter::FilterOccupancy {
        crate::filter::FilterOccupancy {
            tracked: self.live.len() as u64,
            capacity: self.counters.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmnm(k: u32, m: u32) -> Cmnm {
        Cmnm::new(CmnmConfig::new(k, m))
    }

    #[test]
    fn unseen_region_is_definite_miss() {
        let mut f = cmnm(4, 10);
        f.on_place(0x0040_0001);
        assert!(!f.is_definite_miss(0x0040_0001));
        // Same region, different low bits: counter 0 => miss.
        assert!(f.is_definite_miss(0x0040_0002));
        // Entirely different region: no register matches => miss.
        assert!(f.is_definite_miss(0x0990_0001));
    }

    #[test]
    fn place_replace_round_trip() {
        let mut f = cmnm(2, 8);
        f.on_place(0x1234_5600 | 0x7f);
        assert!(!f.is_definite_miss(0x1234_5600 | 0x7f));
        f.on_replace(0x1234_5600 | 0x7f);
        assert!(f.is_definite_miss(0x1234_5600 | 0x7f));
    }

    #[test]
    fn widening_keeps_old_blocks_matching() {
        let mut f = cmnm(2, 4);
        // Fill both registers with far-apart regions.
        f.on_place(0x1000_0000);
        f.on_place(0x2000_0000);
        // A third region forces widening of some register.
        f.on_place(0x1000_1000);
        // The original blocks must still be recognized as maybe-hits.
        assert!(!f.is_definite_miss(0x1000_0000));
        assert!(!f.is_definite_miss(0x2000_0000));
        assert!(!f.is_definite_miss(0x1000_1000));
    }

    #[test]
    fn widened_replacement_decrements_the_right_counter() {
        let mut f = cmnm(2, 4);
        f.on_place(0x1000_0000); // reg 0
        f.on_place(0x2000_0000); // reg 1
        f.on_place(0x1000_1000); // widens a register (same low nibble as reg0's block!)
                                 // Replace the widened block; the original block must stay a
                                 // maybe-hit even though both share low bits.
        f.on_replace(0x1000_1000);
        assert!(!f.is_definite_miss(0x1000_0000), "sound pairing of place/replace");
        f.on_replace(0x1000_0000);
        assert!(f.is_definite_miss(0x1000_0000));
    }

    #[test]
    fn saturation_is_sticky() {
        let mut f = cmnm(1, 2);
        // 8+ blocks with the same low 2 bits in one region.
        for i in 0..10u64 {
            f.on_place(0x100 + (i << 2));
        }
        for i in 0..10u64 {
            f.on_replace(0x100 + (i << 2));
        }
        assert!(!f.is_definite_miss(0x100), "stuck counter stays conservative");
    }

    #[test]
    fn flush_forgets_everything() {
        let mut f = cmnm(4, 8);
        f.on_place(0xdead_be00);
        f.flush();
        assert!(f.is_definite_miss(0xdead_be00));
        // Replacement after a flush for a pre-flush block is ignored.
        f.on_replace(0xdead_be00);
        assert!(f.is_definite_miss(0xdead_be00));
    }

    #[test]
    fn storage_counts_registers_and_table() {
        let f = cmnm(8, 12);
        // Table: 8 * 4096 * 3 bits dominates.
        assert!(f.storage_bits() >= 8 * 4096 * 3);
        assert!(f.storage_bits() < 8 * 4096 * 3 + 8 * 64);
    }

    #[test]
    fn label_matches_paper() {
        assert_eq!(CmnmConfig::new(8, 12).label(), "CMNM_8_12");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_registers() {
        CmnmConfig::new(3, 10);
    }

    #[test]
    fn flipping_the_guarding_counter_bit_makes_a_live_block_lie() {
        let mut f = cmnm(4, 8);
        f.on_place(0x0040_0001);
        assert!(!f.is_definite_miss(0x0040_0001));
        let bit = f.state_bit_of(0x0040_0001).expect("resident block matches a register");
        assert!(f.flip_state_bit(bit));
        assert!(f.is_definite_miss(0x0040_0001), "counter 1 -> 0: the filter now lies");
        assert!(f.flip_state_bit(bit));
        assert!(!f.is_definite_miss(0x0040_0001));
        // A block no register covers has no guarding bit.
        assert_eq!(f.state_bit_of(0x7700_0000), None);
        assert!(!f.flip_state_bit(f.state_bits()));
    }
}
