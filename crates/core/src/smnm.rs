//! SMNM — the Sum MNM (paper §3.2).
//!
//! Each *checker* examines a `sum_width`-bit slice of the block address and
//! hashes it with the paper's sum-of-squares function (Figure 5):
//!
//! ```text
//! sum = 0;
//! for (i = 1; i <= SUM_WIDTH; i++) { if (tag & 1) sum += i*i; tag >>= 1; }
//! ```
//!
//! A flip-flop per possible sum value records which hashes have ever been
//! placed into the guarded cache (Figure 6). An access whose hash was never
//! admitted is a definite miss. The structure is *set-only*: replacements
//! cannot clear flip-flops (several live blocks may share a hash), so only
//! never-seen hash values — mostly cold regions — are filtered, matching
//! the paper's observation that SMNM coverage is low except for
//! small-footprint caches.
//!
//! Replicated checkers examine address slices starting at bits 0, 6 and 12
//! (paper: "the first one examines the least significant bits, the second
//! examines the bits starting from the 7th ... the third one starting from
//! the 13th"); an access is a definite miss if *any* checker rejects it.
//!
//! The hash is evaluated bytewise through precomputed tables (the sum is
//! additive over disjoint bit groups), and the flip-flops are packed 64 per
//! word so a probe is one load plus a shift per checker instead of a
//! per-bit loop — same function values, same verdicts.

use crate::filter::MissFilter;

/// Bit offsets at which replicated checkers/tables slice the block address.
pub(crate) const SLICE_OFFSETS: [u32; 3] = [0, 6, 12];

/// `SMNM_<sum_width>x<replication>` (e.g. `SMNM_13x2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmnmConfig {
    /// Bits examined by each checker.
    pub sum_width: u32,
    /// Number of parallel checkers (1–3).
    pub replication: u32,
}

impl SmnmConfig {
    /// Create a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `sum_width` is zero or `replication` is not in 1..=3.
    pub fn new(sum_width: u32, replication: u32) -> Self {
        assert!(sum_width >= 1, "sum_width must be at least 1");
        assert!(sum_width <= 32, "sum_width above 32 is meaningless for 32-bit block addresses");
        assert!(
            (1..=SLICE_OFFSETS.len() as u32).contains(&replication),
            "replication must be between 1 and 3"
        );
        SmnmConfig { sum_width, replication }
    }

    /// The paper's label for this configuration.
    pub fn label(&self) -> String {
        format!("SMNM_{}x{}", self.sum_width, self.replication)
    }
}

/// Per-byte partial sums: `SUM_LUT[k][b]` is `Σ (8k+j+1)²` over the set
/// bits `j` of byte `b` — the paper's loop restricted to byte `k` of the
/// slice. The full hash is the sum of at most four table lookups.
const fn byte_sums(byte_index: u32) -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut j = 0u32;
        let mut sum = 0u32;
        while j < 8 {
            if (b >> j) & 1 == 1 {
                let i = 8 * byte_index + j + 1;
                sum += i * i;
            }
            j += 1;
        }
        table[b] = sum;
        b += 1;
    }
    table
}

const SUM_LUT: [[u32; 256]; 4] = [byte_sums(0), byte_sums(1), byte_sums(2), byte_sums(3)];

/// The paper's sum-of-squares hash over the low `width` bits of `slice`.
pub fn sum_hash(slice: u64, width: u32) -> u32 {
    if width > 32 {
        return sum_hash_loop(slice, width);
    }
    let masked = (slice & (u64::MAX >> (64 - width))) as u32;
    SUM_LUT[0][(masked & 0xff) as usize]
        + SUM_LUT[1][(masked >> 8 & 0xff) as usize]
        + SUM_LUT[2][(masked >> 16 & 0xff) as usize]
        + SUM_LUT[3][(masked >> 24) as usize]
}

/// The hash as literally written in the paper (Figure 5); reference for
/// the tabulated version and fallback for out-of-range widths.
fn sum_hash_loop(slice: u64, width: u32) -> u32 {
    let mut tag = slice;
    let mut sum = 0u32;
    for i in 1..=width {
        if tag & 1 != 0 {
            sum += i * i;
        }
        tag >>= 1;
    }
    sum
}

/// Maximum hash value for `width` bits: `w(w+1)(2w+1)/6` (paper Equation 3,
/// the flip-flop count of one checker, minus the slot for sum = 0).
pub fn max_sum(width: u32) -> u32 {
    width * (width + 1) * (2 * width + 1) / 6
}

/// One checker circuit (paper Figure 6): a flip-flop per possible sum,
/// packed 64 to a word.
#[derive(Debug, Clone)]
pub struct SmnmChecker {
    offset: u32,
    width: u32,
    /// Conceptual flip-flop `s` is bit `s % 64` of `present[s / 64]`.
    present: Vec<u64>,
    flip_flops: u64,
}

impl SmnmChecker {
    /// Build a checker over address bits `[offset, offset + width)`.
    pub fn new(offset: u32, width: u32) -> Self {
        let flip_flops = u64::from(max_sum(width)) + 1;
        SmnmChecker {
            offset,
            width,
            present: vec![0; flip_flops.div_ceil(64) as usize],
            flip_flops,
        }
    }

    fn hash(&self, block: u64) -> usize {
        sum_hash(block >> self.offset, self.width) as usize
    }

    /// Record the hash of a placed block.
    pub fn admit(&mut self, block: u64) {
        let h = self.hash(block);
        self.present[h >> 6] |= 1 << (h & 63);
    }

    /// The flip-flop guarding `block`, as the low bit of a word (1 = the
    /// block's hash has been admitted). Branch-free input to the filter's
    /// all-checkers AND.
    #[inline]
    pub fn present_bit(&self, block: u64) -> u64 {
        let h = self.hash(block);
        self.present[h >> 6] >> (h & 63) & 1
    }

    /// `true` iff the block's hash was never admitted.
    pub fn rejects(&self, block: u64) -> bool {
        self.present_bit(block) == 0
    }

    /// Reset all flip-flops.
    pub fn reset(&mut self) {
        self.present.fill(0);
    }

    /// Flip-flop count (paper Equation 3 plus the sum = 0 slot).
    pub fn flip_flops(&self) -> u64 {
        self.flip_flops
    }

    /// Toggle one flip-flop (fault injection). Bit `i` guards sum value `i`.
    pub fn flip_bit(&mut self, bit: u64) -> bool {
        if bit >= self.flip_flops {
            return false;
        }
        self.present[(bit >> 6) as usize] ^= 1 << (bit & 63);
        true
    }

    /// The flip-flop index guarding `block` in this checker.
    pub fn state_bit_of(&self, block: u64) -> u64 {
        self.hash(block) as u64
    }
}

/// A per-structure SMNM filter: `replication` parallel checkers.
#[derive(Debug, Clone)]
pub struct SmnmFilter {
    config: SmnmConfig,
    checkers: Vec<SmnmChecker>,
    label: String,
}

impl SmnmFilter {
    /// Build an empty filter.
    pub fn new(config: SmnmConfig) -> Self {
        let checkers = SLICE_OFFSETS
            .iter()
            .take(config.replication as usize)
            .map(|&off| SmnmChecker::new(off, config.sum_width))
            .collect();
        SmnmFilter { checkers, label: config.label(), config }
    }

    /// This filter's configuration.
    pub fn config(&self) -> &SmnmConfig {
        &self.config
    }
}

impl MissFilter for SmnmFilter {
    fn on_place(&mut self, block: u64) {
        for c in &mut self.checkers {
            c.admit(block);
        }
    }

    fn on_replace(&mut self, _block: u64) {
        // Set-only: several live blocks may share a hash value, so a
        // replacement cannot clear any flip-flop (soundness).
    }

    #[inline]
    fn is_definite_miss(&self, block: u64) -> bool {
        // AND the present bits of every checker: miss iff any is 0.
        let mut all_present = 1u64;
        for c in &self.checkers {
            all_present &= c.present_bit(block);
        }
        all_present == 0
    }

    fn flush(&mut self) {
        for c in &mut self.checkers {
            c.reset();
        }
    }

    fn storage_bits(&self) -> u64 {
        self.checkers.iter().map(SmnmChecker::flip_flops).sum()
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn state_bits(&self) -> u64 {
        self.storage_bits()
    }

    fn flip_state_bit(&mut self, mut bit: u64) -> bool {
        for c in &mut self.checkers {
            if bit < c.flip_flops() {
                return c.flip_bit(bit);
            }
            bit -= c.flip_flops();
        }
        false
    }

    fn state_bit_of(&self, block: u64) -> Option<u64> {
        // Clearing the first checker's flip-flop for a live block's hash
        // makes that checker reject it — one checker's rejection flags.
        Some(self.checkers[0].state_bit_of(block))
    }

    fn occupancy(&self) -> crate::filter::FilterOccupancy {
        crate::filter::FilterOccupancy {
            tracked: self
                .checkers
                .iter()
                .map(|c| c.present.iter().map(|w| u64::from(w.count_ones())).sum::<u64>())
                .sum(),
            capacity: self.checkers.iter().map(SmnmChecker::flip_flops).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_matches_paper_function() {
        // Bits 0 and 2 set => 1*1 + 3*3 = 10.
        assert_eq!(sum_hash(0b101, 8), 10);
        assert_eq!(sum_hash(0, 8), 0);
        // All bits of width 3: 1 + 4 + 9 = 14 = max_sum(3).
        assert_eq!(sum_hash(0b111, 3), 14);
        assert_eq!(max_sum(3), 14);
        // Bits above the width are ignored.
        assert_eq!(sum_hash(0b1000, 3), 0);
    }

    #[test]
    fn tabulated_hash_equals_paper_loop() {
        let mut x: u64 = 0xDEAD_BEEF_1234_5678;
        for width in 1..=32 {
            for _ in 0..256 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                assert_eq!(
                    sum_hash(x, width),
                    sum_hash_loop(x, width),
                    "width {width} slice {x:#x}"
                );
            }
        }
    }

    #[test]
    fn equation3_flip_flop_count() {
        // Equation 3: w(w+1)(2w+1)/6 = 650 for w = 12; +1 for sum = 0.
        assert_eq!(max_sum(12), 650);
        assert_eq!(SmnmChecker::new(0, 12).flip_flops(), 651);
    }

    #[test]
    fn never_seen_hash_is_definite_miss() {
        let mut f = SmnmFilter::new(SmnmConfig::new(10, 1));
        assert!(f.is_definite_miss(0b1)); // nothing admitted yet
        f.on_place(0b1);
        assert!(!f.is_definite_miss(0b1));
        // 0b100 hashes to 9, distinct from 1 => still a definite miss.
        assert!(f.is_definite_miss(0b100));
    }

    #[test]
    fn replace_never_clears() {
        let mut f = SmnmFilter::new(SmnmConfig::new(10, 2));
        f.on_place(42);
        f.on_replace(42);
        assert!(!f.is_definite_miss(42), "set-only semantics");
    }

    #[test]
    fn aliasing_blocks_share_fate() {
        let mut f = SmnmFilter::new(SmnmConfig::new(4, 1));
        // 0b0011 -> 1+4 = 5; 0b...? find another 4-bit value hashing to 5:
        // none (sums are distinct subsets of {1,4,9,16}), but values equal
        // modulo the 4-bit slice alias: 0b10011 has the same low-4 slice.
        f.on_place(0b0011);
        assert!(!f.is_definite_miss(0b1_0011), "slice alias must not be rejected");
    }

    #[test]
    fn replicated_checkers_catch_high_bit_differences() {
        let mut f = SmnmFilter::new(SmnmConfig::new(10, 3));
        f.on_place(0x0000_0001);
        // Same low slice, different bits at offset 12 => third checker
        // rejects.
        assert!(f.is_definite_miss(0x0000_1001 | 1 << 13));
        // Single-checker filter cannot.
        let mut f1 = SmnmFilter::new(SmnmConfig::new(10, 1));
        f1.on_place(0x0000_0001);
        assert!(!f1.is_definite_miss(0x0000_0001 | 1 << 13));
    }

    #[test]
    fn flush_resets_to_all_miss() {
        let mut f = SmnmFilter::new(SmnmConfig::new(8, 1));
        f.on_place(3);
        f.flush();
        assert!(f.is_definite_miss(3));
    }

    #[test]
    fn storage_scales_cubically() {
        let w10 = SmnmFilter::new(SmnmConfig::new(10, 1)).storage_bits();
        let w20 = SmnmFilter::new(SmnmConfig::new(20, 1)).storage_bits();
        // (20·21·41 - 10·11·21)/6: roughly 8x.
        assert!(w20 > w10 * 7 && w20 < w10 * 9);
    }

    #[test]
    fn label_matches_paper() {
        assert_eq!(SmnmConfig::new(13, 2).label(), "SMNM_13x2");
    }

    #[test]
    #[should_panic(expected = "replication")]
    fn rejects_excess_replication() {
        SmnmConfig::new(10, 4);
    }

    #[test]
    fn flipping_the_guarding_flip_flop_makes_an_admitted_block_lie() {
        let mut f = SmnmFilter::new(SmnmConfig::new(10, 2));
        f.on_place(42);
        assert!(!f.is_definite_miss(42));
        let bit = f.state_bit_of(42).unwrap();
        assert!(f.flip_state_bit(bit));
        assert!(f.is_definite_miss(42), "cleared flip-flop: the filter now lies");
        assert!(f.flip_state_bit(bit));
        assert!(!f.is_definite_miss(42));
        assert_eq!(f.state_bits(), f.storage_bits());
        assert!(!f.flip_state_bit(f.state_bits()));
    }

    #[test]
    fn flip_bit_addresses_every_flip_flop() {
        // The packed words must expose exactly `flip_flops` addressable
        // bits, including the last partial word.
        let mut c = SmnmChecker::new(0, 7); // 141 flip-flops: 3 words
        assert_eq!(c.flip_flops(), 141);
        assert!(c.flip_bit(140));
        assert!(!c.flip_bit(141));
        // Sum 140 = max_sum(7): the all-ones slice.
        assert!(SmnmChecker::new(0, 7).rejects(0x7f), "fresh checker rejects everything");
        assert_eq!(c.state_bit_of(0x7f), 140);
        assert!(!c.rejects(0x7f), "flipped bit 140 admits the all-ones hash");
    }
}
