//! RMNM — the Replacements MNM (paper §3.1).
//!
//! A single small set-associative *RMNM cache* shared by all levels. Each
//! entry is keyed by an MNM block address and holds one bit per guarded
//! cache structure: bit *c* set means "this block was replaced from
//! structure *c* and has not been placed back since", so an access to it
//! will definitely miss there. Cold misses are invisible to this technique.

/// Geometry of the RMNM cache: `RMNM_<blocks>_<assoc>` in the paper's
/// figures (e.g. `RMNM_4096_8` = 4096 entries, 8-way).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RmnmConfig {
    /// Total number of entries. Must be a power of two and a multiple of
    /// `assoc`.
    pub blocks: u32,
    /// Associativity.
    pub assoc: u32,
}

impl RmnmConfig {
    /// Create a configuration, validating the geometry.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is not a power of two, `assoc` is zero, or
    /// `blocks` is not a multiple of `assoc`.
    pub fn new(blocks: u32, assoc: u32) -> Self {
        assert!(blocks.is_power_of_two(), "RMNM entry count must be a power of two");
        assert!(assoc >= 1, "RMNM associativity must be at least 1");
        assert!(blocks.is_multiple_of(assoc), "RMNM entries must divide evenly into ways");
        assert!((blocks / assoc).is_power_of_two(), "RMNM set count must be a power of two");
        RmnmConfig { blocks, assoc }
    }

    /// The paper's label for this configuration.
    pub fn label(&self) -> String {
        format!("RMNM_{}_{}", self.blocks, self.assoc)
    }
}

const TAG_INVALID: u64 = u64::MAX;

/// The shared replacements-tracking structure.
///
/// Unlike the other techniques, RMNM is a *single* structure covering every
/// guarded cache (paper: "we have chosen to have a single RMNM cache that
/// stores information about each cache level"), so it does not implement
/// [`MissFilter`](crate::MissFilter); the machine addresses it with a
/// `(slot, block)` pair where `slot` indexes the guarded structures.
#[derive(Debug, Clone)]
pub struct Rmnm {
    config: RmnmConfig,
    sets: usize,
    assoc: usize,
    tags: Vec<u64>,
    /// Per-entry bitmask over slots; bit set = definite miss at that slot.
    bits: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
    num_slots: usize,
}

impl Rmnm {
    /// Build an empty RMNM cache guarding `num_slots` cache structures.
    ///
    /// # Panics
    ///
    /// Panics if `num_slots > 64` (entries hold a 64-bit slot mask).
    pub fn new(config: RmnmConfig, num_slots: usize) -> Self {
        assert!(num_slots <= 64, "RMNM entries hold at most 64 slot bits");
        let sets = (config.blocks / config.assoc) as usize;
        let total = config.blocks as usize;
        Rmnm {
            config,
            sets,
            assoc: config.assoc as usize,
            tags: vec![TAG_INVALID; total],
            bits: vec![0; total],
            stamps: vec![0; total],
            clock: 0,
            num_slots,
        }
    }

    /// This structure's configuration.
    pub fn config(&self) -> &RmnmConfig {
        &self.config
    }

    fn set_of(&self, block: u64) -> usize {
        (block as usize) & (self.sets - 1)
    }

    fn tag_of(&self, block: u64) -> u64 {
        block >> self.sets.trailing_zeros()
    }

    fn find(&self, block: u64) -> Option<usize> {
        let set = self.set_of(block);
        let tag = self.tag_of(block);
        let base = set * self.assoc;
        (0..self.assoc).map(|w| base + w).find(|&i| self.tags[i] == tag)
    }

    /// A block was replaced from structure `slot`: remember the definite
    /// miss. May evict an older RMNM entry (losing only *miss* information,
    /// which is safe).
    pub fn on_replace(&mut self, slot: usize, block: u64) {
        debug_assert!(slot < self.num_slots);
        self.clock += 1;
        if let Some(i) = self.find(block) {
            self.bits[i] |= 1 << slot;
            self.stamps[i] = self.clock;
            return;
        }
        // Allocate (LRU within the set).
        let set = self.set_of(block);
        let base = set * self.assoc;
        let mut victim = base;
        let mut best = u64::MAX;
        for i in base..base + self.assoc {
            if self.tags[i] == TAG_INVALID {
                victim = i;
                break;
            }
            if self.stamps[i] < best {
                best = self.stamps[i];
                victim = i;
            }
        }
        self.tags[victim] = self.tag_of(block);
        self.bits[victim] = 1 << slot;
        self.stamps[victim] = self.clock;
    }

    /// A block was removed from structure `slot` by an invalidation
    /// (inclusive back-invalidation or external coherence traffic). The
    /// block is just as gone as a replacement victim, so the same definite
    /// miss is remembered; the caller guarantees the block was actually
    /// removed.
    pub fn on_invalidate(&mut self, slot: usize, block: u64) {
        self.on_replace(slot, block);
    }

    /// A block was placed into structure `slot`: the miss bit must be
    /// cleared (the block is resident again).
    pub fn on_place(&mut self, slot: usize, block: u64) {
        debug_assert!(slot < self.num_slots);
        if let Some(i) = self.find(block) {
            self.bits[i] &= !(1 << slot);
        }
    }

    /// The full per-slot miss mask for `block`: bit `s` set means an
    /// access is a definite miss at structure `s`. One tag search answers
    /// every guarded structure on an access path — the machine's query
    /// loop tests one bit per slot instead of repeating the search.
    #[inline]
    pub fn miss_mask(&self, block: u64) -> u64 {
        match self.find(block) {
            Some(i) => self.bits[i],
            None => 0,
        }
    }

    /// Whether an access to `block` is a definite miss at structure `slot`.
    pub fn is_definite_miss(&self, slot: usize, block: u64) -> bool {
        debug_assert!(slot < self.num_slots);
        self.miss_mask(block) & (1 << slot) != 0
    }

    /// Drop all entries.
    pub fn flush(&mut self) {
        self.tags.fill(TAG_INVALID);
        self.bits.fill(0);
        self.stamps.fill(0);
        self.clock = 0;
    }

    /// Storage cost in bits: per entry, a tag plus one bit per guarded
    /// structure, plus a valid bit.
    ///
    /// The tag width is derived from the full 64-bit block-address width —
    /// the same width [`Rmnm::tag_of`] actually compares. An earlier
    /// version modelled a 32-bit address space here; that was only a
    /// storage-accounting shortfall (lookups always used full tags), but
    /// any truncation of the *stored* tag would let two blocks differing
    /// only above bit 32 alias into one entry and turn a stale miss bit
    /// into an unsound "definite miss" (see
    /// `full_width_tags_do_not_alias_high_addresses`).
    pub fn storage_bits(&self) -> u64 {
        let index_bits = (self.sets as u64).trailing_zeros() as u64;
        let tag_bits = 64u64.saturating_sub(index_bits);
        (self.config.blocks as u64) * (tag_bits + self.num_slots as u64 + 1)
    }

    /// The paper's label for this configuration.
    pub fn label(&self) -> String {
        self.config.label()
    }

    /// Current occupancy: valid entries over total entries.
    pub fn occupancy(&self) -> crate::filter::FilterOccupancy {
        crate::filter::FilterOccupancy {
            tracked: self.tags.iter().filter(|&&t| t != TAG_INVALID).count() as u64,
            capacity: self.config.blocks.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replace_then_miss_then_place_clears() {
        let mut r = Rmnm::new(RmnmConfig::new(16, 2), 5);
        let b = 0x2fc0 >> 5;
        assert!(!r.is_definite_miss(3, b));
        r.on_replace(3, b);
        assert!(r.is_definite_miss(3, b));
        assert!(!r.is_definite_miss(2, b), "other slots unaffected");
        r.on_place(3, b);
        assert!(!r.is_definite_miss(3, b));
    }

    /// The paper's Table 1 scenario: a two-level hierarchy where block
    /// 0x2fc0 is replaced from L2 and the subsequent access is captured.
    #[test]
    fn table1_scenario() {
        // One guarded structure (the L2), slot 0.
        let mut r = Rmnm::new(RmnmConfig::new(8, 1), 1);
        let g = |addr: u64| addr >> 5; // 32-byte L2 blocks
                                       // x2ff4 placed into L1 and L2; x2fc0 later replaced from L2.
        r.on_place(0, g(0x2ff4));
        r.on_place(0, g(0x2fc0));
        r.on_replace(0, g(0x2fc0));
        // The access to x2fc0 is identified as an L2 miss.
        assert!(r.is_definite_miss(0, g(0x2fc0)));
        // Placing it back (after the miss is serviced) clears the entry.
        r.on_place(0, g(0x2fc0));
        assert!(!r.is_definite_miss(0, g(0x2fc0)));
    }

    #[test]
    fn allocation_eviction_loses_only_miss_info() {
        // 2 entries, direct-mapped: set = block & 1.
        let mut r = Rmnm::new(RmnmConfig::new(2, 1), 1);
        r.on_replace(0, 0); // set 0
        r.on_replace(0, 2); // set 0: evicts entry for block 0
        assert!(!r.is_definite_miss(0, 0), "evicted info degrades to maybe");
        assert!(r.is_definite_miss(0, 2));
    }

    #[test]
    fn lru_keeps_recent_entries() {
        // 1 set x 2 ways: blocks 0,2,4 all map to set 0.
        let mut r = Rmnm::new(RmnmConfig::new(2, 2), 1);
        r.on_replace(0, 0);
        r.on_replace(0, 2);
        r.on_replace(0, 0); // refresh block 0
        r.on_replace(0, 4); // must evict block 2 (LRU)
        assert!(r.is_definite_miss(0, 0));
        assert!(!r.is_definite_miss(0, 2));
        assert!(r.is_definite_miss(0, 4));
    }

    #[test]
    fn multiple_slots_accumulate_in_one_entry() {
        let mut r = Rmnm::new(RmnmConfig::new(8, 2), 4);
        r.on_replace(1, 7);
        r.on_replace(3, 7);
        assert!(r.is_definite_miss(1, 7));
        assert!(r.is_definite_miss(3, 7));
        assert!(!r.is_definite_miss(0, 7));
        r.on_place(1, 7);
        assert!(!r.is_definite_miss(1, 7));
        assert!(r.is_definite_miss(3, 7), "placement into one structure keeps other bits");
    }

    #[test]
    fn flush_clears_everything() {
        let mut r = Rmnm::new(RmnmConfig::new(8, 2), 2);
        r.on_replace(0, 5);
        r.flush();
        assert!(!r.is_definite_miss(0, 5));
    }

    #[test]
    fn storage_bits_scales_with_entries() {
        let small = Rmnm::new(RmnmConfig::new(128, 1), 5).storage_bits();
        let large = Rmnm::new(RmnmConfig::new(4096, 8), 5).storage_bits();
        assert!(large > small * 16);
    }

    #[test]
    fn storage_accounts_full_block_address_tags() {
        // 128 entries, direct-mapped: 7 index bits, 57 tag bits, 5 slot
        // bits, 1 valid bit. The old 32-bit model counted 25 tag bits.
        let r = Rmnm::new(RmnmConfig::new(128, 1), 5);
        assert_eq!(r.storage_bits(), 128 * (57 + 5 + 1));
    }

    /// Regression: tags must cover the full 64-bit block-address width.
    /// Under a 32-bit tag scheme these two blocks — identical in their low
    /// 32 bits, different above — would alias into one entry, and the miss
    /// bit recorded for the first would unsoundly flag the second.
    #[test]
    fn full_width_tags_do_not_alias_high_addresses() {
        let mut r = Rmnm::new(RmnmConfig::new(8, 1), 1);
        let low = 0x0000_0000_2fc0_u64 >> 5;
        let high = low | (1u64 << 40); // same low 32 bits after the shift
        r.on_replace(0, low);
        assert!(r.is_definite_miss(0, low));
        assert!(
            !r.is_definite_miss(0, high),
            "a block differing only above bit 32 must not inherit the miss bit"
        );
        // And the reverse direction: placing the high alias must not clear
        // the low block's (still valid) miss information.
        r.on_place(0, high);
        assert!(r.is_definite_miss(0, low));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn config_rejects_non_power_of_two() {
        RmnmConfig::new(100, 2);
    }

    #[test]
    fn label_matches_paper() {
        assert_eq!(RmnmConfig::new(512, 2).label(), "RMNM_512_2");
    }
}
