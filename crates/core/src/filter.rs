//! The per-structure miss-filter abstraction.

/// Point-in-time occupancy of a filter's dynamic state, for telemetry
/// (`jsn serve` exports it per session as a scrapeable gauge).
///
/// `tracked` counts the state units currently armed — set presence
/// flip-flops (SMNM), nonzero counters (TMNM / Bloom), live tracked
/// blocks (CMNM), valid entries (RMNM) — and `capacity` the total state
/// units of the same kind, so `tracked / capacity` is a load factor in
/// `[0, 1]`. Filters with no dynamic surface report zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterOccupancy {
    /// State units currently armed.
    pub tracked: u64,
    /// Total state units.
    pub capacity: u64,
}

impl FilterOccupancy {
    /// Load factor in `[0, 1]`; zero for an empty surface.
    pub fn ratio(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.tracked as f64 / self.capacity as f64
        }
    }

    /// Fold another component's occupancy into this one.
    pub fn merge(&mut self, other: FilterOccupancy) {
        self.tracked += other.tracked;
        self.capacity += other.capacity;
    }
}

/// A sound, per-cache-structure miss filter.
///
/// One instance guards one cache structure (e.g. `dl2` or `ul4`). All
/// addresses are **MNM block addresses** — byte addresses already shifted by
/// the MNM granularity (the L2 line size, paper §3.1); events from caches
/// with larger lines have already been expanded into multiple block
/// addresses by the machine.
///
/// # Soundness contract
///
/// If [`MissFilter::is_definite_miss`] returns `true` for a block, that
/// block **must not** be resident in the guarded structure. Implementations
/// uphold this given a faithful event feed: every block installed into the
/// structure is reported via [`MissFilter::on_place`] and every eviction via
/// [`MissFilter::on_replace`], in order. The reverse is not required — a
/// `false` ("maybe") answer for an absent block merely costs a redundant
/// probe (paper §3.6).
pub trait MissFilter: std::fmt::Debug + Send {
    /// A block was installed into the guarded structure.
    fn on_place(&mut self, block: u64);

    /// A block was evicted from the guarded structure.
    fn on_replace(&mut self, block: u64);

    /// A block was removed from the guarded structure by an invalidation —
    /// an inclusive back-invalidation from an outer level, or external
    /// coherence traffic (a remote core's store, a shared level's
    /// replacement) — rather than by the replacement policy.
    ///
    /// The caller guarantees the block was **actually resident and was
    /// removed**; feeding invalidations for blocks the structure never
    /// held breaks count-based filters (a blind decrement can zero a
    /// counter that still guards a live block, turning "definite miss"
    /// into a lie). Given that guarantee, retiring the block is exactly
    /// what `on_replace` does, so that is the default. Families whose
    /// replacement handling is asymmetric (e.g. the set-only SMNM, whose
    /// `on_replace` is a deliberate no-op) inherit the same soundness
    /// argument: the filter may only get more conservative.
    fn on_invalidate(&mut self, block: u64) {
        self.on_replace(block);
    }

    /// `true` iff an access to `block` is guaranteed to miss.
    fn is_definite_miss(&self, block: u64) -> bool;

    /// Reset all state (cache flush; paper §3.3: "The counter values are
    /// reset when the caches are flushed").
    fn flush(&mut self);

    /// Hardware storage cost in bits (flip-flops / SRAM bits), used by the
    /// power model.
    fn storage_bits(&self) -> u64;

    /// Short configuration label, e.g. `"TMNM_12x3"`. Borrowed from the
    /// filter (memoized at construction): stats and telemetry emission can
    /// read it mid-run without allocating.
    fn label(&self) -> &str;

    /// Upper bound on simultaneously-live blocks in the guarded structure
    /// (its capacity in MNM blocks). Filters with dynamically-sized
    /// bookkeeping pre-size it here so the per-access hot path never
    /// allocates; the hardware-shaped tables ignore this.
    fn reserve(&mut self, _max_live_blocks: usize) {}

    /// Number of state bits addressable by [`MissFilter::flip_state_bit`].
    /// Zero (the default) means the filter exposes no fault surface.
    fn state_bits(&self) -> u64 {
        0
    }

    /// Fault-injection hook: XOR one bit of the filter's internal state,
    /// emulating a soft error in the hardware tables. This is **only** for
    /// the soundness checker (`crates/check`), which proves that injected
    /// corruption is caught as a contract violation; nothing on the
    /// simulation path calls it. Returns `false` when `bit` is out of
    /// range or the filter exposes no fault surface.
    fn flip_state_bit(&mut self, _bit: u64) -> bool {
        false
    }

    /// The state-bit index (as addressed by [`MissFilter::flip_state_bit`])
    /// whose corruption most directly affects `block` — e.g. the low bit
    /// of the counter the block maps to. Used by the checker to aim an
    /// injected fault at a resident block. `None` when the filter exposes
    /// no fault surface or no state guards this block.
    fn state_bit_of(&self, _block: u64) -> Option<u64> {
        None
    }

    /// Current dynamic-state occupancy, for telemetry. The default (all
    /// zeros) means the filter exposes no occupancy surface.
    fn occupancy(&self) -> FilterOccupancy {
        FilterOccupancy::default()
    }
}
