//! MNM machine configuration: technique assignment per level group,
//! placement, delay, and the paper's configuration-string grammar.

use std::fmt;
use std::ops::RangeInclusive;

use crate::bloom::BloomConfig;
use crate::cmnm::CmnmConfig;
use crate::rmnm::RmnmConfig;
use crate::smnm::SmnmConfig;
use crate::tmnm::TmnmConfig;

/// Where the MNM sits relative to the L1 caches (paper Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MnmPlacement {
    /// Accessed in parallel with the L1 caches; its verdict is ready before
    /// the L1 miss is detected, so bypassing adds no latency. Queried on
    /// *every* access (more MNM energy). Used for the execution-time
    /// results (paper §4.3).
    Parallel,
    /// Accessed only after an L1 miss; adds the MNM delay to every access
    /// beyond L1 but consumes far less energy. Used for the power results
    /// (paper §4.4).
    Serial,
    /// Distributed before each cache level (paper §2: "Such a
    /// configuration will have better power consumption, but will increase
    /// the access times"): each level's filter is consulted right before
    /// that level, so only levels actually reached pay query energy, and
    /// every consulted level adds the MNM delay.
    Distributed,
}

/// One per-structure filter technique (everything except the shared RMNM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TechniqueConfig {
    /// Sum-hash checkers (paper §3.2).
    Smnm(SmnmConfig),
    /// Counter tables (paper §3.3).
    Tmnm(TmnmConfig),
    /// Virtual-tag finder + counter table (paper §3.4).
    Cmnm(CmnmConfig),
    /// Counting Bloom filter (related work: Peir et al.; generalizes TMNM
    /// with real hash functions).
    Bloom(BloomConfig),
}

impl TechniqueConfig {
    /// The paper's label for this technique configuration.
    pub fn label(&self) -> String {
        match self {
            TechniqueConfig::Smnm(c) => c.label(),
            TechniqueConfig::Tmnm(c) => c.label(),
            TechniqueConfig::Cmnm(c) => c.label(),
            TechniqueConfig::Bloom(c) => c.label(),
        }
    }
}

/// Techniques applied to the structures of a group of cache levels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// Cache levels (1-based, inclusive) this assignment covers. Level 1 is
    /// never filtered even if included.
    pub levels: RangeInclusive<u8>,
    /// Filters instantiated per structure in the group; an access is a
    /// definite miss if *any* filter says so.
    pub techniques: Vec<TechniqueConfig>,
}

/// Full configuration of a [`Mnm`](crate::Mnm).
#[derive(Debug, Clone, PartialEq)]
pub struct MnmConfig {
    /// Display name, e.g. `"HMNM4"` or `"TMNM_12x3"`.
    pub name: String,
    /// Per-level-group technique assignments.
    pub assignments: Vec<Assignment>,
    /// Optional shared replacements cache covering every guarded structure.
    pub rmnm: Option<RmnmConfig>,
    /// MNM access delay in cycles (paper §4.1: 2 cycles).
    pub delay: u64,
    /// Parallel or serial placement.
    pub placement: MnmPlacement,
}

/// Default MNM delay in cycles (paper §4.1).
pub const DEFAULT_MNM_DELAY: u64 = 2;

impl MnmConfig {
    /// A single technique applied to every cache level beyond L1.
    pub fn single(technique: TechniqueConfig) -> Self {
        MnmConfig {
            name: technique.label(),
            assignments: vec![Assignment { levels: 2..=u8::MAX, techniques: vec![technique] }],
            rmnm: None,
            delay: DEFAULT_MNM_DELAY,
            placement: MnmPlacement::Parallel,
        }
    }

    /// An RMNM-only machine.
    pub fn rmnm_only(config: RmnmConfig) -> Self {
        MnmConfig {
            name: config.label(),
            assignments: Vec::new(),
            rmnm: Some(config),
            delay: DEFAULT_MNM_DELAY,
            placement: MnmPlacement::Parallel,
        }
    }

    /// The paper's hybrid configuration `HMNM<n>` (Table 3).
    ///
    /// # Panics
    ///
    /// Panics unless `n` is 1..=4.
    pub fn hmnm(n: u8) -> Self {
        crate::hybrid::hmnm_config(n)
    }

    /// Change the placement (builder style).
    pub fn with_placement(mut self, placement: MnmPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Change the MNM delay (builder style).
    pub fn with_delay(mut self, delay: u64) -> Self {
        self.delay = delay;
        self
    }

    /// Parse a paper-style configuration label.
    ///
    /// Grammar: `RMNM_<blocks>_<assoc>`, `SMNM_<width>x<repl>`,
    /// `TMNM_<bits>x<repl>`, `CMNM_<registers>_<table_bits>`, `HMNM<n>`.
    ///
    /// # Errors
    ///
    /// Returns [`ParseConfigError`] when the label does not match the
    /// grammar or carries out-of-range parameters.
    pub fn parse(label: &str) -> Result<Self, ParseConfigError> {
        let err = || ParseConfigError { label: label.to_owned() };
        let parse_u32 = |s: &str| s.parse::<u32>().map_err(|_| err());

        if let Some(rest) = label.strip_prefix("RMNM_") {
            let (a, b) = rest.split_once('_').ok_or_else(err)?;
            let (blocks, assoc) = (parse_u32(a)?, parse_u32(b)?);
            if !blocks.is_power_of_two() || assoc == 0 || blocks % assoc != 0 {
                return Err(err());
            }
            return Ok(Self::rmnm_only(RmnmConfig::new(blocks, assoc)));
        }
        if let Some(rest) = label.strip_prefix("SMNM_") {
            let (a, b) = rest.split_once('x').ok_or_else(err)?;
            let (w, r) = (parse_u32(a)?, parse_u32(b)?);
            if w == 0 || w > 32 || !(1..=3).contains(&r) {
                return Err(err());
            }
            return Ok(Self::single(TechniqueConfig::Smnm(SmnmConfig::new(w, r))));
        }
        if let Some(rest) = label.strip_prefix("TMNM_") {
            let (a, b) = rest.split_once('x').ok_or_else(err)?;
            let (n, r) = (parse_u32(a)?, parse_u32(b)?);
            if !(1..=24).contains(&n) || !(1..=3).contains(&r) {
                return Err(err());
            }
            return Ok(Self::single(TechniqueConfig::Tmnm(TmnmConfig::new(n, r))));
        }
        if let Some(rest) = label.strip_prefix("CMNM_") {
            let (a, b) = rest.split_once('_').ok_or_else(err)?;
            let (k, m) = (parse_u32(a)?, parse_u32(b)?);
            if !k.is_power_of_two() || !(1..31).contains(&m) {
                return Err(err());
            }
            return Ok(Self::single(TechniqueConfig::Cmnm(CmnmConfig::new(k, m))));
        }
        if let Some(rest) = label.strip_prefix("BLOOM_") {
            let (a, b) = rest.split_once('x').ok_or_else(err)?;
            let (n, k) = (parse_u32(a)?, parse_u32(b)?);
            if !(1..=24).contains(&n) || !(1..=8).contains(&k) {
                return Err(err());
            }
            return Ok(Self::single(TechniqueConfig::Bloom(BloomConfig::new(n, k))));
        }
        if let Some(rest) = label.strip_prefix("HMNM") {
            let n: u8 = rest.parse().map_err(|_| err())?;
            if !(1..=4).contains(&n) {
                return Err(err());
            }
            return Ok(Self::hmnm(n));
        }
        Err(err())
    }

    /// Techniques assigned to cache level `level`.
    pub fn techniques_for_level(&self, level: u8) -> Vec<TechniqueConfig> {
        self.assignments
            .iter()
            .filter(|a| a.levels.contains(&level))
            .flat_map(|a| a.techniques.iter().copied())
            .collect()
    }
}

/// Error returned by [`MnmConfig::parse`] for an unrecognized label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError {
    /// The offending label.
    pub label: String,
}

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unrecognized MNM configuration label `{}`", self.label)
    }
}

impl std::error::Error for ParseConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_paper_labels() {
        for label in [
            "RMNM_128_1",
            "RMNM_512_2",
            "RMNM_2048_4",
            "RMNM_4096_8",
            "SMNM_10x2",
            "SMNM_13x2",
            "SMNM_15x2",
            "SMNM_20x3",
            "TMNM_10x1",
            "TMNM_11x2",
            "TMNM_10x3",
            "TMNM_12x3",
            "CMNM_2_9",
            "CMNM_4_10",
            "CMNM_8_10",
            "CMNM_8_12",
        ] {
            let cfg = MnmConfig::parse(label).unwrap();
            assert_eq!(cfg.name, label);
        }
    }

    #[test]
    fn parse_hmnm_builds_hybrid() {
        let cfg = MnmConfig::parse("HMNM2").unwrap();
        assert_eq!(cfg.name, "HMNM2");
        assert!(cfg.rmnm.is_some());
        assert!(!cfg.assignments.is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in
            ["", "XMNM_1", "TMNM_12", "TMNM_0x1", "SMNM_10x9", "RMNM_100_2", "HMNM9", "CMNM_3_10"]
        {
            assert!(MnmConfig::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn techniques_for_level_respects_ranges() {
        let cfg = MnmConfig::hmnm(4);
        let l2 = cfg.techniques_for_level(2);
        let l5 = cfg.techniques_for_level(5);
        assert!(!l2.is_empty() && !l5.is_empty());
        assert_ne!(l2, l5, "HMNM uses different mixes for levels 2-3 and 4-5");
    }

    #[test]
    fn single_covers_all_levels() {
        let cfg = MnmConfig::parse("TMNM_12x3").unwrap();
        assert_eq!(cfg.techniques_for_level(2), cfg.techniques_for_level(5));
        assert_eq!(cfg.delay, DEFAULT_MNM_DELAY);
    }

    #[test]
    fn builders_override_fields() {
        let cfg = MnmConfig::parse("TMNM_10x1")
            .unwrap()
            .with_delay(4)
            .with_placement(MnmPlacement::Serial);
        assert_eq!(cfg.delay, 4);
        assert_eq!(cfg.placement, MnmPlacement::Serial);
    }

    #[test]
    fn parse_error_displays_label() {
        let e = MnmConfig::parse("BOGUS").unwrap_err();
        assert!(e.to_string().contains("BOGUS"));
    }
}
