//! TMNM — the Table MNM (paper §3.3).
//!
//! Each table holds `2^bits` saturating counters indexed by a slice of the
//! block address. Placing a block increments the counter at its slot,
//! replacing a block decrements it — unless the counter ever saturated, in
//! which case it sticks at the maximum ("the counter becomes an indicator
//! that any access mapped to this position may be a hit"). A counter value
//! of zero means no live block maps to that slot: a definite miss.
//!
//! The paper uses 3-bit counters; the width is configurable here for the
//! counter-width ablation study.
//!
//! The query path never reads the counters themselves: each table keeps a
//! packed *zero bitset* (one bit per counter, set while the counter is 0)
//! maintained on the update path, so a probe touches 1/24th of the state a
//! counter-array read would (for the paper's 3-bit counters that shrinks
//! the probed state of `TMNM_12x3` from 12 KB to 1.5 KB — it fits in a
//! couple dozen cache lines).

use crate::filter::MissFilter;
use crate::smnm::SLICE_OFFSETS;

/// `TMNM_<bits>x<replication>` (e.g. `TMNM_12x3`). `counter_bits` defaults
/// to the paper's 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TmnmConfig {
    /// Index width: each table has `2^bits` counters.
    pub bits: u32,
    /// Number of parallel tables over different address slices (1–3).
    pub replication: u32,
    /// Width of each saturating counter in bits (paper: 3).
    pub counter_bits: u32,
}

impl TmnmConfig {
    /// Create a configuration with the paper's 3-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or > 24, or `replication` is not in 1..=3.
    pub fn new(bits: u32, replication: u32) -> Self {
        Self::with_counter_bits(bits, replication, 3)
    }

    /// Create a configuration with an explicit counter width (ablation).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters (`counter_bits` must be 1..=8).
    pub fn with_counter_bits(bits: u32, replication: u32, counter_bits: u32) -> Self {
        assert!((1..=24).contains(&bits), "table index width must be 1..=24");
        assert!(
            (1..=SLICE_OFFSETS.len() as u32).contains(&replication),
            "replication must be between 1 and 3"
        );
        assert!((1..=8).contains(&counter_bits), "counter width must be 1..=8 bits");
        TmnmConfig { bits, replication, counter_bits }
    }

    /// The paper's label for this configuration.
    pub fn label(&self) -> String {
        if self.counter_bits == 3 {
            format!("TMNM_{}x{}", self.bits, self.replication)
        } else {
            format!("TMNM_{}x{}c{}", self.bits, self.replication, self.counter_bits)
        }
    }
}

/// One counter table over a slice of the block address.
#[derive(Debug, Clone)]
pub struct TmnmTable {
    offset: u32,
    mask: u64,
    max: u8,
    counters: Vec<u8>,
    /// Bit `s` set iff `counters[s] == 0` — the only state a probe reads.
    zero: Vec<u64>,
}

fn zero_words(slots: usize) -> Vec<u64> {
    let mut words = vec![u64::MAX; slots.div_ceil(64)];
    if !slots.is_multiple_of(64) {
        *words.last_mut().unwrap() = (1u64 << (slots % 64)) - 1;
    }
    words
}

impl TmnmTable {
    /// Build a table over address bits `[offset, offset + bits)` with
    /// `counter_bits`-wide saturating counters.
    pub fn new(offset: u32, bits: u32, counter_bits: u32) -> Self {
        TmnmTable {
            offset,
            mask: (1u64 << bits) - 1,
            max: ((1u32 << counter_bits) - 1) as u8,
            counters: vec![0; 1 << bits],
            zero: zero_words(1 << bits),
        }
    }

    fn slot(&self, block: u64) -> usize {
        ((block >> self.offset) & self.mask) as usize
    }

    fn sync_zero_flag(&mut self, slot: usize) {
        let bit = 1u64 << (slot & 63);
        if self.counters[slot] == 0 {
            self.zero[slot >> 6] |= bit;
        } else {
            self.zero[slot >> 6] &= !bit;
        }
    }

    /// Increment on placement; saturates at the maximum.
    pub fn increment(&mut self, block: u64) {
        let s = self.slot(block);
        let c = self.counters[s];
        if c < self.max {
            self.counters[s] = c + 1;
            if c == 0 {
                self.zero[s >> 6] &= !(1u64 << (s & 63));
            }
        }
    }

    /// Decrement on replacement — unless saturated, which is sticky.
    pub fn decrement(&mut self, block: u64) {
        let s = self.slot(block);
        let c = self.counters[s];
        if c > 0 && c < self.max {
            self.counters[s] = c - 1;
            if c == 1 {
                self.zero[s >> 6] |= 1 << (s & 63);
            }
        }
    }

    /// The block's zero flag as the low bit of a word (1 = empty slot).
    /// Branch-free input to the filter's any-table OR.
    #[inline]
    pub fn zero_bit(&self, block: u64) -> u64 {
        let s = self.slot(block);
        self.zero[s >> 6] >> (s & 63) & 1
    }

    /// Definite miss iff no live block can map here (counter is zero).
    pub fn is_empty_slot(&self, block: u64) -> bool {
        self.zero_bit(block) != 0
    }

    /// Raw counter value at the block's slot (for tests/diagnostics).
    pub fn counter(&self, block: u64) -> u8 {
        self.counters[self.slot(block)]
    }

    /// Reset all counters (cache flush).
    pub fn reset(&mut self) {
        self.counters.fill(0);
        self.zero = zero_words(self.counters.len());
    }

    /// Width of one counter in bits.
    pub fn counter_bits(&self) -> u32 {
        u8::BITS - self.max.leading_zeros()
    }

    /// Total state bits in this table (counter count × counter width).
    pub fn state_bits(&self) -> u64 {
        self.counters.len() as u64 * u64::from(self.counter_bits())
    }

    /// XOR one bit of the table state (fault injection). Bits are numbered
    /// counter-major: bit `i` is bit `i % width` of counter `i / width`.
    pub fn flip_bit(&mut self, bit: u64) -> bool {
        let width = u64::from(self.counter_bits());
        let slot = (bit / width) as usize;
        let Some(counter) = self.counters.get_mut(slot) else {
            return false;
        };
        *counter ^= 1 << (bit % width);
        self.sync_zero_flag(slot);
        true
    }

    /// The lowest state bit of the counter `block` maps to.
    pub fn state_bit_of(&self, block: u64) -> u64 {
        self.slot(block) as u64 * u64::from(self.counter_bits())
    }
}

/// A per-structure TMNM filter: `replication` parallel tables.
#[derive(Debug, Clone)]
pub struct TmnmFilter {
    config: TmnmConfig,
    tables: Vec<TmnmTable>,
    label: String,
}

impl TmnmFilter {
    /// Build an empty filter.
    pub fn new(config: TmnmConfig) -> Self {
        let tables = SLICE_OFFSETS
            .iter()
            .take(config.replication as usize)
            .map(|&off| TmnmTable::new(off, config.bits, config.counter_bits))
            .collect();
        TmnmFilter { tables, label: config.label(), config }
    }

    /// This filter's configuration.
    pub fn config(&self) -> &TmnmConfig {
        &self.config
    }
}

impl MissFilter for TmnmFilter {
    fn on_place(&mut self, block: u64) {
        for t in &mut self.tables {
            t.increment(block);
        }
    }

    fn on_replace(&mut self, block: u64) {
        for t in &mut self.tables {
            t.decrement(block);
        }
    }

    #[inline]
    fn is_definite_miss(&self, block: u64) -> bool {
        // OR the zero flags of every table: miss iff any slot is empty.
        let mut any_zero = 0u64;
        for t in &self.tables {
            any_zero |= t.zero_bit(block);
        }
        any_zero != 0
    }

    fn flush(&mut self) {
        for t in &mut self.tables {
            t.reset();
        }
    }

    fn storage_bits(&self) -> u64 {
        (self.tables.len() as u64)
            * (1u64 << self.config.bits)
            * u64::from(self.config.counter_bits)
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn state_bits(&self) -> u64 {
        self.tables.iter().map(TmnmTable::state_bits).sum()
    }

    fn flip_state_bit(&mut self, mut bit: u64) -> bool {
        for t in &mut self.tables {
            if bit < t.state_bits() {
                return t.flip_bit(bit);
            }
            bit -= t.state_bits();
        }
        false
    }

    fn state_bit_of(&self, block: u64) -> Option<u64> {
        // The first table's counter for this block: any table reporting an
        // empty slot flags a definite miss, so corrupting one table can lie.
        Some(self.tables[0].state_bit_of(block))
    }

    fn occupancy(&self) -> crate::filter::FilterOccupancy {
        // A counter is "armed" when nonzero; the packed zero-flag bitset
        // (bit set iff counter == 0) gives the complement in O(words).
        let mut occ = crate::filter::FilterOccupancy::default();
        for t in &self.tables {
            let zeros: u64 = t.zero.iter().map(|w| u64::from(w.count_ones())).sum();
            occ.tracked += t.counters.len() as u64 - zeros;
            occ.capacity += t.counters.len() as u64;
        }
        occ
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn place_replace_round_trip() {
        let mut f = TmnmFilter::new(TmnmConfig::new(6, 1));
        assert!(f.is_definite_miss(0x12));
        f.on_place(0x12);
        assert!(!f.is_definite_miss(0x12));
        f.on_replace(0x12);
        assert!(f.is_definite_miss(0x12));
    }

    #[test]
    fn aliasing_blocks_keep_counter_positive() {
        let mut f = TmnmFilter::new(TmnmConfig::new(4, 1));
        // 0x5 and 0x15 share the low-4 slot.
        f.on_place(0x5);
        f.on_place(0x15);
        f.on_replace(0x5);
        assert!(!f.is_definite_miss(0x15), "one alias still live");
        f.on_replace(0x15);
        assert!(f.is_definite_miss(0x15));
    }

    #[test]
    fn saturation_is_sticky() {
        let mut f = TmnmFilter::new(TmnmConfig::with_counter_bits(4, 1, 2)); // max = 3
        for i in 0..5u64 {
            f.on_place(0x3 | (i << 4)); // 5 aliases of slot 3
        }
        // Removing all of them cannot drain the stuck counter.
        for i in 0..5u64 {
            f.on_replace(0x3 | (i << 4));
        }
        assert!(!f.is_definite_miss(0x3), "saturated slot stays 'maybe' forever");
    }

    #[test]
    fn exactly_max_blocks_saturates_conservatively() {
        // The paper: a saturated value occurs when 2^c different blocks map
        // to the same location; even max-count followed by full drain must
        // stay conservative.
        let mut f = TmnmFilter::new(TmnmConfig::with_counter_bits(4, 1, 2)); // max = 3
        for i in 0..3u64 {
            f.on_place(0x1 | (i << 4));
        }
        for i in 0..3u64 {
            f.on_replace(0x1 | (i << 4));
        }
        // Counter hit its max (3) with exactly 3 blocks: it cannot tell 3
        // from >3, so it must stick.
        assert!(!f.is_definite_miss(0x1));
    }

    #[test]
    fn replicated_tables_raise_precision() {
        let mut one = TmnmFilter::new(TmnmConfig::new(10, 1));
        let mut three = TmnmFilter::new(TmnmConfig::new(10, 3));
        let a = 0x0000_0400u64; // bit 10 set: invisible to the low-10 table
        one.on_place(0);
        three.on_place(0);
        assert!(!one.is_definite_miss(a), "low slice aliases with block 0");
        assert!(three.is_definite_miss(a), "offset-6 table sees the difference");
    }

    #[test]
    fn paper_counter_width_is_three_bits() {
        let f = TmnmFilter::new(TmnmConfig::new(12, 3));
        assert_eq!(f.config().counter_bits, 3);
        assert_eq!(f.storage_bits(), 3 * 4096 * 3);
    }

    #[test]
    fn flush_resets_counters() {
        let mut f = TmnmFilter::new(TmnmConfig::new(6, 2));
        f.on_place(9);
        f.flush();
        assert!(f.is_definite_miss(9));
        assert_eq!(f.tables[0].counter(9), 0);
    }

    #[test]
    fn zero_bitset_tracks_counters_exactly() {
        // Drive one table hard and check the bitset against the counters
        // after every operation, including flips and a sub-word table.
        let mut t = TmnmTable::new(0, 5, 2); // 32 slots: one partial word
        let mut x: u64 = 0x9E37_79B9;
        for step in 0..4000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let block = x % 64;
            match step % 4 {
                0 | 1 => t.increment(block),
                2 => t.decrement(block),
                _ => {
                    t.flip_bit(x % t.state_bits());
                }
            }
            for b in 0..32u64 {
                assert_eq!(t.is_empty_slot(b), t.counter(b) == 0, "slot {b} after step {step}");
            }
        }
        t.reset();
        for b in 0..32u64 {
            assert!(t.is_empty_slot(b));
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(TmnmConfig::new(12, 3).label(), "TMNM_12x3");
        assert_eq!(TmnmConfig::with_counter_bits(10, 1, 2).label(), "TMNM_10x1c2");
    }

    #[test]
    fn fault_surface_matches_storage() {
        let f = TmnmFilter::new(TmnmConfig::new(6, 2));
        assert_eq!(f.state_bits(), f.storage_bits());
        assert_eq!(f.state_bits(), 2 * 64 * 3);
    }

    #[test]
    fn flipping_the_guarding_bit_makes_a_live_block_lie() {
        let mut f = TmnmFilter::new(TmnmConfig::new(6, 1));
        f.on_place(0x12);
        assert!(!f.is_definite_miss(0x12));
        let bit = f.state_bit_of(0x12).unwrap();
        assert!(f.flip_state_bit(bit), "bit {bit} must be in range");
        assert!(f.is_definite_miss(0x12), "counter 1 -> 0: the filter now lies");
        // Flipping again restores the original state.
        assert!(f.flip_state_bit(bit));
        assert!(!f.is_definite_miss(0x12));
        assert!(!f.flip_state_bit(f.state_bits()), "out-of-range bit is rejected");
    }
}
