//! The MNM's working block granularity.

/// The block granularity at which the MNM keys all of its structures.
///
/// The paper fixes this to the level-2 line size (§3.1): "They are shifted
/// according to the block size of the level 2 cache(s)". Addresses entering
/// any MNM structure are byte addresses shifted right by this granularity;
/// events from caches with larger lines expand into multiple MNM blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Granularity {
    shift: u32,
}

impl Granularity {
    /// Build from a power-of-two block size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or not a power of two.
    pub fn from_bytes(bytes: u64) -> Self {
        assert!(bytes > 0 && bytes.is_power_of_two(), "granularity must be a power of two");
        Granularity { shift: bytes.trailing_zeros() }
    }

    /// The block size in bytes.
    pub fn bytes(self) -> u64 {
        1 << self.shift
    }

    /// The right-shift applied to byte addresses.
    pub fn shift(self) -> u32 {
        self.shift
    }

    /// The MNM block address of byte address `addr`.
    pub fn block_of(self, addr: u64) -> u64 {
        addr >> self.shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_of_shifts_by_line_size() {
        let g = Granularity::from_bytes(32);
        assert_eq!(g.shift(), 5);
        assert_eq!(g.bytes(), 32);
        assert_eq!(g.block_of(0x2ff4), 0x2ff4 >> 5);
        assert_eq!(g.block_of(0x1f), 0);
        assert_eq!(g.block_of(0x20), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        Granularity::from_bytes(48);
    }
}
